//! Case Study IV driver: transient-error injection into architectural
//! state (the paper's Figure 10 pipeline: profile → select → inject →
//! categorize).
//!
//! ```sh
//! cargo run --release --example error_injection [runs]
//! ```

use sassi_studies::{inject, report};
use sassi_workloads::by_name;

fn main() {
    let runs: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    let w = by_name("pathfinder").unwrap();
    // Step 1: profile the injection space.
    let (space, cycles) = inject::profile(w.as_ref());
    println!(
        "injection space for {}: {} candidate destination writes across {} launches",
        w.name(),
        space.total(),
        space.per_launch.len()
    );

    // Step 2+3: select sites, inject, categorize.
    eprintln!("running {runs} injections...");
    let campaign = inject::run_campaign(w.as_ref(), runs, 0xBEEF);
    println!("{}", report::figure10(std::slice::from_ref(&campaign)));
    println!(
        "(watchdog scaled from {} instrumented kernel cycles)",
        cycles
    );

    let masked = campaign.fraction(inject::Outcome::Masked);
    println!(
        "masked fraction: {:.0}% (the paper reports ~79% on average)",
        100.0 * masked
    );
}
