//! The paper's Figure 3 handler: categorize every dynamic instruction
//! into the six overlapping categories (memory, extended memory,
//! control transfer, sync, numeric, texture) plus a total — run here
//! over the spmv workload.
//!
//! ```sh
//! cargo run --release --example opcode_histogram
//! ```

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_workloads::{by_name, execute};
use std::sync::Arc;

const LABELS: [&str; 7] = [
    "memory",
    "extended memory (>4B)",
    "control transfer",
    "sync",
    "numeric",
    "texture",
    "total executed",
];

fn main() {
    // __device__ unsigned long long dynamic_instr_counts[7];
    let counts = Arc::new(Mutex::new([0u64; 7]));

    let c2 = counts.clone();
    let mut sassi = Sassi::new();
    // "SASSI can be instructed to insert calls to this handler before
    // every SASS instruction."
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::MEMORY,
        Box::new(FnHandler::new(
            sassi::HandlerCost {
                instructions: 18,
                memory_ops: 0,
                atomics: 7,
            },
            move |site| {
                for lane in site.active_lanes() {
                    let bp = site.params(lane);
                    let mut c = c2.lock();
                    if bp.is_mem(site.trap) {
                        c[0] += 1;
                        let mp = site.memory_params(lane).unwrap();
                        if mp.width(site.trap) > 4 {
                            c[1] += 1;
                        }
                    }
                    if bp.is_control_xfer(site.trap) {
                        c[2] += 1;
                    }
                    if bp.is_sync(site.trap) {
                        c[3] += 1;
                    }
                    if bp.is_numeric(site.trap) {
                        c[4] += 1;
                    }
                    if bp.is_texture(site.trap) {
                        c[5] += 1;
                    }
                    c[6] += 1;
                }
            },
        )),
    );

    let w = by_name("spmv (small)").expect("workload");
    let report = execute(w.as_ref(), Some(&mut sassi), None);
    assert!(report.output.is_ok());

    println!("dynamic instruction categories for {}:", w.name());
    let c = counts.lock();
    for (label, v) in LABELS.iter().zip(c.iter()) {
        println!("  {label:<24} {v:>12}");
    }
    println!(
        "\n(kernel ran {} warp-level instructions; handler calls: {})",
        report.warp_instrs, report.handler_calls
    );
}
