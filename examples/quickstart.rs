//! Quickstart: write a kernel, instrument it with SASSI, run it on the
//! simulated GPU, and read back both the kernel's results and the
//! instrumentation's measurements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_rt::{LaunchDims, Runtime};
use sassi_sim::Module;
use std::sync::Arc;

fn main() {
    // 1. Write a kernel in the builder DSL (the "CUDA source"):
    //    saxpy: y[i] = a*x[i] + y[i].
    let mut b = KernelBuilder::kernel("saxpy");
    let i = b.global_tid_x();
    let n = b.param_u32(0);
    let a = b.param_f32(1);
    let x = b.param_ptr(2);
    let y = b.param_ptr(3);
    let in_range = b.setp_u32_lt(i, n);
    b.if_(in_range, |b| {
        let ex = b.lea(x, i, 2);
        let xv = b.ld_global_f32(ex);
        let ey = b.lea(y, i, 2);
        let yv = b.ld_global_f32(ey);
        let r = b.ffma(xv, a, yv);
        b.st_global_u32(ey, r);
    });
    let kfunc = b.finish();

    // 2. Compile with the backend (ptxas-lite) and print the SASS.
    let func = Compiler::new().compile(&kfunc).expect("compile");
    println!("--- compiled SASS ---\n{func}");

    // 3. Attach SASSI instrumentation: count memory operations and
    //    histogram the bytes they move, before every memory instruction.
    let stats = Arc::new(Mutex::new((0u64, 0u64))); // (ops, bytes)
    let s2 = stats.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            for lane in site.active_lanes() {
                if !site.params(lane).will_execute(site.trap) {
                    continue;
                }
                let mp = site.memory_params(lane).unwrap();
                let mut g = s2.lock();
                g.0 += 1;
                g.1 += mp.width(site.trap) as u64;
            }
        })),
    );
    let instrumented = sassi.apply(&func, 0);
    println!(
        "instrumentation grew the kernel from {} to {} instructions",
        func.len(),
        instrumented.len()
    );

    // 4. Link, upload data, launch.
    let module = Module::link(&[instrumented]).expect("link");
    let mut rt = Runtime::with_defaults();
    let n = 1000u32;
    let xs: Vec<u32> = (0..n).map(|k| (k as f32).to_bits()).collect();
    let ys: Vec<u32> = (0..n).map(|_| 1.0f32.to_bits()).collect();
    let dx = rt.alloc_u32(&xs);
    let dy = rt.alloc_u32(&ys);
    let res = rt
        .launch(
            &module,
            "saxpy",
            LaunchDims::linear(n.div_ceil(128), 128),
            &[n as u64, 2.0f32.to_bits() as u64, dx.addr, dy.addr],
            &mut sassi,
        )
        .expect("launch");
    assert!(res.is_ok());

    // 5. Results: the kernel's output and the handler's measurements.
    let out = rt.read_u32(dy);
    assert_eq!(f32::from_bits(out[10]), 2.0 * 10.0 + 1.0);
    let (ops, bytes) = *stats.lock();
    println!("kernel cycles: {}", res.stats.cycles);
    println!("thread-level memory ops observed by SASSI: {ops} ({bytes} bytes)");
    assert_eq!(ops, 3 * n as u64, "two loads + one store per thread");
    println!("quickstart OK: y[10] = {}", f32::from_bits(out[10]));
}
