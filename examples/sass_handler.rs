//! Compiled-SASS handler mode: the instrumentation handler itself is
//! written in the kernel DSL, compiled under the paper's 16-register
//! cap (`-maxrregcount=16`), linked into the module by `nvlink`, and
//! called by the injected trampolines as real device code — no native
//! trap involved. Counters live in device global memory and are
//! initialized/collected through CUPTI-style host callbacks (§3.3).
//!
//! ```sh
//! cargo run --release --example sass_handler
//! ```

use sassi::{InfoFlags, Sassi, SiteFilter};
use sassi_isa::GLOBAL_HEAP_BASE;
use sassi_kir::{KFunction, KernelBuilder};
use sassi_rt::{LaunchDims, ModuleBuilder, Runtime};
use sassi_sim::NoHandlers;

/// The device-side handler, Figure 3 in SASS form: reads the
/// `insEncoding` field of `SASSIBeforeParams` through the generic
/// pointer in R4:R5 and bumps device-global counters with atomics.
///
/// The counter array is the first heap allocation, so its address is
/// the "linker-assigned device global" `GLOBAL_HEAP_BASE`.
fn sass_handler() -> KFunction {
    let mut h = KernelBuilder::abi_function("sassi_before_handler");
    let bp = h.abi_param_ptr(0);
    let enc = h.ld_generic_u32(bp, 0x58); // insEncoding
    let counters = h.iconst64(GLOBAL_HEAP_BASE);
    let one = h.iconst(1);
    // counters[0]: memory ops (encoding bit 8).
    let mem_bit = h.and(enc, 1 << 8);
    let is_mem = h.setp_u32_ne(mem_bit, 0u32);
    h.if_(is_mem, |h| {
        h.red_global(sassi_isa::AtomOp::Add, counters, one);
    });
    // counters[1]: numeric ops (bit 15).
    let num_bit = h.and(enc, 1 << 15);
    let is_num = h.setp_u32_ne(num_bit, 0u32);
    h.if_(is_num, |h| {
        let idx = h.iconst(1);
        let addr = h.lea(counters, idx, 2);
        h.red_global(sassi_isa::AtomOp::Add, addr, one);
    });
    // counters[2]: total executed.
    let two = h.iconst(2);
    let addr = h.lea(counters, two, 2);
    h.red_global(sassi_isa::AtomOp::Add, addr, one);
    h.ret();
    h.finish()
}

/// A guard-free kernel so every instruction executes on all lanes:
/// out[i] = i * 7 + 3.
fn app_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("affine");
    let i = b.global_tid_x();
    let out = b.param_ptr(0);
    let three = b.iconst(3);
    let v = b.imad(i, 7u32, three);
    let e = b.lea(out, i, 2);
    b.st_global_u32(e, v);
    b.finish()
}

fn main() {
    // Register the handler BEFORE kernels so its function index is known.
    let mut mb = ModuleBuilder::new();
    let hidx = mb.add_sass_handler(sass_handler());
    mb.add_kernel(app_kernel());

    let mut sassi = Sassi::new();
    sassi.on_before_sass(SiteFilter::ALL, InfoFlags::NONE, hidx);
    let module = mb.build(Some(&sassi)).expect("build");

    let mut rt = Runtime::with_defaults();
    // First allocation = the handler's counter array at GLOBAL_HEAP_BASE.
    let counters = rt.alloc_zeroed_u32(3);
    assert_eq!(counters.addr, GLOBAL_HEAP_BASE);
    let out = rt.alloc_zeroed_u32(64);

    // CUPTI-style bookkeeping: reset counters at launch, print at exit.
    rt.cupti.on_kernel_launch(move |info, dev| {
        for k in 0..3 {
            dev.mem.write_u32(GLOBAL_HEAP_BASE + 4 * k, 0).unwrap();
        }
        eprintln!("[cupti] launch #{}: {}", info.launch_index, info.kernel);
    });

    let res = rt
        .launch(
            &module,
            "affine",
            LaunchDims::linear(2, 32),
            &[out.addr],
            &mut NoHandlers,
        )
        .expect("launch");
    assert!(res.is_ok(), "{:?}", res.outcome);

    let vals = rt.read_u32(out);
    assert_eq!(vals[9], 9 * 7 + 3);
    let c = rt.read_u32(counters);
    println!("device-side counters (collected by the host, CUPTI-style):");
    println!("  memory ops       : {}", c[0]);
    println!("  numeric ops      : {}", c[1]);
    println!("  total executed   : {}", c[2]);
    assert!(c[2] > c[0] && c[2] > c[1]);
    assert_eq!(c[0], 64, "one store per thread");
    println!("sass_handler OK — handler ran as compiled device code");
}
