//! Case Study II driver: memory-divergence analysis of the two miniFE
//! data formats (the paper's Figures 7 and 8 — CSR scatters, ELL
//! coalesces).
//!
//! ```sh
//! cargo run --release --example memory_divergence
//! ```

use sassi_studies::{memdiv, report};
use sassi_workloads::by_name;

fn main() {
    let csr = memdiv::run(by_name("miniFE (CSR)").unwrap().as_ref());
    let ell = memdiv::run(by_name("miniFE (ELL)").unwrap().as_ref());
    println!("{}", report::figure7(&[csr.clone(), ell.clone()]));
    println!("{}", report::figure8(&csr));
    println!("{}", report::figure8(&ell));
    assert!(
        csr.fully_diverged > ell.fully_diverged,
        "CSR must be more address-diverged than ELL"
    );
    println!(
        "fully-diverged fraction: CSR {:.0}% vs ELL {:.0}%",
        100.0 * csr.fully_diverged,
        100.0 * ell.fully_diverged
    );
}
