//! §9.4 extension ("Driving other simulators"): use SASSI to collect a
//! low-level memory trace, then replay it through standalone cache
//! models with different geometries — architecture design-space
//! exploration without rerunning the application.
//!
//! ```sh
//! cargo run --release --example trace_driven_cache
//! ```

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, MemoryDomain, Sassi, SiteFilter};
use sassi_mem::{Cache, CacheConfig};
use sassi_workloads::{by_name, execute};
use std::sync::Arc;

fn main() {
    // 1. Collect the global-memory address trace with SASSI.
    let trace: Arc<Mutex<Vec<(u64, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = trace.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            for lane in site.active_lanes() {
                let bp = site.params(lane);
                if !bp.will_execute(site.trap) {
                    continue;
                }
                let mp = site.memory_params(lane).unwrap();
                if mp.domain(site.trap) == MemoryDomain::Global {
                    t2.lock()
                        .push((mp.address(site.trap), mp.is_store(site.trap)));
                }
            }
        })),
    );

    let w = by_name("spmv (medium)").expect("workload");
    let rep = execute(w.as_ref(), Some(&mut sassi), None);
    assert!(rep.output.is_ok());
    let trace = trace.lock();
    println!(
        "collected {} global accesses from {}",
        trace.len(),
        w.name()
    );

    // 2. Replay the trace through candidate cache designs.
    println!("\n{:<26} {:>10} {:>9}", "geometry", "capacity", "hit rate");
    for (label, cfg) in [
        (
            "16KiB 4-way 32B",
            CacheConfig {
                sets: 128,
                ways: 4,
                line_bytes: 32,
            },
        ),
        (
            "16KiB 4-way 128B",
            CacheConfig {
                sets: 32,
                ways: 4,
                line_bytes: 128,
            },
        ),
        (
            "32KiB 8-way 32B",
            CacheConfig {
                sets: 128,
                ways: 8,
                line_bytes: 32,
            },
        ),
        (
            "64KiB 8-way 32B",
            CacheConfig {
                sets: 256,
                ways: 8,
                line_bytes: 32,
            },
        ),
        (
            "64KiB direct-mapped 32B",
            CacheConfig {
                sets: 2048,
                ways: 1,
                line_bytes: 32,
            },
        ),
    ] {
        let mut cache = Cache::new(cfg);
        for &(addr, write) in trace.iter() {
            cache.access(addr, write);
        }
        println!(
            "{:<26} {:>9}B {:>8.1}%",
            label,
            cfg.capacity(),
            100.0 * cache.stats().hit_rate()
        );
    }
    println!("\n(one trace, many architectures — the §9.4 workflow)");
}
