//! Case Study I driver: per-branch divergence profiling of the Parboil
//! bfs datasets (the paper's Table 1 rows and Figure 5 profiles).
//!
//! ```sh
//! cargo run --release --example branch_divergence
//! ```

use sassi_studies::{branch, report};
use sassi_workloads::by_name;

fn main() {
    let mut rows = Vec::new();
    for name in [
        "bfs (1M)",
        "bfs (NY)",
        "bfs (SF)",
        "bfs (UT)",
        "sgemm (small)",
    ] {
        let w = by_name(name).expect("workload");
        eprintln!("profiling {name}...");
        rows.push(branch::run(w.as_ref()));
    }
    println!("{}", report::table1(&rows));
    for st in rows.iter().take(2) {
        println!("{}", report::figure5(st, 8));
    }
    // The headline contrast: sgemm never diverges, bfs always does.
    let sgemm = rows.last().unwrap();
    assert_eq!(sgemm.row.dynamic_divergent, 0);
    assert!(rows[0].row.dynamic_divergent > 0);
}
