//! Case Study III driver: value profiling (the paper's Table 2 and the
//! §7.2 per-register bit-pattern report).
//!
//! ```sh
//! cargo run --release --example value_profile
//! ```

use parking_lot::Mutex;
use sassi_studies::{report, value};
use sassi_workloads::{by_name, execute};
use std::sync::Arc;

fn main() {
    // Table 2 rows for a few contrasting workloads.
    let mut rows = Vec::new();
    for name in ["b+tree", "sgemm (small)", "backprop", "heartwall"] {
        eprintln!("profiling {name}...");
        rows.push(value::run(by_name(name).unwrap().as_ref()));
    }
    println!("{}", report::table2(&rows));

    // The §7.2 drill-down: per-destination bit patterns (the
    // `R13* <- [000...T]` listing) for the hottest instructions.
    let state = Arc::new(Mutex::new(value::ValueState::default()));
    let mut sassi = value::instrumentor(state.clone());
    let w = by_name("b+tree").unwrap();
    let rep = execute(w.as_ref(), Some(&mut sassi), None);
    assert!(rep.output.is_ok());
    let st = state.lock();
    let mut hot: Vec<_> = st.instrs.iter().collect();
    hot.sort_by_key(|(_, prof)| std::cmp::Reverse(prof.weight));
    println!("hottest register-writing instructions of b+tree:");
    for (addr, prof) in hot.iter().take(6) {
        println!("  pc {addr:#x} (executed {} times)", prof.weight);
        for d in &prof.dsts {
            println!("    {}", value::bit_pattern(d));
        }
    }
}
