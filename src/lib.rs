#![forbid(unsafe_code)]
//! # sassi-repro — umbrella crate
//!
//! Reproduction of *Flexible Software Profiling of GPU Architectures*
//! (Stephenson et al., ISCA 2015) on a from-scratch SIMT substrate.
//! This crate re-exports the workspace members; see the README for the
//! architecture overview and `DESIGN.md` for the system inventory.
//!
//! - [`sassi_isa`] — the SASS-like machine ISA
//! - [`sassi_kir`] — kernel IR, builder DSL, backend compiler
//! - [`sassi_mem`] — coalescer, caches, DRAM
//! - [`sassi_sim`] — the SIMT simulator
//! - [`sassi`] — the instrumentor (the paper's contribution)
//! - [`sassi_rt`] — host runtime + CUPTI-style callbacks
//! - [`sassi_workloads`] — the benchmark suite
//! - [`sassi_studies`] — the four case studies

pub use sassi;
pub use sassi_isa;
pub use sassi_kir;
pub use sassi_mem;
pub use sassi_rt;
pub use sassi_sim;
pub use sassi_studies;
pub use sassi_workloads;
