//! Model-based property tests: the set-associative LRU cache must agree
//! with a straightforward reference implementation on random traces.

use proptest::prelude::*;
use sassi_mem::{Cache, CacheConfig};
use std::collections::VecDeque;

/// Reference: per-set LRU queues of tags.
struct RefCache {
    sets: u64,
    ways: usize,
    line: u64,
    queues: Vec<VecDeque<u64>>, // front = most recent
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            sets: cfg.sets as u64,
            ways: cfg.ways as usize,
            line: cfg.line_bytes as u64,
            queues: (0..cfg.sets).map(|_| VecDeque::new()).collect(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let lineno = addr / self.line;
        let set = (lineno % self.sets) as usize;
        let tag = lineno / self.sets;
        let q = &mut self.queues[set];
        if let Some(pos) = q.iter().position(|&t| t == tag) {
            q.remove(pos);
            q.push_front(tag);
            true
        } else {
            q.push_front(tag);
            if q.len() > self.ways {
                q.pop_back();
            }
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_lru_model(
        addrs in prop::collection::vec(0u64..8192, 1..400),
        sets_pow in 0u32..4,
        ways in 1u32..5,
    ) {
        let cfg = CacheConfig { sets: 1 << sets_pow, ways, line_bytes: 32 };
        let mut dut = Cache::new(cfg);
        let mut model = RefCache::new(cfg);
        for (i, &a) in addrs.iter().enumerate() {
            let hit = dut.access(a, false);
            let want = model.access(a);
            prop_assert_eq!(hit, want, "access {} to {:#x} diverged", i, a);
        }
        // Hit/miss counters are consistent with the outcomes.
        prop_assert_eq!(dut.stats().accesses(), addrs.len() as u64);
    }

    #[test]
    fn probe_never_mutates(
        addrs in prop::collection::vec(0u64..4096, 1..100),
        probe_at in 0u64..4096,
    ) {
        let cfg = CacheConfig { sets: 4, ways: 2, line_bytes: 32 };
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a, false);
        }
        let s0 = c.stats();
        let p1 = c.probe(probe_at);
        let p2 = c.probe(probe_at);
        prop_assert_eq!(p1, p2);
        prop_assert_eq!(c.stats(), s0);
        // A probe hit implies an access hit (and the access keeps it
        // resident).
        if p1 {
            prop_assert!(c.access(probe_at, false));
        }
    }

    #[test]
    fn writebacks_only_from_dirty_lines(
        ops in prop::collection::vec((0u64..2048, any::<bool>()), 1..300),
    ) {
        let cfg = CacheConfig { sets: 2, ways: 2, line_bytes: 32 };
        let mut c = Cache::new(cfg);
        let mut writes = 0u64;
        for &(a, w) in &ops {
            c.access(a, w);
            writes += w as u64;
        }
        prop_assert!(c.stats().writebacks <= writes, "cannot write back more than was written");
    }
}
