//! Set-associative, write-back LRU caches (L1 per SM, shared L2).

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Kepler-flavoured 16 KiB L1: 32 B lines, 4-way, 128 sets.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 32,
        }
    }

    /// Kepler-flavoured 2 MiB L2: 32 B lines, 16-way.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            sets: 4096,
            ways: 16,
            line_bytes: 32,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// A set-associative write-back cache with LRU replacement.
///
/// Purely a tag store: data travels through [`crate::DeviceMemory`];
/// the cache decides hits, misses and writebacks. `sets` and
/// `line_bytes` are powers of two, so set/tag extraction is a
/// precomputed shift/mask rather than division, and an MRU probe
/// answers repeat accesses to the most recently touched line without
/// scanning the set — both bit-identical to the scanning path
/// (same hits, misses, writebacks and LRU ordering).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
    /// `addr >> line_shift` = line key (tag and set packed together).
    line_shift: u32,
    /// `key & set_mask` = set index.
    set_mask: u64,
    /// `key >> set_shift` = tag.
    set_shift: u32,
    /// Line key of the most recent access, or `u64::MAX` when none.
    /// The most recent access always leaves its line resident (a hit
    /// touches it, a miss fills it), so a matching key is a hit in
    /// the line at `mru_slot` with no tag scan.
    mru_key: u64,
    /// Index into `lines` of the most recent access's line.
    mru_slot: u32,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be nonzero");
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.sets * cfg.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (cfg.sets - 1) as u64,
            set_shift: cfg.sets.trailing_zeros(),
            mru_key: u64::MAX,
            mru_slot: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
        self.stats = CacheStats::default();
        self.mru_key = u64::MAX;
        self.mru_slot = 0;
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) & self.set_mask) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) >> self.set_shift
    }

    /// Performs one line access. Returns `true` on hit. On a miss the
    /// line is filled (allocate-on-miss for both reads and writes) and
    /// the victim, if dirty, counts as a writeback.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let key = addr >> self.line_shift;
        // MRU probe: equal keys mean same set and same tag, and the
        // most recent access's line is still resident by construction,
        // so this is a hit with no way scan. The bookkeeping matches
        // the scanning hit path exactly.
        if key == self.mru_key {
            let line = &mut self.lines[self.mru_slot as usize];
            debug_assert!(line.valid && line.tag == key >> self.set_shift);
            line.lru = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return true;
        }
        let set = (key & self.set_mask) as usize;
        let tag = key >> self.set_shift;
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.lines[base..base + self.cfg.ways as usize];

        if let Some(way) = ways.iter().position(|l| l.valid && l.tag == tag) {
            let line = &mut ways[way];
            line.lru = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            self.mru_key = key;
            self.mru_slot = (base + way) as u32;
            return true;
        }

        self.stats.misses += 1;
        // Choose victim: an invalid way, else the least recently used.
        let way = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("ways > 0");
        let victim = &mut ways[way];
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        self.mru_key = key;
        self.mru_slot = (base + way) as u32;
        false
    }

    /// Probes without modifying state. Returns whether `addr` currently
    /// hits.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.cfg.ways as usize;
        self.lines[base..base + self.cfg.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x11f, false), "same 32B line");
        assert!(!c.access(0x120, false), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 128).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh line 0
        c.access(0x100, false); // evicts 0x080 (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn reset_clears() {
        let mut c = tiny();
        c.access(0x40, false);
        c.reset();
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::l1_default().capacity(), 16 * 1024);
    }

    #[test]
    fn mru_repeat_hits_same_as_scan() {
        let mut c = tiny();
        c.access(0x100, false);
        for _ in 0..10 {
            assert!(c.access(0x100, false), "MRU repeat must hit");
        }
        // Write through the MRU probe marks the line dirty, so its
        // later eviction still counts a writeback.
        assert!(c.access(0x110, true), "same line via MRU");
        c.access(0x180, false);
        c.access(0x200, false); // evicts dirty 0x100 (2-way set)
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().hits, 11);
    }

    #[test]
    fn mru_survives_interleaved_sets_but_not_eviction() {
        let mut c = tiny();
        c.access(0x000, false);
        // A different set does not disturb the 0x000 residency, but it
        // steals the MRU slot; the next 0x000 access hits via scan.
        c.access(0x020, false);
        assert!(c.access(0x000, false));
        // Evict 0x000 by filling its set, then re-access: must miss.
        c.access(0x080, false);
        c.access(0x100, false);
        assert!(!c.access(0x000, false));
    }

    /// Differential check of the shift/mask + MRU fast path against a
    /// straightforward division-based LRU model, over a pseudo-random
    /// mix of reads and writes with heavy set conflicts.
    #[test]
    fn access_stream_matches_naive_model() {
        struct Naive {
            sets: u64,
            line: u64,
            ways: usize,
            // per set: (tag, dirty, lru), unordered
            v: Vec<Vec<(u64, bool, u64)>>,
            tick: u64,
            stats: CacheStats,
        }
        impl Naive {
            fn access(&mut self, addr: u64, write: bool) -> bool {
                self.tick += 1;
                let set = ((addr / self.line) % self.sets) as usize;
                let tag = addr / self.line / self.sets;
                if let Some(l) = self.v[set].iter_mut().find(|l| l.0 == tag) {
                    l.1 |= write;
                    l.2 = self.tick;
                    self.stats.hits += 1;
                    return true;
                }
                self.stats.misses += 1;
                if self.v[set].len() == self.ways {
                    let i = (0..self.ways).min_by_key(|&i| self.v[set][i].2).unwrap();
                    if self.v[set][i].1 {
                        self.stats.writebacks += 1;
                    }
                    self.v[set].remove(i);
                }
                self.v[set].push((tag, write, self.tick));
                false
            }
        }
        let cfg = CacheConfig {
            sets: 8,
            ways: 2,
            line_bytes: 32,
        };
        let mut c = Cache::new(cfg);
        let mut n = Naive {
            sets: 8,
            line: 32,
            ways: 2,
            v: vec![Vec::new(); 8],
            tick: 0,
            stats: CacheStats::default(),
        };
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for i in 0..20_000 {
            // xorshift over a small footprint so repeats, conflicts
            // and evictions all occur often.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = (x % 96) * 17; // unaligned, ~51 distinct lines
            let write = x & 4 != 0;
            // Bias in some immediate repeats to exercise the MRU probe.
            let reps = if x & 3 == 0 { 2 } else { 1 };
            for _ in 0..reps {
                assert_eq!(c.access(addr, write), n.access(addr, write), "step {i}");
            }
        }
        assert_eq!(c.stats(), n.stats);
        assert!(n.stats.hits > 0 && n.stats.misses > 0 && n.stats.writebacks > 0);
    }
}
