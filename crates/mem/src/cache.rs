//! Set-associative, write-back LRU caches (L1 per SM, shared L2).

use serde::{Deserialize, Serialize};

/// Geometry of one cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Kepler-flavoured 16 KiB L1: 32 B lines, 4-way, 128 sets.
    pub fn l1_default() -> CacheConfig {
        CacheConfig {
            sets: 128,
            ways: 4,
            line_bytes: 32,
        }
    }

    /// Kepler-flavoured 2 MiB L2: 32 B lines, 16-way.
    pub fn l2_default() -> CacheConfig {
        CacheConfig {
            sets: 4096,
            ways: 16,
            line_bytes: 32,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes as u64
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in [0, 1]; zero when there were no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64, // larger = more recently used
}

/// A set-associative write-back cache with LRU replacement.
///
/// Purely a tag store: data travels through [`crate::DeviceMemory`];
/// the cache decides hits, misses and writebacks.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` is not a power of two, or if
    /// `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be nonzero");
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.sets * cfg.ways) as usize],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.tick = 0;
        self.stats = CacheStats::default();
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes as u64) % self.cfg.sets as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes as u64 / self.cfg.sets as u64
    }

    /// Performs one line access. Returns `true` on hit. On a miss the
    /// line is filled (allocate-on-miss for both reads and writes) and
    /// the victim, if dirty, counts as a writeback.
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.cfg.ways as usize;
        let ways = &mut self.lines[base..base + self.cfg.ways as usize];

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= write;
            self.stats.hits += 1;
            return true;
        }

        self.stats.misses += 1;
        // Choose victim: an invalid way, else the least recently used.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("ways > 0");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.tick,
        };
        false
    }

    /// Probes without modifying state. Returns whether `addr` currently
    /// hits.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let base = set * self.cfg.ways as usize;
        self.lines[base..base + self.cfg.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 32,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x11f, false), "same 32B line");
        assert!(!c.access(0x120, false), "next line misses");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Three lines mapping to the same set (stride = sets*line = 128).
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh line 0
        c.access(0x100, false); // evicts 0x080 (LRU)
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn reset_clears() {
        let mut c = tiny();
        c.access(0x40, false);
        c.reset();
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_math() {
        assert_eq!(CacheConfig::l1_default().capacity(), 16 * 1024);
    }
}
