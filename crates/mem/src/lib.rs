//! # sassi-mem — the simulated GPU memory subsystem
//!
//! Everything below the load/store unit: backing storage for global
//! memory ([`DeviceMemory`]), the per-warp request coalescer ([`coalesce_addresses`])
//! (32-byte lines, matching the granularity the paper's memory-divergence
//! study uses in §6), set-associative L1/L2 [`cache`]s and a bandwidth-
//! limited [`dram`] model, glued together by [`MemoryHierarchy`].
//!
//! The hierarchy answers one question for the SIMT core: *given the set
//! of addresses a warp's active lanes touch, how many transactions are
//! generated and when is the data back?* Those two outputs drive both
//! the performance model (Table 3's kernel slowdowns) and the memory-
//! divergence statistics (Figures 7 and 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod coalesce;
pub mod dram;

mod device;
mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use coalesce::{
    coalesce_addresses, coalesce_batch, CoalesceResult, LineBatch, LINE_BYTES, MAX_WARP_LINES,
};
pub use device::{apply_atom, DeviceMemory, JournalOp, MemError};
pub use dram::{Dram, DramConfig};
pub use hierarchy::{AccessOutcome, HierarchyConfig, HierarchyStats, MemoryHierarchy};
