//! The per-warp memory coalescer.
//!
//! In the SIMT model a warp instruction can issue up to 32 distinct
//! addresses, one per active lane. Accesses falling in the same cache
//! line are combined into a single memory transaction. Structured
//! access patterns touch few unique lines and coalesce well; irregular
//! patterns are *memory address diverged* (paper §6) and fan out into
//! up to 32 transactions that must all complete before the warp may
//! proceed.

/// Cache-line (coalescing) granularity in bytes. The paper's
/// memory-divergence study uses 32-byte lines.
pub const LINE_BYTES: u32 = 32;

/// The result of coalescing one warp memory instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Unique line-aligned addresses, in first-touch order.
    pub lines: Vec<u64>,
    /// Number of active lanes that issued an address.
    pub active: u32,
}

impl CoalesceResult {
    /// Number of unique cache lines touched — the divergence measure of
    /// Figures 7 and 8.
    pub fn unique_lines(&self) -> u32 {
        self.lines.len() as u32
    }

    /// Whether the access is fully coalesced (a single transaction).
    pub fn is_fully_coalesced(&self) -> bool {
        self.lines.len() <= 1
    }

    /// Whether the access is maximally diverged (every active lane on
    /// its own line).
    pub fn is_fully_diverged(&self) -> bool {
        self.active > 1 && self.lines.len() as u32 == self.active
    }
}

/// Coalesces the addresses issued by a warp's active lanes into unique
/// line transactions. Accesses wider than a lane's element never span
/// lines in this model if naturally aligned; spanning accesses count a
/// line per touched line.
pub fn coalesce_addresses(addrs: &[u64], width_bytes: u32) -> CoalesceResult {
    let mut lines: Vec<u64> = Vec::with_capacity(addrs.len());
    for &a in addrs {
        let first = a / LINE_BYTES as u64;
        let last = (a + width_bytes.max(1) as u64 - 1) / LINE_BYTES as u64;
        for line in first..=last {
            let base = line * LINE_BYTES as u64;
            if !lines.contains(&base) {
                lines.push(base);
            }
        }
    }
    CoalesceResult {
        lines,
        active: addrs.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_four_lines() {
        // 32 lanes × 4 bytes, unit stride: 128 bytes = 4 × 32B lines.
        let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + 4 * i as u64).collect();
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 4);
        assert_eq!(r.active, 32);
        assert!(!r.is_fully_diverged());
    }

    #[test]
    fn same_address_is_one_line() {
        let addrs = vec![0x2000u64; 32];
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 1);
        assert!(r.is_fully_coalesced());
    }

    #[test]
    fn strided_by_line_is_fully_diverged() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x4000 + 32 * i as u64).collect();
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 32);
        assert!(r.is_fully_diverged());
    }

    #[test]
    fn line_spanning_access_counts_both_lines() {
        let r = coalesce_addresses(&[30], 4); // bytes 30..34 span lines 0 and 1
        assert_eq!(r.unique_lines(), 2);
    }

    #[test]
    fn empty_warp() {
        let r = coalesce_addresses(&[], 4);
        assert_eq!(r.unique_lines(), 0);
        assert_eq!(r.active, 0);
        assert!(r.is_fully_coalesced());
        assert!(!r.is_fully_diverged());
    }

    #[test]
    fn order_preserved_first_touch() {
        let r = coalesce_addresses(&[0x100, 0x40, 0x100], 4);
        assert_eq!(r.lines, vec![0x100, 0x40]);
    }
}
