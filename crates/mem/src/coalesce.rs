//! The per-warp memory coalescer.
//!
//! In the SIMT model a warp instruction can issue up to 32 distinct
//! addresses, one per active lane. Accesses falling in the same cache
//! line are combined into a single memory transaction. Structured
//! access patterns touch few unique lines and coalesce well; irregular
//! patterns are *memory address diverged* (paper §6) and fan out into
//! up to 32 transactions that must all complete before the warp may
//! proceed.

/// Cache-line (coalescing) granularity in bytes. The paper's
/// memory-divergence study uses 32-byte lines.
pub const LINE_BYTES: u32 = 32;

/// The result of coalescing one warp memory instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoalesceResult {
    /// Unique line-aligned addresses, in first-touch order.
    pub lines: Vec<u64>,
    /// Number of active lanes that issued an address.
    pub active: u32,
}

impl CoalesceResult {
    /// Number of unique cache lines touched — the divergence measure of
    /// Figures 7 and 8.
    pub fn unique_lines(&self) -> u32 {
        self.lines.len() as u32
    }

    /// Whether the access is fully coalesced (a single transaction).
    pub fn is_fully_coalesced(&self) -> bool {
        self.lines.len() <= 1
    }

    /// Whether the access is maximally diverged (every active lane on
    /// its own line).
    pub fn is_fully_diverged(&self) -> bool {
        self.active > 1 && self.lines.len() as u32 == self.active
    }
}

/// Coalesces the addresses issued by a warp's active lanes into unique
/// line transactions. Accesses wider than a lane's element never span
/// lines in this model if naturally aligned; spanning accesses count a
/// line per touched line.
pub fn coalesce_addresses(addrs: &[u64], width_bytes: u32) -> CoalesceResult {
    let mut lines: Vec<u64> = Vec::with_capacity(addrs.len());
    for &a in addrs {
        let first = a / LINE_BYTES as u64;
        let last = (a + width_bytes.max(1) as u64 - 1) / LINE_BYTES as u64;
        for line in first..=last {
            let base = line * LINE_BYTES as u64;
            if !lines.contains(&base) {
                lines.push(base);
            }
        }
    }
    CoalesceResult {
        lines,
        active: addrs.len() as u32,
    }
}

/// Upper bound on unique lines per warp access: 32 lanes, each touching
/// at most two lines (enforced by the `width_bytes <= LINE_BYTES` bound
/// of [`coalesce_batch`]).
pub const MAX_WARP_LINES: usize = 64;

/// Allocation-free batch coalescing result: the unique line bases live
/// in a fixed inline buffer, so the memory hierarchy's hot path never
/// heap-allocates per warp access.
#[derive(Clone, Debug)]
pub struct LineBatch {
    lines: [u64; MAX_WARP_LINES],
    len: u32,
    /// Number of active lanes that issued an address.
    pub active: u32,
}

impl LineBatch {
    /// Unique line-aligned base addresses, in first-touch order.
    #[inline(always)]
    pub fn lines(&self) -> &[u64] {
        &self.lines[..self.len as usize]
    }

    /// Number of unique cache lines touched — the divergence measure of
    /// Figures 7 and 8.
    #[inline(always)]
    pub fn unique_lines(&self) -> u32 {
        self.len
    }
}

/// Batch entry to the coalescer: classifies all lane addresses of one
/// warp access in a single pass over a fixed buffer.
///
/// Behaviourally identical to [`coalesce_addresses`] (same lines, same
/// first-touch order) — that per-lane path is kept as the reference the
/// differential test and benches compare against. Two fast paths make
/// the common cases cheap: line math is shift-based (`LINE_BYTES` is a
/// power of two), and a lane whose line matches the most recently
/// inserted one (unit-stride, broadcast) skips the uniqueness scan.
///
/// # Panics
///
/// Panics if more than 32 addresses are passed or `width_bytes`
/// exceeds [`LINE_BYTES`] (which would overflow the fixed buffer).
pub fn coalesce_batch(addrs: &[u64], width_bytes: u32) -> LineBatch {
    const LINE_SHIFT: u32 = LINE_BYTES.trailing_zeros();
    assert!(addrs.len() <= 32, "a warp has at most 32 lanes");
    assert!(
        width_bytes <= LINE_BYTES,
        "access width exceeds line size: {width_bytes}"
    );
    let mut batch = LineBatch {
        lines: [0; MAX_WARP_LINES],
        len: 0,
        active: addrs.len() as u32,
    };
    let span = width_bytes.max(1) as u64 - 1;
    // One presence bit per line index modulo 64: a clear bit proves
    // the line is new, so diverged warps (whose lines rarely alias
    // modulo 64) skip the dedup scan; a set bit falls back to the
    // exact scan.
    let mut seen: u64 = 0;
    for &a in addrs {
        let first = a >> LINE_SHIFT;
        let last = (a + span) >> LINE_SHIFT;
        for line in first..=last {
            let base = line << LINE_SHIFT;
            let filled = &batch.lines[..batch.len as usize];
            // MRU fast path: structured patterns land on the line that
            // was just inserted.
            if filled.last() == Some(&base) {
                continue;
            }
            let bit = 1u64 << (line & 63);
            if seen & bit != 0 && filled.contains(&base) {
                continue;
            }
            seen |= bit;
            batch.lines[batch.len as usize] = base;
            batch.len += 1;
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_coalesces_to_four_lines() {
        // 32 lanes × 4 bytes, unit stride: 128 bytes = 4 × 32B lines.
        let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + 4 * i as u64).collect();
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 4);
        assert_eq!(r.active, 32);
        assert!(!r.is_fully_diverged());
    }

    #[test]
    fn same_address_is_one_line() {
        let addrs = vec![0x2000u64; 32];
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 1);
        assert!(r.is_fully_coalesced());
    }

    #[test]
    fn strided_by_line_is_fully_diverged() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x4000 + 32 * i as u64).collect();
        let r = coalesce_addresses(&addrs, 4);
        assert_eq!(r.unique_lines(), 32);
        assert!(r.is_fully_diverged());
    }

    #[test]
    fn line_spanning_access_counts_both_lines() {
        let r = coalesce_addresses(&[30], 4); // bytes 30..34 span lines 0 and 1
        assert_eq!(r.unique_lines(), 2);
    }

    #[test]
    fn empty_warp() {
        let r = coalesce_addresses(&[], 4);
        assert_eq!(r.unique_lines(), 0);
        assert_eq!(r.active, 0);
        assert!(r.is_fully_coalesced());
        assert!(!r.is_fully_diverged());
    }

    #[test]
    fn order_preserved_first_touch() {
        let r = coalesce_addresses(&[0x100, 0x40, 0x100], 4);
        assert_eq!(r.lines, vec![0x100, 0x40]);
    }

    /// The batch entry must agree with the per-lane reference path on
    /// lines, order and counts for every access shape the ISA can
    /// produce.
    #[test]
    fn batch_matches_per_lane_reference() {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut cases: Vec<(Vec<u64>, u32)> = vec![
            ((0..32).map(|i| 0x1000 + 4 * i as u64).collect(), 4),
            (vec![0x2000; 32], 4),
            ((0..32).map(|i| 0x4000 + 32 * i as u64).collect(), 4),
            (vec![30], 4),
            (vec![], 4),
            (vec![0x100, 0x40, 0x100], 4),
            ((0..32).map(|i| 0x800 + 8 * i as u64).collect(), 8),
            (vec![31; 7], 2), // spanning, repeated
        ];
        for lanes in [1usize, 2, 13, 32] {
            for width in [1u32, 4, 8, 16, 32] {
                let addrs = (0..lanes)
                    .map(|_| {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        x % 0x1000
                    })
                    .collect();
                cases.push((addrs, width));
            }
        }
        for (addrs, width) in cases {
            let r = coalesce_addresses(&addrs, width);
            let b = coalesce_batch(&addrs, width);
            assert_eq!(b.lines(), r.lines.as_slice(), "addrs={addrs:?} w={width}");
            assert_eq!(b.unique_lines(), r.unique_lines());
            assert_eq!(b.active, r.active);
        }
    }

    #[test]
    #[should_panic(expected = "width")]
    fn batch_rejects_overwide_access() {
        coalesce_batch(&[0], 64);
    }
}
