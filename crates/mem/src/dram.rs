//! A bandwidth- and latency-limited DRAM model.
//!
//! Each transaction pays a fixed access latency and occupies the data
//! bus for `line_bytes / bytes_per_cycle` cycles; transactions queue
//! behind one another when issued faster than the bus drains, which is
//! what makes memory-diverged warps expensive.

use serde::{Deserialize, Serialize};

/// DRAM timing parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Fixed access latency in core cycles.
    pub latency: u64,
    /// Sustained bandwidth in bytes per core cycle.
    pub bytes_per_cycle: u64,
}

impl Default for DramConfig {
    fn default() -> DramConfig {
        // ~Kepler-class ratio: a few hundred cycles latency, enough
        // bandwidth that fully-coalesced streams are not bus-bound.
        DramConfig {
            latency: 220,
            bytes_per_cycle: 16,
        }
    }
}

/// The DRAM channel.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    bus_free_at: u64,
    transactions: u64,
    bytes: u64,
}

impl Dram {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> Dram {
        Dram {
            cfg,
            bus_free_at: 0,
            transactions: 0,
            bytes: 0,
        }
    }

    /// Issues one transaction of `bytes` at time `now`; returns the
    /// cycle at which the data is available.
    pub fn access(&mut self, now: u64, bytes: u64) -> u64 {
        let start = now.max(self.bus_free_at);
        let occupancy = bytes.div_ceil(self.cfg.bytes_per_cycle.max(1));
        self.bus_free_at = start + occupancy;
        self.transactions += 1;
        self.bytes += bytes;
        start + self.cfg.latency + occupancy
    }

    /// Total transactions served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Resets queue state and counters.
    pub fn reset(&mut self) {
        self.bus_free_at = 0;
        self.transactions = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_pays_latency() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 32,
        });
        let done = d.access(10, 32);
        assert_eq!(done, 10 + 100 + 1);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let mut d = Dram::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 8,
        });
        let a = d.access(0, 32); // bus 0..4
        let b = d.access(0, 32); // bus 4..8
        assert_eq!(a, 104);
        assert_eq!(b, 108);
        assert_eq!(d.transactions(), 2);
        assert_eq!(d.bytes(), 64);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut d = Dram::new(DramConfig {
            latency: 10,
            bytes_per_cycle: 32,
        });
        d.access(0, 32);
        let late = d.access(1000, 32);
        assert_eq!(late, 1000 + 10 + 1);
    }
}
