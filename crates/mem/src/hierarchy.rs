//! The assembled memory hierarchy: per-SM L1s over a shared L2 over
//! DRAM, fed by the coalescer.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::coalesce::coalesce_batch;
use crate::dram::{Dram, DramConfig};
use serde::{Deserialize, Serialize};

/// Hierarchy-wide configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Per-SM L1 geometry.
    pub l1: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// Additional latency of an L2 hit.
    pub l2_latency: u64,
    /// Latency of a shared-memory access.
    pub shared_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            dram: DramConfig::default(),
            l1_latency: 28,
            l2_latency: 160,
            shared_latency: 24,
        }
    }
}

/// Aggregate statistics of the hierarchy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Warp-level memory instructions served.
    pub warp_accesses: u64,
    /// Coalesced line transactions generated.
    pub transactions: u64,
    /// Combined L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// DRAM transactions.
    pub dram_transactions: u64,
}

impl HierarchyStats {
    /// Accumulates another hierarchy's counters into this one (used to
    /// merge per-shard hierarchies after a CTA-parallel launch).
    pub fn merge(&mut self, other: &HierarchyStats) {
        self.warp_accesses += other.warp_accesses;
        self.transactions += other.transactions;
        self.l1.hits += other.l1.hits;
        self.l1.misses += other.l1.misses;
        self.l1.writebacks += other.l1.writebacks;
        self.l2.hits += other.l2.hits;
        self.l2.misses += other.l2.misses;
        self.l2.writebacks += other.l2.writebacks;
        self.dram_transactions += other.dram_transactions;
    }
}

/// Result of servicing one warp memory instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which all transactions have completed.
    pub ready_at: u64,
    /// Number of unique line transactions.
    pub transactions: u32,
}

/// The device memory hierarchy (timing side only — data moves through
/// [`crate::DeviceMemory`]).
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1s: Vec<Cache>,
    l2: Cache,
    dram: Dram,
    warp_accesses: u64,
    transactions: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `num_sms` streaming multiprocessors.
    pub fn new(num_sms: usize, cfg: HierarchyConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            cfg,
            l1s: (0..num_sms).map(|_| Cache::new(cfg.l1)).collect(),
            l2: Cache::new(cfg.l2),
            dram: Dram::new(cfg.dram),
            warp_accesses: 0,
            transactions: 0,
        }
    }

    /// Services a warp's global-memory instruction: coalesces the lane
    /// addresses and walks each unique line through L1 → L2 → DRAM.
    ///
    /// `now` is the issue cycle; the warp may resume at
    /// `AccessOutcome::ready_at`.
    pub fn access_global(
        &mut self,
        sm: usize,
        now: u64,
        addrs: &[u64],
        width_bytes: u32,
        write: bool,
    ) -> AccessOutcome {
        self.warp_accesses += 1;
        let co = coalesce_batch(addrs, width_bytes);
        let line = self.cfg.l1.line_bytes as u64;
        let mut ready = now;
        for &line_addr in co.lines() {
            self.transactions += 1;
            let t = if self.l1s[sm].access(line_addr, write) {
                now + self.cfg.l1_latency
            } else if self.l2.access(line_addr, write) {
                now + self.cfg.l1_latency + self.cfg.l2_latency
            } else {
                self.dram
                    .access(now + self.cfg.l1_latency + self.cfg.l2_latency, line)
            };
            ready = ready.max(t);
        }
        AccessOutcome {
            ready_at: ready,
            transactions: co.unique_lines(),
        }
    }

    /// Latency of a shared-memory access (conflict-free model).
    pub fn shared_latency(&self) -> u64 {
        self.cfg.shared_latency
    }

    /// Latency of a local-memory access (backed by L1).
    pub fn local_latency(&self) -> u64 {
        self.cfg.l1_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1.hits += s.hits;
            l1.misses += s.misses;
            l1.writebacks += s.writebacks;
        }
        HierarchyStats {
            warp_accesses: self.warp_accesses,
            transactions: self.transactions,
            l1,
            l2: self.l2.stats(),
            dram_transactions: self.dram.transactions(),
        }
    }

    /// Resets caches, DRAM queue and counters.
    pub fn reset(&mut self) {
        for c in &mut self.l1s {
            c.reset();
        }
        self.l2.reset();
        self.dram.reset();
        self.warp_accesses = 0;
        self.transactions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> MemoryHierarchy {
        MemoryHierarchy::new(2, HierarchyConfig::default())
    }

    #[test]
    fn coalesced_access_is_one_transaction() {
        let mut m = h();
        let addrs = vec![0x1000u64; 32];
        let out = m.access_global(0, 0, &addrs, 4, false);
        assert_eq!(out.transactions, 1);
        assert!(out.ready_at > 0);
    }

    #[test]
    fn diverged_access_is_slower_than_coalesced() {
        let mut m = h();
        let coalesced: Vec<u64> = (0..32).map(|i| 0x1_0000 + 4 * i as u64).collect();
        let diverged: Vec<u64> = (0..32).map(|i| 0x8_0000 + 4096 * i as u64).collect();
        let a = m.access_global(0, 0, &coalesced, 4, false);
        let mut m2 = h();
        let b = m2.access_global(0, 0, &diverged, 4, false);
        assert!(b.ready_at > a.ready_at, "diverged {b:?} vs coalesced {a:?}");
        assert_eq!(b.transactions, 32);
    }

    #[test]
    fn l1_hit_is_fast_on_reuse() {
        let mut m = h();
        let addrs = vec![0x2000u64];
        let first = m.access_global(0, 0, &addrs, 4, false);
        let second = m.access_global(0, first.ready_at, &addrs, 4, false);
        assert_eq!(second.ready_at - first.ready_at, 28);
    }

    #[test]
    fn l1s_are_private_per_sm() {
        let mut m = h();
        let addrs = vec![0x3000u64];
        m.access_global(0, 0, &addrs, 4, false);
        // SM 1 misses its own L1 but hits the shared L2.
        let out = m.access_global(1, 1000, &addrs, 4, false);
        assert_eq!(out.ready_at - 1000, 28 + 160);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut m = h();
        m.access_global(0, 0, &[0x1000, 0x2000], 4, true);
        let s = m.stats();
        assert_eq!(s.warp_accesses, 1);
        assert_eq!(s.transactions, 2);
        m.reset();
        assert_eq!(m.stats(), HierarchyStats::default());
    }
}
