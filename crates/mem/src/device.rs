//! Backing storage for global device memory, with a bump allocator and
//! bounds checking (out-of-bounds accesses become the memory-violation
//! faults the error-injection study observes as crashes).

use sassi_isa::{AtomOp, GLOBAL_HEAP_BASE};
use std::fmt;

/// A memory access error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address outside every live allocation.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
    },
    /// Address not aligned to the access width.
    Misaligned {
        /// The faulting address.
        addr: u64,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The heap is exhausted.
    OutOfMemory,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr } => write!(f, "address {addr:#x} out of bounds"),
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not {align}-byte aligned")
            }
            MemError::OutOfMemory => write!(f, "device heap exhausted"),
        }
    }
}

impl std::error::Error for MemError {}

/// Applies one atomic read-modify-write operation and returns the new
/// value, masked to the access width (`wide` selects 64-bit).
///
/// Shared by the device heap's [`DeviceMemory::atomic`] and the
/// simulator's shared-memory atomics, so both paths agree bit for bit.
pub fn apply_atom(op: AtomOp, old: u64, v: u64, v2: u64, wide: bool) -> u64 {
    let m = if wide { u64::MAX } else { u32::MAX as u64 };
    let r = match op {
        AtomOp::Add => old.wrapping_add(v),
        AtomOp::Min => old.min(v),
        AtomOp::Max => old.max(v),
        AtomOp::And => old & v,
        AtomOp::Or => old | v,
        AtomOp::Xor => old ^ v,
        AtomOp::Exch => v,
        AtomOp::Cas => {
            if old == v {
                v2
            } else {
                old
            }
        }
    };
    r & m
}

/// One global-memory effect recorded by a forked shard view, replayable
/// against the master heap with [`DeviceMemory::commit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JournalOp {
    /// A plain store of up to 16 bytes (wider writes are chunked).
    Store {
        /// Destination generic address.
        addr: u64,
        /// Number of valid bytes in `data`.
        len: u8,
        /// The stored bytes (prefix of length `len`).
        data: [u8; 16],
    },
    /// An atomic read-modify-write, re-applied (not replayed by value)
    /// so commutative cross-shard reductions combine correctly.
    Atom {
        /// The operation.
        op: AtomOp,
        /// Target generic address.
        addr: u64,
        /// First operand.
        v: u64,
        /// Second operand (CAS swap value; 0 otherwise).
        v2: u64,
        /// 64-bit access.
        wide: bool,
    },
}

/// Global device memory: a heap of bytes starting at
/// [`GLOBAL_HEAP_BASE`] in the generic address space.
///
/// A heap can be [`fork`](DeviceMemory::fork)ed into a shard-private
/// view that journals every write; committing the journal back with
/// [`commit`](DeviceMemory::commit) re-applies stores by value and
/// atomics by operation, so independent shards whose only cross-CTA
/// communication is commutative reductions merge deterministically.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    bytes: Vec<u8>,
    next: u64,                    // next free offset
    allocations: Vec<(u64, u64)>, // [start, end) generic addresses
    /// `Some` on forked shard views: every mutation is recorded here.
    journal: Option<Vec<JournalOp>>,
}

impl DeviceMemory {
    /// Creates a heap of `capacity` bytes.
    pub fn new(capacity: usize) -> DeviceMemory {
        DeviceMemory {
            bytes: vec![0; capacity],
            next: 0,
            allocations: Vec::new(),
            journal: None,
        }
    }

    /// Forks a shard-private view of the heap: a copy of the used
    /// prefix (not the full capacity) with journaling enabled. Shards
    /// never allocate, so the shrunken capacity is unobservable.
    pub fn fork(&self) -> DeviceMemory {
        DeviceMemory {
            bytes: self.bytes[..self.next as usize].to_vec(),
            next: self.next,
            allocations: self.allocations.clone(),
            journal: Some(Vec::new()),
        }
    }

    /// Takes the accumulated journal, leaving journaling off. Returns
    /// an empty journal on a non-forked heap.
    pub fn take_journal(&mut self) -> Vec<JournalOp> {
        self.journal.take().unwrap_or_default()
    }

    /// Replays a shard journal against this heap: stores land by value,
    /// atomics re-apply their operation against the current contents.
    ///
    /// # Panics
    ///
    /// Panics if a journal entry faults, which cannot happen when the
    /// journal came from a fork of this heap (same allocation map).
    pub fn commit(&mut self, journal: &[JournalOp]) {
        for op in journal {
            match *op {
                JournalOp::Store { addr, len, data } => self
                    .write_bytes(addr, &data[..len as usize])
                    .expect("journal store within allocations"),
                JournalOp::Atom {
                    op,
                    addr,
                    v,
                    v2,
                    wide,
                } => {
                    self.atomic(op, addr, v, v2, wide)
                        .expect("journal atomic within allocations");
                }
            }
        }
    }

    /// Allocates `size` bytes with `align` alignment; returns the
    /// generic address (the `cudaMalloc` of this machine).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the heap cannot satisfy the
    /// request.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, MemError> {
        let align = align.max(1).next_power_of_two();
        let start = (self.next + align - 1) & !(align - 1);
        let end = start + size;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfMemory);
        }
        self.next = end;
        let addr = GLOBAL_HEAP_BASE + start;
        self.allocations.push((addr, addr + size));
        Ok(addr)
    }

    /// Whether `[addr, addr+len)` lies inside a live allocation.
    pub fn check(&self, addr: u64, len: u32) -> bool {
        let end = addr + len as u64;
        self.allocations.iter().any(|&(s, e)| addr >= s && end <= e)
    }

    fn offset(&self, addr: u64, len: u32) -> Result<usize, MemError> {
        if !self.check(addr, len) {
            return Err(MemError::OutOfBounds { addr });
        }
        Ok((addr - GLOBAL_HEAP_BASE) as usize)
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the range leaves every allocation.
    pub fn read_bytes(&self, addr: u64, len: u32) -> Result<&[u8], MemError> {
        let off = self.offset(addr, len)?;
        Ok(&self.bytes[off..off + len as usize])
    }

    /// Writes bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the range leaves every allocation.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let off = self.offset(addr, data.len() as u32)?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        if let Some(journal) = &mut self.journal {
            for (i, chunk) in data.chunks(16).enumerate() {
                let mut buf = [0u8; 16];
                buf[..chunk.len()].copy_from_slice(chunk);
                journal.push(JournalOp::Store {
                    addr: addr + 16 * i as u64,
                    len: chunk.len() as u8,
                    data: buf,
                });
            }
        }
        Ok(())
    }

    /// Performs an atomic read-modify-write at `addr` and returns the
    /// *old* value. On a forked view the operation (not the resulting
    /// value) is journaled, so commutative reductions from concurrent
    /// shards combine correctly at commit time.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn atomic(
        &mut self,
        op: AtomOp,
        addr: u64,
        v: u64,
        v2: u64,
        wide: bool,
    ) -> Result<u64, MemError> {
        let old = if wide {
            self.read_u64(addr)?
        } else {
            self.read_u32(addr)? as u64
        };
        let new = apply_atom(op, old, v, v2, wide);
        // Suppress the Store journaling of the internal write: the
        // effect is recorded as an `Atom` entry instead.
        let journal = self.journal.take();
        let wrote = if wide {
            self.write_u64(addr, new)
        } else {
            self.write_u32(addr, new as u32)
        };
        self.journal = journal;
        wrote?;
        if let Some(journal) = &mut self.journal {
            journal.push(JournalOp::Atom {
                op,
                addr,
                v,
                v2,
                wide,
            });
        }
        Ok(old)
    }

    /// Reads a `u32` (requires 4-byte alignment).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a `u32` (requires 4-byte alignment).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a `u64` (requires 8-byte alignment for atomics; plain loads
    /// use two `read_u32`s, so this helper requires only 4).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let b = self.read_bytes(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Writes a `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_heap_addresses() {
        let mut m = DeviceMemory::new(1 << 16);
        let a = m.alloc(64, 4).unwrap();
        assert!(a >= GLOBAL_HEAP_BASE);
        let b = m.alloc(64, 256).unwrap();
        assert_eq!((b - GLOBAL_HEAP_BASE) % 256, 0);
        assert!(m.used() >= 128);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(16, 8).unwrap();
        m.write_u32(a, 0xdeadbeef).unwrap();
        m.write_u64(a + 8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u32(a).unwrap(), 0xdeadbeef);
        assert_eq!(m.read_u64(a + 8).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn oob_detected() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(8, 4).unwrap();
        assert!(m.read_u32(a + 8).is_err());
        assert!(m.read_u32(GLOBAL_HEAP_BASE - 4).is_err());
        // Range straddling the end of an allocation is rejected.
        assert!(matches!(
            m.read_bytes(a + 4, 8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn misalignment_detected() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(16, 4).unwrap();
        assert!(matches!(
            m.read_u32(a + 1),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn oom_detected() {
        let mut m = DeviceMemory::new(64);
        assert!(m.alloc(128, 4).is_err());
    }

    #[test]
    fn atomic_returns_old_and_applies() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(16, 8).unwrap();
        m.write_u32(a, 10).unwrap();
        assert_eq!(m.atomic(AtomOp::Add, a, 5, 0, false).unwrap(), 10);
        assert_eq!(m.read_u32(a).unwrap(), 15);
        m.write_u64(a + 8, 7).unwrap();
        assert_eq!(m.atomic(AtomOp::Max, a + 8, 9, 0, true).unwrap(), 7);
        assert_eq!(m.read_u64(a + 8).unwrap(), 9);
        // CAS: succeeds only when old matches the compare value.
        assert_eq!(m.atomic(AtomOp::Cas, a, 15, 99, false).unwrap(), 15);
        assert_eq!(m.read_u32(a).unwrap(), 99);
    }

    #[test]
    fn fork_commit_replays_stores_and_combines_atomics() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(64, 8).unwrap();
        m.write_u32(a, 100).unwrap();

        let mut f1 = m.fork();
        let mut f2 = m.fork();
        // Disjoint stores plus a shared commutative accumulator.
        f1.write_u32(a + 8, 11).unwrap();
        f1.atomic(AtomOp::Add, a, 3, 0, false).unwrap();
        f2.write_u32(a + 12, 22).unwrap();
        f2.atomic(AtomOp::Add, a, 4, 0, false).unwrap();
        // Each fork saw only its own delta on top of the base value.
        assert_eq!(f1.read_u32(a).unwrap(), 103);
        assert_eq!(f2.read_u32(a).unwrap(), 104);

        let j1 = f1.take_journal();
        let j2 = f2.take_journal();
        m.commit(&j1);
        m.commit(&j2);
        assert_eq!(m.read_u32(a).unwrap(), 107); // both deltas land
        assert_eq!(m.read_u32(a + 8).unwrap(), 11);
        assert_eq!(m.read_u32(a + 12).unwrap(), 22);
        // Master is not a journaling view.
        assert!(m.take_journal().is_empty());
    }

    #[test]
    fn wide_stores_are_chunked_in_the_journal() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(64, 8).unwrap();
        let mut f = m.fork();
        let data: Vec<u8> = (0..40u8).collect();
        f.write_bytes(a, &data).unwrap();
        let journal = f.take_journal();
        assert_eq!(journal.len(), 3); // 16 + 16 + 8
        m.commit(&journal);
        assert_eq!(m.read_bytes(a, 40).unwrap(), &data[..]);
    }
}
