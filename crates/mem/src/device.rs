//! Backing storage for global device memory, with a bump allocator and
//! bounds checking (out-of-bounds accesses become the memory-violation
//! faults the error-injection study observes as crashes).

use sassi_isa::GLOBAL_HEAP_BASE;
use std::fmt;

/// A memory access error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemError {
    /// Address outside every live allocation.
    OutOfBounds {
        /// The faulting address.
        addr: u64,
    },
    /// Address not aligned to the access width.
    Misaligned {
        /// The faulting address.
        addr: u64,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The heap is exhausted.
    OutOfMemory,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr } => write!(f, "address {addr:#x} out of bounds"),
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not {align}-byte aligned")
            }
            MemError::OutOfMemory => write!(f, "device heap exhausted"),
        }
    }
}

impl std::error::Error for MemError {}

/// Global device memory: a heap of bytes starting at
/// [`GLOBAL_HEAP_BASE`] in the generic address space.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    bytes: Vec<u8>,
    next: u64,                    // next free offset
    allocations: Vec<(u64, u64)>, // [start, end) generic addresses
}

impl DeviceMemory {
    /// Creates a heap of `capacity` bytes.
    pub fn new(capacity: usize) -> DeviceMemory {
        DeviceMemory {
            bytes: vec![0; capacity],
            next: 0,
            allocations: Vec::new(),
        }
    }

    /// Allocates `size` bytes with `align` alignment; returns the
    /// generic address (the `cudaMalloc` of this machine).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfMemory`] when the heap cannot satisfy the
    /// request.
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, MemError> {
        let align = align.max(1).next_power_of_two();
        let start = (self.next + align - 1) & !(align - 1);
        let end = start + size;
        if end > self.bytes.len() as u64 {
            return Err(MemError::OutOfMemory);
        }
        self.next = end;
        let addr = GLOBAL_HEAP_BASE + start;
        self.allocations.push((addr, addr + size));
        Ok(addr)
    }

    /// Whether `[addr, addr+len)` lies inside a live allocation.
    pub fn check(&self, addr: u64, len: u32) -> bool {
        let end = addr + len as u64;
        self.allocations.iter().any(|&(s, e)| addr >= s && end <= e)
    }

    fn offset(&self, addr: u64, len: u32) -> Result<usize, MemError> {
        if !self.check(addr, len) {
            return Err(MemError::OutOfBounds { addr });
        }
        Ok((addr - GLOBAL_HEAP_BASE) as usize)
    }

    /// Reads `len` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the range leaves every allocation.
    pub fn read_bytes(&self, addr: u64, len: u32) -> Result<&[u8], MemError> {
        let off = self.offset(addr, len)?;
        Ok(&self.bytes[off..off + len as usize])
    }

    /// Writes bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the range leaves every allocation.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let off = self.offset(addr, data.len() as u32)?;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads a `u32` (requires 4-byte alignment).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let b = self.read_bytes(addr, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a `u32` (requires 4-byte alignment).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a `u64` (requires 8-byte alignment for atomics; plain loads
    /// use two `read_u32`s, so this helper requires only 4).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let b = self.read_bytes(addr, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Writes a `u64`.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.next
    }

    /// Heap capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_heap_addresses() {
        let mut m = DeviceMemory::new(1 << 16);
        let a = m.alloc(64, 4).unwrap();
        assert!(a >= GLOBAL_HEAP_BASE);
        let b = m.alloc(64, 256).unwrap();
        assert_eq!((b - GLOBAL_HEAP_BASE) % 256, 0);
        assert!(m.used() >= 128);
    }

    #[test]
    fn rw_roundtrip() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(16, 8).unwrap();
        m.write_u32(a, 0xdeadbeef).unwrap();
        m.write_u64(a + 8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u32(a).unwrap(), 0xdeadbeef);
        assert_eq!(m.read_u64(a + 8).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn oob_detected() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(8, 4).unwrap();
        assert!(m.read_u32(a + 8).is_err());
        assert!(m.read_u32(GLOBAL_HEAP_BASE - 4).is_err());
        // Range straddling the end of an allocation is rejected.
        assert!(matches!(
            m.read_bytes(a + 4, 8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn misalignment_detected() {
        let mut m = DeviceMemory::new(1 << 12);
        let a = m.alloc(16, 4).unwrap();
        assert!(matches!(
            m.read_u32(a + 1),
            Err(MemError::Misaligned { .. })
        ));
    }

    #[test]
    fn oom_detected() {
        let mut m = DeviceMemory::new(64);
        assert!(m.alloc(128, 4).is_err());
    }
}
