//! End-to-end tests of the SASSI instrumentor: trampolines must be
//! transparent (results identical to the uninstrumented kernel), and
//! handlers must observe exactly the architectural facts the paper's
//! parameter objects promise.

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, MemoryDomain, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, LaunchDims, Module};
use std::sync::Arc;

const MAXC: u64 = 50_000_000;

fn run(
    func: sassi_isa::Function,
    sassi: &mut Sassi,
    dims: LaunchDims,
    bufs: &[(u64, Vec<u32>)],
    params: &[u64],
    dev: &mut Device,
) -> sassi_sim::LaunchResult {
    for (addr, data) in bufs {
        for (i, v) in data.iter().enumerate() {
            dev.mem.write_u32(addr + 4 * i as u64, *v).unwrap();
        }
    }
    let name = func.name.clone();
    let module = Module::link(&[func]).unwrap();
    dev.launch(&module, &name, dims, params, sassi, 0, MAXC)
        .unwrap()
}

/// A kernel with arithmetic, control flow and memory in one: for i < n,
/// out[i] = in[i] < 100 ? in[i]*3 : in[i]-100.
fn mixed_kernel() -> sassi_isa::Function {
    let mut b = KernelBuilder::kernel("mixed");
    let i = b.global_tid_x();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let dst = b.param_ptr(2);
    let p = b.setp_u32_lt(i, n);
    b.if_(p, |b| {
        let es = b.lea(src, i, 2);
        let v = b.ld_global_u32(es);
        let small = b.setp_u32_lt(v, 100u32);
        let tripled = b.imul(v, 3u32);
        let shifted = b.isub(v, 100u32);
        let r = b.sel(small, tripled, shifted);
        let ed = b.lea(dst, i, 2);
        b.st_global_u32(ed, r);
    });
    Compiler::new().compile(&b.finish()).unwrap()
}

fn expected_mixed(inp: &[u32]) -> Vec<u32> {
    inp.iter()
        .map(|&v| if v < 100 { v * 3 } else { v - 100 })
        .collect()
}

#[test]
fn instrumentation_is_transparent() {
    // Reference run without instrumentation.
    let n = 70u32;
    let input: Vec<u32> = (0..n).map(|k| k * 7 % 250).collect();

    let run_with = |sassi: &mut Sassi, instrument: bool| -> (Vec<u32>, u64) {
        let mut dev = Device::with_defaults();
        let src = dev.mem.alloc(4 * n as u64, 4).unwrap();
        let dst = dev.mem.alloc(4 * n as u64, 4).unwrap();
        let func = mixed_kernel();
        let func = if instrument {
            sassi.apply(&func, 0)
        } else {
            func
        };
        let res = run(
            func,
            sassi,
            LaunchDims::linear(3, 32),
            &[(src, input.clone())],
            &[n as u64, src, dst],
            &mut dev,
        );
        assert!(res.is_ok(), "outcome: {:?}", res.outcome);
        let out = (0..n)
            .map(|k| dev.mem.read_u32(dst + 4 * k as u64).unwrap())
            .collect();
        (out, res.stats.cycles)
    };

    let (baseline, base_cycles) = run_with(&mut Sassi::new(), false);
    assert_eq!(baseline, expected_mixed(&input));

    // Heavy instrumentation: before every instruction.
    let hits = Arc::new(Mutex::new(0u64));
    let h2 = hits.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *h2.lock() += 1;
        })),
    );
    let (instrumented, instr_cycles) = run_with(&mut sassi, true);
    assert_eq!(
        instrumented,
        expected_mixed(&input),
        "instrumentation altered results"
    );
    assert!(*hits.lock() > 0);
    assert!(
        instr_cycles > 2 * base_cycles,
        "per-instruction instrumentation should slow the kernel substantially \
         ({base_cycles} -> {instr_cycles})"
    );
}

#[test]
fn memory_params_report_addresses_and_widths() {
    let n = 64u32;
    let input: Vec<u32> = (0..n).collect();
    let mut dev = Device::with_defaults();
    let src = dev.mem.alloc(4 * n as u64, 4).unwrap();
    let dst = dev.mem.alloc(4 * n as u64, 4).unwrap();

    let seen = Arc::new(Mutex::new(Vec::<(u64, u32, bool, bool)>::new()));
    let s2 = seen.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            for lane in site.active_lanes() {
                let bp = site.params(lane);
                if !bp.will_execute(site.trap) || !bp.is_mem(site.trap) {
                    continue;
                }
                let mp = site.memory_params(lane).unwrap();
                if mp.domain(site.trap) == MemoryDomain::Global {
                    s2.lock().push((
                        mp.address(site.trap),
                        mp.width(site.trap),
                        mp.is_load(site.trap),
                        mp.is_store(site.trap),
                    ));
                }
            }
        })),
    );

    let func = sassi.apply(&mixed_kernel(), 0);
    let res = run(
        func,
        &mut sassi,
        LaunchDims::linear(2, 32),
        &[(src, input)],
        &[n as u64, src, dst],
        &mut dev,
    );
    assert!(res.is_ok());

    let seen = seen.lock();
    // One global load + one global store per thread.
    let loads: Vec<_> = seen.iter().filter(|e| e.2).collect();
    let stores: Vec<_> = seen.iter().filter(|e| e.3).collect();
    assert_eq!(loads.len(), n as usize);
    assert_eq!(stores.len(), n as usize);
    for k in 0..n as usize {
        assert!(
            loads.iter().any(|e| e.0 == src + 4 * k as u64),
            "missing load addr {k}"
        );
        assert!(
            stores.iter().any(|e| e.0 == dst + 4 * k as u64),
            "missing store addr {k}"
        );
    }
    assert!(seen.iter().all(|e| e.1 == 4), "all accesses are 4 bytes");
}

#[test]
fn branch_params_report_per_lane_direction() {
    // Branch on tid < 16 within each 32-thread warp.
    let mut b = KernelBuilder::kernel("split");
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let p = b.setp_u32_lt(tid, 16u32);
    b.if_else(
        p,
        |b| {
            let one = b.iconst(1);
            let e = b.lea(out, tid, 2);
            b.st_global_u32(e, one);
        },
        |b| {
            let two = b.iconst(2);
            let e = b.lea(out, tid, 2);
            b.st_global_u32(e, two);
        },
    );
    let func = Compiler::new().compile(&b.finish()).unwrap();

    let records = Arc::new(Mutex::new(Vec::<(u32, u32, u32)>::new())); // taken, not-taken, active
    let r2 = records.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::COND_BRANCHES,
        InfoFlags::COND_BRANCH,
        Box::new(FnHandler::free(move |site| {
            let active = site.active_mask();
            let taken = site.ballot(|lane| site.branch_params(lane).unwrap().direction(site.trap));
            r2.lock().push((taken, active & !taken, active));
        })),
    );

    let func = sassi.apply(&func, 0);
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 32, 4).unwrap();
    let res = run(
        func,
        &mut sassi,
        LaunchDims::linear(1, 32),
        &[],
        &[out],
        &mut dev,
    );
    assert!(res.is_ok());

    let recs = records.lock();
    assert_eq!(recs.len(), 1, "one conditional branch executed once");
    let (taken, not_taken, active) = recs[0];
    assert_eq!(active, u32::MAX);
    // The builder emits `@!p BRA else`: lanes with tid >= 16 take it.
    assert_eq!(taken, 0xffff_0000);
    assert_eq!(not_taken, 0x0000_ffff);
    // And the kernel result is still correct.
    for k in 0..32u64 {
        let want = if k < 16 { 1 } else { 2 };
        assert_eq!(dev.mem.read_u32(out + 4 * k).unwrap(), want);
    }
}

#[test]
fn register_params_capture_written_values_after() {
    // Each thread computes v = tid * 5 + 1; capture writes.
    let mut b = KernelBuilder::kernel("vals");
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let five = b.iconst(5);
    let one = b.iconst(1);
    let v = b.imad(tid, sassi_kir::VSrc::from(five), one);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let func = Compiler::new().compile(&b.finish()).unwrap();

    let captured = Arc::new(Mutex::new(Vec::<u32>::new()));
    let c2 = captured.clone();
    let mut sassi = Sassi::new();
    sassi.on_after(
        SiteFilter::REG_WRITES,
        InfoFlags::REGISTERS,
        Box::new(FnHandler::free(move |site| {
            for lane in site.active_lanes() {
                let rp = site.register_params(lane).unwrap();
                for i in 0..rp.num_dsts(site.trap) {
                    c2.lock().push(rp.value(site.trap, i));
                }
            }
        })),
    );

    let func = sassi.apply(&func, 0);
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 32, 4).unwrap();
    let res = run(
        func,
        &mut sassi,
        LaunchDims::linear(1, 32),
        &[],
        &[out],
        &mut dev,
    );
    assert!(res.is_ok());

    let vals = captured.lock();
    // Every thread's IMAD result tid*5+1 must appear among captures.
    for tid in 0..32u32 {
        assert!(
            vals.contains(&(tid * 5 + 1)),
            "missing captured value for tid {tid}"
        );
    }
    // Kernel output still correct.
    for k in 0..32u64 {
        assert_eq!(dev.mem.read_u32(out + 4 * k).unwrap(), k as u32 * 5 + 1);
    }
}

#[test]
fn will_execute_reflects_guards() {
    // Guarded store executes only on even tids; instrument before all
    // memory ops and check instrWillExecute.
    let mut b = KernelBuilder::kernel("guarded");
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let bit = b.and(tid, 1u32);
    let is_even = b.setp_u32_eq(bit, 0u32);
    // Use a structured if: inside, all lanes that reach the store have
    // even tid. To create a *predicated* (guarded) store instead, use
    // the raw guard on a sel-store idiom: simplest path is if_.
    b.if_(is_even, |b| {
        let e = b.lea(out, tid, 2);
        let one = b.iconst(1);
        b.st_global_u32(e, one);
    });
    let func = Compiler::new().compile(&b.finish()).unwrap();

    let execd = Arc::new(Mutex::new((0u32, 0u32))); // (will_execute lanes, total lanes)
    let e2 = execd.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            for lane in site.active_lanes() {
                let bp = site.params(lane);
                let mut g = e2.lock();
                g.1 += 1;
                if bp.will_execute(site.trap) {
                    g.0 += 1;
                }
            }
        })),
    );

    let func = sassi.apply(&func, 0);
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 32, 4).unwrap();
    let res = run(
        func,
        &mut sassi,
        LaunchDims::linear(1, 32),
        &[],
        &[out],
        &mut dev,
    );
    assert!(res.is_ok());

    let (willed, total) = *execd.lock();
    // The store sits inside a divergent region: only even lanes are
    // active there, and the store itself is unguarded — so every
    // *active* lane reports will_execute.
    assert_eq!(willed, total);
    assert_eq!(total, 16, "only the 16 even lanes reach the store");
}

#[test]
fn site_metadata_is_stable_and_unique() {
    let func = mixed_kernel();
    let ids = Arc::new(Mutex::new(Vec::<(u64, u32)>::new()));
    let i2 = ids.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |site| {
            if let Some(lane) = site.leader() {
                let bp = site.params(lane);
                i2.lock().push((bp.ins_addr(site.trap), bp.id(site.trap)));
            }
        })),
    );
    let fn_addr = 7 << 20;
    let instrumented = sassi.apply(&func, fn_addr);
    let sites = sassi.count_sites(&func);
    assert_eq!(sites, func.len(), "ALL instruments every instruction");

    let mut dev = Device::with_defaults();
    let src = dev.mem.alloc(256, 4).unwrap();
    let dst = dev.mem.alloc(256, 4).unwrap();
    let res = run(
        instrumented,
        &mut sassi,
        LaunchDims::linear(1, 32),
        &[(src, (0..32).collect())],
        &[32, src, dst],
        &mut dev,
    );
    assert!(res.is_ok());

    let ids = ids.lock();
    assert!(!ids.is_empty());
    // ins_addr embeds fn_addr and the pre-instrumentation offset.
    for (addr, _) in ids.iter() {
        assert!(*addr >= fn_addr as u64);
        assert!(*addr < fn_addr as u64 + func.len() as u64);
    }
}

#[test]
fn spill_coverage_is_liveness_driven() {
    // planned_spills: sites early in the kernel (few live regs) must
    // save fewer registers than the all-clobberable upper bound.
    let func = mixed_kernel();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let spills = sassi::planned_spills(&func, sassi.specs());
    assert_eq!(spills.len(), func.len());
    let max_possible = 15; // R0, R2..R15
    let total: u32 = spills.iter().map(|(_, s)| s.gpr_count()).sum();
    let upper = (spills.len() as u32) * max_possible;
    assert!(
        total < upper / 2,
        "liveness-driven spilling should save far fewer than save-everything \
         ({total} vs {upper})"
    );
    // The entry site has no live GPRs at all.
    assert_eq!(spills[0].1.gpr_count(), 0);
}

#[test]
fn kernel_entry_and_bb_headers_instrument() {
    let func = mixed_kernel();
    let count = Arc::new(Mutex::new(0u64));
    let c2 = count.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::KERNEL_ENTRY,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *c2.lock() += 1;
        })),
    );
    let instrumented = sassi.apply(&func, 0);
    let mut dev = Device::with_defaults();
    let src = dev.mem.alloc(256, 4).unwrap();
    let dst = dev.mem.alloc(256, 4).unwrap();
    let res = run(
        instrumented,
        &mut sassi,
        LaunchDims::linear(4, 32),
        &[],
        &[16, src, dst],
        &mut dev,
    );
    assert!(res.is_ok());
    // One entry trap per warp (4 blocks × 1 warp).
    assert_eq!(*count.lock(), 4);
}

#[test]
fn divergent_loop_kernel_survives_full_instrumentation() {
    // Data-dependent loop: thread t iterates t times.
    let mut b = KernelBuilder::kernel("triangle");
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let acc = b.var_u32(0u32);
    b.for_range(0u32, tid, 1, |b, j| {
        let nxt = b.iadd(acc, j);
        b.assign(acc, nxt);
        let _ = b.iadd(nxt, 1u32);
    });
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    let func = Compiler::new().compile(&b.finish()).unwrap();

    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let func = sassi.apply(&func, 0);

    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 32, 4).unwrap();
    let res = run(
        func,
        &mut sassi,
        LaunchDims::linear(1, 32),
        &[],
        &[out],
        &mut dev,
    );
    assert!(res.is_ok(), "outcome {:?}", res.outcome);
    for t in 0..32u64 {
        let want: u32 = (0..t as u32).sum();
        assert_eq!(dev.mem.read_u32(out + 4 * t).unwrap(), want, "thread {t}");
    }
}
