//! Instrumentation combinations: multiple specs on one site, before +
//! after together, kernel-exit sites, instrumenting register-capped
//! (spill-heavy) kernels, and sites whose original instruction is
//! predicated off for every lane.

use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, InstPoint, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, LaunchDims, Module};
use std::sync::Arc;

fn run(func: sassi_isa::Function, sassi: &mut Sassi, out_words: u64) -> (Vec<u32>, u64) {
    let name = func.name.clone();
    let module = Module::link(&[func]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(out_words * 4, 8).unwrap();
    let res = dev
        .launch(
            &module,
            &name,
            LaunchDims::linear(1, 32),
            &[out],
            sassi,
            0,
            1 << 30,
        )
        .unwrap();
    assert!(res.is_ok(), "{:?}", res.outcome);
    let vals = (0..out_words)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect();
    (vals, res.stats.handler_calls)
}

fn simple_kernel() -> sassi_isa::Function {
    let mut b = KernelBuilder::kernel("k");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let v = b.imul(tid, 5u32);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    Compiler::new().compile(&b.finish()).unwrap()
}

#[test]
fn before_and_after_on_the_same_instruction() {
    let order = Arc::new(Mutex::new(Vec::<(InstPoint, u64)>::new()));
    let mut sassi = Sassi::new();
    let o1 = order.clone();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |site| {
            if let Some(l) = site.leader() {
                o1.lock()
                    .push((site.point, site.params(l).ins_offset(site.trap) as u64));
            }
        })),
    );
    let o2 = order.clone();
    sassi.on_after(
        SiteFilter::MEMORY,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |site| {
            if let Some(l) = site.leader() {
                o2.lock()
                    .push((site.point, site.params(l).ins_offset(site.trap) as u64));
            }
        })),
    );
    let func = sassi.apply(&simple_kernel(), 0);
    let (vals, calls) = run(func, &mut sassi, 32);
    assert_eq!(vals[9], 45);
    assert_eq!(calls, 2, "one before + one after trap");
    let order = order.lock();
    assert_eq!(order.len(), 2);
    assert_eq!(order[0].0, InstPoint::Before);
    assert_eq!(order[1].0, InstPoint::After);
    assert_eq!(
        order[0].1, order[1].1,
        "both anchored to the same instruction"
    );
}

#[test]
fn multiple_before_specs_stack_in_registration_order() {
    let log = Arc::new(Mutex::new(Vec::<u32>::new()));
    let mut sassi = Sassi::new();
    for tag in [1u32, 2, 3] {
        let l = log.clone();
        sassi.on_before(
            SiteFilter::MEMORY,
            InfoFlags::NONE,
            Box::new(FnHandler::free(move |_| l.lock().push(tag))),
        );
    }
    let func = sassi.apply(&simple_kernel(), 0);
    let (_, calls) = run(func, &mut sassi, 32);
    assert_eq!(calls, 3);
    assert_eq!(*log.lock(), vec![1, 2, 3]);
}

#[test]
fn kernel_exit_fires_once_per_warp() {
    let exits = Arc::new(Mutex::new(0u64));
    let e2 = exits.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::KERNEL_EXIT,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *e2.lock() += 1;
        })),
    );
    let func = sassi.apply(&simple_kernel(), 0);
    let (_, _) = run(func, &mut sassi, 32);
    assert_eq!(*exits.lock(), 1, "single warp, single EXIT");
}

#[test]
fn instrumenting_a_spill_heavy_kernel_is_transparent() {
    // Compile under the 16-register cap so the kernel itself contains
    // LDL/STL spill traffic, then instrument everything on top.
    let mut b = KernelBuilder::kernel("pressure");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let vals: Vec<_> = (0..20).map(|k| b.iadd(tid, k as u32)).collect();
    let mut acc = b.iconst(0);
    for v in &vals {
        let m = b.imul(*v, 3u32);
        acc = b.iadd(acc, m);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    let kf = b.finish();
    let capped = Compiler::new().max_regs(16).compile(&kf).unwrap();
    assert!(capped.instrs.iter().any(|i| i.class().is_spill_or_fill()));

    // Count how many sites SASSI classifies as spill/fill.
    let spill_seen = Arc::new(Mutex::new(0u64));
    let s2 = spill_seen.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            if let Some(l) = site.leader() {
                if site.params(l).is_spill_or_fill(site.trap) {
                    *s2.lock() += 1;
                }
            }
        })),
    );
    let func = sassi.apply(&capped, 0);
    let (vals_out, _) = run(func, &mut sassi, 32);
    for t in 0..32u32 {
        let want: u32 = (0..20).map(|k| (t + k) * 3).sum();
        assert_eq!(vals_out[t as usize], want, "tid {t}");
    }
    assert!(
        *spill_seen.lock() > 0,
        "IsSpillOrFill must fire on compiler spills"
    );
}

#[test]
fn fully_predicated_off_sites_still_trap() {
    // A store guarded by an always-false predicate: the paper's design
    // calls the handler anyway, with instrWillExecute = false.
    use sassi_isa::{Guard, Instr, MemAddr, MemWidth, Op, PredReg};
    let mut func = simple_kernel();
    // Build @!PT ST (never executes) and insert it before EXIT.
    let dead_store = Instr::guarded(
        Guard::not(PredReg::PT),
        Op::St {
            v: sassi_isa::Gpr::new(0),
            width: MemWidth::B32,
            addr: MemAddr::global(sassi_isa::Gpr::new(4), 0),
            spill: false,
        },
    );
    let exit_at = func.instrs.len() - 1;
    func.instrs.insert(exit_at, dead_store);
    // (metadata: no branches target the tail, so indices stay valid)

    let flags = Arc::new(Mutex::new(Vec::<bool>::new()));
    let f2 = flags.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(move |site| {
            if let Some(l) = site.leader() {
                f2.lock().push(site.params(l).will_execute(site.trap));
            }
        })),
    );
    let func = sassi.apply(&func, 0);
    let (_, calls) = run(func, &mut sassi, 32);
    assert_eq!(calls, 2, "real store + dead store both instrumented");
    let flags = flags.lock();
    assert!(flags.contains(&true) && flags.contains(&false));
}

#[test]
fn empty_sassi_apply_is_identity() {
    let sassi = Sassi::new();
    let func = simple_kernel();
    let same = sassi.apply(&func, 0);
    assert_eq!(func, same);
}

#[test]
fn live_mask_reports_compiler_liveness() {
    // At kernel entry nothing is live; at the store, the address pair
    // and value are.
    let masks = Arc::new(Mutex::new(Vec::<(u32, bool)>::new()));
    let m2 = masks.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |site| {
            if let Some(l) = site.leader() {
                let bp = site.params(l);
                m2.lock()
                    .push((bp.live_gpr_mask(site.trap), bp.is_mem(site.trap)));
            }
        })),
    );
    let func = sassi.apply(&simple_kernel(), 0);
    let _ = run(func, &mut sassi, 32);
    let masks = masks.lock();
    assert_eq!(masks[0].0, 0, "nothing live at kernel entry");
    let store_mask = masks.iter().find(|(_, mem)| *mem).unwrap().0;
    assert!(
        store_mask.count_ones() >= 2,
        "value + address live at the store: {store_mask:#x}"
    );
}

#[test]
fn reg_reads_filter_matches_consumers() {
    let sites = Arc::new(Mutex::new(0u64));
    let s2 = sites.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::REG_READS,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *s2.lock() += 1;
        })),
    );
    let func = simple_kernel();
    let expected = func
        .instrs
        .iter()
        .filter(|i| i.defs_uses().uses.gpr_count() > 0)
        .count() as u64;
    let func = sassi.apply(&func, 0);
    let (_, calls) = run(func, &mut sassi, 32);
    assert_eq!(calls, expected);
    assert_eq!(*sites.lock(), expected);
}

#[test]
fn bb_headers_instrument_every_block() {
    // A kernel with an if/else: blocks = entry, then, else, join (and
    // the trailing exit block, depending on layout).
    let mut b = sassi_kir::KernelBuilder::kernel("k");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let p = b.setp_u32_lt(tid, 16u32);
    let r = b.var_u32(0u32);
    b.if_else(p, |b| b.assign_imm(r, 1), |b| b.assign_imm(r, 2));
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, r);
    let func = Compiler::new().compile(&b.finish()).unwrap();
    let n_headers = func.meta.block_headers.len() as u64;
    assert!(n_headers >= 4, "expected several blocks, got {n_headers}");

    let hits = Arc::new(Mutex::new(0u64));
    let h2 = hits.clone();
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::BB_HEADERS,
        InfoFlags::NONE,
        Box::new(FnHandler::free(move |_| {
            *h2.lock() += 1;
        })),
    );
    let func = sassi.apply(&func, 0);
    let (vals, _) = run(func, &mut sassi, 32);
    for (t, &v) in vals.iter().enumerate().take(32) {
        assert_eq!(v, if t < 16 { 1 } else { 2 });
    }
    // Every block header executed at least once (both arms taken).
    assert!(
        *hits.lock() >= n_headers,
        "hits {} < headers {n_headers}",
        hits.lock()
    );
}
