//! Shape test against the paper's Figure 2(a): instrumenting a guarded
//! generic store with Before+MEMORY must inject the same nine-step
//! sequence — stack allocation of 0x80 bytes, spills into the bp
//! object, bp/mp initialization, generic pointers in R4:R5 and R6:R7,
//! the call, restores, deallocation, then the untouched original store.

use sassi::{layout, FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_isa::{
    CBankAddr, Function, FunctionMeta, Gpr, Guard, Instr, MemAddr, MemWidth, Op, PredReg, Src,
};

fn figure2_function() -> Function {
    // A live value in R0 and a live pointer in R10:R11 and a guard in
    // P0, like the paper's example; then `@P0 ST.E [R10], R0`.
    let instrs = vec![
        Instr::new(Op::Mov32I {
            d: Gpr::new(0),
            imm: 42,
        }),
        Instr::new(Op::Mov {
            d: Gpr::new(10),
            a: Src::Const(CBankAddr::new(0, 0x140)),
        }),
        Instr::new(Op::Mov {
            d: Gpr::new(11),
            a: Src::Const(CBankAddr::new(0, 0x144)),
        }),
        Instr::new(Op::ISetP {
            p: PredReg::new(0),
            cmp: sassi_isa::CmpOp::Eq,
            a: Gpr::RZ,
            b: Src::Imm(0),
            signed: false,
            combine: None,
        }),
        Instr::guarded(
            Guard::on(PredReg::new(0)),
            Op::St {
                v: Gpr::new(0),
                width: MemWidth::B32,
                addr: MemAddr::generic(Gpr::new(10), 0),
                spill: false,
            },
        ),
        Instr::new(Op::Exit),
    ];
    Function::new("vadd", instrs, FunctionMeta::default())
}

#[test]
fn trampoline_matches_figure2_shape() {
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(FnHandler::free(|_| {})),
    );
    let func = figure2_function();
    let inst = sassi.apply(&func, 0);

    // Locate the injected region: it ends right before the original
    // guarded store.
    let store_at = inst
        .instrs
        .iter()
        .position(|i| matches!(i.op, Op::St { .. }) && i.is_guarded())
        .expect("original store preserved");
    let region: Vec<String> = inst.instrs[..store_at]
        .iter()
        .map(|i| i.to_string())
        .collect();
    let listing = region.join("\n");

    // ① stack allocation of exactly 0x80 bytes (0x60 bp + 0x20 mp).
    assert_eq!(
        layout::BEFORE_SIZE + layout::MEM_SIZE,
        0x80,
        "object sizes must match the paper"
    );
    assert!(
        listing.contains("IADD R1, R1, 0xffffff80"),
        "stack alloc of -0x80 missing:\n{listing}"
    );
    // ② live registers saved into GPRSpill: R0 at [R1+0x18], the
    // address pair R10:R11 at [R1+0x40]/[R1+0x44] — the exact slots of
    // Figure 2(a).
    assert!(
        listing.contains("STL.SPILL [R1+0x18], R0"),
        "R0 spill:\n{listing}"
    );
    assert!(
        listing.contains("STL.SPILL [R1+0x40], R10"),
        "R10 spill:\n{listing}"
    );
    assert!(
        listing.contains("STL.SPILL [R1+0x44], R11"),
        "R11 spill:\n{listing}"
    );
    // predicate and CC saves at 0x10/0x14.
    assert!(listing.contains("P2R R3"), "P2R missing");
    assert!(listing.contains("STL [R1+0x10], R3"), "PRSpill store");
    assert!(listing.contains("STL [R1+0x14], R3"), "CCSpill store");
    // ③ instrWillExecute from the guard (a SEL on P0) at [R1+0x4].
    assert!(
        listing.contains("SEL R3, R8, 0, P0"),
        "willExecute SEL:\n{listing}"
    );
    assert!(listing.contains("STL [R1+0x4], R3"));
    // ④ insEncoding at [R1+0x58].
    assert!(listing.contains("STL [R1+0x58], R3"));
    // ⑤ mp.address as a 64-bit store at [R1+0x60].
    assert!(
        listing.contains("STL.64 [R1+0x60], R6"),
        "mp.address:\n{listing}"
    );
    // ⑥ generic pointers: LOP.OR R4, R1, c[0x0][0x24] and the mp
    // pointer offset by 0x60 in R6.
    assert!(
        listing.contains("LOP.OR R4, R1, c[0x0][0x24]"),
        "bp pointer:\n{listing}"
    );
    assert!(
        listing.contains("LOP.OR R6, R1, c[0x0][0x24]"),
        "mp pointer:\n{listing}"
    );
    assert!(listing.contains("IADD R6, R6, 0x60"));
    // ⑦ the call.
    assert!(listing.contains("JCAL `handler0"), "JCAL:\n{listing}");
    // ⑧ restores: R2P and the spilled registers reloaded, stack popped.
    assert!(listing.contains("R2P PR, R3"), "R2P restore");
    assert!(listing.contains("LDL.SPILL R0, [R1+0x18]"));
    assert!(listing.contains("LDL.SPILL R10, [R1+0x40]"));
    assert!(
        listing.contains("IADD R1, R1, 0x80"),
        "stack dealloc:\n{listing}"
    );
    // ⑨ the original instruction, bit-identical and still guarded.
    assert_eq!(inst.instrs[store_at], func.instrs[4]);

    // Registers outside the clobberable set are never spilled.
    assert!(
        !listing.contains("STL.SPILL [R1+0x58]"),
        "R16+ must not be saved"
    );
}
