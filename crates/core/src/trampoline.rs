//! ABI-compliant trampoline generation — the code SASSI injects at each
//! instrumentation site (paper Figure 2(a)).
//!
//! For every site the trampoline, in simulated SASS:
//!
//! 1. extends the thread's stack (`IADD R1, R1, -frame`);
//! 2. saves the live caller-saved GPRs (the intersection of the
//!    compiler's liveness with the handler-clobberable set `R0..R15`),
//!    all predicates (`P2R`) and the carry flag into the
//!    `SASSIBeforeParams` spill area — *liveness-driven minimal
//!    spilling*, the advantage of running inside the backend compiler;
//! 3. initializes the parameter object(s): site id, `instrWillExecute`
//!    (the guard evaluated per lane), function address, instruction
//!    offset and static encoding, plus the requested extra object
//!    (memory address / branch direction / destination registers);
//! 4. materializes generic pointers to the stack objects in the ABI
//!    parameter registers R4:R5 and R6:R7
//!    (`LOP.OR R4, R1, c[0x0][0x24]`);
//! 5. calls the handler (`JCAL`);
//! 6. restores CC, predicates and the saved GPRs, and pops the stack.
//!
//! The sequence never alters the original instruction — SASSI leaves
//! the compiled kernel untouched (paper §3.2).

use crate::params::layout;
use crate::spec::{HandlerRef, InfoFlags, SpillPolicy};
use sassi_isa::{
    cbank0, AddrSpace, CBankAddr, Gpr, Instr, Label, LogicOp, MemAddr, MemWidth, Op, RegSet, Src,
};

/// Everything the generator needs to know about one site.
pub(crate) struct Site<'a> {
    /// The original instruction at the site.
    pub ins: &'a Instr,
    /// Its offset within the (pre-instrumentation) function.
    pub pc: u32,
    /// The function's base address (unique per function).
    pub fn_addr: u32,
    /// Site id within the function.
    pub site_id: u32,
    /// Registers live at the instrumentation point.
    pub live: &'a RegSet,
    /// Spill-set selection policy.
    pub policy: SpillPolicy,
    /// Extra parameter object to build.
    pub what: InfoFlags,
    /// The handler to call.
    pub handler: HandlerRef,
}

/// The handler-clobberable GPRs: R0 and R2..R15 (R1 is the stack
/// pointer, preserved by the ABI; handlers are compiled under the
/// 16-register cap so R16+ is never touched).
pub(crate) fn clobberable() -> impl Iterator<Item = u8> {
    (0u8..16).filter(|r| *r != 1)
}

fn frame_bytes(what: InfoFlags) -> i32 {
    let extra = if what.contains(InfoFlags::REGISTERS) {
        layout::REG_SIZE
    } else if what.contains(InfoFlags::MEMORY) {
        layout::MEM_SIZE
    } else if what.contains(InfoFlags::COND_BRANCH) {
        layout::BR_SIZE
    } else {
        0
    };
    layout::BEFORE_SIZE + extra
}

struct Emitter<'a> {
    out: &'a mut Vec<Instr>,
}

impl Emitter<'_> {
    fn push(&mut self, op: Op) {
        self.out.push(Instr::new(op));
    }

    fn mov_imm(&mut self, d: Gpr, v: u32) {
        self.push(Op::Mov32I { d, imm: v });
    }

    fn stl(&mut self, off: i32, v: Gpr) {
        self.push(Op::St {
            v,
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, off),
            spill: false,
        });
    }

    fn stl_spill(&mut self, off: i32, v: Gpr) {
        self.push(Op::St {
            v,
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, off),
            spill: true,
        });
    }

    fn ldl_spill(&mut self, d: Gpr, off: i32) {
        self.push(Op::Ld {
            d,
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, off),
            spill: true,
        });
    }

    /// Stores a computed 32-bit value at a frame offset via a staging
    /// register.
    fn store_imm(&mut self, staging: Gpr, off: i32, v: u32) {
        self.mov_imm(staging, v);
        self.stl(off, staging);
    }
}

/// Emits the trampoline for `site` into `out`. For `Before` sites the
/// caller appends the original instruction afterwards; for `After`
/// sites the caller emits the original instruction first.
pub(crate) fn emit(out: &mut Vec<Instr>, site: &Site<'_>) {
    let frame = frame_bytes(site.what);
    let r3 = Gpr::new(3);
    let r4 = Gpr::new(4);
    let r5 = Gpr::new(5);
    let r6 = Gpr::new(6);
    let r7 = Gpr::new(7);
    let r8 = Gpr::new(8);
    let mut e = Emitter { out };

    // 1. Stack allocation.
    e.push(Op::IAdd {
        d: Gpr::SP,
        a: Gpr::SP,
        b: Src::Imm((-frame) as u32),
        x: false,
        cc: false,
    });

    // 2a. Save GPRs into the spill area: the live ∩ clobberable set
    // under the liveness policy, or everything clobberable under the
    // binary-rewriter baseline.
    let spilled: Vec<u8> = match site.policy {
        SpillPolicy::Liveness => clobberable()
            .filter(|r| site.live.contains_gpr(Gpr::new(*r)))
            .collect(),
        SpillPolicy::SaveEverything => clobberable().collect(),
    };
    for &r in &spilled {
        e.stl_spill(layout::GPR_SPILL + 4 * r as i32, Gpr::new(r));
    }

    // 3a. Extra parameter object (built before anything clobbers
    //     registers or CC: it reads original operand registers).
    match extra_kind(site.what) {
        Extra::Memory => emit_memory_params(&mut e, site, frame, r6, r7, r8),
        Extra::Branch => emit_branch_params(&mut e, site, r6, r8),
        Extra::Registers => emit_register_params(&mut e, site, r6),
        Extra::None => {}
    }

    // 2b. Save predicates and the carry flag.
    e.push(Op::P2R { d: r3 });
    e.stl(layout::PR_SPILL, r3);
    e.push(Op::IAdd {
        d: r3,
        a: Gpr::RZ,
        b: Src::Reg(Gpr::RZ),
        x: true,
        cc: false,
    });
    e.stl(layout::CC_SPILL, r3);

    // 3b. SASSIBeforeParams fields.
    e.store_imm(r3, layout::ID, site.site_id);
    if site.ins.guard.is_always() {
        e.store_imm(r3, layout::WILL_EXECUTE, 1);
    } else {
        e.mov_imm(r8, 1);
        e.push(Op::Sel {
            d: r3,
            a: r8,
            b: Src::Imm(0),
            p: site.ins.guard.pred,
            neg_p: site.ins.guard.neg,
        });
        e.stl(layout::WILL_EXECUTE, r3);
    }
    e.store_imm(r3, layout::FN_ADDR, site.fn_addr);
    e.store_imm(r3, layout::INS_OFFSET, site.pc);
    e.store_imm(r3, layout::INS_ENCODING, site.ins.encode_static());
    let live_mask: u32 = clobberable()
        .filter(|r| site.live.contains_gpr(Gpr::new(*r)))
        .map(|r| 1u32 << r)
        .sum();
    e.store_imm(r3, layout::LIVE_MASK, live_mask);

    // 4. ABI parameter pointers: R4:R5 → bp, R6:R7 → extra object.
    let local_window = Src::Const(CBankAddr::new(0, cbank0::LOCAL_WINDOW));
    e.push(Op::Lop {
        d: r4,
        op: LogicOp::Or,
        a: Gpr::SP,
        b: local_window,
        inv_b: false,
    });
    e.mov_imm(r5, 0);
    if extra_kind(site.what) != Extra::None {
        e.push(Op::Lop {
            d: r6,
            op: LogicOp::Or,
            a: Gpr::SP,
            b: local_window,
            inv_b: false,
        });
        e.push(Op::IAdd {
            d: r6,
            a: r6,
            b: Src::Imm(layout::BEFORE_SIZE as u32),
            x: false,
            cc: false,
        });
        e.mov_imm(r7, 0);
    } else {
        e.push(Op::Mov {
            d: r6,
            a: Src::Reg(Gpr::RZ),
        });
        e.push(Op::Mov {
            d: r7,
            a: Src::Reg(Gpr::RZ),
        });
    }

    // 5. The call.
    let target = match site.handler {
        HandlerRef::Native(id) => Label::Handler(id),
        HandlerRef::Sass(f) => Label::Func(f),
    };
    e.push(Op::Jcal { target });

    // 6. Restores: CC first (needs a scratch), then predicates, then
    //    GPRs (so the scratch's own value is reloaded last).
    e.ldl_spill(r3, layout::CC_SPILL);
    e.push(Op::IAdd {
        d: Gpr::RZ,
        a: r3,
        b: Src::Imm(u32::MAX),
        x: false,
        cc: true,
    });
    e.ldl_spill(r3, layout::PR_SPILL);
    e.push(Op::R2P { a: r3 });
    for &r in &spilled {
        e.ldl_spill(Gpr::new(r), layout::GPR_SPILL + 4 * r as i32);
    }
    e.push(Op::IAdd {
        d: Gpr::SP,
        a: Gpr::SP,
        b: Src::Imm(frame as u32),
        x: false,
        cc: false,
    });
}

#[derive(PartialEq, Eq)]
enum Extra {
    None,
    Memory,
    Branch,
    Registers,
}

fn extra_kind(what: InfoFlags) -> Extra {
    if what.contains(InfoFlags::REGISTERS) {
        Extra::Registers
    } else if what.contains(InfoFlags::MEMORY) {
        Extra::Memory
    } else if what.contains(InfoFlags::COND_BRANCH) {
        Extra::Branch
    } else {
        Extra::None
    }
}

/// Builds `SASSIMemoryParams`: the effective generic address of the
/// access, its properties, width and domain.
///
/// The low-word address add intentionally does not propagate a carry
/// into the high word: it must not disturb CC before CC is saved, and
/// device allocations never straddle a 4 GiB boundary.
fn emit_memory_params(e: &mut Emitter<'_>, site: &Site<'_>, frame: i32, r6: Gpr, r7: Gpr, r8: Gpr) {
    let base = layout::BEFORE_SIZE;
    let (addr, width, texture) = match &site.ins.op {
        Op::Ld { addr, width, .. } | Op::St { addr, width, .. } => (addr, *width, false),
        Op::Tld { addr, width, .. } => (addr, *width, true),
        Op::Atom { addr, wide, .. } | Op::Red { addr, wide, .. } => (
            addr,
            if *wide { MemWidth::B64 } else { MemWidth::B32 },
            false,
        ),
        _ => {
            // Non-memory site instrumented with MEMORY info: store a
            // null record.
            e.store_imm(r6, base + layout::MEM_ADDRESS, 0);
            e.store_imm(r6, base + layout::MEM_ADDRESS + 4, 0);
            e.store_imm(r6, base + layout::MEM_PROPERTIES, 0);
            e.store_imm(r6, base + layout::MEM_WIDTH, 0);
            e.store_imm(r6, base + layout::MEM_DOMAIN, 0);
            return;
        }
    };

    match addr.space {
        AddrSpace::Global | AddrSpace::Generic => {
            e.push(Op::IAdd {
                d: r6,
                a: addr.base,
                b: Src::Imm(addr.offset as u32),
                x: false,
                cc: false,
            });
            e.push(Op::Mov {
                d: r7,
                a: Src::Reg(addr.base.pair_hi()),
            });
        }
        AddrSpace::Local => {
            // Reconstruct the pre-trampoline stack offset: the original
            // base (usually SP) predates our frame push.
            let adj = if addr.base == Gpr::SP { frame } else { 0 };
            e.push(Op::IAdd {
                d: r6,
                a: addr.base,
                b: Src::Imm((addr.offset + adj) as u32),
                x: false,
                cc: false,
            });
            e.push(Op::Lop {
                d: r6,
                op: LogicOp::Or,
                a: r6,
                b: Src::Const(CBankAddr::new(0, cbank0::LOCAL_WINDOW)),
                inv_b: false,
            });
            e.mov_imm(r7, 0);
        }
        AddrSpace::Shared => {
            e.push(Op::IAdd {
                d: r6,
                a: addr.base,
                b: Src::Imm(addr.offset as u32),
                x: false,
                cc: false,
            });
            e.push(Op::Lop {
                d: r6,
                op: LogicOp::Or,
                a: r6,
                b: Src::Const(CBankAddr::new(0, cbank0::SHARED_WINDOW)),
                inv_b: false,
            });
            e.mov_imm(r7, 0);
        }
    }
    // STL.64 [SP + base + MEM_ADDRESS], R6  (R6:R7 pair)
    e.push(Op::St {
        v: r6,
        width: MemWidth::B64,
        addr: MemAddr::local(Gpr::SP, base + layout::MEM_ADDRESS),
        spill: false,
    });

    let c = site.ins.class();
    let mut props = 0u32;
    if c.is_mem_read() {
        props |= layout::mem_props::READ;
    }
    if c.is_mem_write() {
        props |= layout::mem_props::WRITE;
    }
    if c.is_atomic() {
        props |= layout::mem_props::ATOMIC;
    }
    if c.is_spill_or_fill() {
        props |= layout::mem_props::SPILL;
    }
    if texture {
        props |= layout::mem_props::TEXTURE;
    }
    e.store_imm(r8, base + layout::MEM_PROPERTIES, props);
    e.store_imm(r8, base + layout::MEM_WIDTH, width.bytes());
    let domain = crate::params::MemoryDomain::of_space(addr.space, texture) as u32;
    e.store_imm(r8, base + layout::MEM_DOMAIN, domain);
}

/// Builds `SASSICondBranchParams`: per-lane direction and the two
/// successor offsets.
fn emit_branch_params(e: &mut Emitter<'_>, site: &Site<'_>, r6: Gpr, r8: Gpr) {
    let base = layout::BEFORE_SIZE;
    if site.ins.guard.is_always() {
        e.store_imm(r6, base + layout::BR_DIRECTION, 1);
    } else {
        e.mov_imm(r8, 1);
        e.push(Op::Sel {
            d: r6,
            a: r8,
            b: Src::Imm(0),
            p: site.ins.guard.pred,
            neg_p: site.ins.guard.neg,
        });
        e.stl(base + layout::BR_DIRECTION, r6);
    }
    let target = match site.ins.op {
        Op::Bra {
            target: Label::Pc(t),
            ..
        } => t,
        _ => 0,
    };
    e.store_imm(r6, base + layout::BR_TARGET, target);
    e.store_imm(r6, base + layout::BR_FALLTHROUGH, site.pc + 1);
}

/// Builds `SASSIRegisterParams`: the GPR destinations of the original
/// instruction and their current values (meaningful at `After` sites).
fn emit_register_params(e: &mut Emitter<'_>, site: &Site<'_>, r6: Gpr) {
    let base = layout::BEFORE_SIZE;
    let dsts: Vec<Gpr> = site
        .ins
        .defs_uses()
        .defs
        .iter_gprs()
        .take(layout::REG_MAX_DSTS as usize)
        .collect();
    // Values first, read directly from the destination registers before
    // any staging write could clobber one of them.
    for (i, d) in dsts.iter().enumerate() {
        let off = base + layout::REG_ENTRIES + 8 * i as i32;
        e.stl(off + 4, *d);
    }
    e.store_imm(r6, base + layout::REG_NUM_DSTS, dsts.len() as u32);
    for (i, d) in dsts.iter().enumerate() {
        let off = base + layout::REG_ENTRIES + 8 * i as i32;
        e.store_imm(r6, off, d.index() as u32);
    }
    let du = site.ins.defs_uses();
    let pred_mask: u32 = du.defs.iter_preds().map(|p| 1u32 << p.index()).sum();
    e.store_imm(r6, base + layout::REG_PRED_MASK, pred_mask);
    e.store_imm(
        r6,
        base + layout::REG_CC_WRITE,
        du.defs.contains_cc() as u32,
    );
}
