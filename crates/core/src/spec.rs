//! Instrumentation specifications: *where* to instrument and *what*
//! information to collect — the analogue of SASSI's `ptxas` command-line
//! flags (paper §3.1–3.2).

use sassi_isa::Instr;
use serde::{Deserialize, Serialize};

/// Whether instrumentation runs before or after the instruction.
///
/// `After` is unsupported on control transfers, exactly as in the paper
/// ("SASSI also supports inserting instrumentation after all
/// instructions other than branches and jumps").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InstPoint {
    /// Insert the handler call before the instruction.
    Before,
    /// Insert the handler call after the instruction.
    After,
}

/// Selects the instructions (or pseudo-sites) to instrument.
///
/// Combine flags with [`SiteFilter::or`] or `|`-style builders.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct SiteFilter(u32);

impl SiteFilter {
    /// Every instruction.
    pub const ALL: SiteFilter = SiteFilter(1);
    /// Instructions that touch memory.
    pub const MEMORY: SiteFilter = SiteFilter(1 << 1);
    /// Conditional control transfers (guarded branches).
    pub const COND_BRANCHES: SiteFilter = SiteFilter(1 << 2);
    /// All control transfers.
    pub const CONTROL_XFER: SiteFilter = SiteFilter(1 << 3);
    /// Call instructions.
    pub const CALLS: SiteFilter = SiteFilter(1 << 4);
    /// Instructions that write at least one GPR.
    pub const REG_WRITES: SiteFilter = SiteFilter(1 << 5);
    /// Instructions that read at least one GPR.
    pub const REG_READS: SiteFilter = SiteFilter(1 << 6);
    /// Basic-block headers (pseudo-site at each block's first
    /// instruction).
    pub const BB_HEADERS: SiteFilter = SiteFilter(1 << 7);
    /// Kernel entry (pseudo-site before the first instruction).
    pub const KERNEL_ENTRY: SiteFilter = SiteFilter(1 << 8);
    /// Kernel exit (before every `EXIT`).
    pub const KERNEL_EXIT: SiteFilter = SiteFilter(1 << 9);
    /// Instructions that touch memory *or* are texture loads.
    pub const TEXTURE: SiteFilter = SiteFilter(1 << 10);
    /// Instructions that write at least one predicate register.
    pub const PRED_WRITES: SiteFilter = SiteFilter(1 << 11);

    /// The empty filter.
    pub fn none() -> SiteFilter {
        SiteFilter(0)
    }

    /// Union of two filters.
    #[must_use]
    pub fn or(self, other: SiteFilter) -> SiteFilter {
        SiteFilter(self.0 | other.0)
    }

    /// Whether `other`'s bits are all present.
    pub fn contains(self, other: SiteFilter) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether an ordinary instruction site matches this filter.
    pub fn matches(self, ins: &Instr) -> bool {
        if self.contains(SiteFilter::ALL) {
            return true;
        }
        let c = ins.class();
        (self.contains(SiteFilter::MEMORY) && c.is_mem())
            || (self.contains(SiteFilter::COND_BRANCHES) && c.is_cond_control_xfer())
            || (self.contains(SiteFilter::CONTROL_XFER) && c.is_control_xfer())
            || (self.contains(SiteFilter::CALLS) && matches!(ins.op, sassi_isa::Op::Jcal { .. }))
            || (self.contains(SiteFilter::REG_WRITES) && ins.defs_uses().defs.gpr_count() > 0)
            || (self.contains(SiteFilter::REG_READS) && ins.defs_uses().uses.gpr_count() > 0)
            || (self.contains(SiteFilter::TEXTURE) && c.is_texture())
            || (self.contains(SiteFilter::PRED_WRITES) && ins.defs_uses().defs.pred_count() > 0)
    }
}

impl std::ops::BitOr for SiteFilter {
    type Output = SiteFilter;

    fn bitor(self, rhs: SiteFilter) -> SiteFilter {
        self.or(rhs)
    }
}

/// Selects the parameter objects the trampoline constructs and passes
/// to the handler — the "what to collect" axis (§3.2: memory addresses,
/// conditional-branch information, registers read/written with values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub struct InfoFlags(u32);

impl InfoFlags {
    /// No extra object: only `SASSIBeforeParams`/`SASSIAfterParams`.
    pub const NONE: InfoFlags = InfoFlags(0);
    /// Build a `SASSIMemoryParams` (effective address, width,
    /// properties) for memory sites.
    pub const MEMORY: InfoFlags = InfoFlags(1);
    /// Build a `SASSICondBranchParams` (per-lane direction, targets)
    /// for conditional-branch sites.
    pub const COND_BRANCH: InfoFlags = InfoFlags(1 << 1);
    /// Build a `SASSIRegisterParams` (destination registers and their
    /// values) — the basis of value profiling.
    pub const REGISTERS: InfoFlags = InfoFlags(1 << 2);

    /// Union.
    #[must_use]
    pub fn or(self, other: InfoFlags) -> InfoFlags {
        InfoFlags(self.0 | other.0)
    }

    /// Whether `other`'s bits are all present.
    pub fn contains(self, other: InfoFlags) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for InfoFlags {
    type Output = InfoFlags;

    fn bitor(self, rhs: InfoFlags) -> InfoFlags {
        self.or(rhs)
    }
}

/// How the trampoline chooses which registers to save around the
/// handler call.
///
/// `Liveness` is what a compiler-integrated instrumentor can do (the
/// paper's approach, §10.3: "the compiler has the needed information to
/// spill and refill the minimal number of registers"); `SaveEverything`
/// models a binary rewriter without liveness, which must save the whole
/// clobberable set at every site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum SpillPolicy {
    /// Save live ∩ clobberable registers (minimal, compiler-driven).
    #[default]
    Liveness,
    /// Save the entire clobberable set (R0, R2..R15) at every site.
    SaveEverything,
}

/// The handler a trampoline calls.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum HandlerRef {
    /// A native Rust handler registered under this id.
    Native(u32),
    /// A compiled-SASS handler: function index in the link set.
    Sass(u32),
}

/// One complete instrumentation directive.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InstrumentSpec {
    /// Before or after the matched instructions.
    pub point: InstPoint,
    /// Which instructions to instrument.
    pub filter: SiteFilter,
    /// Which parameter objects to build.
    pub what: InfoFlags,
    /// The handler to call.
    pub handler: HandlerRef,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sassi_isa::{Gpr, Guard, Instr, MemAddr, MemWidth, Op, PredReg};

    fn store() -> Instr {
        Instr::new(Op::St {
            v: Gpr::new(0),
            width: MemWidth::B32,
            addr: MemAddr::global(Gpr::new(4), 0),
            spill: false,
        })
    }

    fn cond_branch() -> Instr {
        Instr::guarded(
            Guard::not(PredReg::new(0)),
            Op::Bra {
                target: sassi_isa::Label::Pc(0),
                uniform: false,
            },
        )
    }

    #[test]
    fn all_matches_everything() {
        assert!(SiteFilter::ALL.matches(&store()));
        assert!(SiteFilter::ALL.matches(&Instr::new(Op::Nop)));
    }

    #[test]
    fn memory_filter() {
        assert!(SiteFilter::MEMORY.matches(&store()));
        assert!(!SiteFilter::MEMORY.matches(&Instr::new(Op::Nop)));
    }

    #[test]
    fn branch_filters() {
        assert!(SiteFilter::COND_BRANCHES.matches(&cond_branch()));
        assert!(SiteFilter::CONTROL_XFER.matches(&cond_branch()));
        let uncond = Instr::new(Op::Bra {
            target: sassi_isa::Label::Pc(0),
            uniform: false,
        });
        assert!(!SiteFilter::COND_BRANCHES.matches(&uncond));
        assert!(SiteFilter::CONTROL_XFER.matches(&uncond));
    }

    #[test]
    fn reg_write_filter() {
        let mov = Instr::new(Op::Mov32I {
            d: Gpr::new(0),
            imm: 1,
        });
        assert!(SiteFilter::REG_WRITES.matches(&mov));
        assert!(!SiteFilter::REG_WRITES.matches(&store()));
        assert!(SiteFilter::REG_READS.matches(&store()));
    }

    #[test]
    fn filters_combine() {
        let f = SiteFilter::MEMORY | SiteFilter::COND_BRANCHES;
        assert!(f.matches(&store()));
        assert!(f.matches(&cond_branch()));
        assert!(!f.matches(&Instr::new(Op::Nop)));
        assert!(f.contains(SiteFilter::MEMORY));
        assert!(!f.contains(SiteFilter::ALL));
    }

    #[test]
    fn info_flags_combine() {
        let w = InfoFlags::MEMORY | InfoFlags::REGISTERS;
        assert!(w.contains(InfoFlags::MEMORY));
        assert!(!w.contains(InfoFlags::COND_BRANCH));
        assert!(InfoFlags::NONE.contains(InfoFlags::NONE));
    }
}
