//! Parameter objects passed to instrumentation handlers.
//!
//! The trampoline stack-allocates these objects in the thread's local
//! memory and passes generic pointers to them in the ABI parameter
//! registers, byte-for-byte in the layout of the paper's Figure 2:
//!
//! ```text
//! SASSIBeforeParams / SASSIAfterParams   (at bp = SP | local-window)
//!   +0x00  id                 +0x10  PRSpill
//!   +0x04  instrWillExecute   +0x14  CCSpill
//!   +0x08  fnAddr             +0x18  GPRSpill[16]
//!   +0x0c  insOffset          +0x58  insEncoding
//!                              +0x5c  liveMask           (size 0x60)
//!
//! SASSIMemoryParams           (at bp + 0x60)
//!   +0x00  address (64-bit)   +0x0c  width
//!   +0x08  properties         +0x10  domain             (size 0x20)
//!
//! SASSICondBranchParams       (at bp + 0x60)
//!   +0x00  direction          +0x08  fallthroughOffset
//!   +0x04  targetOffset                                  (size 0x20)
//!
//! SASSIRegisterParams         (at bp + 0x60)
//!   +0x00  numGPRDsts
//!   +0x04  4 × { regNum, value }                         (size 0x30)
//! ```
//!
//! Handlers read them through the typed views below, which mirror the
//! C++ accessor methods of the paper's Figure 2(b)/(c).

use sassi_isa::{AddrSpace, OpcodeKind};
use sassi_sim::TrapCtx;

/// Byte offsets and sizes of the stack-allocated parameter objects.
pub mod layout {
    /// `id` field offset within before/after params.
    pub const ID: i32 = 0x00;
    /// `instrWillExecute` offset.
    pub const WILL_EXECUTE: i32 = 0x04;
    /// `fnAddr` offset.
    pub const FN_ADDR: i32 = 0x08;
    /// `insOffset` offset.
    pub const INS_OFFSET: i32 = 0x0c;
    /// Predicate-spill word offset.
    pub const PR_SPILL: i32 = 0x10;
    /// Condition-code spill offset.
    pub const CC_SPILL: i32 = 0x14;
    /// First GPR spill slot; slot *r* is at `GPR_SPILL + 4*r`.
    pub const GPR_SPILL: i32 = 0x18;
    /// `insEncoding` offset.
    pub const INS_ENCODING: i32 = 0x58;
    /// Liveness word: bit *r* set iff `Rr` (r < 16) was live at the
    /// site — the "register liveness information" §3.2 says SASSI can
    /// hand to handlers.
    pub const LIVE_MASK: i32 = 0x5c;
    /// Size of the before/after params object.
    pub const BEFORE_SIZE: i32 = 0x60;

    /// Memory params: 64-bit effective address.
    pub const MEM_ADDRESS: i32 = 0x00;
    /// Memory params: property bits.
    pub const MEM_PROPERTIES: i32 = 0x08;
    /// Memory params: access width in bytes.
    pub const MEM_WIDTH: i32 = 0x0c;
    /// Memory params: address-space domain.
    pub const MEM_DOMAIN: i32 = 0x10;
    /// Size of the memory params object.
    pub const MEM_SIZE: i32 = 0x20;

    /// Branch params: per-lane direction (1 = taken).
    pub const BR_DIRECTION: i32 = 0x00;
    /// Branch params: branch target (function-relative pc).
    pub const BR_TARGET: i32 = 0x04;
    /// Branch params: fall-through pc.
    pub const BR_FALLTHROUGH: i32 = 0x08;
    /// Size of the branch params object.
    pub const BR_SIZE: i32 = 0x20;

    /// Register params: number of GPR destinations.
    pub const REG_NUM_DSTS: i32 = 0x00;
    /// Register params: first destination entry `{regNum, value}`.
    pub const REG_ENTRIES: i32 = 0x04;
    /// Maximum destination entries recorded.
    pub const REG_MAX_DSTS: u32 = 4;
    /// Bit mask of predicate registers the instruction writes (bit i =
    /// Pi) — the extension SASSIFI uses to inject into predicates.
    pub const REG_PRED_MASK: i32 = 0x24;
    /// 1 when the instruction writes the condition code.
    pub const REG_CC_WRITE: i32 = 0x28;
    /// Size of the register params object.
    pub const REG_SIZE: i32 = 0x30;

    /// Memory property bits (`MEM_PROPERTIES`).
    pub mod mem_props {
        /// The operation reads memory.
        pub const READ: u32 = 1 << 0;
        /// The operation writes memory.
        pub const WRITE: u32 = 1 << 1;
        /// The operation is atomic.
        pub const ATOMIC: u32 = 1 << 2;
        /// The operation is a compiler spill or fill.
        pub const SPILL: u32 = 1 << 3;
        /// The operation uses the texture path.
        pub const TEXTURE: u32 = 1 << 4;
    }
}

/// Address-space domains reported in `SASSIMemoryParams::domain`,
/// mirroring the paper's `SASSIMemoryDomain`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u32)]
pub enum MemoryDomain {
    /// Statically unknown (resolved generically).
    Generic = 2,
    /// Per-thread local memory.
    Local = 1,
    /// Global memory.
    Global = 3,
    /// Shared memory.
    Shared = 4,
    /// Texture path.
    Texture = 5,
}

impl MemoryDomain {
    /// The domain of a static address space.
    pub fn of_space(space: AddrSpace, texture: bool) -> MemoryDomain {
        if texture {
            return MemoryDomain::Texture;
        }
        match space {
            AddrSpace::Global => MemoryDomain::Global,
            AddrSpace::Local => MemoryDomain::Local,
            AddrSpace::Shared => MemoryDomain::Shared,
            AddrSpace::Generic => MemoryDomain::Generic,
        }
    }

    /// Decodes the on-stack encoding.
    pub fn from_code(v: u32) -> MemoryDomain {
        match v {
            1 => MemoryDomain::Local,
            3 => MemoryDomain::Global,
            4 => MemoryDomain::Shared,
            5 => MemoryDomain::Texture,
            _ => MemoryDomain::Generic,
        }
    }
}

fn read32(ctx: &TrapCtx<'_>, lane: usize, ptr: u64, off: i32) -> u32 {
    ctx.read_generic_u32(lane, ptr.wrapping_add(off as u64))
        .expect("instrumentation parameter object unreadable")
}

/// View of a lane's `SASSIBeforeParams` / `SASSIAfterParams`.
///
/// Constructed from the generic pointer the trampoline left in the
/// first ABI parameter pair (R4:R5).
#[derive(Clone, Copy, Debug)]
pub struct BeforeParamsView {
    ptr: u64,
    lane: usize,
}

impl BeforeParamsView {
    /// Binds the view to lane `lane`'s pointer (from R4:R5).
    pub fn new(ctx: &TrapCtx<'_>, lane: usize) -> BeforeParamsView {
        BeforeParamsView {
            ptr: ctx.abi_param(lane, 0),
            lane,
        }
    }

    /// The site id (`GetID`).
    pub fn id(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::ID)
    }

    /// Whether the original instruction's guard passes for this lane
    /// (`instrWillExecute`).
    pub fn will_execute(&self, ctx: &TrapCtx<'_>) -> bool {
        read32(ctx, self.lane, self.ptr, layout::WILL_EXECUTE) != 0
    }

    /// The function's base address (`GetFnAddr`).
    pub fn fn_addr(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::FN_ADDR)
    }

    /// The instruction's offset within its function (`GetInsOffset`).
    pub fn ins_offset(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::INS_OFFSET)
    }

    /// A stable unique instruction address (`GetInsAddr`), suitable as a
    /// hash-table key for per-instruction counters.
    pub fn ins_addr(&self, ctx: &TrapCtx<'_>) -> u64 {
        self.fn_addr(ctx) as u64 + self.ins_offset(ctx) as u64
    }

    /// The raw static encoding word.
    pub fn ins_encoding(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::INS_ENCODING)
    }

    /// The opcode family (`GetOpcode`).
    pub fn opcode(&self, ctx: &TrapCtx<'_>) -> OpcodeKind {
        let code = (self.ins_encoding(ctx) & 0xff) as usize;
        OpcodeKind::all()
            .get(code)
            .copied()
            .unwrap_or(OpcodeKind::Nop)
    }

    fn flag(&self, ctx: &TrapCtx<'_>, bit: u32) -> bool {
        self.ins_encoding(ctx) & (1 << bit) != 0
    }

    /// `IsMem`.
    pub fn is_mem(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 8)
    }

    /// `IsMemRead`.
    pub fn is_mem_read(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 9)
    }

    /// `IsMemWrite`.
    pub fn is_mem_write(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 10)
    }

    /// `IsSpillOrFill`.
    pub fn is_spill_or_fill(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 11)
    }

    /// `IsControlXfer`.
    pub fn is_control_xfer(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 12)
    }

    /// `IsCondControlXfer`.
    pub fn is_cond_control_xfer(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 13)
    }

    /// `IsSync`.
    pub fn is_sync(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 14)
    }

    /// `IsNumeric`.
    pub fn is_numeric(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 15)
    }

    /// `IsTexture`.
    pub fn is_texture(&self, ctx: &TrapCtx<'_>) -> bool {
        self.flag(ctx, 16)
    }

    /// `IsSurfaceMemory` — always false on this machine (kept for
    /// interface parity).
    pub fn is_surface_memory(&self, _ctx: &TrapCtx<'_>) -> bool {
        false
    }

    /// The saved value of GPR `r` at the site (from the spill area) —
    /// only meaningful for registers the trampoline saved.
    pub fn spilled_gpr(&self, ctx: &TrapCtx<'_>, r: u8) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::GPR_SPILL + 4 * r as i32)
    }

    /// Bit mask of the caller-saved registers (`R0..R15`) live at the
    /// site, from the compiler's liveness analysis (§3.2). These are
    /// exactly the registers the trampoline saved into the spill area.
    pub fn live_gpr_mask(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::LIVE_MASK)
    }

    /// The raw object pointer (generic address).
    pub fn raw_ptr(&self) -> u64 {
        self.ptr
    }
}

/// View of a lane's `SASSIMemoryParams`.
#[derive(Clone, Copy, Debug)]
pub struct MemoryParamsView {
    ptr: u64,
    lane: usize,
}

impl MemoryParamsView {
    /// Binds the view to lane `lane`'s pointer (from R6:R7).
    pub fn new(ctx: &TrapCtx<'_>, lane: usize) -> MemoryParamsView {
        MemoryParamsView {
            ptr: ctx.abi_param(lane, 1),
            lane,
        }
    }

    /// The effective (generic) address of the access (`GetAddress`).
    pub fn address(&self, ctx: &TrapCtx<'_>) -> u64 {
        let lo = read32(ctx, self.lane, self.ptr, layout::MEM_ADDRESS) as u64;
        let hi = read32(ctx, self.lane, self.ptr, layout::MEM_ADDRESS + 4) as u64;
        lo | (hi << 32)
    }

    fn props(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::MEM_PROPERTIES)
    }

    /// `IsLoad`.
    pub fn is_load(&self, ctx: &TrapCtx<'_>) -> bool {
        self.props(ctx) & layout::mem_props::READ != 0
    }

    /// `IsStore`.
    pub fn is_store(&self, ctx: &TrapCtx<'_>) -> bool {
        self.props(ctx) & layout::mem_props::WRITE != 0
    }

    /// `IsAtomic`.
    pub fn is_atomic(&self, ctx: &TrapCtx<'_>) -> bool {
        self.props(ctx) & layout::mem_props::ATOMIC != 0
    }

    /// Access width in bytes (`GetWidth`).
    pub fn width(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::MEM_WIDTH)
    }

    /// Address-space domain (`GetDomain`).
    pub fn domain(&self, ctx: &TrapCtx<'_>) -> MemoryDomain {
        MemoryDomain::from_code(read32(ctx, self.lane, self.ptr, layout::MEM_DOMAIN))
    }
}

/// View of a lane's `SASSICondBranchParams`.
#[derive(Clone, Copy, Debug)]
pub struct CondBranchParamsView {
    ptr: u64,
    lane: usize,
}

impl CondBranchParamsView {
    /// Binds the view to lane `lane`'s pointer (from R6:R7).
    pub fn new(ctx: &TrapCtx<'_>, lane: usize) -> CondBranchParamsView {
        CondBranchParamsView {
            ptr: ctx.abi_param(lane, 1),
            lane,
        }
    }

    /// Which way this lane will branch (`GetDirection`).
    pub fn direction(&self, ctx: &TrapCtx<'_>) -> bool {
        read32(ctx, self.lane, self.ptr, layout::BR_DIRECTION) != 0
    }

    /// The branch target (function-relative pc).
    pub fn target_offset(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::BR_TARGET)
    }

    /// The fall-through pc.
    pub fn fallthrough_offset(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::BR_FALLTHROUGH)
    }
}

/// View of a lane's `SASSIRegisterParams`.
#[derive(Clone, Copy, Debug)]
pub struct RegisterParamsView {
    ptr: u64,
    lane: usize,
}

impl RegisterParamsView {
    /// Binds the view to lane `lane`'s pointer (from R6:R7).
    pub fn new(ctx: &TrapCtx<'_>, lane: usize) -> RegisterParamsView {
        RegisterParamsView {
            ptr: ctx.abi_param(lane, 1),
            lane,
        }
    }

    /// Number of GPR destinations (`GetNumGPRDsts`).
    pub fn num_dsts(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::REG_NUM_DSTS).min(layout::REG_MAX_DSTS)
    }

    /// Destination `i`'s register number (`GetRegNum`).
    pub fn reg_num(&self, ctx: &TrapCtx<'_>, i: u32) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::REG_ENTRIES + 8 * i as i32)
    }

    /// Destination `i`'s value (`GetRegValue`).
    pub fn value(&self, ctx: &TrapCtx<'_>, i: u32) -> u32 {
        read32(
            ctx,
            self.lane,
            self.ptr,
            layout::REG_ENTRIES + 8 * i as i32 + 4,
        )
    }

    /// Mask of predicate registers written (bit i = Pi).
    pub fn pred_dst_mask(&self, ctx: &TrapCtx<'_>) -> u32 {
        read32(ctx, self.lane, self.ptr, layout::REG_PRED_MASK)
    }

    /// Whether the instruction writes the condition code.
    pub fn writes_cc(&self, ctx: &TrapCtx<'_>) -> bool {
        read32(ctx, self.lane, self.ptr, layout::REG_CC_WRITE) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_paper_figure2() {
        // The Figure 2(a) trampoline stores id at [R1], willExecute at
        // [R1+0x4], PRSpill at [R1+0x10], R0's slot at [R1+0x18],
        // insEncoding at [R1+0x58], and the memory object at [R1+0x60]
        // with the 64-bit address first.
        assert_eq!(layout::ID, 0x0);
        assert_eq!(layout::WILL_EXECUTE, 0x4);
        assert_eq!(layout::PR_SPILL, 0x10);
        assert_eq!(layout::GPR_SPILL, 0x18);
        assert_eq!(layout::GPR_SPILL + 4 * 15, 0x54);
        assert_eq!(layout::INS_ENCODING, 0x58);
        assert_eq!(layout::BEFORE_SIZE, 0x60);
        assert_eq!(layout::BEFORE_SIZE + layout::MEM_SIZE, 0x80);
    }

    #[test]
    fn domain_codes_roundtrip() {
        for d in [
            MemoryDomain::Generic,
            MemoryDomain::Local,
            MemoryDomain::Global,
            MemoryDomain::Shared,
            MemoryDomain::Texture,
        ] {
            assert_eq!(MemoryDomain::from_code(d as u32), d);
        }
        assert_eq!(
            MemoryDomain::of_space(AddrSpace::Global, false),
            MemoryDomain::Global
        );
        assert_eq!(
            MemoryDomain::of_space(AddrSpace::Global, true),
            MemoryDomain::Texture
        );
    }
}
