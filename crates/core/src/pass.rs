//! The instrumentation pass: rewrites a compiled function, injecting a
//! trampoline at every site matched by the active specifications.
//!
//! Runs as the backend compiler's *final pass* (paper Figure 1): code
//! generation, scheduling and register allocation of the original
//! kernel are already done and are not perturbed — the pass only
//! interleaves trampolines and relocates branch targets and metadata.

use crate::spec::{InstPoint, InstrumentSpec, SiteFilter, SpillPolicy};
use crate::trampoline::{emit, Site};
use sassi_isa::{Function, FunctionMeta, Instr, Label, Op, RegSet};
use sassi_kir::sasslive;
use std::collections::BTreeMap;

fn is_exit(ins: &Instr) -> bool {
    matches!(ins.op, Op::Exit)
}

fn matches_before(spec: &InstrumentSpec, ins: &Instr, pc: u32, f: &Function) -> bool {
    if spec.point != InstPoint::Before {
        return false;
    }
    if spec.filter.matches(ins) {
        return true;
    }
    (spec.filter.contains(SiteFilter::KERNEL_ENTRY) && pc == 0)
        || (spec.filter.contains(SiteFilter::BB_HEADERS)
            && f.meta.block_headers.binary_search(&pc).is_ok())
        || (spec.filter.contains(SiteFilter::KERNEL_EXIT) && is_exit(ins))
}

fn matches_after(spec: &InstrumentSpec, ins: &Instr) -> bool {
    spec.point == InstPoint::After
        && spec.filter.matches(ins)
        // "after all instructions other than branches and jumps": no
        // after-instrumentation on control transfers.
        && !ins.class().is_control_xfer()
}

/// Instruments `func` according to `specs`. `fn_addr` is a unique base
/// address assigned to the function (used by handlers to form global
/// instruction addresses).
///
/// The returned function contains the original instructions, unchanged
/// and in their original order, with ABI trampolines interleaved;
/// branch targets, reconvergence metadata and block headers are
/// relocated accordingly.
pub fn instrument(func: &Function, specs: &[InstrumentSpec], fn_addr: u32) -> Function {
    instrument_with_policy(func, specs, fn_addr, SpillPolicy::Liveness)
}

/// [`instrument`] with an explicit [`SpillPolicy`] — the ablation knob
/// comparing compiler-driven minimal spilling against the
/// save-everything baseline of a liveness-blind binary rewriter.
pub fn instrument_with_policy(
    func: &Function,
    specs: &[InstrumentSpec],
    fn_addr: u32,
    policy: SpillPolicy,
) -> Function {
    if specs.is_empty() {
        return func.clone();
    }
    let lv = sasslive::function_liveness(func);
    let n = func.instrs.len();

    let mut out: Vec<Instr> = Vec::with_capacity(n * 4);
    let mut new_start = vec![0u32; n + 1];
    let mut instr_pos = vec![0u32; n];
    let mut site_id = 0u32;

    for (pc, ins) in func.instrs.iter().enumerate() {
        new_start[pc] = out.len() as u32;
        for spec in specs
            .iter()
            .filter(|s| matches_before(s, ins, pc as u32, func))
        {
            let site = Site {
                ins,
                pc: pc as u32,
                fn_addr,
                site_id,
                live: &lv.live_in[pc],
                policy,
                what: spec.what,
                handler: spec.handler,
            };
            site_id += 1;
            emit(&mut out, &site);
        }
        instr_pos[pc] = out.len() as u32;
        out.push(ins.clone());
        for spec in specs.iter().filter(|s| matches_after(s, ins)) {
            let site = Site {
                ins,
                pc: pc as u32,
                fn_addr,
                site_id,
                live: &lv.live_out[pc],
                policy,
                what: spec.what,
                handler: spec.handler,
            };
            site_id += 1;
            emit(&mut out, &site);
        }
    }
    new_start[n] = out.len() as u32;

    // Relocate in-function branch/SSY targets (original instructions
    // only — trampolines contain no Pc labels).
    for ins in &mut out {
        match &mut ins.op {
            Op::Bra {
                target: Label::Pc(t),
                ..
            }
            | Op::Ssy {
                target: Label::Pc(t),
            } => {
                *t = new_start[*t as usize];
            }
            _ => {}
        }
    }

    let mut sync_reconv = BTreeMap::new();
    for (&sync_pc, &reconv) in &func.meta.sync_reconv {
        sync_reconv.insert(instr_pos[sync_pc as usize], new_start[reconv as usize]);
    }
    let block_headers: Vec<u32> = func
        .meta
        .block_headers
        .iter()
        .map(|&h| new_start[h as usize])
        .collect();

    let meta = FunctionMeta {
        sync_reconv,
        block_headers,
        frame_bytes: func.meta.frame_bytes,
        shared_bytes: func.meta.shared_bytes,
        reg_high_water: func.meta.reg_high_water.max(16),
        uses_barrier: func.meta.uses_barrier,
    };
    Function::new(func.name.clone(), out, meta)
}

/// Counts the sites `specs` would instrument in `func`, without
/// rewriting (used for overhead prediction and tests).
pub fn count_sites(func: &Function, specs: &[InstrumentSpec]) -> usize {
    specs
        .iter()
        .map(|s| {
            func.instrs
                .iter()
                .enumerate()
                .filter(|(pc, ins)| {
                    matches_before(s, ins, *pc as u32, func) || matches_after(s, ins)
                })
                .count()
        })
        .sum()
}

/// Returns the set of live registers SASSI would save at each matched
/// site — exposed for the ablation study comparing liveness-driven
/// spilling against save-everything.
pub fn planned_spills(func: &Function, specs: &[InstrumentSpec]) -> Vec<(u32, RegSet)> {
    let lv = sasslive::function_liveness(func);
    let mut outv = Vec::new();
    for (pc, ins) in func.instrs.iter().enumerate() {
        for spec in specs {
            if matches_before(spec, ins, pc as u32, func) {
                let mut clob = RegSet::new();
                for r in crate::trampoline::clobberable() {
                    clob.insert_gpr(sassi_isa::Gpr::new(r));
                }
                outv.push((pc as u32, lv.live_in[pc].intersection(&clob)));
            } else if matches_after(spec, ins) {
                let mut clob = RegSet::new();
                for r in crate::trampoline::clobberable() {
                    clob.insert_gpr(sassi_isa::Gpr::new(r));
                }
                outv.push((pc as u32, lv.live_out[pc].intersection(&clob)));
            }
        }
    }
    outv
}
