//! # sassi — flexible software profiling of GPU architectures
//!
//! Reproduction of **SASSI** (Stephenson et al., *Flexible Software
//! Profiling of GPU Architectures*, ISCA 2015): a selective, low-level
//! assembly-language instrumentation framework that injects
//! ABI-compliant calls to user-defined handlers at chosen instructions,
//! as the final pass of the backend compiler.
//!
//! The pieces, mapped to the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | `ptxas` flags choosing *where*/*what* | [`SiteFilter`], [`InfoFlags`], [`InstPoint`] |
//! | Figure 2(a) injected sequence | [`Sassi::apply`] → trampoline codegen |
//! | Figure 2(b,c) `SASSIBeforeParams`, `SASSIMemoryParams` | [`BeforeParamsView`], [`MemoryParamsView`], [`CondBranchParamsView`], [`RegisterParamsView`] |
//! | CUDA handler functions | the [`Handler`] trait + [`SiteCtx`] |
//! | `-maxrregcount=16` handler cap | compile handlers with `Compiler::max_regs(16)` (SASS mode) or charge [`sassi_sim::HandlerCost`] (native mode) |
//!
//! The trampoline — stack allocation, liveness-driven register saves,
//! parameter-object construction, the `JCAL`, and full restoration — is
//! real simulated SASS executed by [`sassi_sim`]; the paper reports
//! (§9.1) that this ABI/spill machinery dominates instrumentation
//! overhead, and it is executed, not estimated, here too.
//!
//! ```
//! use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
//! use sassi_kir::{Compiler, KernelBuilder};
//! use sassi_sim::{Device, LaunchDims, Module};
//! use std::sync::Arc;
//! use parking_lot::Mutex;
//!
//! // A kernel storing tid*2.
//! let mut b = KernelBuilder::kernel("k");
//! let i = b.global_tid_x();
//! let out = b.param_ptr(0);
//! let v = b.shl(i, 1u32);
//! let e = b.lea(out, i, 2);
//! b.st_global_u32(e, v);
//! let func = Compiler::new().compile(&b.finish()).unwrap();
//!
//! // Count dynamic (thread-level) memory operations, Figure 3 style.
//! let counter = Arc::new(Mutex::new(0u64));
//! let c2 = counter.clone();
//! let mut sassi = Sassi::new();
//! sassi.on_before(
//!     SiteFilter::MEMORY,
//!     InfoFlags::MEMORY,
//!     Box::new(FnHandler::free(move |site| {
//!         *c2.lock() += site.active_lanes().len() as u64;
//!     })),
//! );
//! let instrumented = sassi.apply(&func, 0);
//!
//! let module = Module::link(&[instrumented]).unwrap();
//! let mut dev = Device::with_defaults();
//! let buf = dev.mem.alloc(64 * 4, 4).unwrap();
//! let res = dev
//!     .launch(&module, "k", LaunchDims::linear(2, 32), &[buf], &mut sassi, 0, 10_000_000)
//!     .unwrap();
//! assert!(res.is_ok());
//! assert_eq!(*counter.lock(), 64); // one store per thread
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod handler;
mod params;
mod pass;
mod sassi;
mod spec;
mod trampoline;

pub use handler::{FnHandler, Handler, HandlerShard, Scratch, SiteCtx};
pub use params::{
    layout, BeforeParamsView, CondBranchParamsView, MemoryDomain, MemoryParamsView,
    RegisterParamsView,
};
pub use pass::{count_sites, instrument, instrument_with_policy, planned_spills};
pub use sassi::Sassi;
pub use spec::{HandlerRef, InfoFlags, InstPoint, InstrumentSpec, SiteFilter, SpillPolicy};

// Re-exported for handler authors.
pub use sassi_sim::{HandlerCost, TrapCtx, TrapRef, TrapSite};
