//! The top-level instrumentor object: collects specs + handlers,
//! applies the compiler pass, and dispatches traps at execution time.

use crate::handler::{Handler, SiteCtx};
use crate::pass;
use crate::spec::{HandlerRef, InfoFlags, InstPoint, InstrumentSpec, SiteFilter, SpillPolicy};
use sassi_isa::Function;
use sassi_sim::{HandlerCost, HandlerRuntime, RuntimeShard, TrapCtx};

struct NativeEntry {
    handler: Box<dyn Handler>,
    what: InfoFlags,
    point: InstPoint,
}

/// The SASSI instrumentor.
///
/// Configure *where* and *what* with the `on_*` methods, apply the pass
/// to each compiled function with [`Sassi::apply`] (conceptually the
/// final `ptxas` pass of the paper's Figure 1), and pass the same
/// object as the [`HandlerRuntime`] when launching kernels.
///
/// ```
/// use sassi::{FnHandler, Sassi, SiteFilter, InfoFlags};
/// use sassi_kir::{Compiler, KernelBuilder};
///
/// let mut b = KernelBuilder::kernel("k");
/// let out = b.param_ptr(0);
/// let x = b.iconst(7);
/// b.st_global_u32(out, x);
/// let func = Compiler::new().compile(&b.finish()).unwrap();
///
/// let mut sassi = Sassi::new();
/// sassi.on_before(
///     SiteFilter::MEMORY,
///     InfoFlags::MEMORY,
///     Box::new(FnHandler::free(|_site| { /* count, inspect, ... */ })),
/// );
/// let instrumented = sassi.apply(&func, 0);
/// assert!(instrumented.len() > func.len());
/// ```
#[derive(Default)]
pub struct Sassi {
    specs: Vec<InstrumentSpec>,
    natives: Vec<NativeEntry>,
    policy: SpillPolicy,
}

impl Sassi {
    /// An instrumentor with no directives (applying it is the identity).
    pub fn new() -> Sassi {
        Sassi::default()
    }

    fn push_native(
        &mut self,
        point: InstPoint,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        let id = self.natives.len() as u32;
        self.natives.push(NativeEntry {
            handler,
            what,
            point,
        });
        self.specs.push(InstrumentSpec {
            point,
            filter,
            what,
            handler: HandlerRef::Native(id),
        });
        id
    }

    /// Instruments *before* instructions matching `filter`, building
    /// the extra object selected by `what`, calling `handler`.
    pub fn on_before(
        &mut self,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        self.push_native(InstPoint::Before, filter, what, handler)
    }

    /// Instruments *after* matching instructions (branches and jumps
    /// excluded, as in the paper).
    pub fn on_after(
        &mut self,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        self.push_native(InstPoint::After, filter, what, handler)
    }

    /// Instruments with a handler compiled to SASS (linked as function
    /// `func_index` of the module) instead of a native handler.
    pub fn on_before_sass(&mut self, filter: SiteFilter, what: InfoFlags, func_index: u32) {
        self.specs.push(InstrumentSpec {
            point: InstPoint::Before,
            filter,
            what,
            handler: HandlerRef::Sass(func_index),
        });
    }

    /// The active instrumentation specs.
    pub fn specs(&self) -> &[InstrumentSpec] {
        &self.specs
    }

    /// Selects the trampoline spill policy (default:
    /// [`SpillPolicy::Liveness`]). `SaveEverything` models a
    /// liveness-blind binary rewriter — the ablation of DESIGN.md §3.3.
    pub fn set_spill_policy(&mut self, policy: SpillPolicy) -> &mut Sassi {
        self.policy = policy;
        self
    }

    /// Applies the instrumentation pass to one compiled function;
    /// `fn_addr` must be unique per function (e.g. `ordinal << 20`).
    pub fn apply(&self, func: &Function, fn_addr: u32) -> Function {
        pass::instrument_with_policy(func, &self.specs, fn_addr, self.policy)
    }

    /// Number of sites the current specs would instrument in `func`.
    pub fn count_sites(&self, func: &Function) -> usize {
        pass::count_sites(func, &self.specs)
    }
}

impl HandlerRuntime for Sassi {
    fn handle(&mut self, id: u32, trap: &mut TrapCtx<'_>) -> HandlerCost {
        let Some(entry) = self.natives.get_mut(id as usize) else {
            return HandlerCost::FREE;
        };
        let mut ctx = SiteCtx {
            trap,
            point: entry.point,
            what: entry.what,
        };
        entry.handler.handle(&mut ctx)
    }

    /// Forks the whole instrumentor for one SM shard: every native
    /// handler must fork ([`Handler::fork`]), or the launch stays
    /// sequential. The composed join merges each handler's shard state
    /// in registration order.
    fn fork_shard(&self) -> Option<RuntimeShard> {
        let mut natives = Vec::with_capacity(self.natives.len());
        let mut joins = Vec::with_capacity(self.natives.len());
        for entry in &self.natives {
            let shard = entry.handler.fork()?;
            natives.push(NativeEntry {
                handler: shard.handler,
                what: entry.what,
                point: entry.point,
            });
            joins.push(shard.join);
        }
        let forked = Sassi {
            specs: self.specs.clone(),
            natives,
            policy: self.policy,
        };
        Some(RuntimeShard {
            runtime: Box::new(forked),
            join: Box::new(move || {
                for join in joins {
                    join();
                }
            }),
        })
    }
}
