//! The top-level instrumentor object: collects specs + handlers,
//! applies the compiler pass, and dispatches traps at execution time.

use crate::handler::{Handler, SiteCtx};
use crate::pass;
use crate::spec::{HandlerRef, InfoFlags, InstPoint, InstrumentSpec, SiteFilter, SpillPolicy};
use sassi_isa::Function;
use sassi_sim::{HandlerCost, HandlerRuntime, RuntimeShard, TrapCtx, TrapRef, TrapSite};

struct NativeEntry {
    handler: Box<dyn Handler>,
    what: InfoFlags,
    point: InstPoint,
}

/// One bound trap site's pre-resolved dispatch state: the native
/// handler index plus the two `SiteCtx` fields, copied out of the
/// `NativeEntry` once at bind time instead of on every trap.
#[derive(Clone, Copy)]
struct SiteSlot {
    native: u32,
    what: InfoFlags,
    point: InstPoint,
}

/// The SASSI instrumentor.
///
/// Configure *where* and *what* with the `on_*` methods, apply the pass
/// to each compiled function with [`Sassi::apply`] (conceptually the
/// final `ptxas` pass of the paper's Figure 1), and pass the same
/// object as the [`HandlerRuntime`] when launching kernels.
///
/// ```
/// use sassi::{FnHandler, Sassi, SiteFilter, InfoFlags};
/// use sassi_kir::{Compiler, KernelBuilder};
///
/// let mut b = KernelBuilder::kernel("k");
/// let out = b.param_ptr(0);
/// let x = b.iconst(7);
/// b.st_global_u32(out, x);
/// let func = Compiler::new().compile(&b.finish()).unwrap();
///
/// let mut sassi = Sassi::new();
/// sassi.on_before(
///     SiteFilter::MEMORY,
///     InfoFlags::MEMORY,
///     Box::new(FnHandler::free(|_site| { /* count, inspect, ... */ })),
/// );
/// let instrumented = sassi.apply(&func, 0);
/// assert!(instrumented.len() > func.len());
/// ```
#[derive(Default)]
pub struct Sassi {
    specs: Vec<InstrumentSpec>,
    natives: Vec<NativeEntry>,
    policy: SpillPolicy,
    /// Decode-resolved dispatch table for the currently bound module
    /// (`bind_sites`), indexed by `TrapRef::site`. Rebuilt only when
    /// the bound site table actually changes; relaunches of the same
    /// module reuse it untouched.
    slots: Vec<SiteSlot>,
    /// The site table `slots` was built from, for change detection.
    bound: Vec<TrapSite>,
}

impl Sassi {
    /// An instrumentor with no directives (applying it is the identity).
    pub fn new() -> Sassi {
        Sassi::default()
    }

    fn push_native(
        &mut self,
        point: InstPoint,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        let id = self.natives.len() as u32;
        self.natives.push(NativeEntry {
            handler,
            what,
            point,
        });
        self.specs.push(InstrumentSpec {
            point,
            filter,
            what,
            handler: HandlerRef::Native(id),
        });
        id
    }

    /// Instruments *before* instructions matching `filter`, building
    /// the extra object selected by `what`, calling `handler`.
    pub fn on_before(
        &mut self,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        self.push_native(InstPoint::Before, filter, what, handler)
    }

    /// Instruments *after* matching instructions (branches and jumps
    /// excluded, as in the paper).
    pub fn on_after(
        &mut self,
        filter: SiteFilter,
        what: InfoFlags,
        handler: Box<dyn Handler>,
    ) -> u32 {
        self.push_native(InstPoint::After, filter, what, handler)
    }

    /// Instruments with a handler compiled to SASS (linked as function
    /// `func_index` of the module) instead of a native handler.
    pub fn on_before_sass(&mut self, filter: SiteFilter, what: InfoFlags, func_index: u32) {
        self.specs.push(InstrumentSpec {
            point: InstPoint::Before,
            filter,
            what,
            handler: HandlerRef::Sass(func_index),
        });
    }

    /// The active instrumentation specs.
    pub fn specs(&self) -> &[InstrumentSpec] {
        &self.specs
    }

    /// Selects the trampoline spill policy (default:
    /// [`SpillPolicy::Liveness`]). `SaveEverything` models a
    /// liveness-blind binary rewriter — the ablation of DESIGN.md §3.3.
    pub fn set_spill_policy(&mut self, policy: SpillPolicy) -> &mut Sassi {
        self.policy = policy;
        self
    }

    /// Applies the instrumentation pass to one compiled function;
    /// `fn_addr` must be unique per function (e.g. `ordinal << 20`).
    pub fn apply(&self, func: &Function, fn_addr: u32) -> Function {
        pass::instrument_with_policy(func, &self.specs, fn_addr, self.policy)
    }

    /// Number of sites the current specs would instrument in `func`.
    pub fn count_sites(&self, func: &Function) -> usize {
        pass::count_sites(func, &self.specs)
    }
}

impl HandlerRuntime for Sassi {
    fn handle(&mut self, trap_ref: TrapRef, trap: &mut TrapCtx<'_>) -> HandlerCost {
        // Fast path: indexed dispatch through the decode-resolved slot
        // table — two `Copy` reads, no per-trap spec resolution.
        let entry = match self.slots.get(trap_ref.site as usize) {
            Some(slot) => {
                let (point, what) = (slot.point, slot.what);
                return match self.natives.get_mut(slot.native as usize) {
                    Some(entry) => {
                        let mut ctx = SiteCtx { trap, point, what };
                        entry.handler.handle(&mut ctx)
                    }
                    None => HandlerCost::FREE,
                };
            }
            // No bound table (a direct `handle` call outside a launch):
            // fall back to resolving the raw handler id.
            None => match self.natives.get_mut(trap_ref.handler as usize) {
                Some(entry) => entry,
                None => return HandlerCost::FREE,
            },
        };
        let mut ctx = SiteCtx {
            trap,
            point: entry.point,
            what: entry.what,
        };
        entry.handler.handle(&mut ctx)
    }

    /// Pre-resolves the module's trap sites into the slot table. A
    /// repeat bind with an unchanged table (every relaunch of the same
    /// module) is a length-check plus `memcmp` — no allocation.
    fn bind_sites(&mut self, sites: &[TrapSite]) {
        if self.bound == sites {
            return;
        }
        self.slots.clear();
        self.slots.extend(sites.iter().map(|s| {
            let (what, point) = match self.natives.get(s.handler as usize) {
                Some(e) => (e.what, e.point),
                // A site naming an unknown handler dispatches FREE at
                // trap time via the out-of-range native index.
                None => (InfoFlags::NONE, InstPoint::Before),
            };
            SiteSlot {
                native: s.handler,
                what,
                point,
            }
        }));
        self.bound.clear();
        self.bound.extend_from_slice(sites);
    }

    /// Forks the whole instrumentor for one SM shard: every native
    /// handler must fork ([`Handler::fork`]), or the launch stays
    /// sequential. The composed join merges each handler's shard state
    /// in registration order.
    fn fork_shard(&self) -> Option<RuntimeShard> {
        let mut natives = Vec::with_capacity(self.natives.len());
        let mut joins = Vec::with_capacity(self.natives.len());
        for entry in &self.natives {
            let shard = entry.handler.fork()?;
            natives.push(NativeEntry {
                handler: shard.handler,
                what: entry.what,
                point: entry.point,
            });
            joins.push(shard.join);
        }
        // Forked runtimes start unbound; the device binds each one to
        // the launching module's site table before running its shard.
        let forked = Sassi {
            specs: self.specs.clone(),
            natives,
            policy: self.policy,
            slots: Vec::new(),
            bound: Vec::new(),
        };
        Some(RuntimeShard {
            runtime: Box::new(forked),
            join: Box::new(move || {
                for join in joins {
                    join();
                }
            }),
        })
    }
}
