//! The handler-side API: what user instrumentation code is written
//! against.
//!
//! A [`Handler`] is the Rust analogue of the paper's CUDA handler
//! functions (Figures 3, 4, 6, 9): it is invoked once per warp at every
//! instrumentation site, receives a [`SiteCtx`] giving SIMT-style access
//! to the warp (ballot, leader election, per-lane parameter objects,
//! register and memory state), and returns the cost to charge the warp
//! — standing in for the cycles its SASS compilation would have
//! consumed under the 16-register cap.

use crate::params::{BeforeParamsView, CondBranchParamsView, MemoryParamsView, RegisterParamsView};
use crate::spec::{InfoFlags, InstPoint};
use parking_lot::Mutex;
use sassi_isa::Lanes;
use sassi_sim::{HandlerCost, TrapCtx};
use std::sync::Arc;

/// Per-site context handed to handlers.
pub struct SiteCtx<'a, 'c> {
    /// Raw warp/device access (registers, predicates, memories,
    /// coordinates, warp intrinsics).
    pub trap: &'a mut TrapCtx<'c>,
    /// Whether the site is before or after its instruction.
    pub point: InstPoint,
    /// Which extra parameter object the trampoline built.
    pub what: InfoFlags,
}

impl<'c> SiteCtx<'_, 'c> {
    /// Active lanes at the site (the `__ballot(1)` of the paper's
    /// handlers).
    pub fn active_mask(&self) -> u32 {
        self.trap.active_mask()
    }

    /// Active lane indices: a copyable, allocation-free mask iterator
    /// in ascending lane order.
    pub fn active_lanes(&self) -> Lanes {
        self.trap.active_lanes()
    }

    /// Calls `f` for each active lane in ascending order.
    pub fn for_each_active(&self, f: impl FnMut(usize)) {
        self.trap.for_each_active(f)
    }

    /// The first active lane — the leader the paper's handlers elect
    /// with `__ffs(__ballot(1)) - 1`.
    pub fn leader(&self) -> Option<usize> {
        self.trap.leader()
    }

    /// `__ballot(f(lane))` over the active lanes (allocation-free).
    pub fn ballot(&self, mut f: impl FnMut(usize) -> bool) -> u32 {
        let mut m = 0u32;
        let mut active = self.trap.active_mask();
        while active != 0 {
            let lane = active.trailing_zeros() as usize;
            active &= active - 1;
            if f(lane) {
                m |= 1 << lane;
            }
        }
        m
    }

    /// Lane `lane`'s `SASSIBeforeParams` / `SASSIAfterParams` view.
    pub fn params(&self, lane: usize) -> BeforeParamsView {
        BeforeParamsView::new(self.trap, lane)
    }

    /// Lane `lane`'s `SASSIMemoryParams` view, if the spec requested it.
    pub fn memory_params(&self, lane: usize) -> Option<MemoryParamsView> {
        self.what
            .contains(InfoFlags::MEMORY)
            .then(|| MemoryParamsView::new(self.trap, lane))
    }

    /// Lane `lane`'s `SASSICondBranchParams` view, if requested.
    pub fn branch_params(&self, lane: usize) -> Option<CondBranchParamsView> {
        self.what
            .contains(InfoFlags::COND_BRANCH)
            .then(|| CondBranchParamsView::new(self.trap, lane))
    }

    /// Lane `lane`'s `SASSIRegisterParams` view, if requested.
    pub fn register_params(&self, lane: usize) -> Option<RegisterParamsView> {
        self.what
            .contains(InfoFlags::REGISTERS)
            .then(|| RegisterParamsView::new(self.trap, lane))
    }
}

/// A shard-local fork of a [`Handler`], for CTA-parallel launches.
///
/// The `handler` half receives one SM shard's site visits on that
/// shard's worker thread; `join` is called on the launching thread —
/// in canonical shard order, after every shard has finished — to merge
/// the shard's accumulated state back into the parent handler.
pub struct HandlerShard {
    /// The forked handler driven by the shard.
    pub handler: Box<dyn Handler>,
    /// Merges the shard's state into the parent handler.
    pub join: Box<dyn FnOnce() + Send>,
}

/// User instrumentation code, invoked per warp at each site.
pub trait Handler: Send {
    /// Handles one site visit. The returned [`HandlerCost`] is charged
    /// to the trapping warp as execution cycles.
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost;

    /// Forks a shard-local handler whose state can later be merged
    /// back, or `None` if this handler's state is order-dependent (the
    /// device then runs the launch's CTA shards sequentially, which is
    /// always correct). The default is `None`; handlers whose state
    /// merges commutatively should opt in.
    fn fork(&self) -> Option<HandlerShard> {
        None
    }
}

impl<H: Handler + ?Sized> Handler for Box<H> {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        (**self).handle(ctx)
    }

    fn fork(&self) -> Option<HandlerShard> {
        (**self).fork()
    }
}

/// Shared-state registration: lets the experiment keep an
/// `Arc<Mutex<H>>` to read results after the run while the registry
/// drives the same handler during it.
impl<H: Handler> Handler for Arc<Mutex<H>> {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        self.lock().handle(ctx)
    }

    fn fork(&self) -> Option<HandlerShard> {
        self.lock().fork()
    }
}

/// Reusable per-trap scratch buffers for handlers.
///
/// The contract: a handler owns one `Scratch`, calls
/// [`Scratch::reset`] at the top of `handle`, and uses the buffers for
/// the duration of that single trap. Buffer *capacity* persists across
/// traps, so steady-state handler execution performs no heap
/// allocation; buffer *contents* do not survive a trap — state a
/// handler accumulates across traps belongs in its study state (the
/// part that merges on shard join). [`Handler::fork`] gives each CTA
/// shard a fresh `Scratch` (`Default`), never a shared one.
#[derive(Debug, Default)]
pub struct Scratch {
    /// Lane indices.
    pub lanes: Vec<usize>,
    /// 64-bit values (addresses, register pairs).
    pub words: Vec<u64>,
    /// 32-bit values.
    pub vals: Vec<u32>,
}

impl Scratch {
    /// Empties every buffer, keeping capacity. Call at the top of
    /// `handle`.
    pub fn reset(&mut self) {
        self.lanes.clear();
        self.words.clear();
        self.vals.clear();
    }
}

/// A handler from a closure (plus a fixed cost) — convenient for small
/// experiments and tests.
pub struct FnHandler<F> {
    f: F,
    cost: HandlerCost,
}

impl<F> FnHandler<F>
where
    F: FnMut(&mut SiteCtx<'_, '_>) + Send,
{
    /// Wraps `f` with a fixed per-invocation cost.
    pub fn new(cost: HandlerCost, f: F) -> FnHandler<F> {
        FnHandler { f, cost }
    }

    /// Wraps `f` at zero cost (pure observation).
    pub fn free(f: F) -> FnHandler<F> {
        FnHandler {
            f,
            cost: HandlerCost::FREE,
        }
    }
}

impl<F> Handler for FnHandler<F>
where
    F: FnMut(&mut SiteCtx<'_, '_>) + Send,
{
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        (self.f)(ctx);
        self.cost
    }
}
