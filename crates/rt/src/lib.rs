//! # sassi-rt — the host-side runtime
//!
//! Plays the role of the CUDA runtime + CUPTI in the paper's flow:
//!
//! * [`ModuleBuilder`] — the `nvcc`/`ptxas`/`nvlink` pipeline: compiles
//!   kernel IR, runs the SASSI pass *as the backend's final pass*
//!   (Figure 1) and links everything (including compiled-SASS handlers
//!   built under the 16-register cap) into one [`Module`].
//! * [`Runtime`] — device-buffer management (`cudaMalloc`/`cudaMemcpy`
//!   analogues), kernel launches, and [`Cupti`]-style kernel-launch /
//!   kernel-exit callbacks used by instrumentation libraries to
//!   initialize and collect device-side counters (paper §3.3). Launches
//!   are serialized, which — as the paper notes of `cudaMemcpy` —
//!   prevents races on the counters.
//! * [`AppClock`] — the whole-program time model behind Table 3's `T`
//!   column: modelled CPU time + PCIe transfer time + simulated kernel
//!   time.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clock;
mod pipeline;
mod runtime;

pub use clock::AppClock;
pub use pipeline::{BuildError, ModuleBuilder};
pub use runtime::{Cupti, DevBuf, LaunchInfo, LaunchRecord, Runtime};

pub use sassi_sim::{Device, GpuConfig, LaunchDims, LaunchResult, Module};
