//! The build pipeline: kernel IR → backend compiler → SASSI final pass
//! → linked module (paper Figure 1's ahead-of-time path).

use sassi::Sassi;
use sassi_kir::{CompileError, Compiler, KFunction};
use sassi_sim::{LinkError, Module};
use std::fmt;

/// Build failure.
#[derive(Debug)]
pub enum BuildError {
    /// Backend compilation failed.
    Compile(String, CompileError),
    /// Linking failed.
    Link(LinkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(name, e) => write!(f, "compiling `{name}`: {e}"),
            BuildError::Link(e) => write!(f, "linking: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> BuildError {
        BuildError::Link(e)
    }
}

/// Builds a [`Module`] from kernel IR, with optional SASSI
/// instrumentation applied as the final backend pass.
///
/// Compiled-SASS handlers must be registered *before* kernels so their
/// function indices (used by `Sassi::on_before_sass`) are known; they
/// are compiled under the paper's 16-register cap and never themselves
/// instrumented.
pub struct ModuleBuilder {
    compiler: Compiler,
    handler_compiler: Compiler,
    handlers: Vec<KFunction>,
    kernels: Vec<KFunction>,
}

impl Default for ModuleBuilder {
    fn default() -> ModuleBuilder {
        ModuleBuilder::new()
    }
}

impl ModuleBuilder {
    /// A builder with the default kernel compiler (63 registers) and
    /// the capped handler compiler (16 registers, `-maxrregcount=16`).
    pub fn new() -> ModuleBuilder {
        ModuleBuilder {
            compiler: Compiler::new(),
            handler_compiler: Compiler::new().max_regs(16),
            handlers: Vec::new(),
            kernels: Vec::new(),
        }
    }

    /// Replaces the kernel compiler (e.g. to cap kernel registers).
    pub fn with_compiler(mut self, c: Compiler) -> ModuleBuilder {
        self.compiler = c;
        self
    }

    /// Registers a compiled-SASS instrumentation handler; returns the
    /// function index to pass to `Sassi::on_before_sass`.
    ///
    /// # Panics
    ///
    /// Panics if the handler contains a block barrier: as the paper
    /// notes (§9.3), `__syncthreads` is illegal in handlers because they
    /// may run with the warp diverged, so a barrier could never be
    /// reached by all threads.
    pub fn add_sass_handler(&mut self, f: KFunction) -> u32 {
        assert!(
            !f.instrs.iter().any(|i| matches!(i.op, sassi_kir::KOp::Bar)),
            "handler `{}` uses a block barrier, which is illegal in              instrumentation handlers (paper §9.3)",
            f.name
        );
        self.handlers.push(f);
        (self.handlers.len() - 1) as u32
    }

    /// Registers a kernel.
    pub fn add_kernel(&mut self, f: KFunction) -> &mut ModuleBuilder {
        self.kernels.push(f);
        self
    }

    /// Compiles everything, applies `sassi` to the kernels (not to
    /// handlers), and links. The linked module comes back pre-decoded:
    /// `Module::link` lowers the instruction stream into the flat µop
    /// array (and trap-site bitmap) the simulator's hot loop executes,
    /// so no launch ever pays a decode cost.
    ///
    /// # Errors
    ///
    /// Compilation or link failures as [`BuildError`].
    pub fn build(&self, sassi: Option<&Sassi>) -> Result<Module, BuildError> {
        let mut funcs = Vec::with_capacity(self.handlers.len() + self.kernels.len());
        for h in &self.handlers {
            let f = self
                .handler_compiler
                .compile(h)
                .map_err(|e| BuildError::Compile(h.name.clone(), e))?;
            funcs.push(f);
        }
        for (i, k) in self.kernels.iter().enumerate() {
            let f = self
                .compiler
                .compile(k)
                .map_err(|e| BuildError::Compile(k.name.clone(), e))?;
            let f = match sassi {
                Some(s) => s.apply(&f, ((self.handlers.len() + i) as u32) << 20),
                None => f,
            };
            funcs.push(f);
        }
        Ok(Module::link(&funcs)?)
    }

    /// Per-function instrumentation density of a built module: for each
    /// linked function, `(name, trap_sites, instructions)` — how many
    /// of its instructions were rewritten into handler trap sites by
    /// the SASSI pass. Read from the decode stage's trap-site bitmap,
    /// so it costs no instruction scan.
    pub fn instrumentation_density(module: &Module) -> Vec<(String, u32, u32)> {
        let decoded = module.decoded();
        module
            .functions
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    decoded.trap_sites_in(f.entry, f.end),
                    f.end - f.entry,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sassi::{FnHandler, InfoFlags, SiteFilter};
    use sassi_kir::KernelBuilder;

    fn trivial_kernel(name: &str) -> KFunction {
        let mut b = KernelBuilder::kernel(name);
        let out = b.param_ptr(0);
        let x = b.iconst(42);
        b.st_global_u32(out, x);
        b.finish()
    }

    #[test]
    fn builds_plain_module() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(trivial_kernel("a"));
        mb.add_kernel(trivial_kernel("b"));
        let m = mb.build(None).unwrap();
        assert!(m.function("a").is_some());
        assert!(m.function("b").is_some());
    }

    #[test]
    fn instrumented_kernels_grow() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(trivial_kernel("a"));
        let plain = mb.build(None).unwrap();
        let mut sassi = Sassi::new();
        sassi.on_before(
            SiteFilter::ALL,
            InfoFlags::NONE,
            Box::new(FnHandler::free(|_| {})),
        );
        let inst = mb.build(Some(&sassi)).unwrap();
        assert!(inst.code.len() > plain.code.len());
    }

    #[test]
    fn instrumentation_density_counts_trap_sites() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(trivial_kernel("a"));
        let plain = mb.build(None).unwrap();
        assert!(ModuleBuilder::instrumentation_density(&plain)
            .iter()
            .all(|(_, traps, _)| *traps == 0));

        let mut sassi = Sassi::new();
        sassi.on_before(
            SiteFilter::ALL,
            InfoFlags::NONE,
            Box::new(FnHandler::free(|_| {})),
        );
        let inst = mb.build(Some(&sassi)).unwrap();
        let density = ModuleBuilder::instrumentation_density(&inst);
        let (_, traps, instrs) = density.iter().find(|(n, _, _)| n == "a").unwrap();
        assert!(*traps > 0, "every-site instrumentation must add traps");
        assert!(traps < instrs);
    }

    #[test]
    fn duplicate_kernel_names_fail_at_link() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(trivial_kernel("a"));
        mb.add_kernel(trivial_kernel("a"));
        assert!(matches!(mb.build(None), Err(BuildError::Link(_))));
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;
    use sassi_kir::KernelBuilder;

    #[test]
    fn handler_over_pred_budget_fails_to_build() {
        // A handler with 8 live predicates cannot compile; the pipeline
        // surfaces it as a BuildError::Compile naming the handler.
        let mut h = KernelBuilder::abi_function("hbad");
        let x = h.iconst(1);
        let ps: Vec<_> = (0..8u32).map(|k| h.setp_u32_lt(x, k)).collect();
        let mut acc = h.iconst(0);
        for p in &ps {
            let one = h.iconst(1);
            let zero = h.iconst(0);
            let v = h.sel(*p, one, zero);
            acc = h.iadd(acc, v);
        }
        let ptr = h.abi_param_ptr(0);
        h.st_generic_u32(ptr, 0, acc);
        h.ret();

        let mut mb = ModuleBuilder::new();
        let _ = mb.add_sass_handler(h.finish());
        let err = mb.build(None).unwrap_err();
        match err {
            BuildError::Compile(ref name, _) => assert_eq!(name, "hbad"),
            other => panic!("unexpected {other}"),
        }
        assert!(err.to_string().contains("hbad"));
    }

    #[test]
    fn handlers_compile_under_16_register_cap() {
        // The handler compiler must apply -maxrregcount=16: a handler
        // with high register pressure compiles WITH spill code.
        let mut h = KernelBuilder::abi_function("hfat");
        let ptr = h.abi_param_ptr(0);
        let vals: Vec<_> = (0..18u32)
            .map(|k| {
                let base = h.ld_generic_u32(ptr, 4 * k as i32);
                h.iadd(base, k)
            })
            .collect();
        let mut acc = h.iconst(0);
        for v in &vals {
            acc = h.iadd(acc, *v);
        }
        h.st_generic_u32(ptr, 0, acc);
        h.ret();
        let kf = h.finish();

        let capped = Compiler::new().max_regs(16).compile(&kf).unwrap();
        assert!(
            capped.instrs.iter().any(|i| i.class().is_spill_or_fill()),
            "16-register cap must force handler spills"
        );
        assert!(capped.meta.reg_high_water <= 16);
    }
}

#[cfg(test)]
mod handler_rules {
    use super::*;
    use sassi_kir::KernelBuilder;

    #[test]
    #[should_panic(expected = "uses a block barrier")]
    fn barriers_in_handlers_rejected() {
        let mut h = KernelBuilder::abi_function("hbar");
        h.bar_sync();
        h.ret();
        let mut mb = ModuleBuilder::new();
        let _ = mb.add_sass_handler(h.finish());
    }
}
