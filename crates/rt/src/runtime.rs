//! Device-buffer management, kernel launches, CUPTI-style callbacks and
//! per-launch accounting (the `nvprof` analogue behind Table 3).

use crate::clock::AppClock;
use sassi_sim::{
    Device, HandlerRuntime, KernelOutcome, LaunchDims, LaunchError, LaunchResult, Module,
};
use serde::{Deserialize, Serialize};

/// A typed device buffer (the `cudaMalloc` result).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DevBuf {
    /// Generic device address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
}

impl DevBuf {
    /// The device *address* of element `i` of a `u32` array (not the
    /// element's value — read that with [`Runtime::read_u32`]).
    pub fn u32_addr(&self, i: u64) -> u64 {
        self.addr + 4 * i
    }
}

/// Information about a launch, handed to CUPTI callbacks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchInfo {
    /// Kernel symbol.
    pub kernel: String,
    /// Monotonic launch index within this runtime.
    pub launch_index: u64,
    /// Launch geometry.
    pub dims: LaunchDims,
}

/// One completed launch, for `nvprof`-style reporting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// What was launched.
    pub info: LaunchInfo,
    /// How it went.
    pub result: LaunchResult,
}

// `Send` so a whole `Runtime` can move to a campaign-engine worker
// thread; registered callbacks must capture `Send` state (e.g.
// `Arc<Mutex<..>>`, as the instrumentation libraries already do).
type LaunchCb = Box<dyn FnMut(&LaunchInfo, &mut Device) + Send>;
type ExitCb = Box<dyn FnMut(&LaunchInfo, &mut Device, &LaunchResult) + Send>;

/// CUPTI-style callback registry (paper §3.3): instrumentation
/// libraries register kernel-launch callbacks to initialize device-side
/// counters and kernel-exit callbacks to copy them back. Launches are
/// serialized, so callbacks never race with kernels.
#[derive(Default)]
pub struct Cupti {
    on_launch: Vec<LaunchCb>,
    on_exit: Vec<ExitCb>,
}

impl Cupti {
    /// Registers a kernel-launch callback.
    pub fn on_kernel_launch(&mut self, cb: impl FnMut(&LaunchInfo, &mut Device) + Send + 'static) {
        self.on_launch.push(Box::new(cb));
    }

    /// Registers a kernel-exit callback.
    pub fn on_kernel_exit(
        &mut self,
        cb: impl FnMut(&LaunchInfo, &mut Device, &LaunchResult) + Send + 'static,
    ) {
        self.on_exit.push(Box::new(cb));
    }
}

/// The host runtime: owns the device, buffers, the application clock
/// and the CUPTI registry.
pub struct Runtime {
    /// The simulated GPU.
    pub device: Device,
    /// CUPTI callbacks.
    pub cupti: Cupti,
    /// The whole-program clock.
    pub clock: AppClock,
    /// Watchdog budget per launch, in cycles.
    pub watchdog_cycles: u64,
    launches: u64,
    records: Vec<LaunchRecord>,
}

impl Runtime {
    /// Wraps a device.
    pub fn new(device: Device) -> Runtime {
        Runtime {
            device,
            cupti: Cupti::default(),
            clock: AppClock::new(),
            watchdog_cycles: 1_000_000_000,
            launches: 0,
            records: Vec::new(),
        }
    }

    /// A runtime on the default device.
    pub fn with_defaults() -> Runtime {
        Runtime::new(Device::with_defaults())
    }

    /// Sets how many worker threads execute the CTA shards of each
    /// launch (the inner half of the `SASSI_JOBS` budget). Launch
    /// results are byte-identical for any value; `1` (the default)
    /// runs shards sequentially on the calling thread.
    pub fn set_cta_jobs(&mut self, jobs: usize) -> &mut Runtime {
        self.device.cta_jobs = jobs.max(1);
        self
    }

    /// Forces the decoded interpreter's block-stepped scheduler on or
    /// off for this runtime's device, overriding the process-wide
    /// `SASSI_BLOCK_STEP` default. Functional results and
    /// instruction-derived statistics are identical either way; only
    /// cycle-derived numbers shift.
    pub fn set_block_step(&mut self, on: bool) -> &mut Runtime {
        self.device.block_step = on;
        self
    }

    /// Allocates a device buffer (`cudaMalloc`).
    ///
    /// # Panics
    ///
    /// Panics if the device heap is exhausted.
    pub fn alloc(&mut self, bytes: u64) -> DevBuf {
        let addr = self
            .device
            .mem
            .alloc(bytes, 8)
            .expect("device heap exhausted");
        DevBuf { addr, bytes }
    }

    /// Allocates and uploads a `u32` slice (`cudaMalloc` + H2D
    /// `cudaMemcpy`, charged to the clock).
    pub fn alloc_u32(&mut self, data: &[u32]) -> DevBuf {
        let buf = self.alloc(4 * data.len() as u64);
        self.write_u32(buf, data);
        buf
    }

    /// Allocates a zeroed `u32` array.
    pub fn alloc_zeroed_u32(&mut self, len: usize) -> DevBuf {
        self.alloc_u32(&vec![0u32; len])
    }

    /// Uploads data into a buffer (H2D `cudaMemcpy`).
    ///
    /// # Panics
    ///
    /// Panics if the buffer is too small.
    pub fn write_u32(&mut self, buf: DevBuf, data: &[u32]) {
        assert!(4 * data.len() as u64 <= buf.bytes, "upload exceeds buffer");
        for (i, v) in data.iter().enumerate() {
            self.device
                .mem
                .write_u32(buf.addr + 4 * i as u64, *v)
                .expect("upload");
        }
        self.clock.add_transfer(4 * data.len() as u64);
    }

    /// Downloads a buffer as `u32`s (D2H `cudaMemcpy`).
    pub fn read_u32(&mut self, buf: DevBuf) -> Vec<u32> {
        let n = (buf.bytes / 4) as usize;
        let out = (0..n)
            .map(|i| {
                self.device
                    .mem
                    .read_u32(buf.addr + 4 * i as u64)
                    .expect("download")
            })
            .collect();
        self.clock.add_transfer(buf.bytes);
        out
    }

    /// Downloads a buffer as `u64`s.
    pub fn read_u64(&mut self, buf: DevBuf) -> Vec<u64> {
        let n = (buf.bytes / 8) as usize;
        let out = (0..n)
            .map(|i| {
                self.device
                    .mem
                    .read_u64(buf.addr + 8 * i as u64)
                    .expect("download")
            })
            .collect();
        self.clock.add_transfer(buf.bytes);
        out
    }

    /// Launches a kernel, firing CUPTI callbacks around it and charging
    /// kernel cycles to the clock.
    ///
    /// # Errors
    ///
    /// Host-side [`LaunchError`]s; device faults/hangs are inside the
    /// returned [`LaunchResult`].
    pub fn launch(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: LaunchDims,
        params: &[u64],
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<LaunchResult, LaunchError> {
        let info = LaunchInfo {
            kernel: kernel.to_string(),
            launch_index: self.launches,
            dims,
        };
        // Model the fixed host-side cost of a kernel launch (the
        // cudaLaunch + driver overhead that makes launch-heavy apps like
        // gaussian CPU-bound).
        self.clock.add_host(10e-6);
        for cb in &mut self.cupti.on_launch {
            cb(&info, &mut self.device);
        }
        let result = self.device.launch(
            module,
            kernel,
            dims,
            params,
            handlers,
            self.launches,
            self.watchdog_cycles,
        )?;
        self.launches += 1;
        self.clock.add_kernel_cycles(result.stats.cycles);
        for cb in &mut self.cupti.on_exit {
            cb(&info, &mut self.device, &result);
        }
        self.records.push(LaunchRecord { info, result });
        Ok(result)
    }

    /// All launches so far, in order (the `nvprof` trace).
    pub fn records(&self) -> &[LaunchRecord] {
        &self.records
    }

    /// Number of kernel launches.
    pub fn launch_count(&self) -> u64 {
        self.launches
    }

    /// Whether every launch completed normally.
    pub fn all_ok(&self) -> bool {
        self.records
            .iter()
            .all(|r| matches!(r.result.outcome, KernelOutcome::Completed))
    }

    /// Total kernel cycles across all launches.
    pub fn total_kernel_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.result.stats.cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ModuleBuilder;
    use sassi_kir::KernelBuilder;
    use sassi_sim::NoHandlers;
    use std::sync::{Arc, Mutex};

    fn copy_kernel() -> sassi_kir::KFunction {
        let mut b = KernelBuilder::kernel("copy");
        let i = b.global_tid_x();
        let src = b.param_ptr(0);
        let dst = b.param_ptr(1);
        let es = b.lea(src, i, 2);
        let v = b.ld_global_u32(es);
        let ed = b.lea(dst, i, 2);
        b.st_global_u32(ed, v);
        b.finish()
    }

    #[test]
    fn upload_launch_download_roundtrip() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(copy_kernel());
        let module = mb.build(None).unwrap();

        let mut rt = Runtime::with_defaults();
        let data: Vec<u32> = (0..64).map(|x| x * x).collect();
        let src = rt.alloc_u32(&data);
        let dst = rt.alloc_zeroed_u32(64);
        let res = rt
            .launch(
                &module,
                "copy",
                LaunchDims::linear(2, 32),
                &[src.addr, dst.addr],
                &mut NoHandlers,
            )
            .unwrap();
        assert!(res.is_ok());
        assert_eq!(rt.read_u32(dst), data);
        assert_eq!(rt.launch_count(), 1);
        assert!(rt.all_ok());
        assert!(rt.clock.kernel_cycles > 0);
        assert!(rt.clock.transfer_bytes >= 3 * 64 * 4);
    }

    #[test]
    fn cupti_callbacks_fire_in_order() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(copy_kernel());
        let module = mb.build(None).unwrap();

        let log = Arc::new(Mutex::new(Vec::<String>::new()));
        let mut rt = Runtime::with_defaults();
        let l1 = log.clone();
        rt.cupti.on_kernel_launch(move |info, _dev| {
            l1.lock()
                .unwrap()
                .push(format!("launch:{}:{}", info.kernel, info.launch_index));
        });
        let l2 = log.clone();
        rt.cupti.on_kernel_exit(move |info, _dev, res| {
            l2.lock().unwrap().push(format!(
                "exit:{}:{}:{}",
                info.kernel,
                info.launch_index,
                res.is_ok()
            ));
        });

        let src = rt.alloc_zeroed_u32(32);
        let dst = rt.alloc_zeroed_u32(32);
        for _ in 0..2 {
            rt.launch(
                &module,
                "copy",
                LaunchDims::linear(1, 32),
                &[src.addr, dst.addr],
                &mut NoHandlers,
            )
            .unwrap();
        }
        assert_eq!(
            *log.lock().unwrap(),
            vec![
                "launch:copy:0",
                "exit:copy:0:true",
                "launch:copy:1",
                "exit:copy:1:true"
            ]
        );
        assert_eq!(rt.records().len(), 2);
    }

    #[test]
    fn unknown_kernel_is_host_error() {
        let mut mb = ModuleBuilder::new();
        mb.add_kernel(copy_kernel());
        let module = mb.build(None).unwrap();
        let mut rt = Runtime::with_defaults();
        assert!(rt
            .launch(
                &module,
                "nope",
                LaunchDims::linear(1, 32),
                &[],
                &mut NoHandlers
            )
            .is_err());
    }
}
