//! The whole-program time model.
//!
//! Table 3 of the paper distinguishes wall-clock time `t` from
//! device-side kernel time `k`: applications with large CPU or transfer
//! components hide even heavy instrumentation, while GPU-bound ones
//! expose it. We model `t = host + transfers/bandwidth + kernel`, where
//! kernel time comes from simulated cycles and the other two components
//! are charged explicitly by the workload harness.

use sassi_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Accumulates the three components of whole-program time.
///
/// Workloads charge host time on a scale matched to their scaled-down
/// inputs (milliseconds where the originals take seconds), so the
/// host/kernel split — which drives Table 3's `T` vs `K` contrast —
/// stays realistic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AppClock {
    /// Modelled host (CPU) seconds: input parsing, setup, result
    /// checking.
    pub host_seconds: f64,
    /// Bytes moved across the host↔device link.
    pub transfer_bytes: u64,
    /// Simulated kernel cycles.
    pub kernel_cycles: u64,
}

/// Modelled PCIe-class link bandwidth, bytes per second.
pub const LINK_BYTES_PER_SECOND: f64 = 6.0e9;

impl AppClock {
    /// A zeroed clock.
    pub fn new() -> AppClock {
        AppClock::default()
    }

    /// Charges host CPU time.
    pub fn add_host(&mut self, seconds: f64) {
        self.host_seconds += seconds;
    }

    /// Charges a host↔device transfer.
    pub fn add_transfer(&mut self, bytes: u64) {
        self.transfer_bytes += bytes;
    }

    /// Charges kernel cycles.
    pub fn add_kernel_cycles(&mut self, cycles: u64) {
        self.kernel_cycles += cycles;
    }

    /// Device-side kernel time in seconds (Table 3's `k`).
    pub fn kernel_seconds(&self, cfg: &GpuConfig) -> f64 {
        cfg.cycles_to_seconds(self.kernel_cycles)
    }

    /// Transfer time in seconds.
    pub fn transfer_seconds(&self) -> f64 {
        self.transfer_bytes as f64 / LINK_BYTES_PER_SECOND
    }

    /// Whole-program time in seconds (Table 3's `t`).
    pub fn total_seconds(&self, cfg: &GpuConfig) -> f64 {
        self.host_seconds + self.transfer_seconds() + self.kernel_seconds(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_add_up() {
        let cfg = GpuConfig {
            clock_mhz: 1000,
            ..GpuConfig::default()
        };
        let mut c = AppClock::new();
        c.add_host(0.5);
        c.add_transfer(6_000_000_000); // 1 s at the modelled link rate
        c.add_kernel_cycles(2_000_000_000); // 2 s at 1 GHz
        assert!((c.kernel_seconds(&cfg) - 2.0).abs() < 1e-9);
        assert!((c.transfer_seconds() - 1.0).abs() < 1e-9);
        assert!((c.total_seconds(&cfg) - 3.5).abs() < 1e-9);
    }
}
