//! Compile-and-execute tests for builder constructs that the workload
//! suite exercises only lightly: dynamic frame addressing, generic
//! stack pointers, texture loads, `ffs`, strided loops, `continue_if`,
//! `exit_if`, float conversions, and the predicate-pressure limit.

use sassi_kir::{CompileError, Compiler, KernelBuilder, RegAllocError};
use sassi_sim::{Device, LaunchDims, Module, NoHandlers};

fn run1(kf: sassi_kir::KFunction, threads: u32, out_len: u64, extra_params: &[u64]) -> Vec<u32> {
    let name = kf.name.clone();
    let func = Compiler::new().compile(&kf).unwrap();
    let module = Module::link(&[func]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(out_len * 4, 8).unwrap();
    let mut params = vec![out];
    params.extend_from_slice(extra_params);
    let res = dev
        .launch(
            &module,
            &name,
            LaunchDims::linear(threads.div_ceil(32), 32),
            &params,
            &mut NoHandlers,
            0,
            1 << 28,
        )
        .unwrap();
    assert!(res.is_ok(), "{:?}", res.outcome);
    (0..out_len)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect()
}

#[test]
fn dynamic_frame_addressing() {
    // Per-thread local array indexed dynamically: a[i] = i*i for
    // i in 0..8, then out[tid] = a[tid % 8].
    let mut b = KernelBuilder::kernel("dynloc");
    let slot = b.frame_alloc(8 * 4);
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let bound = b.iconst(8);
    b.for_range(0u32, bound, 1, |b, i| {
        let sq = b.imul(i, i);
        let off = b.shl(i, 2u32);
        let addr = b.iadd(off, slot.offset as u32);
        b.st_frame_u32_dyn(addr, sq);
    });
    let idx = b.and(tid, 7u32);
    let off = b.shl(idx, 2u32);
    let addr = b.iadd(off, slot.offset as u32);
    let v = b.ld_frame_u32_dyn(addr);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let out = run1(b.finish(), 32, 32, &[]);
    for t in 0..32u32 {
        assert_eq!(out[t as usize], (t & 7) * (t & 7), "tid {t}");
    }
}

#[test]
fn generic_pointer_to_stack_roundtrips() {
    // Write through a generic pointer to a frame slot, read back
    // directly — the Figure 2 pointer idiom from user code.
    let mut b = KernelBuilder::kernel("genptr");
    let slot = b.frame_alloc(16);
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let gp = b.frame_addr_generic(slot, 4);
    let hundred = b.iconst(100);
    let magic = b.imad(tid, 3u32, hundred);
    b.st_generic_u32(gp, 0, magic);
    let v = b.ld_frame_u32(slot, 4);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let out = run1(b.finish(), 32, 32, &[]);
    for t in 0..32u32 {
        assert_eq!(out[t as usize], t * 3 + 100);
    }
}

#[test]
fn texture_loads_work_and_classify() {
    let mut b = KernelBuilder::kernel("tex");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let src = b.param_ptr(1);
    let e = b.lea(src, tid, 2);
    let v = b.ld_texture_u32(e);
    let w = b.iadd(v, 1u32);
    let eo = b.lea(out, tid, 2);
    b.st_global_u32(eo, w);
    let kf = b.finish();

    // Classification: exactly one texture instruction in the SASS.
    let func = Compiler::new().compile(&kf).unwrap();
    let tex = func
        .instrs
        .iter()
        .filter(|i| i.class().is_texture())
        .count();
    assert_eq!(tex, 1);

    let name = kf.name.clone();
    let module = Module::link(&[func]).unwrap();
    let mut dev = Device::with_defaults();
    let out_buf = dev.mem.alloc(32 * 4, 8).unwrap();
    let src_buf = dev.mem.alloc(32 * 4, 8).unwrap();
    for i in 0..32 {
        dev.mem.write_u32(src_buf + 4 * i, 500 + i as u32).unwrap();
    }
    let res = dev
        .launch(
            &module,
            &name,
            LaunchDims::linear(1, 32),
            &[out_buf, src_buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok());
    for i in 0..32 {
        assert_eq!(dev.mem.read_u32(out_buf + 4 * i).unwrap(), 501 + i as u32);
    }
}

#[test]
fn ffs_matches_cuda_semantics() {
    // __ffs: 1-based index of least-significant set bit; 0 for zero.
    let mut b = KernelBuilder::kernel("ffs");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    // value = tid == 0 ? 0 : 1 << (tid-1)
    let tm1 = b.isub(tid, 1u32);
    let one = b.iconst(1);
    let shifted = b.shl(one, tm1);
    let z = b.setp_u32_eq(tid, 0u32);
    let zero = b.iconst(0);
    let val = b.sel(z, zero, shifted);
    let f = b.ffs(val);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, f);
    let out = run1(b.finish(), 32, 32, &[]);
    assert_eq!(out[0], 0, "__ffs(0) = 0");
    for (t, &v) in out.iter().enumerate().take(32).skip(1) {
        assert_eq!(v, t as u32, "__ffs(1 << {}) = {}", t - 1, t);
    }
}

#[test]
fn strided_loop_and_continue_if() {
    // sum of even i in 0..20 skipping multiples of 6 via continue_if.
    let mut b = KernelBuilder::kernel("strided");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let acc = b.var_u32(0u32);
    let bound = b.iconst(20);
    // for (i = 0; i < 20; i += 2) { if (i % 6 == 0) continue; acc += i }
    let i = b.var_u32(0u32);
    b.while_(
        |b| b.setp_u32_lt(i, bound),
        |b| {
            let cur = b.var_u32(0u32);
            b.assign(cur, i);
            let next = b.iadd(i, 2u32);
            b.assign(i, next);
            // i % 6 == 0 via i - (i/6)*6: avoid division — use lookup:
            // multiples of 6 under 20: 0, 6, 12, 18.
            let is0 = b.setp_u32_eq(cur, 0u32);
            let is6 = b.setp_u32_eq(cur, 6u32);
            let is12 = b.setp_u32_eq(cur, 12u32);
            let is18 = b.setp_u32_eq(cur, 18u32);
            let a = b.or_p(is0, is6);
            let c = b.or_p(is12, is18);
            let skip = b.or_p(a, c);
            b.continue_if(skip);
            let nxt = b.iadd(acc, cur);
            b.assign(acc, nxt);
        },
    );
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    let out = run1(b.finish(), 32, 32, &[]);
    // evens < 20 minus {0,6,12,18}: 2+4+8+10+14+16 = 54
    assert!(out.iter().all(|&v| v == 54), "got {}", out[0]);
}

#[test]
fn exit_if_terminates_lanes_early() {
    let mut b = KernelBuilder::kernel("early");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let e = b.lea(out, tid, 2);
    let one = b.iconst(1);
    b.st_global_u32(e, one);
    let big = b.setp_u32_ge(tid, 16u32);
    b.exit_if(big);
    // only lanes 0..16 get here
    let two = b.iconst(2);
    b.st_global_u32(e, two);
    let out = run1(b.finish(), 32, 32, &[]);
    for (t, &v) in out.iter().enumerate().take(32) {
        assert_eq!(v, if t < 16 { 2 } else { 1 }, "tid {t}");
    }
}

#[test]
fn float_conversion_chain() {
    // out[tid] = f2i(i2f(tid) * 2.5 + 0.5)
    let mut b = KernelBuilder::kernel("fconv");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let f = b.i2f(tid);
    let k = b.fconst(2.5);
    let half = b.fconst(0.5);
    let scaled = b.ffma(f, k, half);
    let i = b.f2i(scaled);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, i);
    let out = run1(b.finish(), 32, 32, &[]);
    for (t, &v) in out.iter().enumerate().take(32) {
        let want = (t as f32).mul_add(2.5, 0.5) as i32 as u32;
        assert_eq!(v, want, "tid {t}");
    }
}

#[test]
fn predicate_pressure_is_a_compile_error() {
    let mut b = KernelBuilder::kernel("preds");
    let x = b.iconst(1);
    // Eight simultaneously-live predicates exceed P0..P6.
    let ps: Vec<_> = (0..8u32).map(|k| b.setp_u32_lt(x, k)).collect();
    let mut acc = b.iconst(0);
    for p in &ps {
        let one = b.iconst(1);
        let zero = b.iconst(0);
        let v = b.sel(*p, one, zero);
        acc = b.iadd(acc, v);
    }
    let out = b.param_ptr(0);
    b.st_global_u32(out, acc);
    match Compiler::new().compile(&b.finish()) {
        Err(CompileError::RegAlloc(RegAllocError::PredPressure { .. })) => {}
        other => panic!("expected predicate pressure error, got {other:?}"),
    }
}

#[test]
fn umulhi_and_wide_math() {
    // out = umulhi(tid * 2^16, 2^16) = tid (for tid < 2^16)
    let mut b = KernelBuilder::kernel("hi");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let lo = b.shl(tid, 16u32);
    let hi = b.umulhi(lo, 1u32 << 16);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, hi);
    let out = run1(b.finish(), 32, 32, &[]);
    for (t, &v) in out.iter().enumerate().take(32) {
        assert_eq!(v, t as u32);
    }
}

#[test]
fn widen_signed_and_pack() {
    // (-5 sign-extended to 64) summed halves: lo + hi = -5 + -1.
    let mut b = KernelBuilder::kernel("widen");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let m5 = b.iconst((-5i32) as u32);
    let wide = b.widen_signed(m5);
    let lo = b.lo32(wide);
    let hi = b.hi32(wide);
    let sum = b.iadd(lo, hi);
    let _ = tid;
    let tid2 = b.global_tid_x();
    let e = b.lea(out, tid2, 2);
    b.st_global_u32(e, sum);
    let out = run1(b.finish(), 32, 32, &[]);
    assert!(out.iter().all(|&v| v == (-6i32) as u32));
}
