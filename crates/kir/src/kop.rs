//! The kernel-IR instruction set: virtual-register operations close to
//! SASS (each lowers to 1–3 machine instructions), plus control-flow
//! pseudo-ops with symbolic labels and reconvergence annotations.

use crate::vreg::{LabelId, VReg, VSrc};
use sassi_isa::{
    AddrSpace, AtomOp, CBankAddr, CmpOp, LogicOp, MemWidth, MufuFunc, ShflMode, SpecialReg,
    VoteMode,
};
use serde::{Deserialize, Serialize};

/// 32-bit integer binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IBinOp {
    Add,
    Sub,
    Mul,
    MulHiU,
    MinS,
    MinU,
    MaxS,
    MaxU,
    And,
    Or,
    Xor,
    Shl,
    ShrU,
    ShrS,
}

/// 32-bit float binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Min,
    Max,
}

/// 32-bit integer unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum IUnOp {
    Popc,
    Flo,
    Brev,
}

/// A memory address in the IR.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum KAddr {
    /// Stack-frame slot: `[SP + offset]` in local space.
    Frame {
        /// Byte offset from the frame base.
        offset: i32,
    },
    /// Register-based: `[base + offset]`. The base register class must
    /// be `B64` for global/generic spaces and `B32` for shared.
    Reg {
        /// Base register.
        base: VReg,
        /// Byte offset.
        offset: i32,
    },
}

/// A guard on an IR instruction: execute only where the predicate
/// (possibly negated) holds.
pub type KGuard = Option<(VReg, bool)>;

/// One IR instruction.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct KInstr {
    /// Optional guard predicate.
    pub guard: KGuard,
    /// The operation.
    pub op: KOp,
}

impl KInstr {
    /// Unguarded instruction.
    pub fn new(op: KOp) -> KInstr {
        KInstr { guard: None, op }
    }
}

/// A kernel-IR operation.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // d = dest, a/b/c = sources throughout
pub enum KOp {
    // -- constants and moves ------------------------------------------------
    Imm32 {
        d: VReg,
        v: u32,
    },
    Imm64 {
        d: VReg,
        v: u64,
    },
    Mov32 {
        d: VReg,
        a: VSrc,
    },
    Mov64 {
        d: VReg,
        a: VReg,
    },
    Special {
        d: VReg,
        sr: SpecialReg,
    },
    LdConst32 {
        d: VReg,
        addr: CBankAddr,
    },
    LdConst64 {
        d: VReg,
        addr: CBankAddr,
    },
    /// Reads ABI parameter register pair `idx` (0 → R4:R5, 1 → R6:R7).
    /// Only valid at the start of ABI functions (handlers).
    AbiParam64 {
        d: VReg,
        idx: u8,
    },

    // -- 32-bit integer ------------------------------------------------------
    IBin {
        op: IBinOp,
        d: VReg,
        a: VReg,
        b: VSrc,
    },
    IMad {
        d: VReg,
        a: VReg,
        b: VSrc,
        c: VReg,
    },
    IUn {
        op: IUnOp,
        d: VReg,
        a: VReg,
    },
    Sel {
        d: VReg,
        a: VReg,
        b: VSrc,
        p: VReg,
        neg_p: bool,
    },

    // -- 64-bit integer ------------------------------------------------------
    Add64 {
        d: VReg,
        a: VReg,
        b: VReg,
    },
    /// `d = a + (b << shift)` where `a` is 64-bit and `b` 32-bit
    /// zero-extended: the addressing workhorse.
    Lea64 {
        d: VReg,
        a: VReg,
        b: VReg,
        shift: u8,
    },
    Widen {
        d: VReg,
        a: VReg,
        signed: bool,
    },
    Pack64 {
        d: VReg,
        lo: VReg,
        hi: VReg,
    },
    Lo32 {
        d: VReg,
        a: VReg,
    },
    Hi32 {
        d: VReg,
        a: VReg,
    },

    // -- float ---------------------------------------------------------------
    FBin {
        op: FBinOp,
        d: VReg,
        a: VReg,
        b: VSrc,
    },
    FFma {
        d: VReg,
        a: VReg,
        b: VSrc,
        c: VReg,
    },
    Mufu {
        d: VReg,
        func: MufuFunc,
        a: VReg,
    },
    I2F {
        d: VReg,
        a: VReg,
        signed: bool,
    },
    F2I {
        d: VReg,
        a: VReg,
        signed: bool,
    },

    // -- predicates ----------------------------------------------------------
    ISetP {
        p: VReg,
        cmp: CmpOp,
        signed: bool,
        a: VReg,
        b: VSrc,
    },
    FSetP {
        p: VReg,
        cmp: CmpOp,
        a: VReg,
        b: VSrc,
    },
    PBin {
        p: VReg,
        op: LogicOp,
        a: VReg,
        b: VReg,
        neg_a: bool,
        neg_b: bool,
    },
    PImm {
        p: VReg,
        v: bool,
    },

    // -- memory --------------------------------------------------------------
    Ld {
        d: VReg,
        width: MemWidth,
        space: AddrSpace,
        addr: KAddr,
    },
    St {
        v: VReg,
        width: MemWidth,
        space: AddrSpace,
        addr: KAddr,
    },
    Tld {
        d: VReg,
        width: MemWidth,
        base: VReg,
        offset: i32,
    },
    Atom {
        d: Option<VReg>,
        op: AtomOp,
        wide: bool,
        space: AddrSpace,
        addr: KAddr,
        v: VReg,
        v2: Option<VReg>,
    },
    /// Generic 64-bit address of a stack-frame slot (`(SP+off) | LOCAL_TAG`).
    FrameAddrGeneric {
        d: VReg,
        offset: i32,
    },
    MemBar,

    // -- warp-wide -----------------------------------------------------------
    Vote {
        mode: VoteMode,
        d: Option<VReg>,
        p_out: Option<VReg>,
        src: VReg,
        neg_src: bool,
    },
    Shfl {
        mode: ShflMode,
        d: VReg,
        a: VReg,
        b: VSrc,
        c_imm: u32,
        p_out: Option<VReg>,
    },
    Bar,

    // -- control flow ---------------------------------------------------------
    Label {
        id: LabelId,
    },
    Bra {
        t: LabelId,
    },
    Ssy {
        t: LabelId,
    },
    Sync {
        reconv: LabelId,
    },
    Exit,
    Ret,
    Nop,
}

/// Def/use sets of an IR instruction (virtual registers only).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KDefsUses {
    /// Virtual registers written.
    pub defs: Vec<VReg>,
    /// Virtual registers read (guard included).
    pub uses: Vec<VReg>,
}

fn use_src(u: &mut Vec<VReg>, s: &VSrc) {
    if let VSrc::Reg(r) = s {
        u.push(*r);
    }
}

fn use_addr(u: &mut Vec<VReg>, a: &KAddr) {
    if let KAddr::Reg { base, .. } = a {
        u.push(*base);
    }
}

impl KInstr {
    /// Computes virtual-register defs and uses. Guarded instructions
    /// treat their defs as also-uses (a predicated write is a partial
    /// write), which keeps liveness conservative and correct.
    pub fn defs_uses(&self) -> KDefsUses {
        let mut d = Vec::new();
        let mut u = Vec::new();
        match &self.op {
            KOp::Imm32 { d: x, .. } | KOp::Imm64 { d: x, .. } => d.push(*x),
            KOp::Mov32 { d: x, a } => {
                d.push(*x);
                use_src(&mut u, a);
            }
            KOp::Mov64 { d: x, a } => {
                d.push(*x);
                u.push(*a);
            }
            KOp::Special { d: x, .. }
            | KOp::LdConst32 { d: x, .. }
            | KOp::LdConst64 { d: x, .. }
            | KOp::AbiParam64 { d: x, .. } => d.push(*x),
            KOp::IBin { d: x, a, b, .. } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
            }
            KOp::IMad { d: x, a, b, c } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
                u.push(*c);
            }
            KOp::IUn { d: x, a, .. } => {
                d.push(*x);
                u.push(*a);
            }
            KOp::Sel { d: x, a, b, p, .. } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
                u.push(*p);
            }
            KOp::Add64 { d: x, a, b } => {
                d.push(*x);
                u.push(*a);
                u.push(*b);
            }
            KOp::Lea64 { d: x, a, b, .. } => {
                d.push(*x);
                u.push(*a);
                u.push(*b);
            }
            KOp::Widen { d: x, a, .. } | KOp::Lo32 { d: x, a } | KOp::Hi32 { d: x, a } => {
                d.push(*x);
                u.push(*a);
            }
            KOp::Pack64 { d: x, lo, hi } => {
                d.push(*x);
                u.push(*lo);
                u.push(*hi);
            }
            KOp::FBin { d: x, a, b, .. } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
            }
            KOp::FFma { d: x, a, b, c } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
                u.push(*c);
            }
            KOp::Mufu { d: x, a, .. } | KOp::I2F { d: x, a, .. } | KOp::F2I { d: x, a, .. } => {
                d.push(*x);
                u.push(*a);
            }
            KOp::ISetP { p, a, b, .. } | KOp::FSetP { p, a, b, .. } => {
                d.push(*p);
                u.push(*a);
                use_src(&mut u, b);
            }
            KOp::PBin { p, a, b, .. } => {
                d.push(*p);
                u.push(*a);
                u.push(*b);
            }
            KOp::PImm { p, .. } => d.push(*p),
            KOp::Ld { d: x, addr, .. } => {
                d.push(*x);
                use_addr(&mut u, addr);
            }
            KOp::St { v, addr, .. } => {
                u.push(*v);
                use_addr(&mut u, addr);
            }
            KOp::Tld { d: x, base, .. } => {
                d.push(*x);
                u.push(*base);
            }
            KOp::Atom {
                d: x, addr, v, v2, ..
            } => {
                if let Some(x) = x {
                    d.push(*x);
                }
                use_addr(&mut u, addr);
                u.push(*v);
                if let Some(v2) = v2 {
                    u.push(*v2);
                }
            }
            KOp::FrameAddrGeneric { d: x, .. } => d.push(*x),
            KOp::Vote {
                d: x, p_out, src, ..
            } => {
                if let Some(x) = x {
                    d.push(*x);
                }
                if let Some(p) = p_out {
                    d.push(*p);
                }
                u.push(*src);
            }
            KOp::Shfl {
                d: x, a, b, p_out, ..
            } => {
                d.push(*x);
                u.push(*a);
                use_src(&mut u, b);
                if let Some(p) = p_out {
                    d.push(*p);
                }
            }
            KOp::MemBar
            | KOp::Bar
            | KOp::Label { .. }
            | KOp::Bra { .. }
            | KOp::Ssy { .. }
            | KOp::Sync { .. }
            | KOp::Exit
            | KOp::Ret
            | KOp::Nop => {}
        }
        if let Some((p, _)) = &self.guard {
            u.push(*p);
            // A guarded def may leave the old value in place.
            u.extend(d.iter().copied());
        }
        KDefsUses { defs: d, uses: u }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.op,
            KOp::Bra { .. } | KOp::Sync { .. } | KOp::Exit | KOp::Ret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u32) -> VReg {
        VReg(n)
    }

    #[test]
    fn defs_uses_basic() {
        let i = KInstr::new(KOp::IBin {
            op: IBinOp::Add,
            d: v(0),
            a: v(1),
            b: VSrc::Reg(v(2)),
        });
        let du = i.defs_uses();
        assert_eq!(du.defs, vec![v(0)]);
        assert_eq!(du.uses, vec![v(1), v(2)]);
    }

    #[test]
    fn guarded_def_is_also_use() {
        let mut i = KInstr::new(KOp::Imm32 { d: v(0), v: 1 });
        i.guard = Some((v(9), false));
        let du = i.defs_uses();
        assert!(du.uses.contains(&v(9)));
        assert!(du.uses.contains(&v(0)), "guarded def must count as use");
    }

    #[test]
    fn frame_addr_has_no_reg_uses() {
        let i = KInstr::new(KOp::Ld {
            d: v(0),
            width: MemWidth::B32,
            space: AddrSpace::Local,
            addr: KAddr::Frame { offset: 8 },
        });
        assert!(i.defs_uses().uses.is_empty());
    }

    #[test]
    fn terminators() {
        assert!(KInstr::new(KOp::Exit).is_terminator());
        assert!(KInstr::new(KOp::Bra { t: LabelId(0) }).is_terminator());
        assert!(KInstr::new(KOp::Sync { reconv: LabelId(0) }).is_terminator());
        assert!(!KInstr::new(KOp::Nop).is_terminator());
    }
}
