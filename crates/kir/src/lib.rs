//! # sassi-kir — kernel IR, builder DSL and backend compiler
//!
//! The role NVIDIA's `nvcc`/`ptxas` chain plays in the paper *Flexible
//! Software Profiling of GPU Architectures* (ISCA 2015), rebuilt from
//! scratch:
//!
//! * [`KernelBuilder`] — a typed, structured DSL for authoring device
//!   kernels (the "CUDA source" of this reproduction). Control flow
//!   lowers to `SSY`/`SYNC` SIMT reconvergence.
//! * [`Compiler`] — the backend: CFG construction, dataflow liveness,
//!   linear-scan register allocation with spilling (including the
//!   16-register handler cap, `-maxrregcount=16` in the paper), and
//!   lowering to the SASS-like ISA of [`sassi_isa`].
//! * [`sasslive`] — SASS-level per-instruction liveness and
//!   post-dominance, the compile-time facts the SASSI instrumentor
//!   consumes when it runs as the compiler's final pass.
//!
//! ```
//! use sassi_kir::{Compiler, KernelBuilder};
//!
//! let mut b = KernelBuilder::kernel("scale");
//! let i = b.global_tid_x();
//! let n = b.param_u32(0);
//! let buf = b.param_ptr(1);
//! let p = b.setp_u32_lt(i, n);
//! b.if_(p, |b| {
//!     let e = b.lea(buf, i, 2);
//!     let v = b.ld_global_u32(e);
//!     let w = b.shl(v, 1u32);
//!     b.st_global_u32(e, w);
//! });
//! let sass = Compiler::new().compile(&b.finish()).unwrap();
//! println!("{sass}"); // cuobjdump-style listing
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod cfg;
mod compiler;
mod kop;
mod liveness;
mod lower;
mod regalloc;
pub mod sasslive;
mod verify;
mod vreg;

pub use builder::{FrameSlot, KFunction, KernelBuilder, SharedSlot};
pub use cfg::{Block, Cfg};
pub use compiler::{CompileError, Compiler};
pub use kop::{FBinOp, IBinOp, IUnOp, KAddr, KDefsUses, KGuard, KInstr, KOp};
pub use liveness::{block_liveness, live_intervals, Interval, Liveness, VBitSet};
pub use regalloc::{allocate, Allocation, Loc, RegAllocError};
pub use verify::{check_kir, check_reconvergence};
pub use vreg::{LabelId, VClass, VReg, VSrc, V32, V64, VP};
