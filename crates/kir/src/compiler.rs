//! The backend compiler driver — our `ptxas`.
//!
//! Pipeline: KIR verification → CFG → liveness → linear-scan register
//! allocation (optionally under a register cap, the `-maxrregcount`
//! analogue) → lowering to SASS → reconvergence verification → an
//! optional *final pass*, which is where SASSI plugs in, exactly as the
//! paper's Figure 1 shows it inside `ptxas`.

use crate::builder::KFunction;
use crate::cfg::Cfg;
use crate::liveness::{block_liveness, live_intervals};
use crate::lower::lower;
use crate::regalloc::{allocate, RegAllocError};
use crate::verify;
use sassi_isa::Function;
use std::fmt;

/// Compilation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileError {
    /// Register allocation failed.
    RegAlloc(RegAllocError),
    /// A single IR instruction needed more scratch registers than the
    /// reserved quad provides.
    ScratchPressure,
    /// A label was referenced but never placed.
    UnplacedLabel(u32),
    /// IR or reconvergence verification failed.
    Verify(String),
    /// Internal invariant violation (a compiler bug).
    Internal(&'static str),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::RegAlloc(e) => write!(f, "register allocation failed: {e}"),
            CompileError::ScratchPressure => {
                write!(f, "instruction exceeds the reserved scratch registers")
            }
            CompileError::UnplacedLabel(l) => write!(f, "label L{l} referenced but never placed"),
            CompileError::Verify(m) => write!(f, "verification failed: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<RegAllocError> for CompileError {
    fn from(e: RegAllocError) -> CompileError {
        CompileError::RegAlloc(e)
    }
}

/// The backend compiler.
///
/// ```
/// use sassi_kir::{Compiler, KernelBuilder};
///
/// let mut b = KernelBuilder::kernel("triple");
/// let x = b.param_u32(0);
/// let y = b.imul(x, 3u32);
/// let out = b.param_ptr(1);
/// b.st_global_u32(out, y);
/// let f = Compiler::new().compile(&b.finish()).unwrap();
/// assert!(f.len() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct Compiler {
    max_regs: u8,
    verify: bool,
}

impl Default for Compiler {
    fn default() -> Compiler {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler with the default register budget (63, the classic
    /// Kepler per-thread limit for full occupancy) and verification on.
    pub fn new() -> Compiler {
        Compiler {
            max_regs: 63,
            verify: true,
        }
    }

    /// Caps the per-thread register budget — the analogue of compiling
    /// with `-maxrregcount`. The paper compiles instrumentation handlers
    /// with a cap of 16 (§3.2).
    pub fn max_regs(mut self, n: u8) -> Compiler {
        self.max_regs = n;
        self
    }

    /// Enables or disables IR and reconvergence verification.
    pub fn verification(mut self, on: bool) -> Compiler {
        self.verify = on;
        self
    }

    /// Compiles a function to SASS.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for malformed IR, unsatisfiable
    /// register pressure (predicates) or verification failures.
    pub fn compile(&self, f: &KFunction) -> Result<Function, CompileError> {
        if self.verify {
            verify::check_kir(f)?;
        }
        let cfg = Cfg::build(f);
        let lv = block_liveness(f, &cfg);
        let intervals = live_intervals(f, &cfg, &lv);
        let alloc = allocate(f, &intervals, self.max_regs, f.frame_bytes)?;
        let func = lower(f, &alloc)?;
        if self.verify {
            verify::check_reconvergence(&func).map_err(CompileError::Verify)?;
        }
        Ok(func)
    }

    /// Compiles and then runs `pass` as the *final backend pass* over
    /// the machine code — the hook SASSI uses (paper Figure 1: SASSI sits
    /// at the end of `ptxas`, after code generation and register
    /// allocation, so instrumentation never perturbs the original code).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; the pass itself is infallible.
    pub fn compile_with_final_pass(
        &self,
        f: &KFunction,
        pass: impl FnOnce(Function) -> Function,
    ) -> Result<Function, CompileError> {
        Ok(pass(self.compile(f)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use sassi_isa::Op;

    fn vadd_kfunc() -> KFunction {
        let mut b = KernelBuilder::kernel("vadd");
        let i = b.global_tid_x();
        let n = b.param_u32(0);
        let pa = b.param_ptr(1);
        let pb = b.param_ptr(2);
        let po = b.param_ptr(3);
        let p = b.setp_u32_lt(i, n);
        b.if_(p, |b| {
            let ea = b.lea(pa, i, 2);
            let eb = b.lea(pb, i, 2);
            let x = b.ld_global_f32(ea);
            let y = b.ld_global_f32(eb);
            let sum = b.fadd(x, y);
            let eo = b.lea(po, i, 2);
            b.st_global_u32(eo, sum);
        });
        b.finish()
    }

    #[test]
    fn compiles_vadd() {
        let f = Compiler::new().compile(&vadd_kfunc()).unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i.op, Op::Ssy { .. })));
        assert!(f.instrs.iter().any(|i| matches!(i.op, Op::Exit)));
        assert!(f.meta.reg_high_water >= 2);
        // No spills expected at 63 registers.
        assert!(!f.instrs.iter().any(|i| i.class().is_spill_or_fill()));
    }

    #[test]
    fn cap_16_forces_spill_code() {
        let mut b = KernelBuilder::kernel("pressure");
        let out = b.param_ptr(0);
        let vals: Vec<_> = (0..20).map(|k| b.iconst(k)).collect();
        let mut acc = b.iconst(0);
        for v in &vals {
            acc = b.iadd(acc, *v);
        }
        b.st_global_u32(out, acc);
        let kf = b.finish();
        let f = Compiler::new().max_regs(16).compile(&kf).unwrap();
        assert!(
            f.instrs.iter().any(|i| i.class().is_spill_or_fill()),
            "expected spill code under the 16-register cap:\n{f}"
        );
        assert!(f.meta.frame_bytes > 0);
        // Prologue adjusts the stack pointer.
        assert!(matches!(f.instrs[0].op, Op::IAdd { d, .. } if d == sassi_isa::Gpr::SP));
    }

    #[test]
    fn branch_targets_resolved() {
        let f = Compiler::new().compile(&vadd_kfunc()).unwrap();
        for ins in &f.instrs {
            match &ins.op {
                Op::Bra { target, .. } | Op::Ssy { target } => match target {
                    sassi_isa::Label::Pc(t) => assert!((*t as usize) < f.instrs.len() + 1),
                    other => panic!("unresolved label {other:?}"),
                },
                _ => {}
            }
        }
        // Every SYNC has a recorded reconvergence point.
        for (i, ins) in f.instrs.iter().enumerate() {
            if matches!(ins.op, Op::Sync) {
                assert!(
                    f.meta.sync_reconv.contains_key(&(i as u32)),
                    "sync at {i} missing reconvergence metadata"
                );
            }
        }
    }

    #[test]
    fn final_pass_hook_runs() {
        let mut seen = false;
        let _ = Compiler::new()
            .compile_with_final_pass(&vadd_kfunc(), |f| {
                seen = true;
                f
            })
            .unwrap();
        assert!(seen);
    }

    #[test]
    fn loop_kernel_compiles() {
        let mut b = KernelBuilder::kernel("sum");
        let n = b.param_u32(0);
        let src = b.param_ptr(1);
        let out = b.param_ptr(2);
        let acc = b.var_u32(0u32);
        b.for_range(0u32, n, 1, |b, i| {
            let e = b.lea(src, i, 2);
            let v = b.ld_global_u32(e);
            let nxt = b.iadd(acc, v);
            b.assign(acc, nxt);
        });
        b.st_global_u32(out, acc);
        let f = Compiler::new().compile(&b.finish()).unwrap();
        assert!(f.instrs.iter().any(|i| matches!(i.op, Op::Bra { .. })));
    }
}
