//! Verification passes: kernel-IR well-formedness and SASS-level
//! reconvergence checking.

use crate::builder::KFunction;
use crate::compiler::CompileError;
use crate::kop::{KAddr, KOp};
use crate::sasslive::{postdominators, SassCfg};
use crate::vreg::{LabelId, VClass, VReg, VSrc};
use sassi_isa::{AddrSpace, Function, Label, Op};
use std::collections::HashSet;

fn class_of(f: &KFunction, r: VReg) -> VClass {
    f.classes[r.index() as usize]
}

fn expect(f: &KFunction, r: VReg, want: VClass, what: &str, at: usize) -> Result<(), CompileError> {
    let got = class_of(f, r);
    if got != want {
        return Err(CompileError::Verify(format!(
            "instruction {at}: {what} {r} has class {got:?}, expected {want:?}"
        )));
    }
    Ok(())
}

fn expect_src(
    f: &KFunction,
    s: &VSrc,
    want: VClass,
    what: &str,
    at: usize,
) -> Result<(), CompileError> {
    if let VSrc::Reg(r) = s {
        expect(f, *r, want, what, at)?;
    }
    Ok(())
}

/// Checks kernel-IR well-formedness: label discipline, operand register
/// classes and address-space/base-class agreement.
///
/// # Errors
///
/// Returns [`CompileError::Verify`] describing the first violation, or
/// [`CompileError::UnplacedLabel`].
pub fn check_kir(f: &KFunction) -> Result<(), CompileError> {
    use VClass::{Pred, B32, B64};
    let mut placed: HashSet<LabelId> = HashSet::new();
    for ins in &f.instrs {
        if let KOp::Label { id } = ins.op {
            if !placed.insert(id) {
                return Err(CompileError::Verify(format!("label {id} placed twice")));
            }
        }
    }

    for (at, ins) in f.instrs.iter().enumerate() {
        if let Some((p, _)) = &ins.guard {
            expect(f, *p, Pred, "guard", at)?;
        }
        let check_label = |l: &LabelId| -> Result<(), CompileError> {
            if placed.contains(l) {
                Ok(())
            } else {
                Err(CompileError::UnplacedLabel(l.0))
            }
        };
        match &ins.op {
            KOp::Imm32 { d, .. } => expect(f, *d, B32, "dest", at)?,
            KOp::Imm64 { d, .. } => expect(f, *d, B64, "dest", at)?,
            KOp::Mov32 { d, a } => {
                expect(f, *d, B32, "dest", at)?;
                expect_src(f, a, B32, "src", at)?;
            }
            KOp::Mov64 { d, a } => {
                expect(f, *d, B64, "dest", at)?;
                expect(f, *a, B64, "src", at)?;
            }
            KOp::Special { d, .. } | KOp::LdConst32 { d, .. } => expect(f, *d, B32, "dest", at)?,
            KOp::LdConst64 { d, .. } => expect(f, *d, B64, "dest", at)?,
            KOp::AbiParam64 { d, idx } => {
                expect(f, *d, B64, "dest", at)?;
                if !f.abi_function {
                    return Err(CompileError::Verify(format!(
                        "instruction {at}: AbiParam64 outside ABI function"
                    )));
                }
                if *idx > 1 {
                    return Err(CompileError::Verify(format!(
                        "instruction {at}: ABI param index {idx} out of range"
                    )));
                }
            }
            KOp::IBin { d, a, b, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
            }
            KOp::IMad { d, a, b, c } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
                expect(f, *c, B32, "src c", at)?;
            }
            KOp::IUn { d, a, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src", at)?;
            }
            KOp::Sel { d, a, b, p, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
                expect(f, *p, Pred, "pred", at)?;
            }
            KOp::Add64 { d, a, b } => {
                expect(f, *d, B64, "dest", at)?;
                expect(f, *a, B64, "src a", at)?;
                expect(f, *b, B64, "src b", at)?;
            }
            KOp::Lea64 { d, a, b, shift } => {
                expect(f, *d, B64, "dest", at)?;
                expect(f, *a, B64, "base", at)?;
                expect(f, *b, B32, "index", at)?;
                if *shift > 31 {
                    return Err(CompileError::Verify(format!(
                        "instruction {at}: lea shift {shift} out of range"
                    )));
                }
            }
            KOp::Widen { d, a, .. } => {
                expect(f, *d, B64, "dest", at)?;
                expect(f, *a, B32, "src", at)?;
            }
            KOp::Pack64 { d, lo, hi } => {
                expect(f, *d, B64, "dest", at)?;
                expect(f, *lo, B32, "lo", at)?;
                expect(f, *hi, B32, "hi", at)?;
            }
            KOp::Lo32 { d, a } | KOp::Hi32 { d, a } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B64, "src", at)?;
            }
            KOp::FBin { d, a, b, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
            }
            KOp::FFma { d, a, b, c } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
                expect(f, *c, B32, "src c", at)?;
            }
            KOp::Mufu { d, a, .. } | KOp::I2F { d, a, .. } | KOp::F2I { d, a, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src", at)?;
            }
            KOp::ISetP { p, a, b, .. } | KOp::FSetP { p, a, b, .. } => {
                expect(f, *p, Pred, "dest pred", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
            }
            KOp::PBin { p, a, b, .. } => {
                expect(f, *p, Pred, "dest pred", at)?;
                expect(f, *a, Pred, "src a", at)?;
                expect(f, *b, Pred, "src b", at)?;
            }
            KOp::PImm { p, .. } => expect(f, *p, Pred, "dest pred", at)?,
            KOp::Ld {
                d,
                width,
                space,
                addr,
            } => {
                let want = if width.regs() == 2 { B64 } else { B32 };
                expect(f, *d, want, "dest", at)?;
                check_addr(f, *space, addr, at)?;
            }
            KOp::St {
                v,
                width,
                space,
                addr,
            } => {
                let want = if width.regs() == 2 { B64 } else { B32 };
                expect(f, *v, want, "value", at)?;
                check_addr(f, *space, addr, at)?;
            }
            KOp::Tld { d, base, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *base, B64, "base", at)?;
            }
            KOp::Atom {
                d,
                wide,
                space,
                addr,
                v,
                v2,
                ..
            } => {
                let want = if *wide { B64 } else { B32 };
                if let Some(d) = d {
                    expect(f, *d, want, "dest", at)?;
                }
                expect(f, *v, want, "value", at)?;
                if let Some(v2) = v2 {
                    expect(f, *v2, want, "value2", at)?;
                }
                if !matches!(space, AddrSpace::Global | AddrSpace::Shared) {
                    return Err(CompileError::Verify(format!(
                        "instruction {at}: atomics only on global/shared"
                    )));
                }
                check_addr(f, *space, addr, at)?;
            }
            KOp::FrameAddrGeneric { d, .. } => expect(f, *d, B64, "dest", at)?,
            KOp::Vote { d, p_out, src, .. } => {
                if let Some(d) = d {
                    expect(f, *d, B32, "dest", at)?;
                }
                if let Some(p) = p_out {
                    expect(f, *p, Pred, "dest pred", at)?;
                }
                expect(f, *src, Pred, "src pred", at)?;
            }
            KOp::Shfl { d, a, b, p_out, .. } => {
                expect(f, *d, B32, "dest", at)?;
                expect(f, *a, B32, "src a", at)?;
                expect_src(f, b, B32, "src b", at)?;
                if let Some(p) = p_out {
                    expect(f, *p, Pred, "dest pred", at)?;
                }
            }
            KOp::Bra { t } => check_label(t)?,
            KOp::Ssy { t } => check_label(t)?,
            KOp::Sync { reconv } => check_label(reconv)?,
            KOp::Ret => {
                if !f.abi_function {
                    return Err(CompileError::Verify(format!(
                        "instruction {at}: RET in kernel (use EXIT)"
                    )));
                }
            }
            KOp::MemBar | KOp::Bar | KOp::Label { .. } | KOp::Exit | KOp::Nop => {}
        }
    }
    Ok(())
}

fn check_addr(
    f: &KFunction,
    space: AddrSpace,
    addr: &KAddr,
    at: usize,
) -> Result<(), CompileError> {
    match (space, addr) {
        (AddrSpace::Local, KAddr::Frame { .. }) => Ok(()),
        (AddrSpace::Local, KAddr::Reg { base, .. })
        | (AddrSpace::Shared, KAddr::Reg { base, .. }) => {
            expect(f, *base, VClass::B32, "address base", at)
        }
        (AddrSpace::Global, KAddr::Reg { base, .. })
        | (AddrSpace::Generic, KAddr::Reg { base, .. }) => {
            expect(f, *base, VClass::B64, "address base", at)
        }
        _ => Err(CompileError::Verify(format!(
            "instruction {at}: invalid space/address combination {space:?}"
        ))),
    }
}

/// Checks that every `SSY` target post-dominates the `SSY` itself —
/// i.e. the backend placed reconvergence points at immediate
/// post-dominators, the invariant divergence hardware relies on.
///
/// Lanes that `EXIT` under a guard are excluded from the requirement
/// (exited lanes never reconverge).
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn check_reconvergence(f: &Function) -> Result<(), String> {
    let cfg = SassCfg::build(f);
    let pdom = postdominators(&cfg);
    for (i, ins) in f.instrs.iter().enumerate() {
        if let Op::Ssy {
            target: Label::Pc(t),
        } = ins.op
        {
            let from = cfg.block_of[i];
            let to = cfg.block_of[t as usize];
            if !pdom[from][to] {
                return Err(format!(
                    "SSY at {i} targets {t}, which does not post-dominate it"
                ));
            }
        }
    }
    // Every SYNC must have reconvergence metadata.
    for (i, ins) in f.instrs.iter().enumerate() {
        if matches!(ins.op, Op::Sync) && !f.meta.sync_reconv.contains_key(&(i as u32)) {
            return Err(format!("SYNC at {i} has no reconvergence metadata"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::compiler::Compiler;
    use crate::kop::KInstr;

    #[test]
    fn well_formed_kernel_passes() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(3);
        let p = b.setp_u32_lt(x, 5u32);
        b.if_(p, |b| {
            let _ = b.iadd(x, 1u32);
        });
        assert!(check_kir(&b.finish()).is_ok());
    }

    #[test]
    fn class_mismatch_rejected() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(3); // B32
        let f_ok = b.finish();
        let mut f = f_ok;
        // Forge an Add64 over a B32 register.
        f.instrs.push(KInstr::new(KOp::Add64 {
            d: x.vreg(),
            a: x.vreg(),
            b: x.vreg(),
        }));
        assert!(matches!(check_kir(&f), Err(CompileError::Verify(_))));
    }

    #[test]
    fn ret_in_kernel_rejected() {
        let mut b = KernelBuilder::kernel("k");
        let _ = b.iconst(0);
        let mut f = b.finish();
        f.instrs.push(KInstr::new(KOp::Ret));
        assert!(matches!(check_kir(&f), Err(CompileError::Verify(_))));
    }

    #[test]
    fn compiled_control_flow_reconverges_at_postdominators() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let p = b.setp_u32_lt(x, 2u32);
        b.if_else(
            p,
            |b| {
                let _ = b.iadd(x, 1u32);
            },
            |b| {
                let _ = b.iadd(x, 2u32);
            },
        );
        let n = b.iconst(4);
        b.for_range(0u32, n, 1, |b, i| {
            let _ = b.iadd(i, 1u32);
        });
        let f = Compiler::new()
            .verification(false)
            .compile(&b.finish())
            .unwrap();
        check_reconvergence(&f).unwrap();
    }
}
