//! Control-flow graph over kernel IR, and label resolution.

use crate::builder::KFunction;
use crate::kop::KOp;
use crate::vreg::LabelId;
use std::collections::HashMap;

/// A basic block: a half-open range of instruction indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
}

/// Control-flow graph of a [`KFunction`].
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in layout order.
    pub blocks: Vec<Block>,
    /// Successor block indices, per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices, per block.
    pub preds: Vec<Vec<usize>>,
    /// Instruction index of each label.
    pub label_pos: HashMap<LabelId, usize>,
    /// Block index containing each instruction.
    pub block_of: Vec<usize>,
}

/// Control-flow effect of an instruction, used to place block
/// boundaries and edges.
fn targets(op: &KOp) -> Option<LabelId> {
    match op {
        KOp::Bra { t } => Some(*t),
        KOp::Sync { reconv } => Some(*reconv),
        _ => None,
    }
}

fn is_control(op: &KOp) -> bool {
    matches!(
        op,
        KOp::Bra { .. } | KOp::Sync { .. } | KOp::Exit | KOp::Ret
    )
}

impl Cfg {
    /// Builds the CFG of `f`.
    ///
    /// Edges: a `BRA` goes to its target (plus fallthrough when
    /// guarded); a `SYNC` transfers parked lanes to its reconvergence
    /// label (plus fallthrough when guarded — lanes whose guard is
    /// false continue); `EXIT`/`RET` end the thread (fallthrough only
    /// when guarded).
    ///
    /// # Panics
    ///
    /// Panics if a referenced label is never placed.
    pub fn build(f: &KFunction) -> Cfg {
        let n = f.instrs.len();
        let mut label_pos = HashMap::new();
        for (i, ins) in f.instrs.iter().enumerate() {
            if let KOp::Label { id } = ins.op {
                label_pos.insert(id, i);
            }
        }

        // Leaders: entry, label positions, instruction after control ops.
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        for (i, ins) in f.instrs.iter().enumerate() {
            if let KOp::Label { .. } = ins.op {
                leader[i] = true;
            }
            if is_control(&ins.op) && i + 1 < n {
                leader[i + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (i, &is_leader) in leader.iter().enumerate().take(n).skip(1) {
            if is_leader {
                blocks.push(Block { start, end: i });
                start = i;
            }
        }
        if n > 0 {
            blocks.push(Block { start, end: n });
        }
        for (bi, b) in blocks.iter().enumerate() {
            for bo in &mut block_of[b.start..b.end] {
                *bo = bi;
            }
        }

        let mut succs = vec![Vec::new(); blocks.len()];
        for (bi, b) in blocks.iter().enumerate() {
            if b.end == b.start {
                continue;
            }
            let last = &f.instrs[b.end - 1];
            let guarded = last.guard.is_some();
            let mut out: Vec<usize> = Vec::new();
            if let Some(t) = targets(&last.op) {
                let pos = *label_pos
                    .get(&t)
                    .unwrap_or_else(|| panic!("label {t} referenced but never placed"));
                out.push(block_of[pos]);
            }
            let falls = match &last.op {
                KOp::Bra { .. } | KOp::Sync { .. } | KOp::Exit => guarded,
                KOp::Ret => false,
                _ => true, // block ended by a following leader (label)
            };
            if falls && b.end < n {
                out.push(block_of[b.end]);
            }
            out.dedup();
            succs[bi] = out;
        }

        let mut preds = vec![Vec::new(); blocks.len()];
        for (bi, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(bi);
            }
        }

        Cfg {
            blocks,
            succs,
            preds,
            label_pos,
            block_of,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn straight_line_single_block() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let _ = b.iadd(x, 2u32);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.len(), 1);
        assert!(cfg.succs[0].is_empty(), "exit block has no successors");
    }

    #[test]
    fn if_produces_diamond_ish_graph() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let p = b.setp_u32_lt(x, 2u32);
        b.if_(p, |b| {
            let _ = b.iconst(3);
        });
        let f = b.finish();
        let cfg = Cfg::build(&f);
        // ssy+guarded-sync | body+sync | end(label)+exit
        assert!(cfg.len() >= 3);
        // Entry block ends with a guarded sync: both target and fallthrough.
        assert_eq!(cfg.succs[0].len(), 2);
    }

    #[test]
    fn loop_has_back_edge() {
        let mut b = KernelBuilder::kernel("k");
        let n = b.iconst(4);
        b.for_range(0u32, n, 1, |b, i| {
            let _ = b.iadd(i, 1u32);
        });
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let has_back_edge = cfg
            .succs
            .iter()
            .enumerate()
            .any(|(bi, ss)| ss.iter().any(|&s| s <= bi));
        assert!(has_back_edge);
        // Every block except terminal ones has at least one successor.
        for (bi, ss) in cfg.succs.iter().enumerate() {
            let last = &f.instrs[cfg.blocks[bi].end - 1];
            if !matches!(last.op, KOp::Exit | KOp::Ret) {
                assert!(!ss.is_empty(), "non-exit block {bi} has no successors");
            }
        }
    }
}
