//! Linear-scan register allocation with spilling.
//!
//! Maps virtual registers onto the machine's GPR and predicate files
//! under a configurable register budget. 64-bit values get aligned GPR
//! pairs. When pressure exceeds the budget — which is exactly what
//! happens to instrumentation handlers compiled under the paper's
//! 16-register cap (`-maxrregcount=16`, §3.2) — values are assigned
//! stack-frame spill slots, and the lowering pass materializes
//! `LDL`/`STL` fills and spills around their uses.

use crate::builder::KFunction;
use crate::liveness::Interval;
use crate::vreg::VClass;
use std::fmt;

/// Where a virtual register lives after allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loc {
    /// A single GPR.
    Gpr(u8),
    /// An aligned GPR pair (value holds the low register).
    Pair(u8),
    /// A predicate register.
    Pred(u8),
    /// A 4-byte stack spill slot at this frame offset.
    SpillB32(u32),
    /// An 8-byte stack spill slot at this frame offset.
    SpillB64(u32),
}

impl Loc {
    /// Whether the value lives in memory.
    pub fn is_spill(&self) -> bool {
        matches!(self, Loc::SpillB32(_) | Loc::SpillB64(_))
    }
}

/// Allocation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegAllocError {
    /// More than seven predicates live at once (predicates cannot be
    /// spilled by this allocator).
    PredPressure {
        /// Position in the instruction stream.
        at: u32,
    },
    /// The register budget is too small to host the allocator's
    /// reserved registers.
    BudgetTooSmall {
        /// The offending budget.
        budget: u8,
    },
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegAllocError::PredPressure { at } => {
                write!(f, "more than 7 predicates live at instruction {at}")
            }
            RegAllocError::BudgetTooSmall { budget } => {
                write!(f, "register budget {budget} too small (minimum 12)")
            }
        }
    }
}

impl std::error::Error for RegAllocError {}

/// The result of register allocation for one function.
#[derive(Clone, Debug)]
pub struct Allocation {
    /// Location of each virtual register (`None` if it never appears).
    pub locs: Vec<Option<Loc>>,
    /// Bytes of stack frame consumed by spill slots (beyond the
    /// function's explicit locals).
    pub spill_bytes: u32,
    /// The four reserved scratch GPRs (an aligned quad at the top of
    /// the budget) used by the lowering pass for spill fills.
    pub scratch: [u8; 4],
    /// Highest GPR index handed out, plus one.
    pub reg_high_water: u32,
    /// Whether any value was spilled.
    pub spilled: bool,
}

struct Active {
    end: u32,
    vreg_idx: usize,
    loc: Loc,
}

struct Pool {
    free: [bool; 256],
    high_water: u32,
}

impl Pool {
    fn new(budget: u8, reserved: &[u8]) -> Pool {
        let mut free = [false; 256];
        for r in 0..budget {
            free[r as usize] = true;
        }
        for &r in reserved {
            free[r as usize] = false;
        }
        Pool {
            free,
            high_water: 0,
        }
    }

    fn take_single(&mut self) -> Option<u8> {
        for r in 0..=255u16 {
            if self.free[r as usize] {
                self.free[r as usize] = false;
                self.high_water = self.high_water.max(r as u32 + 1);
                return Some(r as u8);
            }
        }
        None
    }

    fn take_pair(&mut self) -> Option<u8> {
        let mut r = 0usize;
        while r + 1 < 256 {
            if self.free[r] && self.free[r + 1] {
                self.free[r] = false;
                self.free[r + 1] = false;
                self.high_water = self.high_water.max(r as u32 + 2);
                return Some(r as u8);
            }
            r += 2;
        }
        None
    }

    fn release(&mut self, loc: Loc) {
        match loc {
            Loc::Gpr(r) => self.free[r as usize] = true,
            Loc::Pair(r) => {
                self.free[r as usize] = true;
                self.free[r as usize + 1] = true;
            }
            _ => {}
        }
    }
}

/// Runs linear-scan allocation over `intervals` (sorted by start).
///
/// `budget` is the GPR cap (the paper's `-maxrregcount` analogue).
/// `spill_base` is the frame offset where spill slots may begin.
///
/// # Errors
///
/// Returns [`RegAllocError::PredPressure`] if more than seven predicates
/// are simultaneously live, and [`RegAllocError::BudgetTooSmall`] for
/// budgets under 12.
pub fn allocate(
    f: &KFunction,
    intervals: &[Interval],
    budget: u8,
    spill_base: u32,
) -> Result<Allocation, RegAllocError> {
    if budget < 12 {
        return Err(RegAllocError::BudgetTooSmall { budget });
    }
    // Reserved: R1 (stack pointer), a scratch quad at the top of the
    // budget, and the ABI parameter registers R4..R7 for handlers.
    let scratch_base = (budget - 4) & !1;
    let scratch = [
        scratch_base,
        scratch_base + 1,
        scratch_base + 2,
        scratch_base + 3,
    ];
    let mut reserved = vec![1u8, scratch[0], scratch[1], scratch[2], scratch[3]];
    if f.abi_function {
        reserved.extend_from_slice(&[4, 5, 6, 7]);
    }

    let mut pool = Pool::new(budget, &reserved);
    let mut pred_free = [true; 7];
    let mut locs: Vec<Option<Loc>> = vec![None; f.classes.len()];
    let mut active: Vec<Active> = Vec::new();
    let mut spill_next = (spill_base + 7) & !7;
    let mut spilled = false;

    let spill_slot = |class: VClass, spill_next: &mut u32| -> Loc {
        match class {
            VClass::B64 => {
                *spill_next = (*spill_next + 7) & !7;
                let off = *spill_next;
                *spill_next += 8;
                Loc::SpillB64(off)
            }
            _ => {
                let off = *spill_next;
                *spill_next += 4;
                Loc::SpillB32(off)
            }
        }
    };

    for iv in intervals {
        let pos = iv.start;
        // Expire strictly-finished intervals. Intervals ending exactly at
        // `pos` stay live so multi-instruction lowerings never alias a
        // destination with a just-dying source.
        active.retain(|a| {
            if a.end < pos {
                pool.release(a.loc);
                if let Loc::Pred(p) = a.loc {
                    pred_free[p as usize] = true;
                }
                false
            } else {
                true
            }
        });

        let class = f.classes[iv.vreg.index() as usize];
        let loc = match class {
            VClass::Pred => {
                let slot = (0..7u8).find(|&i| pred_free[i as usize]);
                match slot {
                    Some(i) => {
                        pred_free[i as usize] = false;
                        Loc::Pred(i)
                    }
                    None => return Err(RegAllocError::PredPressure { at: pos }),
                }
            }
            VClass::B32 => match pool.take_single() {
                Some(r) => Loc::Gpr(r),
                None => {
                    spilled = true;
                    // Spill the active GPR interval with the furthest end
                    // if it outlives the new one; otherwise spill the new.
                    if let Some((ai, _)) = active
                        .iter()
                        .enumerate()
                        .filter(|(_, a)| matches!(a.loc, Loc::Gpr(_) | Loc::Pair(_)))
                        .max_by_key(|(_, a)| a.end)
                        .filter(|(_, a)| a.end > iv.end)
                    {
                        let victim = active.remove(ai);
                        pool.release(victim.loc);
                        let vclass = f.classes[victim.vreg_idx];
                        locs[victim.vreg_idx] = Some(spill_slot(vclass, &mut spill_next));
                        Loc::Gpr(pool.take_single().expect("freed at least one GPR"))
                    } else {
                        spill_slot(VClass::B32, &mut spill_next)
                    }
                }
            },
            VClass::B64 => match pool.take_pair() {
                Some(r) => Loc::Pair(r),
                None => {
                    spilled = true;
                    // Evict furthest-end active intervals until a pair
                    // frees up, or give up and spill the new interval.
                    let mut assigned = None;
                    for _ in 0..8 {
                        let Some((ai, _)) = active
                            .iter()
                            .enumerate()
                            .filter(|(_, a)| matches!(a.loc, Loc::Gpr(_) | Loc::Pair(_)))
                            .max_by_key(|(_, a)| a.end)
                            .filter(|(_, a)| a.end > iv.end)
                        else {
                            break;
                        };
                        let victim = active.remove(ai);
                        pool.release(victim.loc);
                        let vclass = f.classes[victim.vreg_idx];
                        locs[victim.vreg_idx] = Some(spill_slot(vclass, &mut spill_next));
                        if let Some(r) = pool.take_pair() {
                            assigned = Some(Loc::Pair(r));
                            break;
                        }
                    }
                    assigned.unwrap_or_else(|| spill_slot(VClass::B64, &mut spill_next))
                }
            },
        };

        locs[iv.vreg.index() as usize] = Some(loc);
        if !loc.is_spill() {
            active.push(Active {
                end: iv.end,
                vreg_idx: iv.vreg.index() as usize,
                loc,
            });
        }
    }

    Ok(Allocation {
        locs,
        spill_bytes: spill_next.saturating_sub(spill_base),
        scratch,
        reg_high_water: pool.high_water.max(2), // R1 is always implicitly used
        spilled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::cfg::Cfg;
    use crate::liveness::{block_liveness, live_intervals};

    fn alloc_for(f: &KFunction, budget: u8) -> Allocation {
        let cfg = Cfg::build(f);
        let lv = block_liveness(f, &cfg);
        let ivs = live_intervals(f, &cfg, &lv);
        allocate(f, &ivs, budget, f.frame_bytes).unwrap()
    }

    #[test]
    fn simple_allocation_no_spills() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let y = b.iadd(x, 2u32);
        let _ = b.iadd(y, 3u32);
        let f = b.finish();
        let a = alloc_for(&f, 32);
        assert!(!a.spilled);
        assert_eq!(a.spill_bytes, 0);
        // No allocated register may be R1 or scratch.
        for loc in a.locs.iter().flatten() {
            match loc {
                Loc::Gpr(r) => {
                    assert_ne!(*r, 1);
                    assert!(!a.scratch.contains(r));
                }
                Loc::Pair(r) => {
                    assert_eq!(r % 2, 0);
                    assert!(!a.scratch.contains(r));
                    assert!(!a.scratch.contains(&(*r + 1)));
                    assert_ne!(*r, 1);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn pairs_are_even_aligned() {
        let mut b = KernelBuilder::kernel("k");
        let p = b.param_ptr(0);
        let q = b.param_ptr(1);
        let _ = b.add64(p, q);
        let f = b.finish();
        let a = alloc_for(&f, 32);
        for loc in a.locs.iter().flatten() {
            if let Loc::Pair(r) = loc {
                assert_eq!(r % 2, 0, "pair at R{r} not aligned");
            }
        }
    }

    #[test]
    fn pressure_forces_spills_under_16_reg_cap() {
        let mut b = KernelBuilder::kernel("k");
        // Create 24 values all live to the end.
        let vals: Vec<_> = (0..24).map(|i| b.iconst(i)).collect();
        let mut acc = b.iconst(0);
        for v in &vals {
            acc = b.iadd(acc, *v);
        }
        let f = b.finish();
        let a = alloc_for(&f, 16);
        assert!(a.spilled, "16-register cap must force spills");
        assert!(a.spill_bytes > 0);
        let a64 = alloc_for(&f, 64);
        assert!(!a64.spilled, "64 registers fit comfortably");
    }

    #[test]
    fn distinct_live_vregs_get_distinct_regs() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let y = b.iconst(2);
        let z = b.iadd(x, y); // x,y live simultaneously
        let _ = b.iadd(z, x); // x lives past y
        let f = b.finish();
        let a = alloc_for(&f, 32);
        let lx = a.locs[x.vreg().index() as usize].unwrap();
        let ly = a.locs[y.vreg().index() as usize].unwrap();
        assert_ne!(lx, ly);
    }

    #[test]
    fn abi_function_avoids_param_regs() {
        let mut b = KernelBuilder::abi_function("h");
        let p = b.abi_param_ptr(0);
        let v = b.ld_generic_u32(p, 0);
        let w = b.iadd(v, 1u32);
        b.st_generic_u32(p, 0, w);
        b.ret();
        let f = b.finish();
        let a = alloc_for(&f, 16);
        for loc in a.locs.iter().flatten() {
            match loc {
                Loc::Gpr(r) => assert!(!(4..=7).contains(r), "R{r} is an ABI param reg"),
                Loc::Pair(r) => {
                    assert!(!(4..=7).contains(r) && !(4..=7).contains(&(r + 1)));
                }
                _ => {}
            }
        }
    }

    #[test]
    fn budget_too_small_rejected() {
        let mut b = KernelBuilder::kernel("k");
        let _ = b.iconst(0);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = block_liveness(&f, &cfg);
        let ivs = live_intervals(&f, &cfg, &lv);
        assert!(matches!(
            allocate(&f, &ivs, 8, 0),
            Err(RegAllocError::BudgetTooSmall { .. })
        ));
    }
}
