//! Lowering: kernel IR + register assignment → SASS instructions.
//!
//! Each IR operation expands to one to three machine instructions.
//! Spilled virtual registers are materialized here: fills (`LDL` from
//! the stack frame, flagged as spill so SASSI's `IsSpillOrFill` sees
//! them) before uses, stores after defs, all staged through the four
//! reserved scratch registers.

use crate::builder::KFunction;
use crate::compiler::CompileError;
use crate::kop::{FBinOp, IBinOp, IUnOp, KAddr, KInstr, KOp};
use crate::regalloc::{Allocation, Loc};
use crate::vreg::{LabelId, VReg, VSrc};
use sassi_isa::{
    cbank0, AddrSpace, CBankAddr, Function, FunctionMeta, Gpr, Guard, Instr, IntWidth, Label,
    LogicOp, MemAddr, MemWidth, Op, PredReg, Src,
};
use std::collections::{BTreeMap, HashMap};

/// Per-instruction scratch register manager over the reserved quad.
struct Scratch {
    regs: [u8; 4],
    used: [bool; 4],
}

impl Scratch {
    fn new(regs: [u8; 4]) -> Scratch {
        Scratch {
            regs,
            used: [false; 4],
        }
    }

    fn take1(&mut self) -> Result<Gpr, CompileError> {
        for i in 0..4 {
            if !self.used[i] {
                self.used[i] = true;
                return Ok(Gpr::new(self.regs[i]));
            }
        }
        Err(CompileError::ScratchPressure)
    }

    fn take_pair(&mut self) -> Result<Gpr, CompileError> {
        for base in [0usize, 2] {
            if !self.used[base] && !self.used[base + 1] {
                self.used[base] = true;
                self.used[base + 1] = true;
                return Ok(Gpr::new(self.regs[base]));
            }
        }
        Err(CompileError::ScratchPressure)
    }

    /// Releases every slot — used by single-instruction ops, where the
    /// destination may safely alias source scratch (the machine reads
    /// all operands before writing).
    fn release_all(&mut self) {
        self.used = [false; 4];
    }
}

struct Lowerer<'a> {
    alloc: &'a Allocation,
    out: Vec<Instr>,
    fixups: Vec<(usize, LabelId)>,
    sync_fixups: Vec<(usize, LabelId)>,
    label_pos: HashMap<LabelId, u32>,
    frame_total: u32,
    uses_barrier: bool,
}

impl<'a> Lowerer<'a> {
    fn loc(&self, v: VReg) -> Result<Loc, CompileError> {
        self.alloc.locs[v.index() as usize].ok_or(CompileError::Internal("unallocated vreg"))
    }

    fn pred(&self, v: VReg) -> Result<PredReg, CompileError> {
        match self.loc(v)? {
            Loc::Pred(i) => Ok(PredReg::new(i)),
            _ => Err(CompileError::Internal("expected predicate location")),
        }
    }

    fn guard(&self, g: &Option<(VReg, bool)>) -> Result<Guard, CompileError> {
        match g {
            None => Ok(Guard::ALWAYS),
            Some((p, neg)) => Ok(Guard {
                pred: self.pred(*p)?,
                neg: *neg,
            }),
        }
    }

    fn emit(&mut self, guard: Guard, op: Op) {
        self.out.push(Instr::guarded(guard, op));
    }

    /// Resolves a 32-bit source vreg, filling from the stack if spilled.
    fn use32(&mut self, v: VReg, s: &mut Scratch) -> Result<Gpr, CompileError> {
        match self.loc(v)? {
            Loc::Gpr(r) => Ok(Gpr::new(r)),
            Loc::Pair(r) => Ok(Gpr::new(r)), // low half
            Loc::SpillB32(off) => {
                let t = s.take1()?;
                self.emit(
                    Guard::ALWAYS,
                    Op::Ld {
                        d: t,
                        width: MemWidth::B32,
                        addr: MemAddr::local(Gpr::SP, off as i32),
                        spill: true,
                    },
                );
                Ok(t)
            }
            _ => Err(CompileError::Internal("class mismatch for 32-bit use")),
        }
    }

    /// Resolves a 64-bit source vreg (returns the low register of the
    /// pair), filling from the stack if spilled.
    fn use64(&mut self, v: VReg, s: &mut Scratch) -> Result<Gpr, CompileError> {
        match self.loc(v)? {
            Loc::Pair(r) => Ok(Gpr::new(r)),
            Loc::SpillB64(off) => {
                let t = s.take_pair()?;
                self.emit(
                    Guard::ALWAYS,
                    Op::Ld {
                        d: t,
                        width: MemWidth::B64,
                        addr: MemAddr::local(Gpr::SP, off as i32),
                        spill: true,
                    },
                );
                Ok(t)
            }
            _ => Err(CompileError::Internal("class mismatch for 64-bit use")),
        }
    }

    fn use_src(&mut self, src: &VSrc, s: &mut Scratch) -> Result<Src, CompileError> {
        match src {
            VSrc::Imm(v) => Ok(Src::Imm(*v)),
            VSrc::Reg(r) => Ok(Src::Reg(self.use32(*r, s)?)),
        }
    }

    /// Resolves a 32-bit destination; returns the register to write and
    /// an optional spill store to append after the operation.
    fn def32(&mut self, v: VReg, s: &mut Scratch) -> Result<(Gpr, Option<u32>), CompileError> {
        match self.loc(v)? {
            Loc::Gpr(r) => Ok((Gpr::new(r), None)),
            Loc::SpillB32(off) => Ok((s.take1()?, Some(off))),
            _ => Err(CompileError::Internal("class mismatch for 32-bit def")),
        }
    }

    fn def64(&mut self, v: VReg, s: &mut Scratch) -> Result<(Gpr, Option<u32>), CompileError> {
        match self.loc(v)? {
            Loc::Pair(r) => Ok((Gpr::new(r), None)),
            Loc::SpillB64(off) => Ok((s.take_pair()?, Some(off))),
            _ => Err(CompileError::Internal("class mismatch for 64-bit def")),
        }
    }

    fn store_def32(&mut self, guard: Guard, reg: Gpr, slot: Option<u32>) {
        if let Some(off) = slot {
            self.emit(
                guard,
                Op::St {
                    v: reg,
                    width: MemWidth::B32,
                    addr: MemAddr::local(Gpr::SP, off as i32),
                    spill: true,
                },
            );
        }
    }

    fn store_def64(&mut self, guard: Guard, reg: Gpr, slot: Option<u32>) {
        if let Some(off) = slot {
            self.emit(
                guard,
                Op::St {
                    v: reg,
                    width: MemWidth::B64,
                    addr: MemAddr::local(Gpr::SP, off as i32),
                    spill: true,
                },
            );
        }
    }

    /// Resolves a memory operand to a machine [`MemAddr`].
    fn mem_addr(
        &mut self,
        space: AddrSpace,
        addr: &KAddr,
        s: &mut Scratch,
    ) -> Result<MemAddr, CompileError> {
        match (space, addr) {
            (AddrSpace::Local, KAddr::Frame { offset }) => Ok(MemAddr::local(Gpr::SP, *offset)),
            (AddrSpace::Local, KAddr::Reg { base, offset }) => {
                // Dynamic frame offset: local address = SP + base.
                let b = self.use32(*base, s)?;
                let t = s.take1()?;
                self.emit(
                    Guard::ALWAYS,
                    Op::IAdd {
                        d: t,
                        a: b,
                        b: Src::Reg(Gpr::SP),
                        x: false,
                        cc: false,
                    },
                );
                Ok(MemAddr::local(t, *offset))
            }
            (AddrSpace::Shared, KAddr::Reg { base, offset }) => {
                Ok(MemAddr::shared(self.use32(*base, s)?, *offset))
            }
            (AddrSpace::Global, KAddr::Reg { base, offset }) => {
                Ok(MemAddr::global(self.use64(*base, s)?, *offset))
            }
            (AddrSpace::Generic, KAddr::Reg { base, offset }) => {
                Ok(MemAddr::generic(self.use64(*base, s)?, *offset))
            }
            _ => Err(CompileError::Internal("invalid space/address combination")),
        }
    }

    fn lower_instr(&mut self, ins: &KInstr) -> Result<(), CompileError> {
        let g = self.guard(&ins.guard)?;
        let mut s = Scratch::new(self.alloc.scratch);
        match &ins.op {
            KOp::Imm32 { d, v } => {
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(g, Op::Mov32I { d: dr, imm: *v });
                self.store_def32(g, dr, slot);
            }
            KOp::Imm64 { d, v } => {
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov32I {
                        d: dr,
                        imm: *v as u32,
                    },
                );
                self.emit(
                    g,
                    Op::Mov32I {
                        d: dr.pair_hi(),
                        imm: (*v >> 32) as u32,
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::Mov32 { d, a } => {
                let av = self.use_src(a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(g, Op::Mov { d: dr, a: av });
                self.store_def32(g, dr, slot);
            }
            KOp::Mov64 { d, a } => {
                let ar = self.use64(*a, &mut s)?;
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(ar),
                    },
                );
                self.emit(
                    g,
                    Op::Mov {
                        d: dr.pair_hi(),
                        a: Src::Reg(ar.pair_hi()),
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::Special { d, sr } => {
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(g, Op::S2R { d: dr, sr: *sr });
                self.store_def32(g, dr, slot);
            }
            KOp::LdConst32 { d, addr } => {
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Const(*addr),
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::LdConst64 { d, addr } => {
                let (dr, slot) = self.def64(*d, &mut s)?;
                let hi = CBankAddr::new(addr.bank, addr.offset + 4);
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Const(*addr),
                    },
                );
                self.emit(
                    g,
                    Op::Mov {
                        d: dr.pair_hi(),
                        a: Src::Const(hi),
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::AbiParam64 { d, idx } => {
                let src = Gpr::new(4 + 2 * idx);
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(src),
                    },
                );
                self.emit(
                    g,
                    Op::Mov {
                        d: dr.pair_hi(),
                        a: Src::Reg(src.pair_hi()),
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::IBin { op, d, a, b } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                let mop = match op {
                    IBinOp::Add => Op::IAdd {
                        d: dr,
                        a: ar,
                        b: bv,
                        x: false,
                        cc: false,
                    },
                    IBinOp::Sub => Op::ISub {
                        d: dr,
                        a: ar,
                        b: bv,
                    },
                    IBinOp::Mul => Op::IMul {
                        d: dr,
                        a: ar,
                        b: bv,
                        signed: true,
                        hi: false,
                    },
                    IBinOp::MulHiU => Op::IMul {
                        d: dr,
                        a: ar,
                        b: bv,
                        signed: false,
                        hi: true,
                    },
                    IBinOp::MinS => Op::IMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: true,
                        signed: true,
                    },
                    IBinOp::MinU => Op::IMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: true,
                        signed: false,
                    },
                    IBinOp::MaxS => Op::IMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: false,
                        signed: true,
                    },
                    IBinOp::MaxU => Op::IMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: false,
                        signed: false,
                    },
                    IBinOp::And => Op::Lop {
                        d: dr,
                        op: LogicOp::And,
                        a: ar,
                        b: bv,
                        inv_b: false,
                    },
                    IBinOp::Or => Op::Lop {
                        d: dr,
                        op: LogicOp::Or,
                        a: ar,
                        b: bv,
                        inv_b: false,
                    },
                    IBinOp::Xor => Op::Lop {
                        d: dr,
                        op: LogicOp::Xor,
                        a: ar,
                        b: bv,
                        inv_b: false,
                    },
                    IBinOp::Shl => Op::Shl {
                        d: dr,
                        a: ar,
                        b: bv,
                    },
                    IBinOp::ShrU => Op::Shr {
                        d: dr,
                        a: ar,
                        b: bv,
                        signed: false,
                    },
                    IBinOp::ShrS => Op::Shr {
                        d: dr,
                        a: ar,
                        b: bv,
                        signed: true,
                    },
                };
                self.emit(g, mop);
                self.store_def32(g, dr, slot);
            }
            KOp::IMad { d, a, b, c } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let cr = self.use32(*c, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::IMad {
                        d: dr,
                        a: ar,
                        b: bv,
                        c: cr,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::IUn { op, d, a } => {
                let ar = self.use32(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                let mop = match op {
                    IUnOp::Popc => Op::Popc { d: dr, a: ar },
                    IUnOp::Flo => Op::Flo { d: dr, a: ar },
                    IUnOp::Brev => Op::Brev { d: dr, a: ar },
                };
                self.emit(g, mop);
                self.store_def32(g, dr, slot);
            }
            KOp::Sel { d, a, b, p, neg_p } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let pr = self.pred(*p)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Sel {
                        d: dr,
                        a: ar,
                        b: bv,
                        p: pr,
                        neg_p: *neg_p,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Add64 { d, a, b } => {
                let ar = self.use64(*a, &mut s)?;
                let br = self.use64(*b, &mut s)?;
                // Destination may alias `a` (component-wise safe).
                let (dr, slot) = match self.loc(*d)? {
                    Loc::Pair(r) => (Gpr::new(r), None),
                    Loc::SpillB64(off) => match s.take_pair() {
                        Ok(t) => (t, Some(off)),
                        Err(_) => (ar, Some(off)), // alias a's scratch pair
                    },
                    _ => return Err(CompileError::Internal("class mismatch add64")),
                };
                self.emit(
                    g,
                    Op::IAdd {
                        d: dr,
                        a: ar,
                        b: Src::Reg(br),
                        x: false,
                        cc: true,
                    },
                );
                self.emit(
                    g,
                    Op::IAdd {
                        d: dr.pair_hi(),
                        a: ar.pair_hi(),
                        b: Src::Reg(br.pair_hi()),
                        x: true,
                        cc: false,
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::Lea64 { d, a, b, shift } => {
                let ar = self.use64(*a, &mut s)?;
                let br = self.use32(*b, &mut s)?;
                let (dr, slot) = match self.loc(*d)? {
                    Loc::Pair(r) => (Gpr::new(r), None),
                    Loc::SpillB64(off) => match s.take_pair() {
                        Ok(t) => (t, Some(off)),
                        Err(_) => (ar, Some(off)), // alias a's pair; safe below
                    },
                    _ => return Err(CompileError::Internal("class mismatch lea64")),
                };
                if *shift == 0 {
                    self.emit(
                        g,
                        Op::IAdd {
                            d: dr,
                            a: ar,
                            b: Src::Reg(br),
                            x: false,
                            cc: true,
                        },
                    );
                } else {
                    // Shift into a temp that never aliases ar's components:
                    // reuse b's register when it is scratch, else grab one.
                    let t = if self.alloc.scratch.contains(&br.index()) {
                        br
                    } else {
                        s.take1().unwrap_or(br)
                    };
                    if t == br {
                        // In-place shift is fine only if br is dead after
                        // this op; conservatively require it to be scratch
                        // or fall back to dlo when distinct from sources.
                        if !self.alloc.scratch.contains(&br.index()) {
                            // dlo is guaranteed distinct from ar/br when the
                            // destination is a real pair (allocator rule).
                            self.emit(
                                g,
                                Op::Shl {
                                    d: dr,
                                    a: br,
                                    b: Src::Imm(*shift as u32),
                                },
                            );
                            self.emit(
                                g,
                                Op::IAdd {
                                    d: dr,
                                    a: ar,
                                    b: Src::Reg(dr),
                                    x: false,
                                    cc: true,
                                },
                            );
                            self.emit(
                                g,
                                Op::IAdd {
                                    d: dr.pair_hi(),
                                    a: ar.pair_hi(),
                                    b: Src::Reg(Gpr::RZ),
                                    x: true,
                                    cc: false,
                                },
                            );
                            self.store_def64(g, dr, slot);
                            return Ok(());
                        }
                        self.emit(
                            g,
                            Op::Shl {
                                d: t,
                                a: br,
                                b: Src::Imm(*shift as u32),
                            },
                        );
                    } else {
                        self.emit(
                            g,
                            Op::Shl {
                                d: t,
                                a: br,
                                b: Src::Imm(*shift as u32),
                            },
                        );
                    }
                    self.emit(
                        g,
                        Op::IAdd {
                            d: dr,
                            a: ar,
                            b: Src::Reg(t),
                            x: false,
                            cc: true,
                        },
                    );
                }
                self.emit(
                    g,
                    Op::IAdd {
                        d: dr.pair_hi(),
                        a: ar.pair_hi(),
                        b: Src::Reg(Gpr::RZ),
                        x: true,
                        cc: false,
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::Widen { d, a, signed } => {
                let ar = self.use32(*a, &mut s)?;
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(ar),
                    },
                );
                if *signed {
                    self.emit(
                        g,
                        Op::Shr {
                            d: dr.pair_hi(),
                            a: ar,
                            b: Src::Imm(31),
                            signed: true,
                        },
                    );
                } else {
                    self.emit(
                        g,
                        Op::Mov32I {
                            d: dr.pair_hi(),
                            imm: 0,
                        },
                    );
                }
                self.store_def64(g, dr, slot);
            }
            KOp::Pack64 { d, lo, hi } => {
                let lr = self.use32(*lo, &mut s)?;
                let hr = self.use32(*hi, &mut s)?;
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(lr),
                    },
                );
                self.emit(
                    g,
                    Op::Mov {
                        d: dr.pair_hi(),
                        a: Src::Reg(hr),
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::Lo32 { d, a } => {
                let ar = self.use64(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(ar),
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Hi32 { d, a } => {
                let ar = self.use64(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mov {
                        d: dr,
                        a: Src::Reg(ar.pair_hi()),
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::FBin { op, d, a, b } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                let mop = match op {
                    FBinOp::Add => Op::FAdd {
                        d: dr,
                        a: ar,
                        b: bv,
                        neg_a: false,
                        neg_b: false,
                    },
                    FBinOp::Sub => Op::FAdd {
                        d: dr,
                        a: ar,
                        b: bv,
                        neg_a: false,
                        neg_b: true,
                    },
                    FBinOp::Mul => Op::FMul {
                        d: dr,
                        a: ar,
                        b: bv,
                    },
                    FBinOp::Min => Op::FMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: true,
                    },
                    FBinOp::Max => Op::FMnMx {
                        d: dr,
                        a: ar,
                        b: bv,
                        min: false,
                    },
                };
                self.emit(g, mop);
                self.store_def32(g, dr, slot);
            }
            KOp::FFma { d, a, b, c } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let cr = self.use32(*c, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::FFma {
                        d: dr,
                        a: ar,
                        b: bv,
                        c: cr,
                        neg_b: false,
                        neg_c: false,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Mufu { d, func, a } => {
                let ar = self.use32(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Mufu {
                        d: dr,
                        func: *func,
                        a: ar,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::I2F { d, a, .. } => {
                let ar = self.use32(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::I2F {
                        d: dr,
                        a: ar,
                        from: IntWidth::S32,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::F2I { d, a, .. } => {
                let ar = self.use32(*a, &mut s)?;
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::F2I {
                        d: dr,
                        a: ar,
                        to: IntWidth::S32,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::ISetP {
                p,
                cmp,
                signed,
                a,
                b,
            } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let pr = self.pred(*p)?;
                self.emit(
                    g,
                    Op::ISetP {
                        p: pr,
                        cmp: *cmp,
                        a: ar,
                        b: bv,
                        signed: *signed,
                        combine: None,
                    },
                );
            }
            KOp::FSetP { p, cmp, a, b } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let pr = self.pred(*p)?;
                self.emit(
                    g,
                    Op::FSetP {
                        p: pr,
                        cmp: *cmp,
                        a: ar,
                        b: bv,
                    },
                );
            }
            KOp::PBin {
                p,
                op,
                a,
                b,
                neg_a,
                neg_b,
            } => {
                let pr = self.pred(*p)?;
                let ar = self.pred(*a)?;
                let br = self.pred(*b)?;
                self.emit(
                    g,
                    Op::PSetP {
                        p: pr,
                        op: *op,
                        a: ar,
                        b: br,
                        neg_a: *neg_a,
                        neg_b: *neg_b,
                    },
                );
            }
            KOp::PImm { p, v } => {
                let pr = self.pred(*p)?;
                self.emit(
                    g,
                    Op::PSetP {
                        p: pr,
                        op: LogicOp::And,
                        a: PredReg::PT,
                        b: PredReg::PT,
                        neg_a: !*v,
                        neg_b: false,
                    },
                );
            }
            KOp::Ld {
                d,
                width,
                space,
                addr,
            } => {
                let maddr = self.mem_addr(*space, addr, &mut s)?;
                let (dr, slot) = if width.regs() == 2 {
                    self.def64(*d, &mut s)?
                } else {
                    self.def32(*d, &mut s)?
                };
                self.emit(
                    g,
                    Op::Ld {
                        d: dr,
                        width: *width,
                        addr: maddr,
                        spill: false,
                    },
                );
                if width.regs() == 2 {
                    self.store_def64(g, dr, slot);
                } else {
                    self.store_def32(g, dr, slot);
                }
            }
            KOp::St {
                v,
                width,
                space,
                addr,
            } => {
                let maddr = self.mem_addr(*space, addr, &mut s)?;
                let vr = if width.regs() == 2 {
                    self.use64(*v, &mut s)?
                } else {
                    self.use32(*v, &mut s)?
                };
                self.emit(
                    g,
                    Op::St {
                        v: vr,
                        width: *width,
                        addr: maddr,
                        spill: false,
                    },
                );
            }
            KOp::Tld {
                d,
                width,
                base,
                offset,
            } => {
                let br = self.use64(*base, &mut s)?;
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Tld {
                        d: dr,
                        width: *width,
                        addr: MemAddr::global(br, *offset),
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Atom {
                d,
                op,
                wide,
                space,
                addr,
                v,
                v2,
            } => {
                let maddr = self.mem_addr(*space, addr, &mut s)?;
                let vr = if *wide {
                    self.use64(*v, &mut s)?
                } else {
                    self.use32(*v, &mut s)?
                };
                let v2r = match v2 {
                    Some(x) => Some(if *wide {
                        self.use64(*x, &mut s)?
                    } else {
                        self.use32(*x, &mut s)?
                    }),
                    None => None,
                };
                match d {
                    None => self.emit(
                        g,
                        Op::Red {
                            op: *op,
                            addr: maddr,
                            v: vr,
                            wide: *wide,
                        },
                    ),
                    Some(dv) => {
                        s.release_all(); // single instruction: dest may alias
                        let (dr, slot) = if *wide {
                            self.def64(*dv, &mut s)?
                        } else {
                            self.def32(*dv, &mut s)?
                        };
                        self.emit(
                            g,
                            Op::Atom {
                                d: dr,
                                op: *op,
                                addr: maddr,
                                v: vr,
                                v2: v2r,
                                wide: *wide,
                            },
                        );
                        if *wide {
                            self.store_def64(g, dr, slot);
                        } else {
                            self.store_def32(g, dr, slot);
                        }
                    }
                }
            }
            KOp::FrameAddrGeneric { d, offset } => {
                let (dr, slot) = self.def64(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Lop {
                        d: dr,
                        op: LogicOp::Or,
                        a: Gpr::SP,
                        b: Src::Const(CBankAddr::new(0, cbank0::LOCAL_WINDOW)),
                        inv_b: false,
                    },
                );
                if *offset != 0 {
                    self.emit(
                        g,
                        Op::IAdd {
                            d: dr,
                            a: dr,
                            b: Src::Imm(*offset as u32),
                            x: false,
                            cc: false,
                        },
                    );
                }
                self.emit(
                    g,
                    Op::Mov32I {
                        d: dr.pair_hi(),
                        imm: 0,
                    },
                );
                self.store_def64(g, dr, slot);
            }
            KOp::MemBar => self.emit(g, Op::MemBar),
            KOp::Vote {
                mode,
                d,
                p_out,
                src,
                neg_src,
            } => {
                let sp = self.pred(*src)?;
                let pout = match p_out {
                    Some(p) => Some(self.pred(*p)?),
                    None => None,
                };
                let (dr, slot) = match d {
                    Some(dv) => self.def32(*dv, &mut s)?,
                    None => (Gpr::RZ, None),
                };
                self.emit(
                    g,
                    Op::Vote {
                        mode: *mode,
                        d: dr,
                        p_out: pout,
                        src: sp,
                        neg_src: *neg_src,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Shfl {
                mode,
                d,
                a,
                b,
                c_imm,
                p_out,
            } => {
                let ar = self.use32(*a, &mut s)?;
                let bv = self.use_src(b, &mut s)?;
                let pout = match p_out {
                    Some(p) => Some(self.pred(*p)?),
                    None => None,
                };
                s.release_all();
                let (dr, slot) = self.def32(*d, &mut s)?;
                self.emit(
                    g,
                    Op::Shfl {
                        mode: *mode,
                        d: dr,
                        a: ar,
                        b: bv,
                        c: Src::Imm(*c_imm),
                        p_out: pout,
                    },
                );
                self.store_def32(g, dr, slot);
            }
            KOp::Bar => {
                self.uses_barrier = true;
                self.emit(g, Op::BarSync);
            }
            KOp::Label { id } => {
                self.label_pos.insert(*id, self.out.len() as u32);
            }
            KOp::Bra { t } => {
                self.fixups.push((self.out.len(), *t));
                self.emit(
                    g,
                    Op::Bra {
                        target: Label::Pc(u32::MAX),
                        uniform: false,
                    },
                );
            }
            KOp::Ssy { t } => {
                self.fixups.push((self.out.len(), *t));
                self.emit(
                    g,
                    Op::Ssy {
                        target: Label::Pc(u32::MAX),
                    },
                );
            }
            KOp::Sync { reconv } => {
                self.sync_fixups.push((self.out.len(), *reconv));
                self.emit(g, Op::Sync);
            }
            KOp::Exit => self.emit(g, Op::Exit),
            KOp::Ret => {
                if self.frame_total > 0 {
                    self.emit(
                        Guard::ALWAYS,
                        Op::IAdd {
                            d: Gpr::SP,
                            a: Gpr::SP,
                            b: Src::Imm(self.frame_total),
                            x: false,
                            cc: false,
                        },
                    );
                }
                self.emit(g, Op::Ret);
            }
            KOp::Nop => self.emit(g, Op::Nop),
        }
        Ok(())
    }
}

/// Lowers an allocated function to SASS.
pub(crate) fn lower(f: &KFunction, alloc: &Allocation) -> Result<Function, CompileError> {
    let frame_total = (f.frame_bytes + alloc.spill_bytes + 7) & !7;
    let mut lw = Lowerer {
        alloc,
        out: Vec::new(),
        fixups: Vec::new(),
        sync_fixups: Vec::new(),
        label_pos: HashMap::new(),
        frame_total,
        uses_barrier: false,
    };

    if frame_total > 0 {
        lw.emit(
            Guard::ALWAYS,
            Op::IAdd {
                d: Gpr::SP,
                a: Gpr::SP,
                b: Src::Imm((frame_total as i32).wrapping_neg() as u32),
                x: false,
                cc: false,
            },
        );
    }

    for ins in &f.instrs {
        lw.lower_instr(ins)?;
    }

    // Labels may be placed at end-of-stream (loop exits right before the
    // implicit terminator); the builder always appends EXIT/RET last, so
    // every label position is a valid instruction index by now.
    let Lowerer {
        out,
        fixups,
        sync_fixups,
        label_pos,
        uses_barrier,
        ..
    } = lw;
    let mut out = out;
    for (pos, lbl) in fixups {
        let target = *label_pos
            .get(&lbl)
            .ok_or(CompileError::UnplacedLabel(lbl.0))?;
        match &mut out[pos].op {
            Op::Bra { target: t, .. } | Op::Ssy { target: t } => *t = Label::Pc(target),
            _ => return Err(CompileError::Internal("fixup target not a branch")),
        }
    }
    let mut sync_reconv = BTreeMap::new();
    for (pos, lbl) in sync_fixups {
        let target = *label_pos
            .get(&lbl)
            .ok_or(CompileError::UnplacedLabel(lbl.0))?;
        sync_reconv.insert(pos as u32, target);
    }

    // Basic-block headers on the final SASS.
    let mut headers = vec![0u32];
    for (i, ins) in out.iter().enumerate() {
        match &ins.op {
            Op::Bra {
                target: Label::Pc(t),
                ..
            }
            | Op::Ssy {
                target: Label::Pc(t),
            } => {
                headers.push(*t);
                if matches!(ins.op, Op::Bra { .. }) && i + 1 < out.len() {
                    headers.push(i as u32 + 1);
                }
            }
            Op::Sync | Op::Exit | Op::Ret if i + 1 < out.len() => {
                headers.push(i as u32 + 1);
            }
            _ => {}
        }
    }
    for &t in sync_reconv.values() {
        headers.push(t);
    }
    headers.sort_unstable();
    headers.dedup();

    let meta = FunctionMeta {
        sync_reconv,
        block_headers: headers,
        frame_bytes: frame_total,
        shared_bytes: f.shared_bytes,
        reg_high_water: alloc.reg_high_water,
        uses_barrier,
    };
    Ok(Function::new(f.name.clone(), out, meta))
}
