//! Virtual registers and typed value handles.
//!
//! The kernel IR is register-based but *virtual*: the builder hands out
//! an unbounded supply of virtual registers in three classes — 32-bit,
//! 64-bit (allocated to aligned GPR pairs) and predicate — and the
//! linear-scan allocator later maps them onto the machine's `R0..` and
//! `P0..P6` name spaces, spilling 32/64-bit values to the stack when the
//! register budget (e.g. the 16-register handler cap of the paper's
//! §3.2) is exceeded.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Storage class of a virtual register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VClass {
    /// One 32-bit GPR.
    B32,
    /// An aligned pair of GPRs holding a 64-bit value.
    B64,
    /// A predicate bit.
    Pred,
}

/// A virtual register id. The class is tracked by the function being
/// built; the typed wrappers [`V32`], [`V64`] and [`VP`] are what user
/// code sees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VReg(pub(crate) u32);

impl VReg {
    /// Raw id.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A 32-bit value handle (int or float bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct V32(pub(crate) VReg);

/// A 64-bit value handle (addresses, wide integers).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct V64(pub(crate) VReg);

/// A predicate (boolean) value handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VP(pub(crate) VReg);

impl V32 {
    /// The underlying virtual register.
    pub fn vreg(self) -> VReg {
        self.0
    }
}

impl V64 {
    /// The underlying virtual register.
    pub fn vreg(self) -> VReg {
        self.0
    }
}

impl VP {
    /// The underlying virtual register.
    pub fn vreg(self) -> VReg {
        self.0
    }
}

/// A 32-bit operand: virtual register or immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VSrc {
    /// A virtual register (class `B32`).
    Reg(VReg),
    /// A 32-bit immediate.
    Imm(u32),
}

impl VSrc {
    /// The virtual register, if the operand is one.
    pub fn reg(self) -> Option<VReg> {
        match self {
            VSrc::Reg(r) => Some(r),
            VSrc::Imm(_) => None,
        }
    }
}

impl From<V32> for VSrc {
    fn from(v: V32) -> VSrc {
        VSrc::Reg(v.0)
    }
}

impl From<u32> for VSrc {
    fn from(v: u32) -> VSrc {
        VSrc::Imm(v)
    }
}

impl From<i32> for VSrc {
    fn from(v: i32) -> VSrc {
        VSrc::Imm(v as u32)
    }
}

impl From<f32> for VSrc {
    fn from(v: f32) -> VSrc {
        VSrc::Imm(v.to_bits())
    }
}

impl fmt::Display for VSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VSrc::Reg(r) => write!(f, "{r}"),
            VSrc::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// A forward-referenceable code label inside a function under
/// construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LabelId(pub(crate) u32);

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vsrc_conversions() {
        let r = VReg(3);
        assert_eq!(VSrc::from(V32(r)), VSrc::Reg(r));
        assert_eq!(VSrc::from(5u32), VSrc::Imm(5));
        assert_eq!(VSrc::from(-1i32), VSrc::Imm(u32::MAX));
        assert_eq!(VSrc::from(1.0f32), VSrc::Imm(0x3f80_0000));
        assert_eq!(VSrc::Imm(1).reg(), None);
        assert_eq!(VSrc::Reg(r).reg(), Some(r));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VReg(7).to_string(), "v7");
        assert_eq!(LabelId(2).to_string(), "L2");
        assert_eq!(VSrc::Imm(16).to_string(), "0x10");
    }
}
