//! SASS-level control-flow graph, per-instruction register liveness and
//! post-dominance — the compile-time facts SASSI consumes.
//!
//! The paper's instrumentor runs as the final backend pass and uses the
//! compiler's liveness to spill only what a handler call could clobber.
//! This module computes exactly that: for every machine instruction, the
//! sets of GPRs, predicates and CC live before and after it.

use sassi_isa::{Function, Instr, Label, Op, RegSet};
use std::collections::HashMap;

/// A basic block over SASS instruction indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SassBlock {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
}

/// CFG over a compiled [`Function`].
#[derive(Clone, Debug)]
pub struct SassCfg {
    /// Blocks in layout order.
    pub blocks: Vec<SassBlock>,
    /// Successors per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<usize>>,
    /// Block index of each instruction.
    pub block_of: Vec<usize>,
}

fn branch_target(i: &Instr) -> Option<u32> {
    match &i.op {
        Op::Bra {
            target: Label::Pc(t),
            ..
        } => Some(*t),
        _ => None,
    }
}

fn ends_block(i: &Instr) -> bool {
    matches!(i.op, Op::Bra { .. } | Op::Sync | Op::Exit | Op::Ret)
}

impl SassCfg {
    /// Builds the CFG of a function, using `meta.sync_reconv` for the
    /// reconvergence edges of `SYNC` instructions.
    pub fn build(f: &Function) -> SassCfg {
        let n = f.instrs.len();
        let mut leader = vec![false; n.max(1)];
        if n > 0 {
            leader[0] = true;
        }
        for (i, ins) in f.instrs.iter().enumerate() {
            if let Some(t) = branch_target(ins) {
                leader[t as usize] = true;
            }
            if let Op::Ssy {
                target: Label::Pc(t),
            } = ins.op
            {
                leader[t as usize] = true;
            }
            if ends_block(ins) && i + 1 < n {
                leader[i + 1] = true;
            }
        }
        for &t in f.meta.sync_reconv.values() {
            leader[t as usize] = true;
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (i, &is_leader) in leader.iter().enumerate().take(n).skip(1) {
            if is_leader {
                blocks.push(SassBlock { start, end: i });
                start = i;
            }
        }
        if n > 0 {
            blocks.push(SassBlock { start, end: n });
        }
        for (bi, b) in blocks.iter().enumerate() {
            for bo in &mut block_of[b.start..b.end] {
                *bo = bi;
            }
        }

        let mut succs = vec![Vec::new(); blocks.len()];
        for (bi, b) in blocks.iter().enumerate() {
            let li = b.end - 1;
            let last = &f.instrs[li];
            let guarded = last.is_guarded();
            let mut out = Vec::new();
            match &last.op {
                Op::Bra {
                    target: Label::Pc(t),
                    ..
                } => {
                    out.push(block_of[*t as usize]);
                    if guarded && b.end < n {
                        out.push(block_of[b.end]);
                    }
                }
                Op::Sync => {
                    if let Some(&t) = f.meta.sync_reconv.get(&(li as u32)) {
                        out.push(block_of[t as usize]);
                    }
                    if guarded && b.end < n {
                        out.push(block_of[b.end]);
                    }
                }
                Op::Exit => {
                    if guarded && b.end < n {
                        out.push(block_of[b.end]);
                    }
                }
                Op::Ret => {}
                _ => {
                    if b.end < n {
                        out.push(block_of[b.end]);
                    }
                }
            }
            out.dedup();
            succs[bi] = out;
        }

        let mut preds = vec![Vec::new(); blocks.len()];
        for (bi, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(bi);
            }
        }
        SassCfg {
            blocks,
            succs,
            preds,
            block_of,
        }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Per-instruction liveness over architectural registers.
#[derive(Clone, Debug)]
pub struct SassLiveness {
    /// Registers live immediately before each instruction.
    pub live_in: Vec<RegSet>,
    /// Registers live immediately after each instruction.
    pub live_out: Vec<RegSet>,
}

/// Computes per-instruction liveness for a compiled function.
///
/// This is the map SASSI consults to decide which registers a
/// trampoline must save around a handler call.
pub fn liveness(f: &Function, cfg: &SassCfg) -> SassLiveness {
    let nb = cfg.len();
    let n = f.instrs.len();
    let mut blk_gen = vec![RegSet::new(); nb];
    let mut blk_kill = vec![RegSet::new(); nb];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        for i in (b.start..b.end).rev() {
            let du = f.instrs[i].defs_uses();
            // A guarded def is a partial write: not a kill.
            if !f.instrs[i].is_guarded() {
                let mut defs = du.defs;
                blk_kill[bi].union_with(&defs);
                defs.subtract(&du.uses);
                // gen -= full defs
                let mut g = blk_gen[bi];
                g.subtract(&du.defs);
                blk_gen[bi] = g;
            }
            blk_gen[bi].union_with(&du.uses);
            if f.instrs[i].is_guarded() {
                // treat the guarded def as a use (old value may survive)
                blk_gen[bi].union_with(&du.defs);
            }
        }
    }

    let mut bin = vec![RegSet::new(); nb];
    let mut bout = vec![RegSet::new(); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out = RegSet::new();
            for &s in &cfg.succs[bi] {
                out.union_with(&bin[s]);
            }
            bout[bi] = out;
            let mut inn = out;
            inn.subtract(&blk_kill[bi]);
            inn.union_with(&blk_gen[bi]);
            if inn != bin[bi] {
                bin[bi] = inn;
                changed = true;
            }
        }
    }

    let mut live_in = vec![RegSet::new(); n];
    let mut live_out = vec![RegSet::new(); n];
    for (bi, b) in cfg.blocks.iter().enumerate() {
        let mut live = bout[bi];
        for i in (b.start..b.end).rev() {
            live_out[i] = live;
            let du = f.instrs[i].defs_uses();
            if !f.instrs[i].is_guarded() {
                live.subtract(&du.defs);
            }
            live.union_with(&du.uses);
            if f.instrs[i].is_guarded() {
                live.union_with(&du.defs);
            }
            live_in[i] = live;
        }
    }
    SassLiveness { live_in, live_out }
}

/// Post-dominator sets per block (bit-matrix as Vec of bool rows), with
/// `RET`/unguarded-`EXIT` blocks flowing to a virtual exit.
pub fn postdominators(cfg: &SassCfg) -> Vec<Vec<bool>> {
    let n = cfg.len();
    // pdom[b] = {b} ∪ ⋂ pdom(succ). Exit blocks start at {b}.
    let mut pdom: Vec<Vec<bool>> = (0..n)
        .map(|b| {
            if cfg.succs[b].is_empty() {
                let mut row = vec![false; n];
                row[b] = true;
                row
            } else {
                vec![true; n]
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..n).rev() {
            if cfg.succs[b].is_empty() {
                continue;
            }
            let mut row = vec![true; n];
            for &s in &cfg.succs[b] {
                for (r, sv) in row.iter_mut().zip(&pdom[s]) {
                    *r &= sv;
                }
            }
            row[b] = true;
            if row != pdom[b] {
                pdom[b] = row;
                changed = true;
            }
        }
    }
    pdom
}

/// Map from instruction index to containing block for external callers.
pub fn block_index(cfg: &SassCfg, pc: u32) -> usize {
    cfg.block_of[pc as usize]
}

/// Convenience: builds the CFG and liveness in one call.
pub fn function_liveness(f: &Function) -> SassLiveness {
    let cfg = SassCfg::build(f);
    liveness(f, &cfg)
}

#[allow(dead_code)]
fn _unused(_: &HashMap<u32, u32>) {}
