//! The kernel builder: a structured, typed DSL for authoring device
//! kernels, playing the role CUDA source plays in the paper's flow.
//!
//! The builder hands out typed value handles ([`V32`], [`V64`], [`VP`])
//! backed by virtual registers and provides structured control flow
//! (`if_`, `if_else`, `while_`, `for_range`) that lowers to
//! `SSY`/`SYNC`-based SIMT reconvergence. The backend compiler
//! ([`crate::Compiler`]) then allocates registers and emits SASS.
//!
//! ```
//! use sassi_kir::KernelBuilder;
//!
//! // vadd: out[i] = a[i] + b[i] for i < n
//! let mut b = KernelBuilder::kernel("vadd");
//! let i = b.global_tid_x();
//! let n = b.param_u32(0);
//! let pa = b.param_ptr(1);
//! let pb = b.param_ptr(2);
//! let po = b.param_ptr(3);
//! let p = b.setp_u32_lt(i, n);
//! b.if_(p, |b| {
//!     let ea = b.lea(pa, i, 2);
//!     let eb = b.lea(pb, i, 2);
//!     let x = b.ld_global_u32(ea);
//!     let y = b.ld_global_u32(eb);
//!     let s = b.fadd(x, y);
//!     let eo = b.lea(po, i, 2);
//!     b.st_global_u32(eo, s);
//! });
//! let f = b.finish();
//! assert!(f.instrs.len() > 5);
//! ```

use crate::kop::{FBinOp, IBinOp, IUnOp, KAddr, KInstr, KOp};
use crate::vreg::{LabelId, VClass, VReg, VSrc, V32, V64, VP};
use sassi_isa::{
    cbank0, AddrSpace, AtomOp, CBankAddr, CmpOp, LogicOp, MemWidth, MufuFunc, ShflMode, SpecialReg,
    VoteMode,
};
use serde::{Deserialize, Serialize};

/// A function in kernel IR, ready for the backend compiler.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KFunction {
    /// Symbol name.
    pub name: String,
    /// Instruction stream with symbolic labels.
    pub instrs: Vec<KInstr>,
    /// Class of each virtual register, indexed by `VReg::index`.
    pub classes: Vec<VClass>,
    /// Number of labels allocated.
    pub num_labels: u32,
    /// Bytes of stack frame used by explicit local arrays.
    pub frame_bytes: u32,
    /// Bytes of shared memory required per block.
    pub shared_bytes: u32,
    /// Whether this is an ABI function (instrumentation handler):
    /// parameters arrive in R4:R5 / R6:R7 and it returns via `RET`.
    pub abi_function: bool,
}

/// A byte range in the function's stack frame, from
/// [`KernelBuilder::frame_alloc`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameSlot {
    /// Byte offset of the slot from the frame base.
    pub offset: i32,
    /// Size in bytes.
    pub bytes: u32,
}

/// A byte range in the block's shared memory, from
/// [`KernelBuilder::shared_alloc`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharedSlot {
    /// Byte offset of the slot from the shared segment base.
    pub offset: u32,
    /// Size in bytes.
    pub bytes: u32,
}

struct LoopCtx {
    head: LabelId,
    end: LabelId,
}

/// Builds a [`KFunction`] with structured control flow.
pub struct KernelBuilder {
    f: KFunction,
    loops: Vec<LoopCtx>,
}

impl KernelBuilder {
    /// Starts building a kernel entry function.
    pub fn kernel(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            f: KFunction {
                name: name.into(),
                instrs: Vec::new(),
                classes: Vec::new(),
                num_labels: 0,
                frame_bytes: 0,
                shared_bytes: 0,
                abi_function: false,
            },
            loops: Vec::new(),
        }
    }

    /// Starts building an ABI device function (an instrumentation
    /// handler): parameters are 64-bit pointers in R4:R5 and R6:R7, and
    /// the function must end with [`KernelBuilder::ret`].
    pub fn abi_function(name: impl Into<String>) -> KernelBuilder {
        let mut b = KernelBuilder::kernel(name);
        b.f.abi_function = true;
        b
    }

    /// Finishes the function, appending the implicit terminator
    /// (`EXIT` for kernels, `RET` for ABI functions) if the stream does
    /// not already end with one.
    pub fn finish(mut self) -> KFunction {
        assert!(self.loops.is_empty(), "unclosed loop context");
        let needs_term = !matches!(
            self.f.instrs.last().map(|i| &i.op),
            Some(KOp::Exit) | Some(KOp::Ret)
        );
        if needs_term {
            if self.f.abi_function {
                self.push(KOp::Ret);
            } else {
                self.push(KOp::Exit);
            }
        }
        self.f
    }

    // ---- raw plumbing ---------------------------------------------------

    fn new_vreg(&mut self, class: VClass) -> VReg {
        let id = self.f.classes.len() as u32;
        self.f.classes.push(class);
        VReg(id)
    }

    fn push(&mut self, op: KOp) {
        self.f.instrs.push(KInstr::new(op));
    }

    fn push_guarded(&mut self, p: VP, neg: bool, op: KOp) {
        self.f.instrs.push(KInstr {
            guard: Some((p.0, neg)),
            op,
        });
    }

    /// Allocates a fresh label.
    pub fn new_label(&mut self) -> LabelId {
        let id = LabelId(self.f.num_labels);
        self.f.num_labels += 1;
        id
    }

    /// Places a label at the current position.
    pub fn place_label(&mut self, l: LabelId) {
        self.push(KOp::Label { id: l });
    }

    fn new32(&mut self) -> V32 {
        V32(self.new_vreg(VClass::B32))
    }

    fn new64(&mut self) -> V64 {
        V64(self.new_vreg(VClass::B64))
    }

    fn newp(&mut self) -> VP {
        VP(self.new_vreg(VClass::Pred))
    }

    // ---- constants & special values --------------------------------------

    /// 32-bit integer constant.
    pub fn iconst(&mut self, v: u32) -> V32 {
        let d = self.new32();
        self.push(KOp::Imm32 { d: d.0, v });
        d
    }

    /// 32-bit float constant.
    pub fn fconst(&mut self, v: f32) -> V32 {
        self.iconst(v.to_bits())
    }

    /// 64-bit integer constant.
    pub fn iconst64(&mut self, v: u64) -> V64 {
        let d = self.new64();
        self.push(KOp::Imm64 { d: d.0, v });
        d
    }

    /// Boolean constant predicate.
    pub fn pconst(&mut self, v: bool) -> VP {
        let p = self.newp();
        self.push(KOp::PImm { p: p.0, v });
        p
    }

    fn special(&mut self, sr: SpecialReg) -> V32 {
        let d = self.new32();
        self.push(KOp::Special { d: d.0, sr });
        d
    }

    /// `threadIdx.x`.
    pub fn tid_x(&mut self) -> V32 {
        self.special(SpecialReg::TidX)
    }

    /// `threadIdx.y`.
    pub fn tid_y(&mut self) -> V32 {
        self.special(SpecialReg::TidY)
    }

    /// `blockIdx.x`.
    pub fn ctaid_x(&mut self) -> V32 {
        self.special(SpecialReg::CtaIdX)
    }

    /// `blockIdx.y`.
    pub fn ctaid_y(&mut self) -> V32 {
        self.special(SpecialReg::CtaIdY)
    }

    /// `blockDim.x`.
    pub fn ntid_x(&mut self) -> V32 {
        self.special(SpecialReg::NTidX)
    }

    /// `blockDim.y`.
    pub fn ntid_y(&mut self) -> V32 {
        self.special(SpecialReg::NTidY)
    }

    /// `gridDim.x`.
    pub fn nctaid_x(&mut self) -> V32 {
        self.special(SpecialReg::NCtaIdX)
    }

    /// Lane index within the warp.
    pub fn lane_id(&mut self) -> V32 {
        self.special(SpecialReg::LaneId)
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the canonical global
    /// thread index.
    pub fn global_tid_x(&mut self) -> V32 {
        let ctaid = self.ctaid_x();
        let ntid = self.ntid_x();
        let tid = self.tid_x();
        self.imad(ctaid, VSrc::from(ntid), tid)
    }

    // ---- kernel parameters -------------------------------------------------
    //
    // Parameters occupy consecutive 8-byte slots in constant bank 0
    // starting at `cbank0::PARAM_BASE`, matching the runtime's argument
    // marshalling.

    fn param_addr(i: u8) -> CBankAddr {
        CBankAddr::new(0, cbank0::PARAM_BASE + 8 * i as u16)
    }

    /// Reads 32-bit kernel parameter `i`.
    pub fn param_u32(&mut self, i: u8) -> V32 {
        let d = self.new32();
        self.push(KOp::LdConst32 {
            d: d.0,
            addr: Self::param_addr(i),
        });
        d
    }

    /// Reads 32-bit float kernel parameter `i`.
    pub fn param_f32(&mut self, i: u8) -> V32 {
        self.param_u32(i)
    }

    /// Reads 64-bit pointer kernel parameter `i`.
    pub fn param_ptr(&mut self, i: u8) -> V64 {
        let d = self.new64();
        self.push(KOp::LdConst64 {
            d: d.0,
            addr: Self::param_addr(i),
        });
        d
    }

    /// Reads ABI parameter pair `idx` (handlers only; 0 → R4:R5,
    /// 1 → R6:R7).
    pub fn abi_param_ptr(&mut self, idx: u8) -> V64 {
        assert!(self.f.abi_function, "abi_param_ptr outside ABI function");
        assert!(idx < 2, "only two ABI parameter pairs are supported");
        let d = self.new64();
        self.push(KOp::AbiParam64 { d: d.0, idx });
        d
    }

    // ---- 32-bit integer ops -------------------------------------------------

    fn ibin(&mut self, op: IBinOp, a: V32, b: VSrc) -> V32 {
        let d = self.new32();
        self.push(KOp::IBin {
            op,
            d: d.0,
            a: a.0,
            b,
        });
        d
    }

    /// `a + b`.
    pub fn iadd(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Add, a, b.into())
    }

    /// `a - b`.
    pub fn isub(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Sub, a, b.into())
    }

    /// `a * b` (low 32 bits).
    pub fn imul(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Mul, a, b.into())
    }

    /// `a * b + c`.
    pub fn imad(&mut self, a: V32, b: impl Into<VSrc>, c: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::IMad {
            d: d.0,
            a: a.0,
            b: b.into(),
            c: c.0,
        });
        d
    }

    /// Unsigned min.
    pub fn umin(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::MinU, a, b.into())
    }

    /// Unsigned max.
    pub fn umax(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::MaxU, a, b.into())
    }

    /// Signed min.
    pub fn imin(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::MinS, a, b.into())
    }

    /// Signed max.
    pub fn imax(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::MaxS, a, b.into())
    }

    /// Bitwise and.
    pub fn and(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::And, a, b.into())
    }

    /// Bitwise or.
    pub fn or(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Or, a, b.into())
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Xor, a, b.into())
    }

    /// Shift left.
    pub fn shl(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::Shl, a, b.into())
    }

    /// Logical shift right.
    pub fn shr(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::ShrU, a, b.into())
    }

    /// Arithmetic shift right.
    pub fn sar(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::ShrS, a, b.into())
    }

    /// Unsigned high 32 bits of `a * b`.
    pub fn umulhi(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.ibin(IBinOp::MulHiU, a, b.into())
    }

    /// Population count.
    pub fn popc(&mut self, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::IUn {
            op: IUnOp::Popc,
            d: d.0,
            a: a.0,
        });
        d
    }

    /// Bit index of the most-significant set bit (`0xffffffff` when the
    /// input is zero).
    pub fn flo(&mut self, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::IUn {
            op: IUnOp::Flo,
            d: d.0,
            a: a.0,
        });
        d
    }

    /// Bit reverse.
    pub fn brev(&mut self, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::IUn {
            op: IUnOp::Brev,
            d: d.0,
            a: a.0,
        });
        d
    }

    /// CUDA `__ffs`: 1-based index of the least-significant set bit, 0
    /// if none (implemented as `BREV` + `FLO` + fixup, as the hardware
    /// does).
    pub fn ffs(&mut self, a: V32) -> V32 {
        let rev = self.brev(a);
        let hi = self.flo(rev);
        // hi == 0xffffffff when a == 0; 1-based index otherwise: 32 - hi.
        let p = self.setp_u32_eq(hi, 0xffff_ffffu32);
        let raw = self.isub_from(32u32, hi);
        let zero = self.iconst(0);
        self.sel(p, zero, raw)
    }

    /// `imm - a`.
    pub fn isub_from(&mut self, imm: u32, a: V32) -> V32 {
        // (imm - a) = imm + (~a + 1); express as IADD with negated source
        // via IR: d = a * -1 + imm  (IMAD with immediate -1)
        let m1 = self.iconst(u32::MAX);
        let imm = self.iconst(imm);
        self.imad(a, VSrc::from(m1), imm)
    }

    /// `p ? a : b`.
    pub fn sel(&mut self, p: VP, a: V32, b: impl Into<VSrc>) -> V32 {
        let d = self.new32();
        self.push(KOp::Sel {
            d: d.0,
            a: a.0,
            b: b.into(),
            p: p.0,
            neg_p: false,
        });
        d
    }

    /// Copies `src` into the mutable variable `dst` (both are plain
    /// virtual registers; this is how loop-carried values are updated).
    pub fn assign(&mut self, dst: V32, src: V32) {
        self.push(KOp::Mov32 {
            d: dst.0,
            a: VSrc::Reg(src.0),
        });
    }

    /// Copies an immediate into `dst`.
    pub fn assign_imm(&mut self, dst: V32, v: u32) {
        self.push(KOp::Mov32 {
            d: dst.0,
            a: VSrc::Imm(v),
        });
    }

    /// Copies `src` into the 64-bit variable `dst`.
    pub fn assign64(&mut self, dst: V64, src: V64) {
        self.push(KOp::Mov64 { d: dst.0, a: src.0 });
    }

    /// A fresh mutable 32-bit variable initialized to `v`.
    pub fn var_u32(&mut self, v: impl Into<VSrc>) -> V32 {
        let d = self.new32();
        self.push(KOp::Mov32 {
            d: d.0,
            a: v.into(),
        });
        d
    }

    /// A fresh mutable 64-bit variable initialized to `v`.
    pub fn var_u64(&mut self, v: V64) -> V64 {
        let d = self.new64();
        self.push(KOp::Mov64 { d: d.0, a: v.0 });
        d
    }

    // ---- 64-bit ops ---------------------------------------------------------

    /// `a + b` (64-bit).
    pub fn add64(&mut self, a: V64, b: V64) -> V64 {
        let d = self.new64();
        self.push(KOp::Add64 {
            d: d.0,
            a: a.0,
            b: b.0,
        });
        d
    }

    /// `base + (idx << shift)` — address computation with a 32-bit
    /// zero-extended index.
    pub fn lea(&mut self, base: V64, idx: V32, shift: u8) -> V64 {
        let d = self.new64();
        self.push(KOp::Lea64 {
            d: d.0,
            a: base.0,
            b: idx.0,
            shift,
        });
        d
    }

    /// Zero-extends a 32-bit value to 64 bits.
    pub fn widen(&mut self, a: V32) -> V64 {
        let d = self.new64();
        self.push(KOp::Widen {
            d: d.0,
            a: a.0,
            signed: false,
        });
        d
    }

    /// Sign-extends a 32-bit value to 64 bits.
    pub fn widen_signed(&mut self, a: V32) -> V64 {
        let d = self.new64();
        self.push(KOp::Widen {
            d: d.0,
            a: a.0,
            signed: true,
        });
        d
    }

    /// Low 32 bits of a 64-bit value.
    pub fn lo32(&mut self, a: V64) -> V32 {
        let d = self.new32();
        self.push(KOp::Lo32 { d: d.0, a: a.0 });
        d
    }

    /// High 32 bits of a 64-bit value.
    pub fn hi32(&mut self, a: V64) -> V32 {
        let d = self.new32();
        self.push(KOp::Hi32 { d: d.0, a: a.0 });
        d
    }

    /// Packs two 32-bit halves into a 64-bit value.
    pub fn pack64(&mut self, lo: V32, hi: V32) -> V64 {
        let d = self.new64();
        self.push(KOp::Pack64 {
            d: d.0,
            lo: lo.0,
            hi: hi.0,
        });
        d
    }

    // ---- float ops ------------------------------------------------------------

    fn fbin(&mut self, op: FBinOp, a: V32, b: VSrc) -> V32 {
        let d = self.new32();
        self.push(KOp::FBin {
            op,
            d: d.0,
            a: a.0,
            b,
        });
        d
    }

    /// Float add.
    pub fn fadd(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.fbin(FBinOp::Add, a, b.into())
    }

    /// Float subtract.
    pub fn fsub(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.fbin(FBinOp::Sub, a, b.into())
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.fbin(FBinOp::Mul, a, b.into())
    }

    /// Float min.
    pub fn fmin(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.fbin(FBinOp::Min, a, b.into())
    }

    /// Float max.
    pub fn fmax(&mut self, a: V32, b: impl Into<VSrc>) -> V32 {
        self.fbin(FBinOp::Max, a, b.into())
    }

    /// Fused `a * b + c`.
    pub fn ffma(&mut self, a: V32, b: impl Into<VSrc>, c: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::FFma {
            d: d.0,
            a: a.0,
            b: b.into(),
            c: c.0,
        });
        d
    }

    /// `a / b` via SFU reciprocal (`MUFU.RCP` + multiply).
    pub fn fdiv(&mut self, a: V32, b: V32) -> V32 {
        let r = self.mufu(MufuFunc::Rcp, b);
        self.fmul(a, r)
    }

    /// Special-function-unit operation.
    pub fn mufu(&mut self, func: MufuFunc, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Mufu {
            d: d.0,
            func,
            a: a.0,
        });
        d
    }

    /// Float square root.
    pub fn fsqrt(&mut self, a: V32) -> V32 {
        self.mufu(MufuFunc::Sqrt, a)
    }

    /// Signed int to float.
    pub fn i2f(&mut self, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::I2F {
            d: d.0,
            a: a.0,
            signed: true,
        });
        d
    }

    /// Float to signed int (truncating).
    pub fn f2i(&mut self, a: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::F2I {
            d: d.0,
            a: a.0,
            signed: true,
        });
        d
    }

    // ---- predicates ----------------------------------------------------------

    fn isetp(&mut self, cmp: CmpOp, signed: bool, a: V32, b: VSrc) -> VP {
        let p = self.newp();
        self.push(KOp::ISetP {
            p: p.0,
            cmp,
            signed,
            a: a.0,
            b,
        });
        p
    }

    /// Unsigned `a < b`.
    pub fn setp_u32_lt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Lt, false, a, b.into())
    }

    /// Unsigned `a >= b`.
    pub fn setp_u32_ge(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Ge, false, a, b.into())
    }

    /// Unsigned `a > b`.
    pub fn setp_u32_gt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Gt, false, a, b.into())
    }

    /// Unsigned `a <= b`.
    pub fn setp_u32_le(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Le, false, a, b.into())
    }

    /// `a == b`.
    pub fn setp_u32_eq(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Eq, false, a, b.into())
    }

    /// `a != b`.
    pub fn setp_u32_ne(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Ne, false, a, b.into())
    }

    /// Signed `a < b`.
    pub fn setp_s32_lt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Lt, true, a, b.into())
    }

    /// Signed `a > b`.
    pub fn setp_s32_gt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Gt, true, a, b.into())
    }

    /// Signed `a <= b`.
    pub fn setp_s32_le(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Le, true, a, b.into())
    }

    /// Signed `a >= b`.
    pub fn setp_s32_ge(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        self.isetp(CmpOp::Ge, true, a, b.into())
    }

    /// Float `a < b`.
    pub fn setp_f32_lt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        let p = self.newp();
        self.push(KOp::FSetP {
            p: p.0,
            cmp: CmpOp::Lt,
            a: a.0,
            b: b.into(),
        });
        p
    }

    /// Float `a > b`.
    pub fn setp_f32_gt(&mut self, a: V32, b: impl Into<VSrc>) -> VP {
        let p = self.newp();
        self.push(KOp::FSetP {
            p: p.0,
            cmp: CmpOp::Gt,
            a: a.0,
            b: b.into(),
        });
        p
    }

    /// Logical and of predicates.
    pub fn and_p(&mut self, a: VP, b: VP) -> VP {
        let p = self.newp();
        self.push(KOp::PBin {
            p: p.0,
            op: LogicOp::And,
            a: a.0,
            b: b.0,
            neg_a: false,
            neg_b: false,
        });
        p
    }

    /// Logical or of predicates.
    pub fn or_p(&mut self, a: VP, b: VP) -> VP {
        let p = self.newp();
        self.push(KOp::PBin {
            p: p.0,
            op: LogicOp::Or,
            a: a.0,
            b: b.0,
            neg_a: false,
            neg_b: false,
        });
        p
    }

    /// Logical not of a predicate.
    pub fn not_p(&mut self, a: VP) -> VP {
        let p = self.newp();
        self.push(KOp::PBin {
            p: p.0,
            op: LogicOp::And,
            a: a.0,
            b: a.0,
            neg_a: true,
            neg_b: true,
        });
        p
    }

    // ---- warp-wide operations ---------------------------------------------

    /// `__ballot(p)`: mask of active lanes where `p` holds.
    pub fn ballot(&mut self, p: VP) -> V32 {
        let d = self.new32();
        self.push(KOp::Vote {
            mode: VoteMode::Ballot,
            d: Some(d.0),
            p_out: None,
            src: p.0,
            neg_src: false,
        });
        d
    }

    /// `__ballot(1)`: mask of active lanes.
    pub fn active_mask(&mut self) -> V32 {
        let t = self.pconst(true);
        self.ballot(t)
    }

    /// `__all(p)`.
    pub fn vote_all(&mut self, p: VP) -> VP {
        let out = self.newp();
        self.push(KOp::Vote {
            mode: VoteMode::All,
            d: None,
            p_out: Some(out.0),
            src: p.0,
            neg_src: false,
        });
        out
    }

    /// `__any(p)`.
    pub fn vote_any(&mut self, p: VP) -> VP {
        let out = self.newp();
        self.push(KOp::Vote {
            mode: VoteMode::Any,
            d: None,
            p_out: Some(out.0),
            src: p.0,
            neg_src: false,
        });
        out
    }

    /// `__shfl(a, lane)`: value of `a` on the given source lane.
    pub fn shfl_idx(&mut self, a: V32, lane: impl Into<VSrc>) -> V32 {
        let d = self.new32();
        self.push(KOp::Shfl {
            mode: ShflMode::Idx,
            d: d.0,
            a: a.0,
            b: lane.into(),
            c_imm: 0x1f,
            p_out: None,
        });
        d
    }

    /// `__shfl_down(a, delta)`.
    pub fn shfl_down(&mut self, a: V32, delta: impl Into<VSrc>) -> V32 {
        let d = self.new32();
        self.push(KOp::Shfl {
            mode: ShflMode::Down,
            d: d.0,
            a: a.0,
            b: delta.into(),
            c_imm: 0x1f,
            p_out: None,
        });
        d
    }

    /// `__shfl_xor(a, mask)`.
    pub fn shfl_xor(&mut self, a: V32, mask: impl Into<VSrc>) -> V32 {
        let d = self.new32();
        self.push(KOp::Shfl {
            mode: ShflMode::Bfly,
            d: d.0,
            a: a.0,
            b: mask.into(),
            c_imm: 0x1f,
            p_out: None,
        });
        d
    }

    // ---- memory ---------------------------------------------------------------

    /// Reserves `bytes` of the per-thread stack frame (8-byte aligned).
    pub fn frame_alloc(&mut self, bytes: u32) -> FrameSlot {
        let offset = self.f.frame_bytes as i32;
        self.f.frame_bytes += (bytes + 7) & !7;
        FrameSlot { offset, bytes }
    }

    /// Reserves `bytes` of block shared memory (8-byte aligned).
    pub fn shared_alloc(&mut self, bytes: u32) -> SharedSlot {
        let offset = self.f.shared_bytes;
        self.f.shared_bytes += (bytes + 7) & !7;
        SharedSlot { offset, bytes }
    }

    fn ld(&mut self, width: MemWidth, space: AddrSpace, addr: KAddr) -> V32 {
        let d = if width.regs() == 2 {
            V32(self.new_vreg(VClass::B64))
        } else {
            self.new32()
        };
        self.push(KOp::Ld {
            d: d.0,
            width,
            space,
            addr,
        });
        d
    }

    /// Global 32-bit load.
    pub fn ld_global_u32(&mut self, addr: V64) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Global,
            KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
        )
    }

    /// Global 32-bit load at `addr + offset`.
    pub fn ld_global_u32_off(&mut self, addr: V64, offset: i32) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Global,
            KAddr::Reg {
                base: addr.0,
                offset,
            },
        )
    }

    /// Global byte load (zero-extended).
    pub fn ld_global_u8(&mut self, addr: V64) -> V32 {
        self.ld(
            MemWidth::U8,
            AddrSpace::Global,
            KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
        )
    }

    /// Global float load (same bits as `ld_global_u32`).
    pub fn ld_global_f32(&mut self, addr: V64) -> V32 {
        self.ld_global_u32(addr)
    }

    /// Global 64-bit load into a 64-bit value.
    pub fn ld_global_u64(&mut self, addr: V64) -> V64 {
        let d = self.new64();
        self.push(KOp::Ld {
            d: d.0,
            width: MemWidth::B64,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
        });
        d
    }

    /// Texture-path 32-bit load (classified `IsTexture` by SASSI).
    pub fn ld_texture_u32(&mut self, addr: V64) -> V32 {
        let d = self.new32();
        self.push(KOp::Tld {
            d: d.0,
            width: MemWidth::B32,
            base: addr.0,
            offset: 0,
        });
        d
    }

    /// Global 32-bit store.
    pub fn st_global_u32(&mut self, addr: V64, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
        });
    }

    /// Global 32-bit store at `addr + offset`.
    pub fn st_global_u32_off(&mut self, addr: V64, offset: i32, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset,
            },
        });
    }

    /// Global byte store.
    pub fn st_global_u8(&mut self, addr: V64, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::U8,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
        });
    }

    /// Shared 32-bit load; `addr` is a byte offset into shared memory.
    pub fn ld_shared_u32(&mut self, addr: V32, offset: i32) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Shared,
            KAddr::Reg {
                base: addr.0,
                offset,
            },
        )
    }

    /// Shared 32-bit store.
    pub fn st_shared_u32(&mut self, addr: V32, offset: i32, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Shared,
            addr: KAddr::Reg {
                base: addr.0,
                offset,
            },
        });
    }

    /// Stack-frame 32-bit load.
    pub fn ld_frame_u32(&mut self, slot: FrameSlot, offset: i32) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Local,
            KAddr::Frame {
                offset: slot.offset + offset,
            },
        )
    }

    /// Stack-frame 32-bit store.
    pub fn st_frame_u32(&mut self, slot: FrameSlot, offset: i32, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Local,
            addr: KAddr::Frame {
                offset: slot.offset + offset,
            },
        });
    }

    /// Stack-frame 32-bit load at a dynamic byte offset.
    pub fn ld_frame_u32_dyn(&mut self, byte_off: V32) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Local,
            KAddr::Reg {
                base: byte_off.0,
                offset: 0,
            },
        )
    }

    /// Stack-frame 32-bit store at a dynamic byte offset.
    pub fn st_frame_u32_dyn(&mut self, byte_off: V32, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Local,
            addr: KAddr::Reg {
                base: byte_off.0,
                offset: 0,
            },
        });
    }

    /// Generic 64-bit pointer to a stack-frame slot (for passing
    /// stack-allocated objects by reference).
    pub fn frame_addr_generic(&mut self, slot: FrameSlot, offset: i32) -> V64 {
        let d = self.new64();
        self.push(KOp::FrameAddrGeneric {
            d: d.0,
            offset: slot.offset + offset,
        });
        d
    }

    /// Generic-space 32-bit load through a 64-bit pointer.
    pub fn ld_generic_u32(&mut self, addr: V64, offset: i32) -> V32 {
        self.ld(
            MemWidth::B32,
            AddrSpace::Generic,
            KAddr::Reg {
                base: addr.0,
                offset,
            },
        )
    }

    /// Generic-space 32-bit store through a 64-bit pointer.
    pub fn st_generic_u32(&mut self, addr: V64, offset: i32, v: V32) {
        self.push(KOp::St {
            v: v.0,
            width: MemWidth::B32,
            space: AddrSpace::Generic,
            addr: KAddr::Reg {
                base: addr.0,
                offset,
            },
        });
    }

    /// Generic-space 64-bit load through a 64-bit pointer.
    pub fn ld_generic_u64(&mut self, addr: V64, offset: i32) -> V64 {
        let d = self.new64();
        self.push(KOp::Ld {
            d: d.0,
            width: MemWidth::B64,
            space: AddrSpace::Generic,
            addr: KAddr::Reg {
                base: addr.0,
                offset,
            },
        });
        d
    }

    /// Global `atomicAdd(addr, v)` returning the old value.
    pub fn atom_add_global(&mut self, addr: V64, v: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Add,
            wide: false,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: v.0,
            v2: None,
        });
        d
    }

    /// Global `atomicAdd` on a 64-bit counter.
    pub fn atom_add_global_u64(&mut self, addr: V64, v: V64) -> V64 {
        let d = self.new64();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Add,
            wide: true,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: v.0,
            v2: None,
        });
        d
    }

    /// Global fire-and-forget reduction (`RED`): no return value.
    pub fn red_global(&mut self, op: AtomOp, addr: V64, v: V32) {
        self.push(KOp::Atom {
            d: None,
            op,
            wide: false,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: v.0,
            v2: None,
        });
    }

    /// Shared-memory `atomicAdd`.
    pub fn atom_add_shared(&mut self, addr: V32, offset: i32, v: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Add,
            wide: false,
            space: AddrSpace::Shared,
            addr: KAddr::Reg {
                base: addr.0,
                offset,
            },
            v: v.0,
            v2: None,
        });
        d
    }

    /// Global compare-and-swap: returns the old value.
    pub fn atom_cas_global(&mut self, addr: V64, cmp: V32, new: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Cas,
            wide: false,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: cmp.0,
            v2: Some(new.0),
        });
        d
    }

    /// Global atomic min (unsigned).
    pub fn atom_min_global(&mut self, addr: V64, v: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Min,
            wide: false,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: v.0,
            v2: None,
        });
        d
    }

    /// Global atomic exchange.
    pub fn atom_exch_global(&mut self, addr: V64, v: V32) -> V32 {
        let d = self.new32();
        self.push(KOp::Atom {
            d: Some(d.0),
            op: AtomOp::Exch,
            wide: false,
            space: AddrSpace::Global,
            addr: KAddr::Reg {
                base: addr.0,
                offset: 0,
            },
            v: v.0,
            v2: None,
        });
        d
    }

    // ---- barriers -----------------------------------------------------------

    /// Block-wide barrier (`__syncthreads`).
    pub fn bar_sync(&mut self) {
        self.push(KOp::Bar);
    }

    /// Device memory fence.
    pub fn membar(&mut self) {
        self.push(KOp::MemBar);
    }

    // ---- structured control flow ----------------------------------------------

    /// `if (p) { then }` with SIMT reconvergence.
    pub fn if_(&mut self, p: VP, then: impl FnOnce(&mut KernelBuilder)) {
        let end = self.new_label();
        self.push(KOp::Ssy { t: end });
        self.push_guarded(p, true, KOp::Sync { reconv: end });
        then(self);
        self.push(KOp::Sync { reconv: end });
        self.place_label(end);
    }

    /// `if (p) { then } else { els }` with SIMT reconvergence.
    pub fn if_else(
        &mut self,
        p: VP,
        then: impl FnOnce(&mut KernelBuilder),
        els: impl FnOnce(&mut KernelBuilder),
    ) {
        let end = self.new_label();
        let else_l = self.new_label();
        self.push(KOp::Ssy { t: end });
        self.push_guarded(p, true, KOp::Bra { t: else_l });
        then(self);
        self.push(KOp::Sync { reconv: end });
        self.place_label(else_l);
        els(self);
        self.push(KOp::Sync { reconv: end });
        self.place_label(end);
    }

    /// `while (cond) { body }`. The condition closure runs at the loop
    /// head each iteration; lanes whose condition fails park at the loop
    /// exit until all lanes leave.
    pub fn while_(
        &mut self,
        cond: impl FnOnce(&mut KernelBuilder) -> VP,
        body: impl FnOnce(&mut KernelBuilder),
    ) {
        let head = self.new_label();
        let end = self.new_label();
        self.push(KOp::Ssy { t: end });
        self.place_label(head);
        let p = cond(self);
        self.push_guarded(p, true, KOp::Sync { reconv: end });
        self.loops.push(LoopCtx { head, end });
        body(self);
        self.loops.pop();
        self.push(KOp::Bra { t: head });
        self.place_label(end);
    }

    /// `for (i = start; i < end; i += step) { body(i) }` over a mutable
    /// loop variable (unsigned compare).
    pub fn for_range(
        &mut self,
        start: impl Into<VSrc>,
        end: V32,
        step: u32,
        body: impl FnOnce(&mut KernelBuilder, V32),
    ) {
        let i = self.var_u32(start);
        self.while_(
            |b| b.setp_u32_lt(i, end),
            |b| {
                body(b, i);
                let next = b.iadd(i, step);
                b.assign(i, next);
            },
        );
    }

    /// Leaves the innermost loop for lanes where `p` holds.
    ///
    /// # Panics
    ///
    /// Panics if called outside a loop, or from inside an `if_`/`if_else`
    /// nested in the loop body (the structured SSY discipline requires
    /// breaks to be direct children of the loop body; hoist the condition
    /// into a predicate instead).
    pub fn break_if(&mut self, p: VP) {
        let ctx = self.loops.last().expect("break_if outside of loop");
        let end = ctx.end;
        self.push_guarded(p, false, KOp::Sync { reconv: end });
    }

    /// Restarts the innermost loop for lanes where `p` holds.
    ///
    /// # Panics
    ///
    /// Panics if called outside a loop.
    pub fn continue_if(&mut self, p: VP) {
        let ctx = self.loops.last().expect("continue_if outside of loop");
        let head = ctx.head;
        self.push_guarded(p, false, KOp::Bra { t: head });
    }

    /// Terminates lanes where `p` holds.
    pub fn exit_if(&mut self, p: VP) {
        self.push_guarded(p, false, KOp::Exit);
    }

    /// Terminates all active lanes.
    pub fn exit(&mut self) {
        self.push(KOp::Exit);
    }

    /// Returns from an ABI function.
    pub fn ret(&mut self) {
        assert!(self.f.abi_function, "ret in kernel; use exit");
        self.push(KOp::Ret);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_appends_exit() {
        let b = KernelBuilder::kernel("k");
        let f = b.finish();
        assert!(matches!(f.instrs.last().unwrap().op, KOp::Exit));
    }

    #[test]
    fn abi_finish_appends_ret() {
        let b = KernelBuilder::abi_function("h");
        let f = b.finish();
        assert!(f.abi_function);
        assert!(matches!(f.instrs.last().unwrap().op, KOp::Ret));
    }

    #[test]
    fn if_emits_ssy_sync_label() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1);
        let p = b.setp_u32_lt(x, 2u32);
        b.if_(p, |b| {
            let _ = b.iconst(7);
        });
        let f = b.finish();
        let has_ssy = f.instrs.iter().any(|i| matches!(i.op, KOp::Ssy { .. }));
        let syncs = f
            .instrs
            .iter()
            .filter(|i| matches!(i.op, KOp::Sync { .. }))
            .count();
        assert!(has_ssy);
        assert_eq!(syncs, 2, "guarded skip sync + reconverge sync");
    }

    #[test]
    fn while_shape() {
        let mut b = KernelBuilder::kernel("k");
        let n = b.iconst(10);
        b.for_range(0u32, n, 1, |b, i| {
            let _ = b.iadd(i, 1u32);
        });
        let f = b.finish();
        let bras = f
            .instrs
            .iter()
            .filter(|i| matches!(i.op, KOp::Bra { .. }))
            .count();
        assert_eq!(bras, 1, "single back edge");
        let labels = f
            .instrs
            .iter()
            .filter(|i| matches!(i.op, KOp::Label { .. }))
            .count();
        assert_eq!(labels, 2, "head and end labels");
    }

    #[test]
    #[should_panic(expected = "break_if outside of loop")]
    fn break_outside_loop_panics() {
        let mut b = KernelBuilder::kernel("k");
        let p = b.pconst(true);
        b.break_if(p);
    }

    #[test]
    fn frame_alloc_aligns() {
        let mut b = KernelBuilder::kernel("k");
        let s1 = b.frame_alloc(5);
        let s2 = b.frame_alloc(8);
        assert_eq!(s1.offset, 0);
        assert_eq!(s2.offset, 8);
        assert_eq!(b.finish().frame_bytes, 16);
    }

    #[test]
    fn param_slots_are_8_bytes() {
        let mut b = KernelBuilder::kernel("k");
        let _ = b.param_u32(0);
        let _ = b.param_ptr(1);
        let f = b.finish();
        match (&f.instrs[0].op, &f.instrs[1].op) {
            (KOp::LdConst32 { addr: a0, .. }, KOp::LdConst64 { addr: a1, .. }) => {
                assert_eq!(a0.offset, cbank0::PARAM_BASE);
                assert_eq!(a1.offset, cbank0::PARAM_BASE + 8);
            }
            other => panic!("unexpected shapes: {other:?}"),
        }
    }

    #[test]
    fn wide_load_allocates_b64_class() {
        let mut b = KernelBuilder::kernel("k");
        let p = b.param_ptr(0);
        let v = b.ld_global_u64(p);
        let f = b.finish();
        assert_eq!(f.classes[v.vreg().index() as usize], VClass::B64);
    }
}
