//! Virtual-register liveness over the kernel-IR CFG, and live intervals
//! for the linear-scan allocator.

use crate::builder::KFunction;
use crate::cfg::Cfg;
use crate::vreg::VReg;

/// A dense bitset over virtual-register ids.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VBitSet {
    words: Vec<u64>,
}

impl VBitSet {
    /// Empty set sized for `n` virtual registers.
    pub fn new(n: usize) -> VBitSet {
        VBitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts a register; returns whether it was newly inserted.
    pub fn insert(&mut self, r: VReg) -> bool {
        let i = r.index() as usize;
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Removes a register.
    pub fn remove(&mut self, r: VReg) {
        let i = r.index() as usize;
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, r: VReg) -> bool {
        let i = r.index() as usize;
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// In-place union; returns whether anything changed.
    pub fn union_with(&mut self, other: &VBitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = VReg> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1 << b) != 0 {
                    Some(VReg((wi * 64 + b) as u32))
                } else {
                    None
                }
            })
        })
    }
}

/// Per-block liveness results.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live-in set of each block.
    pub live_in: Vec<VBitSet>,
    /// Live-out set of each block.
    pub live_out: Vec<VBitSet>,
}

/// Computes block-level liveness by backward fixpoint iteration.
pub fn block_liveness(f: &KFunction, cfg: &Cfg) -> Liveness {
    let nv = f.classes.len();
    let nb = cfg.len();
    let mut gen = vec![VBitSet::new(nv); nb]; // upward-exposed uses
    let mut kill = vec![VBitSet::new(nv); nb]; // defs

    for (bi, b) in cfg.blocks.iter().enumerate() {
        for i in (b.start..b.end).rev() {
            let du = f.instrs[i].defs_uses();
            for d in &du.defs {
                kill[bi].insert(*d);
                gen[bi].remove(*d);
            }
            for u in &du.uses {
                gen[bi].insert(*u);
            }
        }
    }

    let mut live_in = vec![VBitSet::new(nv); nb];
    let mut live_out = vec![VBitSet::new(nv); nb];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let mut out = VBitSet::new(nv);
            for &s in &cfg.succs[bi] {
                out.union_with(&live_in[s]);
            }
            if out != live_out[bi] {
                live_out[bi] = out;
            }
            // in = gen ∪ (out − kill)
            let mut inn = live_out[bi].clone();
            for (w, k) in inn.words.iter_mut().zip(&kill[bi].words) {
                *w &= !k;
            }
            inn.union_with(&gen[bi]);
            if inn != live_in[bi] {
                live_in[bi] = inn;
                changed = true;
            }
        }
    }
    Liveness { live_in, live_out }
}

/// The live interval of a virtual register over instruction positions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// The register.
    pub vreg: VReg,
    /// First position where the register is defined or live.
    pub start: u32,
    /// Last position where the register is live or used (inclusive).
    pub end: u32,
}

/// Computes live intervals: for each virtual register, the covering
/// range of positions where it is live-in, used or defined.
///
/// The per-position liveness is derived exactly from the block-level
/// dataflow (so values live around loop back edges get intervals
/// covering the whole loop), then collapsed to one covering interval
/// per register — the classic linear-scan formulation.
pub fn live_intervals(f: &KFunction, cfg: &Cfg, lv: &Liveness) -> Vec<Interval> {
    let nv = f.classes.len();
    let mut first = vec![u32::MAX; nv];
    let mut last = vec![0u32; nv];
    let touch = |r: VReg, pos: u32, first: &mut Vec<u32>, last: &mut Vec<u32>| {
        let i = r.index() as usize;
        first[i] = first[i].min(pos);
        last[i] = last[i].max(pos);
    };

    for (bi, b) in cfg.blocks.iter().enumerate() {
        // Walk backward from live-out.
        let mut live = lv.live_out[bi].clone();
        // Everything live-out of the block is live at its last position.
        if b.end > b.start {
            for r in live.iter().collect::<Vec<_>>() {
                touch(r, (b.end - 1) as u32, &mut first, &mut last);
            }
        }
        for i in (b.start..b.end).rev() {
            let du = f.instrs[i].defs_uses();
            for d in &du.defs {
                touch(*d, i as u32, &mut first, &mut last);
                live.remove(*d);
            }
            for u in &du.uses {
                touch(*u, i as u32, &mut first, &mut last);
                live.insert(*u);
            }
            // Anything still live is live at the previous position too.
            if i > b.start {
                for r in live.iter().collect::<Vec<_>>() {
                    touch(r, (i - 1) as u32, &mut first, &mut last);
                }
            }
        }
    }

    let mut out = Vec::new();
    for i in 0..nv {
        if first[i] != u32::MAX {
            out.push(Interval {
                vreg: VReg(i as u32),
                start: first[i],
                end: last[i],
            });
        }
    }
    out.sort_by_key(|iv| (iv.start, iv.end));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn bitset_ops() {
        let mut s = VBitSet::new(130);
        assert!(s.insert(VReg(0)));
        assert!(s.insert(VReg(129)));
        assert!(!s.insert(VReg(0)));
        assert!(s.contains(VReg(129)));
        s.remove(VReg(129));
        assert!(!s.contains(VReg(129)));
        let members: Vec<u32> = s.iter().map(|r| r.index()).collect();
        assert_eq!(members, vec![0]);
    }

    #[test]
    fn straight_line_intervals() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(1); // v0 def at 0
        let y = b.iadd(x, 2u32); // v1 def at 1, uses v0
        let _ = b.iadd(y, 3u32); // v2 def at 2, uses v1
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = block_liveness(&f, &cfg);
        let ivs = live_intervals(&f, &cfg, &lv);
        let iv0 = ivs.iter().find(|i| i.vreg == x.vreg()).unwrap();
        assert_eq!((iv0.start, iv0.end), (0, 1));
        let iv1 = ivs.iter().find(|i| i.vreg == y.vreg()).unwrap();
        assert_eq!((iv1.start, iv1.end), (1, 2));
    }

    #[test]
    fn loop_carried_value_lives_across_loop() {
        let mut b = KernelBuilder::kernel("k");
        let acc = b.var_u32(0u32);
        let n = b.iconst(10);
        b.for_range(0u32, n, 1, |b, _i| {
            let next = b.iadd(acc, 1u32);
            b.assign(acc, next);
        });
        // Use after loop.
        let _ = b.iadd(acc, 5u32);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = block_liveness(&f, &cfg);
        let ivs = live_intervals(&f, &cfg, &lv);
        let acc_iv = ivs.iter().find(|i| i.vreg == acc.vreg()).unwrap();
        // acc must be live from its def through the final use after the loop.
        let final_use = f.instrs.len() as u32 - 2; // iadd before exit
        assert!(acc_iv.start <= 1);
        assert!(
            acc_iv.end >= final_use,
            "interval {acc_iv:?} vs use {final_use}"
        );
    }

    #[test]
    fn value_live_through_branch_arms() {
        let mut b = KernelBuilder::kernel("k");
        let x = b.iconst(7);
        let p = b.setp_u32_lt(x, 3u32);
        b.if_else(
            p,
            |b| {
                let _ = b.iadd(x, 1u32);
            },
            |b| {
                let _ = b.iadd(x, 2u32);
            },
        );
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let lv = block_liveness(&f, &cfg);
        let ivs = live_intervals(&f, &cfg, &lv);
        let xi = ivs.iter().find(|i| i.vreg == x.vreg()).unwrap();
        // x used in the else arm, which is late in the stream.
        let else_use = f
            .instrs
            .iter()
            .enumerate()
            .rev()
            .find(|(_, ins)| ins.defs_uses().uses.contains(&x.vreg()))
            .unwrap()
            .0;
        assert!(xi.end >= else_use as u32);
    }
}
