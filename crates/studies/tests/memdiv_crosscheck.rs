//! DESIGN.md §4 cross-check: the memory-divergence handler's unique-line
//! counts must agree with the standalone coalescer on kernels with
//! analytically known access patterns.

use parking_lot::Mutex;
use sassi_kir::KernelBuilder;
use sassi_mem::coalesce_addresses;
use sassi_rt::{LaunchDims, ModuleBuilder, Runtime};
use sassi_studies::memdiv::{instrumentor, MemDivState};
use std::sync::Arc;

/// Runs one full warp issuing `lane * stride_bytes` offsets into a big
/// buffer and returns the (active, unique) matrix cell that got hit.
fn divergence_of_stride(stride_bytes: u32) -> (usize, usize) {
    let mut b = KernelBuilder::kernel("strided");
    let lane = b.lane_id();
    let buf = b.param_ptr(0);
    let off = b.imul(lane, stride_bytes);
    let shifted = b.shr(off, 2u32); // element index
    let e = b.lea(buf, shifted, 2);
    let v = b.ld_global_u32(e);
    let e2 = b.lea(buf, lane, 2);
    let w = b.iadd(v, 1u32);
    b.st_global_u32(e2, w);
    let kf = b.finish();

    let state = Arc::new(Mutex::new(MemDivState::default()));
    let mut sassi = instrumentor(state.clone());
    let mut mb = ModuleBuilder::new();
    mb.add_kernel(kf);
    let module = mb.build(Some(&sassi)).unwrap();
    let mut rt = Runtime::with_defaults();
    let buf = rt.alloc_zeroed_u32(32 * 64);
    let res = rt
        .launch(
            &module,
            "strided",
            LaunchDims::linear(1, 32),
            &[buf.addr],
            &mut sassi,
        )
        .unwrap();
    assert!(res.is_ok());

    // The load's cell: find the cell for the *load* (the store is unit
    // stride = 4 lines; exclude it by looking for the expected row).
    let st = state.lock();
    let expected_addrs: Vec<u64> = (0..32u64)
        .map(|l| buf.addr + l * stride_bytes as u64)
        .collect();
    let expected_unique = coalesce_addresses(&expected_addrs, 4).unique_lines() as usize;
    // Both instructions ran with 32 active lanes.
    let row = &st.counters[31];
    assert!(
        row[expected_unique - 1] >= 1,
        "stride {stride_bytes}: expected a hit at unique={expected_unique}, row {row:?}"
    );
    (32, expected_unique)
}

#[test]
fn handler_agrees_with_coalescer_across_strides() {
    // stride 0 bytes.. same element: 1 unique line.
    // stride 4: 32 lanes * 4B = 128B = 4 lines of 32B.
    // stride 32: one line per lane = 32 unique.
    // stride 8: 8 bytes apart → 8 lanes per 32B? 32*8=256B → 8 lines.
    assert_eq!(divergence_of_stride(4).1, 4);
    assert_eq!(divergence_of_stride(8).1, 8);
    assert_eq!(divergence_of_stride(16).1, 16);
    assert_eq!(divergence_of_stride(32).1, 32);
}

#[test]
fn broadcast_access_is_one_line() {
    let mut b = KernelBuilder::kernel("bcast");
    let buf = b.param_ptr(0);
    let v = b.ld_global_u32(buf); // every lane reads element 0
    let lane = b.lane_id();
    let e = b.lea(buf, lane, 2);
    let w = b.iadd(v, 1u32);
    b.st_global_u32(e, w);
    let kf = b.finish();

    let state = Arc::new(Mutex::new(MemDivState::default()));
    let mut sassi = instrumentor(state.clone());
    let mut mb = ModuleBuilder::new();
    mb.add_kernel(kf);
    let module = mb.build(Some(&sassi)).unwrap();
    let mut rt = Runtime::with_defaults();
    let buf = rt.alloc_zeroed_u32(64);
    rt.launch(
        &module,
        "bcast",
        LaunchDims::linear(1, 32),
        &[buf.addr],
        &mut sassi,
    )
    .unwrap();
    let st = state.lock();
    assert_eq!(st.counters[31][0], 1, "broadcast load = 1 unique line");
    // The store is unit-stride: 4 unique lines.
    assert_eq!(st.counters[31][3], 1, "unit-stride store = 4 unique lines");
}
