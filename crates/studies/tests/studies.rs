//! Study-level integration tests: the qualitative results the paper
//! reports must emerge from our instrumentation on the synthetic
//! workloads.

use sassi_studies::{branch, inject, memdiv, overhead, value};
use sassi_workloads::by_name;

#[test]
fn sgemm_has_zero_dynamic_divergence() {
    let w = by_name("sgemm (small)").unwrap();
    let st = branch::run(w.as_ref());
    assert_eq!(
        st.row.dynamic_divergent, 0,
        "sgemm is fully convergent in Table 1: {:?}",
        st.row
    );
    assert!(st.row.dynamic_total > 0);
}

#[test]
fn streamcluster_has_zero_dynamic_divergence() {
    let w = by_name("streamcluster").unwrap();
    let st = branch::run(w.as_ref());
    assert_eq!(st.row.dynamic_divergent, 0);
}

#[test]
fn tpacf_and_heartwall_diverge_heavily() {
    let t = branch::run(by_name("tpacf (small)").unwrap().as_ref());
    assert!(
        t.row.dynamic_pct() > 10.0,
        "tpacf should diverge (paper: 25.2%), got {:.1}%",
        t.row.dynamic_pct()
    );
    let h = branch::run(by_name("heartwall").unwrap().as_ref());
    assert!(
        h.row.dynamic_pct() > 15.0,
        "heartwall should diverge heavily (paper: 42.1%), got {:.1}%",
        h.row.dynamic_pct()
    );
}

#[test]
fn bfs_divergence_varies_across_datasets() {
    let uniform = branch::run(by_name("bfs (1M)").unwrap().as_ref());
    let road = branch::run(by_name("bfs (UT)").unwrap().as_ref());
    assert!(uniform.row.dynamic_total > 0 && road.row.dynamic_total > 0);
    assert_ne!(
        (uniform.row.dynamic_pct() * 10.0) as i64,
        (road.row.dynamic_pct() * 10.0) as i64,
        "datasets should show different divergence"
    );
    // Per-branch data for Figure 5 exists and is sorted.
    assert!(uniform.per_branch.len() >= 2);
    assert!(uniform.per_branch[0].1.total_branches >= uniform.per_branch[1].1.total_branches);
}

#[test]
fn minife_csr_diverges_more_than_ell() {
    let csr = memdiv::run(by_name("miniFE (CSR)").unwrap().as_ref());
    let ell = memdiv::run(by_name("miniFE (ELL)").unwrap().as_ref());
    assert!(
        csr.fully_diverged > ell.fully_diverged,
        "CSR should be more address-diverged than ELL: {} vs {}",
        csr.fully_diverged,
        ell.fully_diverged
    );
    // ELL is dominated by low-divergence accesses.
    let ell_low: f64 = ell.pmf[..8].iter().sum();
    let csr_low: f64 = csr.pmf[..8].iter().sum();
    assert!(
        ell_low > csr_low,
        "ELL PMF should sit lower: {ell_low} vs {csr_low}"
    );
    // Matrices populated.
    assert!(csr.matrix.iter().flatten().sum::<u64>() > 0);
}

#[test]
fn value_profiling_finds_constant_bits_and_scalars() {
    let r = value::run(by_name("b+tree").unwrap().as_ref());
    assert!(
        r.dyn_scalar > 30.0,
        "b+tree traversals are value-similar (paper: 76% scalar), got {:.0}%",
        r.dyn_scalar
    );
    assert!(
        r.dyn_const_bits > 20.0,
        "constant bits expected, got {:.0}%",
        r.dyn_const_bits
    );
    let bp = value::run(by_name("backprop").unwrap().as_ref());
    assert!(bp.dyn_const_bits > 30.0);
}

#[test]
fn value_bit_pattern_renders() {
    let d = value::DstProfile {
        reg_num: 13,
        constant_ones: 1,
        constant_zeros: !1,
        is_scalar: true,
    };
    assert_eq!(
        value::bit_pattern(&d),
        "R13* <- [00000000000000000000000000000001]"
    );
}

#[test]
fn injection_profile_and_outcomes() {
    let w = by_name("nn").unwrap();
    let (space, cycles) = inject::profile(w.as_ref());
    assert!(space.total() > 1000, "nn writes registers constantly");
    assert!(cycles > 0);

    let campaign = inject::run_campaign(w.as_ref(), 20, 42);
    assert_eq!(campaign.runs, 20);
    let sum: u64 = campaign.counts.iter().map(|(_, c)| c).sum();
    assert_eq!(sum, 20, "every run categorized");
    // Masked outcomes must exist (most flips are benign).
    assert!(campaign.fraction(inject::Outcome::Masked) > 0.0);
}

#[test]
fn overhead_study_shapes() {
    let w = by_name("nn").unwrap();
    let row = overhead::run(w.as_ref());
    // Branch instrumentation is lighter than value profiling on the
    // kernel side (fewer sites), as in Table 3.
    assert!(
        row.slowdowns[0].kernel < row.slowdowns[2].kernel,
        "branches {}k vs value {}k",
        row.slowdowns[0].kernel,
        row.slowdowns[2].kernel
    );
    // Kernel slowdowns exceed whole-program slowdowns for CPU-bound nn.
    assert!(row.slowdowns[2].kernel > row.slowdowns[2].total);
    // The stub keeps the dominant share of the overhead (§9.1: ~80%).
    assert!(
        row.stub_fraction > 0.5,
        "ABI/spill floor should dominate, got {:.2}",
        row.stub_fraction
    );
    // Liveness ablation: far fewer saves than save-everything.
    let (live, all) = overhead::spill_ablation(w.as_ref());
    assert!(live < all / 2.0, "liveness {live} vs save-all {all}");
}

#[test]
fn save_everything_policy_is_transparent_but_slower() {
    use sassi_studies::overhead::run_spill_policy_ablation;
    let w = by_name("spmv (small)").unwrap();
    let (k_live, k_all) = run_spill_policy_ablation(w.as_ref());
    assert!(
        k_all > k_live * 1.05,
        "save-everything must cost noticeably more: {k_live:.1} vs {k_all:.1}"
    );
}

#[test]
fn reports_render_expected_sections() {
    use sassi_studies::report;
    let b = branch::run(by_name("sgemm (small)").unwrap().as_ref());
    let t1 = report::table1(std::slice::from_ref(&b));
    assert!(t1.contains("Table 1") && t1.contains("sgemm (small)"));
    let f5 = report::figure5(&b, 4);
    assert!(f5.contains("Figure 5"));

    let m = memdiv::run(by_name("spmv (small)").unwrap().as_ref());
    let f7 = report::figure7(std::slice::from_ref(&m));
    assert!(f7.contains("fully-diverged"));
    let f8 = report::figure8(&m);
    assert!(f8.lines().count() > 33, "32 matrix rows plus headers");

    let v = value::run(by_name("nn").unwrap().as_ref());
    assert!(report::table2(std::slice::from_ref(&v)).contains("const%"));

    let c = inject::run_campaign(by_name("nn").unwrap().as_ref(), 5, 1);
    let f10 = report::figure10(std::slice::from_ref(&c));
    assert!(f10.contains("Masked") && f10.contains("average"));

    let o = overhead::run(by_name("nn").unwrap().as_ref());
    let t3 = report::table3(std::slice::from_ref(&o));
    assert!(t3.contains("Harmonic mean") && t3.contains("Stub-handler ablation"));
}

#[test]
fn handler_counts_agree_with_simulator_statistics() {
    // The branch study (instrumentation-based) and the simulator's own
    // hardware counters measure the same events independently.
    use sassi_workloads::execute;
    let w = by_name("gaussian").unwrap();
    let study = branch::run(w.as_ref());

    let base = execute(w.as_ref(), None, None);
    assert!(base.output.is_ok());
    // Re-run to collect per-launch stats (execute doesn't expose them
    // directly; use the totals instead).
    let mut mb = sassi_rt::ModuleBuilder::new();
    for k in w.kernels() {
        mb.add_kernel(k);
    }
    let module = mb.build(None).unwrap();
    let mut rt = sassi_rt::Runtime::with_defaults();
    let out = w
        .execute(&mut rt, &module, &mut sassi_sim::NoHandlers)
        .unwrap();
    let _ = out;
    let cond: u64 = rt
        .records()
        .iter()
        .map(|r| r.result.stats.cond_branches)
        .sum();
    let div: u64 = rt
        .records()
        .iter()
        .map(|r| r.result.stats.divergent_branches)
        .sum();
    assert_eq!(
        cond, study.row.dynamic_total,
        "conditional-branch counts agree"
    );
    assert_eq!(
        div, study.row.dynamic_divergent,
        "divergent-branch counts agree"
    );
}
