//! Steady-state allocation accounting for the instrumented path.
//!
//! The launch machinery performs a small, fixed number of heap
//! allocations per launch (shard queues, the constant bank, journal
//! growth) — identically for native and instrumented modules of the
//! same geometry. Traps must contribute *zero* on top: site dispatch is
//! indexed through the decode-resolved slot table, lane iteration is a
//! mask walk, and the study handlers reuse scratch capacity. So a
//! steady-state instrumented relaunch must allocate exactly as much as
//! a native relaunch — and warp contexts must come from the recycled
//! pool.
//!
//! This file holds a single `#[test]` on purpose: the counting
//! allocator is process-global, and a sibling test running concurrently
//! would pollute the deltas.

use parking_lot::Mutex;
use sassi::Sassi;
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, LaunchDims, Module};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const MAXC: u64 = 50_000_000;

/// Branches, global loads/stores and register writes in one kernel, so
/// each study's filter finds sites: out[i] = in[i] < 100 ? in[i]*3
/// : in[i]-100.
fn mixed_kernel() -> sassi_isa::Function {
    let mut b = KernelBuilder::kernel("mixed");
    let i = b.global_tid_x();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let dst = b.param_ptr(2);
    let p = b.setp_u32_lt(i, n);
    b.if_(p, |b| {
        let es = b.lea(src, i, 2);
        let v = b.ld_global_u32(es);
        let small = b.setp_u32_lt(v, 100u32);
        let tripled = b.imul(v, 3u32);
        let shifted = b.isub(v, 100u32);
        let r = b.sel(small, tripled, shifted);
        let ed = b.lea(dst, i, 2);
        b.st_global_u32(ed, r);
    });
    Compiler::new().compile(&b.finish()).unwrap()
}

struct Bench {
    dev: Device,
    module: Module,
    params: Vec<u64>,
    dims: LaunchDims,
}

impl Bench {
    fn new(sassi: Option<&Sassi>) -> Bench {
        let mut dev = Device::with_defaults();
        let n = 256u32;
        let src = dev.mem.alloc(4 * n as u64, 4).unwrap();
        let dst = dev.mem.alloc(4 * n as u64, 4).unwrap();
        for k in 0..n {
            dev.mem.write_u32(src + 4 * k as u64, k * 7 % 250).unwrap();
        }
        let func = mixed_kernel();
        let func = match sassi {
            Some(s) => s.apply(&func, 0),
            None => func,
        };
        Bench {
            dev,
            module: Module::link(&[func]).unwrap(),
            params: vec![n as u64, src, dst],
            dims: LaunchDims::linear(8, 32),
        }
    }

    fn launch(&mut self, rt: &mut Sassi) -> sassi_sim::LaunchResult {
        let res = self
            .dev
            .launch(&self.module, "mixed", self.dims, &self.params, rt, 0, MAXC)
            .unwrap();
        assert!(res.is_ok(), "outcome: {:?}", res.outcome);
        res
    }

    /// Heap allocations during one launch.
    fn measure(&mut self, rt: &mut Sassi) -> (u64, sassi_sim::LaunchResult) {
        let before = ALLOCS.load(Ordering::Relaxed);
        let res = self.launch(rt);
        (ALLOCS.load(Ordering::Relaxed) - before, res)
    }
}

#[test]
fn instrumented_relaunch_allocates_no_more_than_native() {
    // Native baseline: same kernel, same geometry, empty instrumentor.
    let mut native_rt = Sassi::new();
    let mut native = Bench::new(None);
    for _ in 0..2 {
        native.launch(&mut native_rt); // warm pools and caches
    }
    let (native_delta, _) = native.measure(&mut native_rt);

    // Each study's real instrumentor, driven steady-state.
    let branch_state = Arc::new(Mutex::new(sassi_studies::branch::BranchState::default()));
    let memdiv_state = Arc::new(Mutex::new(sassi_studies::memdiv::MemDivState::default()));
    let value_state = Arc::new(Mutex::new(sassi_studies::value::ValueState::default()));
    let studies: Vec<(&str, Sassi)> = vec![
        ("branch", sassi_studies::branch::instrumentor(branch_state)),
        ("memdiv", sassi_studies::memdiv::instrumentor(memdiv_state)),
        ("value", sassi_studies::value::instrumentor(value_state)),
    ];

    for (name, mut sassi) in studies {
        let mut bench = Bench::new(Some(&sassi));
        for _ in 0..2 {
            bench.launch(&mut sassi); // warm: pools, scratch, study maps
        }
        let warps_warm = bench.dev.warp_allocations();
        assert!(warps_warm > 0, "{name}: warm-up must provision warps");

        let (d1, r1) = bench.measure(&mut sassi);
        let (d2, r2) = bench.measure(&mut sassi);
        assert!(
            r1.stats.handler_calls > 0,
            "{name}: kernel must actually trap"
        );
        assert_eq!(
            d1, d2,
            "{name}: steady-state relaunches must allocate identically"
        );
        assert_eq!(r1.stats.handler_calls, r2.stats.handler_calls);
        // The tentpole invariant: with per-trap allocation at zero, the
        // instrumented launch performs exactly the native launch's
        // fixed machinery allocations.
        assert_eq!(
            d1, native_delta,
            "{name}: {} handler calls leaked allocations ({d1} vs native {native_delta})",
            r1.stats.handler_calls
        );
        // And warp contexts keep coming from the recycled pool.
        assert_eq!(
            bench.dev.warp_allocations(),
            warps_warm,
            "{name}: instrumented relaunch must not allocate warp state"
        );
    }
}
