//! Source audit: `active_lanes()` is an allocation-free mask iterator,
//! and no production code may materialize it into a `Vec` again.
//!
//! The audit walks every `crates/*/src` tree (library code only — test
//! and bench code may collect lanes for assertion convenience) and
//! rejects any `active_lanes()` call whose statement collects the
//! iterator, plus any accessor signature that returns lane indices as
//! a `Vec`.

use std::fs;
use std::path::{Path, PathBuf};

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn active_lanes_is_never_collected_in_library_code() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .to_path_buf();
    let mut files = Vec::new();
    for entry in fs::read_dir(&root).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files);
        }
    }
    assert!(
        files.len() > 20,
        "audit found only {} sources under {}",
        files.len(),
        root.display()
    );

    let call = "active_lanes()";
    for file in &files {
        let text = fs::read_to_string(file).unwrap();
        // Normalize whitespace so a chained `.collect()` on the next
        // line still lands in the call's window.
        let flat = text.split_whitespace().collect::<Vec<_>>().join(" ");
        let mut from = 0;
        while let Some(at) = flat[from..].find(call) {
            let start = from + at;
            let window = &flat[start..flat.len().min(start + 120)];
            let stmt = window.split(';').next().unwrap_or(window);
            assert!(
                !stmt.contains(".collect") && !stmt.contains(".into_iter()"),
                "{}: `{}` materializes the lane mask: `{}`",
                file.display(),
                call,
                stmt
            );
            from = start + call.len();
        }
        // The accessors themselves must expose the mask iterator, not
        // an allocated vector.
        let mut from = 0;
        while let Some(at) = flat[from..].find("fn active_lanes") {
            let start = from + at;
            let sig = &flat[start..flat.len().min(start + 90)];
            let sig = sig.split('{').next().unwrap_or(sig);
            assert!(
                !sig.contains("Vec<"),
                "{}: active_lanes must not return a Vec: `{}`",
                file.display(),
                sig
            );
            from = start + 10;
        }
    }
}
