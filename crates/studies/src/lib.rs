//! # sassi-studies — the paper's four case studies
//!
//! Each module reproduces one section of the evaluation in *Flexible
//! Software Profiling of GPU Architectures* (ISCA 2015):
//!
//! | Module | Paper | Regenerates |
//! |---|---|---|
//! | [`branch`] | §5, Figure 4 handler | Table 1, Figure 5 |
//! | [`memdiv`] | §6, Figure 6 handler | Figures 7 and 8 |
//! | [`value`] | §7, Figure 9 handler | Table 2 |
//! | [`inject`] | §8 | Figure 10 |
//! | [`overhead`] | §9.1 | Table 3 + stub ablation |
//!
//! All studies run real workloads from [`sassi_workloads`] with real
//! SASSI instrumentation from [`sassi`]; the handlers mirror the
//! paper's CUDA handlers line by line (ballots, leader election,
//! per-instruction hash tables, atomic accumulation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod inject;
pub mod memdiv;
pub mod overhead;
pub mod report;
pub mod value;
