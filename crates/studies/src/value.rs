//! Case Study III: value profiling and analysis (paper §7, Figure 9
//! handler; regenerates Table 2).
//!
//! SASSI instruments *after* every instruction that writes a register.
//! The handler tracks, per static instruction and destination: which
//! bits were constant one / constant zero across every executing thread
//! (via `atomicAnd`-style accumulation), and whether every write in a
//! warp carried the same value (scalar detection via `__shfl`/`__all`).

use parking_lot::Mutex;
use sassi::{Handler, HandlerCost, HandlerShard, InfoFlags, Sassi, SiteCtx, SiteFilter};
use sassi_workloads::{execute_with_jobs, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-destination accumulation (one register written by one static
/// instruction).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DstProfile {
    /// Destination register number.
    pub reg_num: u32,
    /// Bits that were 1 in every written value.
    pub constant_ones: u32,
    /// Bits that were 0 in every written value.
    pub constant_zeros: u32,
    /// Whether all warps so far wrote warp-uniform values.
    pub is_scalar: bool,
}

impl DstProfile {
    fn new(reg_num: u32) -> DstProfile {
        DstProfile {
            reg_num,
            constant_ones: u32::MAX,
            constant_zeros: u32::MAX,
            is_scalar: true,
        }
    }

    /// Number of bits constant (one or zero) across the profile.
    pub fn constant_bits(&self) -> u32 {
        (self.constant_ones | self.constant_zeros).count_ones()
    }
}

/// Per-instruction profile.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InstrProfile {
    /// Dynamic execution count (warp-level invocations with at least
    /// one executing lane).
    pub weight: u64,
    /// Destination profiles.
    pub dsts: Vec<DstProfile>,
}

/// Shared accumulation state: `ins_addr → InstrProfile`.
#[derive(Default)]
pub struct ValueState {
    /// Per-instruction profiles.
    pub instrs: HashMap<u64, InstrProfile>,
}

impl ValueState {
    /// Folds another accumulator into this one: weights sum, bit masks
    /// and scalar flags AND together. `DstProfile::new` starts at the
    /// AND identity (all-ones masks, scalar), so destinations one side
    /// never saw merge exactly. All operations are commutative.
    pub fn merge(&mut self, other: &ValueState) {
        for (addr, prof) in &other.instrs {
            let e = self.instrs.entry(*addr).or_default();
            e.weight += prof.weight;
            for (d, src) in prof.dsts.iter().enumerate() {
                if let Some(dst) = e.dsts.get_mut(d) {
                    dst.constant_ones &= src.constant_ones;
                    dst.constant_zeros &= src.constant_zeros;
                    dst.is_scalar &= src.is_scalar;
                } else {
                    e.dsts.push(*src);
                }
            }
        }
    }
}

struct ValueHandler {
    state: Arc<Mutex<ValueState>>,
}

impl Handler for ValueHandler {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        // Lanes whose guard passed actually wrote their destinations —
        // a ballot, kept as a mask (no per-trap allocation).
        let exec = ctx.ballot(|l| ctx.params(l).will_execute(ctx.trap));
        if exec == 0 {
            return HandlerCost {
                instructions: 8,
                memory_ops: 0,
                atomics: 0,
            };
        }
        let leader = exec.trailing_zeros() as usize;
        let rp = ctx
            .register_params(leader)
            .expect("register info requested");
        let n = rp.num_dsts(ctx.trap);
        if n == 0 {
            return HandlerCost {
                instructions: 8,
                memory_ops: 0,
                atomics: 0,
            };
        }
        let addr = ctx.params(leader).ins_addr(ctx.trap);
        let mut st = self.state.lock();
        let prof = st.instrs.entry(addr).or_default();
        prof.weight += 1;
        for d in 0..n {
            let reg_num = rp.reg_num(ctx.trap, d);
            if prof.dsts.len() <= d as usize {
                prof.dsts.push(DstProfile::new(reg_num));
            }
            let slot = &mut prof.dsts[d as usize];
            // int leaderValue = __shfl(valueInReg, firstActiveThread);
            let leader_value = sassi::RegisterParamsView::new(ctx.trap, leader).value(ctx.trap, d);
            let mut all_same = true;
            for lane in sassi_isa::lanes(exec) {
                let v = sassi::RegisterParamsView::new(ctx.trap, lane).value(ctx.trap, d);
                // atomicAnd(&constantOnes, v); atomicAnd(&constantZeros, ~v);
                slot.constant_ones &= v;
                slot.constant_zeros &= !v;
                all_same &= v == leader_value;
            }
            // atomicAnd(&isScalar, __all(v == leaderValue));
            slot.is_scalar &= all_same;
        }
        // Figure 9's loop costs ~14 instructions + 3 atomics per
        // destination, plus hashing overhead.
        HandlerCost {
            instructions: 12 + 14 * n,
            memory_ops: 2,
            atomics: 3 * n,
        }
    }

    fn fork(&self) -> Option<HandlerShard> {
        let shard = Arc::new(Mutex::new(ValueState::default()));
        let parent = self.state.clone();
        let child = shard.clone();
        Some(HandlerShard {
            handler: Box::new(ValueHandler { state: child }),
            join: Box::new(move || parent.lock().merge(&shard.lock())),
        })
    }
}

/// One Table 2 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ValueRow {
    /// Workload label.
    pub name: String,
    /// Dynamic % of register bits constant.
    pub dyn_const_bits: f64,
    /// Dynamic % of register writes that are scalar.
    pub dyn_scalar: f64,
    /// Static % of register bits constant.
    pub static_const_bits: f64,
    /// Static % of register writes that are scalar.
    pub static_scalar: f64,
}

/// Builds the Case Study III instrumentor sharing `state`.
pub fn instrumentor(state: Arc<Mutex<ValueState>>) -> Sassi {
    let mut sassi = Sassi::new();
    sassi.on_after(
        SiteFilter::REG_WRITES,
        InfoFlags::REGISTERS,
        Box::new(ValueHandler { state }),
    );
    sassi
}

/// Runs Case Study III on one workload.
pub fn run(w: &dyn Workload) -> ValueRow {
    run_with_jobs(w, 1)
}

/// Runs Case Study III with `cta_jobs` inner worker threads per
/// launch. Results are byte-identical for any job count.
pub fn run_with_jobs(w: &dyn Workload, cta_jobs: usize) -> ValueRow {
    let state = Arc::new(Mutex::new(ValueState::default()));
    let mut sassi = instrumentor(state.clone());
    let report = execute_with_jobs(w, Some(&mut sassi), None, cta_jobs);
    assert!(
        report.output.is_ok(),
        "{}: {:?}",
        w.name(),
        report.output.err()
    );
    let st = state.lock();

    let (mut dyn_cb_num, mut dyn_cb_den) = (0f64, 0f64);
    let (mut dyn_sc_num, mut dyn_sc_den) = (0f64, 0f64);
    let (mut st_cb_num, mut st_cb_den) = (0f64, 0f64);
    let (mut st_sc_num, mut st_sc_den) = (0f64, 0f64);
    // Iterate in address order: HashMap order would vary between runs
    // and f64 accumulation is not associative, so unsorted iteration
    // can flip low bits of the ratios from run to run.
    let mut by_addr: Vec<(&u64, &InstrProfile)> = st.instrs.iter().collect();
    by_addr.sort_by_key(|(addr, _)| **addr);
    for (_, prof) in by_addr {
        for d in &prof.dsts {
            let cb = d.constant_bits() as f64;
            dyn_cb_num += prof.weight as f64 * cb;
            dyn_cb_den += prof.weight as f64 * 32.0;
            dyn_sc_num += prof.weight as f64 * (d.is_scalar as u32 as f64);
            dyn_sc_den += prof.weight as f64;
            st_cb_num += cb;
            st_cb_den += 32.0;
            st_sc_num += d.is_scalar as u32 as f64;
            st_sc_den += 1.0;
        }
    }
    let pct = |n: f64, d: f64| if d == 0.0 { 0.0 } else { 100.0 * n / d };
    ValueRow {
        name: w.name(),
        dyn_const_bits: pct(dyn_cb_num, dyn_cb_den),
        dyn_scalar: pct(dyn_sc_num, dyn_sc_den),
        static_const_bits: pct(st_cb_num, st_cb_den),
        static_scalar: pct(st_sc_num, st_sc_den),
    }
}

/// Renders the paper's per-instruction bit-pattern report (the
/// `R13* <- [0000...T]` listing of §7.2) for one instruction profile.
pub fn bit_pattern(d: &DstProfile) -> String {
    let mut s = String::with_capacity(40);
    s.push_str(&format!(
        "R{}{} <- [",
        d.reg_num,
        if d.is_scalar { "*" } else { "" }
    ));
    for bit in (0..32).rev() {
        let m = 1u32 << bit;
        if d.constant_ones & m != 0 {
            s.push('1');
        } else if d.constant_zeros & m != 0 {
            s.push('0');
        } else {
            s.push('T');
        }
    }
    s.push(']');
    s
}
