//! The instrumentation-overhead study (paper §9.1; regenerates Table 3)
//! and the stub-handler ablation (the observation that ABI setup and
//! register spilling account for ~80% of the total overhead).

use crate::{branch, inject, memdiv, value};
use parking_lot::Mutex;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_sim::GpuConfig;
use sassi_workloads::{execute, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The four case-study instrumentation configurations, plus the stub.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum StudyConfig {
    /// Case Study I: before conditional branches.
    CondBranches,
    /// Case Study II: before memory operations.
    MemoryDivergence,
    /// Case Study III: after register writes.
    ValueProfiling,
    /// Case Study IV: after register/predicate writes (profiling pass).
    ErrorInjection,
    /// Value-profiling sites with an *empty* handler body: measures the
    /// ABI/spill floor of §9.1.
    StubValueSites,
}

impl StudyConfig {
    /// All Table 3 columns.
    pub fn table3() -> [StudyConfig; 4] {
        [
            StudyConfig::CondBranches,
            StudyConfig::MemoryDivergence,
            StudyConfig::ValueProfiling,
            StudyConfig::ErrorInjection,
        ]
    }

    /// Column label.
    pub fn label(&self) -> &'static str {
        match self {
            StudyConfig::CondBranches => "Cond. Branches",
            StudyConfig::MemoryDivergence => "Memory Divergence",
            StudyConfig::ValueProfiling => "Value Profiling",
            StudyConfig::ErrorInjection => "Error Injection",
            StudyConfig::StubValueSites => "Stub (value sites)",
        }
    }

    /// Builds the instrumentor for this configuration (with throwaway
    /// state — the overhead study only measures time).
    pub fn instrumentor(&self) -> Sassi {
        match self {
            StudyConfig::CondBranches => {
                branch::instrumentor(Arc::new(Mutex::new(Default::default())))
            }
            StudyConfig::MemoryDivergence => {
                memdiv::instrumentor(Arc::new(Mutex::new(Default::default())))
            }
            StudyConfig::ValueProfiling => {
                value::instrumentor(Arc::new(Mutex::new(Default::default())))
            }
            StudyConfig::ErrorInjection => {
                // The profiling pass of Case Study IV.
                let state = Arc::new(Mutex::new(inject::InjectionSpace::default()));
                let mut s = Sassi::new();
                let st = state;
                s.on_after(
                    SiteFilter::REG_WRITES | SiteFilter::PRED_WRITES,
                    InfoFlags::REGISTERS,
                    Box::new(FnHandler::new(
                        sassi::HandlerCost {
                            instructions: 8,
                            memory_ops: 0,
                            atomics: 1,
                        },
                        move |_| {
                            let _ = &st;
                        },
                    )),
                );
                s
            }
            StudyConfig::StubValueSites => {
                let mut s = Sassi::new();
                s.on_after(
                    SiteFilter::REG_WRITES,
                    InfoFlags::REGISTERS,
                    Box::new(FnHandler::free(|_| {})),
                );
                s
            }
        }
    }
}

/// One measurement: wall-clock and kernel-time slowdowns.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Slowdown {
    /// Whole-program ratio `T/t`.
    pub total: f64,
    /// Device-side ratio `K/k`.
    pub kernel: f64,
}

/// One Table 3 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Workload label.
    pub name: String,
    /// Baseline whole-program seconds (`t`).
    pub baseline_total_s: f64,
    /// Baseline kernel milliseconds (`k`).
    pub baseline_kernel_ms: f64,
    /// Kernel launches.
    pub launches: u64,
    /// Slowdowns per configuration, in `StudyConfig::table3()` order.
    pub slowdowns: Vec<Slowdown>,
    /// The stub measurement.
    pub stub: Slowdown,
    /// Fraction of the value-profiling *kernel* overhead already paid
    /// by the empty-handler stub (§9.1 reports ≈0.8).
    pub stub_fraction: f64,
}

/// Runs the overhead study for one workload.
pub fn run(w: &dyn Workload) -> OverheadRow {
    let cfg = GpuConfig::default();
    let base = execute(w, None, None);
    assert!(base.output.is_ok(), "{}: baseline failed", w.name());
    let t = base.clock.total_seconds(&cfg);
    let k = base.clock.kernel_seconds(&cfg);

    let measure = |config: StudyConfig| -> Slowdown {
        let mut sassi = config.instrumentor();
        let rep = execute(w, Some(&mut sassi), None);
        assert!(
            rep.output.is_ok(),
            "{}: {} failed",
            w.name(),
            config.label()
        );
        Slowdown {
            total: rep.clock.total_seconds(&cfg) / t,
            kernel: rep.clock.kernel_seconds(&cfg) / k,
        }
    };

    let slowdowns: Vec<Slowdown> = StudyConfig::table3().iter().map(|&c| measure(c)).collect();
    let stub = measure(StudyConfig::StubValueSites);
    let value_k = slowdowns[2].kernel;
    let stub_fraction = if value_k > 1.0 {
        (stub.kernel - 1.0) / (value_k - 1.0)
    } else {
        0.0
    };

    OverheadRow {
        name: w.name(),
        baseline_total_s: t,
        baseline_kernel_ms: k * 1e3,
        launches: base.launches,
        slowdowns,
        stub,
        stub_fraction,
    }
}

/// Harmonic mean over rows of a selected ratio.
///
/// Slowdown ratios are positive by construction; a zero or negative
/// value would poison the reciprocal sum (yielding 0, a NaN or a
/// negative "mean") while looking like a plausible table entry, so
/// non-finite and non-positive inputs are skipped with a warning (and
/// rejected outright in debug builds).
pub fn harmonic_mean(values: impl Iterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut denom = 0f64;
    for v in values {
        debug_assert!(
            v.is_finite() && v > 0.0,
            "harmonic_mean: non-positive ratio {v}"
        );
        let recip = 1.0 / v;
        if !(v > 0.0 && recip.is_finite()) {
            eprintln!("warning: harmonic_mean skipping non-positive ratio {v}");
            continue;
        }
        n += 1;
        denom += recip;
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / denom
    }
}

/// Measures the end-to-end kernel slowdown of before-all-instructions
/// instrumentation under both spill policies: liveness-driven minimal
/// saves vs. the save-everything baseline of a liveness-blind binary
/// rewriter. Returns (liveness, save_everything) kernel slowdowns.
pub fn run_spill_policy_ablation(w: &dyn Workload) -> (f64, f64) {
    let cfg = GpuConfig::default();
    let base = execute(w, None, None);
    let k = base.clock.kernel_seconds(&cfg);
    let run = |policy: sassi::SpillPolicy| -> f64 {
        let mut s = Sassi::new();
        s.on_before(
            SiteFilter::ALL,
            InfoFlags::NONE,
            Box::new(FnHandler::free(|_| {})),
        );
        s.set_spill_policy(policy);
        let rep = execute(w, Some(&mut s), None);
        assert!(rep.output.is_ok());
        rep.clock.kernel_seconds(&cfg) / k
    };
    (
        run(sassi::SpillPolicy::Liveness),
        run(sassi::SpillPolicy::SaveEverything),
    )
}

/// The liveness ablation of DESIGN.md: average registers SASSI saves
/// per site with liveness-driven spilling vs. the save-everything
/// alternative a binary instrumentor without liveness must use.
pub fn spill_ablation(w: &dyn Workload) -> (f64, f64) {
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let mut live_total = 0u64;
    let mut sites = 0u64;
    for k in w.kernels() {
        let f = sassi_kir::Compiler::new().compile(&k).expect("compile");
        for (_, set) in sassi::planned_spills(&f, sassi.specs()) {
            live_total += set.gpr_count() as u64;
            sites += 1;
        }
    }
    let avg_live = if sites == 0 {
        0.0
    } else {
        live_total as f64 / sites as f64
    };
    (avg_live, 15.0) // save-everything = R0, R2..R15
}

#[cfg(test)]
mod tests {
    use super::harmonic_mean;

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(harmonic_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn single_value_is_itself() {
        assert!((harmonic_mean([2.5].into_iter()) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn known_pair() {
        // hmean(1, 3) = 2 / (1 + 1/3) = 1.5
        assert!((harmonic_mean([1.0, 3.0].into_iter()) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-positive ratio"))]
    fn zero_is_rejected_not_absorbed() {
        // Release builds skip the poisoned entry instead of silently
        // returning 0; debug builds flag the bug at the call site.
        let m = harmonic_mean([0.0, 2.0].into_iter());
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-positive ratio"))]
    fn negative_is_rejected_not_averaged() {
        let m = harmonic_mean([-4.0, 2.0].into_iter());
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "non-positive ratio"))]
    fn nan_is_rejected() {
        let m = harmonic_mean([f64::NAN, 2.0].into_iter());
        assert!((m - 2.0).abs() < 1e-12);
    }
}
