//! Case Study I: conditional control flow (paper §5, Figure 4 handler;
//! regenerates Table 1 and Figure 5).
//!
//! SASSI instruments before every conditional branch, and the handler
//! — mirroring Figure 4 line by line — ballots the lanes' directions,
//! elects the first active thread, and accumulates per-branch counters
//! in a hash table keyed by the instruction's address.

use parking_lot::Mutex;
use sassi::{Handler, HandlerCost, HandlerShard, InfoFlags, Sassi, SiteCtx, SiteFilter};
use sassi_workloads::{execute_with_opts, Workload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters for one static branch (the paper's `BranchStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Times the branch executed (warp-level).
    pub total_branches: u64,
    /// Times it split the warp.
    pub divergent_branches: u64,
    /// Active threads summed over executions.
    pub active_threads: u64,
    /// Threads that took the branch.
    pub taken_threads: u64,
    /// Threads that fell through.
    pub taken_not_threads: u64,
}

/// Shared accumulation state: `ins_addr → BranchStats`.
#[derive(Default)]
pub struct BranchState {
    /// Per-branch counters.
    pub branches: HashMap<u64, BranchStats>,
}

impl BranchState {
    /// Folds another accumulator into this one. Every field is an
    /// entry-wise sum, so merging is commutative and the result does
    /// not depend on shard order.
    pub fn merge(&mut self, other: &BranchState) {
        for (addr, s) in &other.branches {
            let e = self.branches.entry(*addr).or_default();
            e.total_branches += s.total_branches;
            e.divergent_branches += s.divergent_branches;
            e.active_threads += s.active_threads;
            e.taken_threads += s.taken_threads;
            e.taken_not_threads += s.taken_not_threads;
        }
    }
}

struct BranchHandler {
    state: Arc<Mutex<BranchState>>,
}

impl Handler for BranchHandler {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        // int active = __ballot(1);
        let active = ctx.active_mask();
        // int taken = __ballot(dir == true);
        let taken = ctx.ballot(|lane| {
            ctx.branch_params(lane)
                .expect("branch info requested")
                .direction(ctx.trap)
        });
        let ntaken = active & !taken;
        let num_active = active.count_ones() as u64;
        let num_taken = taken.count_ones() as u64;
        let num_not_taken = ntaken.count_ones() as u64;
        // The first active thread records the result.
        if let Some(leader) = ctx.leader() {
            let addr = ctx.params(leader).ins_addr(ctx.trap);
            let mut st = self.state.lock();
            let s = st.branches.entry(addr).or_default();
            s.total_branches += 1;
            s.active_threads += num_active;
            s.taken_threads += num_taken;
            s.taken_not_threads += num_not_taken;
            if num_taken != num_active && num_not_taken != num_active {
                s.divergent_branches += 1;
            }
        }
        // Figure 4's handler compiles to roughly this much SASS under
        // the 16-register cap: ballots, popcounts, hash-table probe and
        // five atomic adds.
        HandlerCost {
            instructions: 28,
            memory_ops: 2,
            atomics: 5,
        }
    }

    fn fork(&self) -> Option<HandlerShard> {
        let shard = Arc::new(Mutex::new(BranchState::default()));
        let parent = self.state.clone();
        let child = shard.clone();
        Some(HandlerShard {
            handler: Box::new(BranchHandler { state: child }),
            join: Box::new(move || parent.lock().merge(&shard.lock())),
        })
    }
}

/// One Table 1 row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BranchRow {
    /// Benchmark (dataset) label.
    pub name: String,
    /// Static conditional branches in the binary.
    pub static_total: u64,
    /// Static branches that diverged at least once.
    pub static_divergent: u64,
    /// Dynamic (runtime) branch executions.
    pub dynamic_total: u64,
    /// Dynamic executions that split the warp.
    pub dynamic_divergent: u64,
}

impl BranchRow {
    /// Static divergent percentage.
    pub fn static_pct(&self) -> f64 {
        pct(self.static_divergent, self.static_total)
    }

    /// Dynamic divergent percentage.
    pub fn dynamic_pct(&self) -> f64 {
        pct(self.dynamic_divergent, self.dynamic_total)
    }
}

fn pct(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        100.0 * a as f64 / b as f64
    }
}

/// Full study result for one workload: the table row plus per-branch
/// counters for Figure 5.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BranchStudy {
    /// The Table 1 row.
    pub row: BranchRow,
    /// Per-branch statistics, sorted by descending execution count
    /// (Figure 5's x-axis order).
    pub per_branch: Vec<(u64, BranchStats)>,
}

/// Builds the Case Study I instrumentor sharing `state`.
pub fn instrumentor(state: Arc<Mutex<BranchState>>) -> Sassi {
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::COND_BRANCHES,
        InfoFlags::COND_BRANCH,
        Box::new(BranchHandler { state }),
    );
    sassi
}

/// Runs Case Study I on one workload.
pub fn run(w: &dyn Workload) -> BranchStudy {
    run_with_jobs(w, 1)
}

/// Runs Case Study I with `cta_jobs` inner worker threads per launch.
/// Results are byte-identical for any job count.
pub fn run_with_jobs(w: &dyn Workload, cta_jobs: usize) -> BranchStudy {
    run_with_config(w, cta_jobs, None)
}

/// As [`run_with_jobs`], additionally pinning the block-stepped
/// scheduler on or off (`None` keeps the `SASSI_BLOCK_STEP` default).
/// The study output is byte-identical across all four
/// `cta_jobs` × `block_step` cells — the CI matrix's contract.
pub fn run_with_config(w: &dyn Workload, cta_jobs: usize, block_step: Option<bool>) -> BranchStudy {
    let state = Arc::new(Mutex::new(BranchState::default()));
    let mut sassi = instrumentor(state.clone());

    // Static totals come from the compiled, uninstrumented binaries —
    // exactly what SASSI sees as the final compiler pass.
    let static_total: u64 = w
        .kernels()
        .iter()
        .map(|k| {
            let f = sassi_kir::Compiler::new().compile(k).expect("compile");
            f.instrs
                .iter()
                .filter(|i| i.class().is_cond_control_xfer())
                .count() as u64
        })
        .sum();

    let report = execute_with_opts(w, Some(&mut sassi), None, cta_jobs, block_step);
    assert!(
        report.output.is_ok(),
        "{}: {:?}",
        w.name(),
        report.output.err()
    );

    let st = state.lock();
    let mut per_branch: Vec<(u64, BranchStats)> =
        st.branches.iter().map(|(a, s)| (*a, *s)).collect();
    // Tie-break on address: `st.branches` is a HashMap, so equal
    // counts would otherwise surface in nondeterministic order and
    // break byte-identical reports across runs.
    per_branch.sort_by(|a, b| {
        b.1.total_branches
            .cmp(&a.1.total_branches)
            .then(a.0.cmp(&b.0))
    });
    let dynamic_total: u64 = per_branch.iter().map(|(_, s)| s.total_branches).sum();
    let dynamic_divergent: u64 = per_branch.iter().map(|(_, s)| s.divergent_branches).sum();
    let static_divergent = per_branch
        .iter()
        .filter(|(_, s)| s.divergent_branches > 0)
        .count() as u64;

    BranchStudy {
        row: BranchRow {
            name: w.name(),
            static_total,
            static_divergent,
            dynamic_total,
            dynamic_divergent,
        },
        per_branch,
    }
}
