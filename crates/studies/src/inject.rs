//! Case Study IV: error injection (paper §8; regenerates Figure 10).
//!
//! Three steps, as in the paper: (1) a profiling pass counts the
//! architecture-level injection space — dynamic executions of
//! instructions that write a GPR, predicate or CC and are not
//! predicated off; (2) sites are selected uniformly at random from that
//! space; (3) each injection run flips one random bit in one randomly
//! chosen destination of the selected dynamic instruction, then the
//! application runs to completion while we watch for crashes, hangs and
//! output corruption against the golden output.
//!
//! Unlike the CUDA-GDB approach the paper compares against, predicate
//! and CC destinations are injectable — the handler rewrites them
//! through the trap context.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sassi::{Handler, HandlerCost, InfoFlags, Sassi, SiteCtx, SiteFilter};
use sassi_isa::Gpr;
use sassi_workloads::{execute, RunFailure, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

fn injection_filter() -> SiteFilter {
    SiteFilter::REG_WRITES | SiteFilter::PRED_WRITES
}

// ---------------------------------------------------------- profiling --

/// Profile of the injection space.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InjectionSpace {
    /// Candidate (thread-level) executions per kernel launch.
    pub per_launch: Vec<u64>,
}

impl InjectionSpace {
    /// Total candidate executions.
    pub fn total(&self) -> u64 {
        self.per_launch.iter().sum()
    }
}

struct ProfileHandler {
    state: Arc<Mutex<InjectionSpace>>,
}

impl Handler for ProfileHandler {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        let executing = u64::from(
            ctx.ballot(|l| ctx.params(l).will_execute(ctx.trap))
                .count_ones(),
        );
        if executing > 0 {
            let li = ctx.trap.launch_index as usize;
            let mut st = self.state.lock();
            if st.per_launch.len() <= li {
                st.per_launch.resize(li + 1, 0);
            }
            st.per_launch[li] += executing;
        }
        HandlerCost {
            instructions: 8,
            memory_ops: 0,
            atomics: 1,
        }
    }
}

/// Runs the profiling pass; also returns the instrumented run's total
/// kernel cycles (used to scale the hang watchdog).
pub fn profile(w: &dyn Workload) -> (InjectionSpace, u64) {
    let state = Arc::new(Mutex::new(InjectionSpace::default()));
    let mut sassi = Sassi::new();
    sassi.on_after(
        injection_filter(),
        InfoFlags::REGISTERS,
        Box::new(ProfileHandler {
            state: state.clone(),
        }),
    );
    let report = execute(w, Some(&mut sassi), None);
    assert!(report.output.is_ok(), "{}: profile run failed", w.name());
    let space = state.lock().clone();
    (space, report.kernel_cycles)
}

// ----------------------------------------------------------- injection --

/// One selected injection site.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct InjectionSite {
    /// Kernel launch index.
    pub launch: u64,
    /// Candidate execution index within the launch.
    pub nth: u64,
    /// Seed choosing the destination and bit.
    pub seed: u64,
}

/// Derives the seed for site `site_index` of a campaign.
///
/// The seed is a pure function of `(campaign_seed, workload,
/// site_index)` — FNV-1a over the three components, a hash that is
/// stable across platforms and releases (unlike `DefaultHasher`).
/// Because no generator state is threaded between sites, site `k` is
/// identical whether sites are drawn serially, in parallel, or alone.
pub fn site_seed(campaign_seed: u64, workload: &str, site_index: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for b in campaign_seed
        .to_le_bytes()
        .iter()
        .chain(workload.as_bytes())
        .chain(&site_index.to_le_bytes())
    {
        h = (h ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Selects `count` sites uniformly from the profiled space.
///
/// Each site is drawn from its own generator seeded by
/// [`site_seed`], so the selection is order-independent: the engine
/// can dispatch injections across workers in any order and still
/// reproduce the exact site list of a serial run.
pub fn select_sites(
    space: &InjectionSpace,
    count: usize,
    seed: u64,
    workload: &str,
) -> Vec<InjectionSite> {
    let total = space.total();
    assert!(total > 0, "empty injection space");
    (0..count)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(site_seed(seed, workload, i as u64));
            let mut pick = rng.gen_range(0..total);
            let mut launch = 0u64;
            for (li, &c) in space.per_launch.iter().enumerate() {
                if pick < c {
                    launch = li as u64;
                    break;
                }
                pick -= c;
            }
            InjectionSite {
                launch,
                nth: pick,
                seed: rng.gen(),
            }
        })
        .collect()
}

struct InjectHandler {
    site: InjectionSite,
    counter: u64,
    done: bool,
    /// What was injected, for reporting.
    injected: Arc<Mutex<Option<String>>>,
}

impl Handler for InjectHandler {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        let cost = HandlerCost {
            instructions: 8,
            memory_ops: 0,
            atomics: 0,
        };
        if self.done || ctx.trap.launch_index != self.site.launch {
            return cost;
        }
        let exec = ctx.ballot(|l| ctx.params(l).will_execute(ctx.trap));
        let n = u64::from(exec.count_ones());
        if self.counter + n <= self.site.nth {
            self.counter += n;
            return cost;
        }
        // The selected dynamic execution is one of this warp's lanes:
        // the (nth - counter)'th set bit, in ascending lane order.
        let lane = sassi_isa::lanes(exec)
            .nth((self.site.nth - self.counter) as usize)
            .expect("selected execution index within executing mask");
        self.counter += n;
        self.done = true;

        let mut rng = StdRng::seed_from_u64(self.site.seed);
        let rp = sassi::RegisterParamsView::new(ctx.trap, lane);
        let ngpr = rp.num_dsts(ctx.trap);
        let pred_mask = rp.pred_dst_mask(ctx.trap);
        let writes_cc = rp.writes_cc(ctx.trap);

        // Enumerate destinations: GPRs, predicates, CC. At most 4 GPR
        // dsts + 7 predicates + CC, so a stack array holds all of them
        // (content and order match the old Vec exactly — the RNG draw
        // below must stay byte-identical).
        let mut kinds = [0u32; 12];
        let mut nk = 0usize;
        for g in 0..ngpr {
            kinds[nk] = g;
            nk += 1;
        }
        let npred = pred_mask.count_ones();
        for p in 0..npred {
            kinds[nk] = 100 + p;
            nk += 1;
        }
        if writes_cc {
            kinds[nk] = 200;
            nk += 1;
        }
        if nk == 0 {
            return cost;
        }
        let choice = kinds[rng.gen_range(0..nk)];
        let what;
        if choice < 100 {
            // Flip one random bit of a 32-bit GPR destination.
            let reg = rp.reg_num(ctx.trap, choice) as u8;
            let bit: u32 = rng.gen_range(0..32);
            let old = ctx.trap.reg(lane, Gpr::new(reg));
            ctx.trap.set_reg(lane, Gpr::new(reg), old ^ (1 << bit));
            what = format!("R{reg} bit {bit} lane {lane}");
        } else if choice < 200 {
            // Flip the written predicate bit.
            let idx = choice - 100;
            let mut seen = 0;
            let mut target = 0u8;
            for p in 0..7u8 {
                if pred_mask & (1 << p) != 0 {
                    if seen == idx {
                        target = p;
                        break;
                    }
                    seen += 1;
                }
            }
            let p = sassi_isa::PredReg::new(target);
            let old = ctx.trap.pred(lane, p);
            ctx.trap.set_pred(lane, p, !old);
            what = format!("P{target} lane {lane}");
        } else {
            let old = ctx.trap.cc(lane);
            ctx.trap.set_cc(lane, !old);
            what = format!("CC lane {lane}");
        }
        *self.injected.lock() = Some(what);
        cost
    }
}

// ------------------------------------------------------------ outcomes --

/// Figure 10's outcome categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Outcome {
    /// No observable effect: outputs and stdout match the golden run.
    Masked,
    /// The application crashed (invalid control transfer, call-stack
    /// corruption, or an illegal global access aborting the process).
    Crash,
    /// Watchdog expiry.
    Hang,
    /// The kernel failed in a way the runtime reports (local/shared
    /// violations surfacing as unsuccessful kernel execution).
    FailureSymptom,
    /// Output buffers match but the printed summary differs
    /// ("stdout only different").
    SdcStdoutOnly,
    /// Output buffers differ ("output file different").
    SdcOutputFile,
}

impl Outcome {
    /// All categories in Figure 10's legend order.
    pub fn all() -> [Outcome; 6] {
        [
            Outcome::Masked,
            Outcome::Crash,
            Outcome::Hang,
            Outcome::FailureSymptom,
            Outcome::SdcStdoutOnly,
            Outcome::SdcOutputFile,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Masked => "Masked",
            Outcome::Crash => "Crashes",
            Outcome::Hang => "Hangs",
            Outcome::FailureSymptom => "Failure symptoms",
            Outcome::SdcStdoutOnly => "Stdout only different",
            Outcome::SdcOutputFile => "Output file different",
        }
    }
}

/// Distribution of outcomes for one application.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InjectionCampaign {
    /// Workload label.
    pub name: String,
    /// Runs per category.
    pub counts: Vec<(Outcome, u64)>,
    /// Total runs.
    pub runs: u64,
}

impl InjectionCampaign {
    /// Fraction of runs in `o`.
    pub fn fraction(&self, o: Outcome) -> f64 {
        let c = self
            .counts
            .iter()
            .find(|(k, _)| *k == o)
            .map(|(_, c)| *c)
            .unwrap_or(0);
        if self.runs == 0 {
            0.0
        } else {
            c as f64 / self.runs as f64
        }
    }
}

/// Runs one injection and categorizes the outcome.
pub fn run_one(w: &dyn Workload, site: InjectionSite, watchdog: u64) -> Outcome {
    let injected = Arc::new(Mutex::new(None));
    let mut sassi = Sassi::new();
    sassi.on_after(
        injection_filter(),
        InfoFlags::REGISTERS,
        Box::new(InjectHandler {
            site,
            counter: 0,
            done: false,
            injected,
        }),
    );
    let report = execute(w, Some(&mut sassi), Some(watchdog));
    match report.output {
        Err(RunFailure::Hang) => Outcome::Hang,
        Err(RunFailure::Fault(f)) => match f.kind {
            sassi_sim::FaultKind::StackViolation { .. }
            | sassi_sim::FaultKind::SharedViolation { .. } => Outcome::FailureSymptom,
            _ => Outcome::Crash,
        },
        Err(RunFailure::Launch(_)) => Outcome::Crash,
        Ok(out) => {
            let golden = w.golden();
            if out.buffers != golden.buffers {
                Outcome::SdcOutputFile
            } else if out.summary != golden.summary {
                Outcome::SdcStdoutOnly
            } else {
                Outcome::Masked
            }
        }
    }
}

/// The precomputed, dispatch-order-independent part of a campaign:
/// every injection site plus the hang watchdog, fixed before any
/// injection runs. Parallel engines fan the sites out and tally the
/// outcomes back in site order.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    /// Hang watchdog in cycles, scaled from the profiled run.
    pub watchdog: u64,
    /// All selected sites, in canonical (site-index) order.
    pub sites: Vec<InjectionSite>,
}

/// Profiles `w` and precomputes all `runs` injection sites.
pub fn plan_campaign(w: &dyn Workload, runs: usize, seed: u64) -> CampaignPlan {
    let (space, instr_cycles) = profile(w);
    let watchdog = instr_cycles * 4 + 2_000_000;
    let sites = select_sites(&space, runs, seed, &w.name());
    CampaignPlan { watchdog, sites }
}

/// Folds per-site outcomes into Figure 10's category counts.
pub fn tally(name: String, outcomes: &[Outcome]) -> InjectionCampaign {
    let mut counts: std::collections::HashMap<Outcome, u64> = Default::default();
    for &o in outcomes {
        *counts.entry(o).or_default() += 1;
    }
    InjectionCampaign {
        name,
        counts: Outcome::all()
            .iter()
            .map(|&o| (o, counts.get(&o).copied().unwrap_or(0)))
            .collect(),
        runs: outcomes.len() as u64,
    }
}

/// Runs a full campaign serially: profile, select `runs` sites, inject
/// each. The parallel engine produces bit-identical results by running
/// [`plan_campaign`] + [`run_one`] per site + [`tally`].
pub fn run_campaign(w: &dyn Workload, runs: usize, seed: u64) -> InjectionCampaign {
    let plan = plan_campaign(w, runs, seed);
    let outcomes: Vec<Outcome> = plan
        .sites
        .iter()
        .map(|&site| run_one(w, site, plan.watchdog))
        .collect();
    tally(w.name(), &outcomes)
}

// `sassi_sim::FaultKind` used in matching above.
pub use sassi_sim::FaultKind;
