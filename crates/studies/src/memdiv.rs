//! Case Study II: memory divergence (paper §6, Figure 6 handler;
//! regenerates Figures 7 and 8).
//!
//! SASSI instruments before every memory operation; the handler filters
//! to executing global accesses, computes each lane's 32-byte line
//! address, iteratively elects leaders to count unique lines (the
//! Figure 6 loop), and tallies a 32×32 matrix of (active lanes ×
//! unique lines).

use parking_lot::Mutex;
use sassi::{
    Handler, HandlerCost, HandlerShard, InfoFlags, MemoryDomain, Sassi, Scratch, SiteCtx,
    SiteFilter,
};
use sassi_workloads::{execute_with_jobs, Workload};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// 32-byte lines, as in the paper ("for this work, we use a 32B line
/// size").
pub const OFFSET_BITS: u32 = 5;

/// Shared accumulation state.
pub struct MemDivState {
    /// `counters[active-1][unique-1]`, the Figure 8 matrix.
    pub counters: Vec<[u64; 32]>,
}

impl Default for MemDivState {
    fn default() -> MemDivState {
        MemDivState {
            counters: vec![[0u64; 32]; 32],
        }
    }
}

impl MemDivState {
    /// Folds another accumulator into this one (element-wise sum of
    /// the 32×32 matrix — commutative, so shard order is irrelevant).
    pub fn merge(&mut self, other: &MemDivState) {
        for (row, orow) in self.counters.iter_mut().zip(&other.counters) {
            for (cell, ocell) in row.iter_mut().zip(orow) {
                *cell += ocell;
            }
        }
    }

    /// The Figure 7 PMF: fraction of *thread-level* accesses issued
    /// from warps touching `n+1` unique lines (index `n`).
    pub fn pmf(&self) -> [f64; 32] {
        let mut weighted = [0f64; 32];
        let mut total = 0f64;
        for active in 0..32 {
            for (wslot, &count) in weighted.iter_mut().zip(&self.counters[active]) {
                let w = count as f64 * (active as f64 + 1.0);
                *wslot += w;
                total += w;
            }
        }
        if total > 0.0 {
            for w in &mut weighted {
                *w /= total;
            }
        }
        weighted
    }

    /// Fraction of accesses that are fully diverged (unique == active,
    /// active > 1) — the annotation above Figure 7's bars.
    pub fn fully_diverged_fraction(&self) -> f64 {
        let mut full = 0f64;
        let mut total = 0f64;
        for active in 1..32 {
            for unique in 0..32 {
                let w = self.counters[active][unique] as f64 * (active as f64 + 1.0);
                total += w;
                if unique == active {
                    full += w;
                }
            }
        }
        // Include active == 1 in the total only (a single lane cannot
        // be "diverged").
        for unique in 0..32 {
            total += self.counters[0][unique] as f64;
        }
        if total == 0.0 {
            0.0
        } else {
            full / total
        }
    }
}

struct MemDivHandler {
    state: Arc<Mutex<MemDivState>>,
    /// Per-trap workset buffer, reset each trap; capacity persists so
    /// steady-state handling never allocates.
    scratch: Scratch,
}

impl Handler for MemDivHandler {
    fn handle(&mut self, ctx: &mut SiteCtx<'_, '_>) -> HandlerCost {
        // Figure 6: filter out lanes whose guard is false, keep global
        // accesses only, shift off the line offset bits.
        self.scratch.reset();
        let line_addrs = &mut self.scratch.words;
        for lane in ctx.active_lanes() {
            let bp = ctx.params(lane);
            if !bp.will_execute(ctx.trap) {
                continue;
            }
            let mp = ctx.memory_params(lane).expect("memory info requested");
            if mp.domain(ctx.trap) != MemoryDomain::Global {
                continue; // __isGlobal filter
            }
            line_addrs.push(mp.address(ctx.trap) >> OFFSET_BITS);
        }
        let num_active = line_addrs.len();
        if num_active == 0 {
            return HandlerCost {
                instructions: 10,
                memory_ops: 0,
                atomics: 0,
            };
        }
        // The leader-election loop of Figure 6: each iteration elects
        // the first not-yet-matched lane's address and knocks out its
        // matches. Counting an address only at its first occurrence is
        // the same count, computed in place (no workset copy).
        let mut unique = 0usize;
        for i in 0..num_active {
            if line_addrs[..i].iter().all(|&a| a != line_addrs[i]) {
                unique += 1;
            }
        }
        let mut st = self.state.lock();
        st.counters[num_active - 1][unique - 1] += 1;
        // Cost model: the Figure 6 loop runs once per unique line (~6
        // instructions per iteration) plus fixed overhead and the tally.
        HandlerCost {
            instructions: 14 + 6 * unique as u32,
            memory_ops: 1,
            atomics: 1,
        }
    }

    fn fork(&self) -> Option<HandlerShard> {
        let shard = Arc::new(Mutex::new(MemDivState::default()));
        let parent = self.state.clone();
        let child = shard.clone();
        Some(HandlerShard {
            handler: Box::new(MemDivHandler {
                state: child,
                scratch: Scratch::default(),
            }),
            join: Box::new(move || parent.lock().merge(&shard.lock())),
        })
    }
}

/// The study result for one workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MemDivStudy {
    /// Workload label.
    pub name: String,
    /// Figure 7 PMF (index n = n+1 unique lines).
    pub pmf: Vec<f64>,
    /// Fully-diverged fraction annotation.
    pub fully_diverged: f64,
    /// Figure 8 matrix: `matrix[active-1][unique-1]` counts.
    pub matrix: Vec<Vec<u64>>,
}

/// Builds the Case Study II instrumentor sharing `state`.
pub fn instrumentor(state: Arc<Mutex<MemDivState>>) -> Sassi {
    let mut sassi = Sassi::new();
    sassi.on_before(
        SiteFilter::MEMORY,
        InfoFlags::MEMORY,
        Box::new(MemDivHandler {
            state,
            scratch: Scratch::default(),
        }),
    );
    sassi
}

/// Runs Case Study II on one workload.
pub fn run(w: &dyn Workload) -> MemDivStudy {
    run_with_jobs(w, 1)
}

/// Runs Case Study II with `cta_jobs` inner worker threads per launch.
/// Results are byte-identical for any job count.
pub fn run_with_jobs(w: &dyn Workload, cta_jobs: usize) -> MemDivStudy {
    let state = Arc::new(Mutex::new(MemDivState::default()));
    let mut sassi = instrumentor(state.clone());
    let report = execute_with_jobs(w, Some(&mut sassi), None, cta_jobs);
    assert!(
        report.output.is_ok(),
        "{}: {:?}",
        w.name(),
        report.output.err()
    );
    let st = state.lock();
    MemDivStudy {
        name: w.name(),
        pmf: st.pmf().to_vec(),
        fully_diverged: st.fully_diverged_fraction(),
        matrix: st.counters.iter().map(|r| r.to_vec()).collect(),
    }
}
