//! ASCII rendering of every table and figure, in the layout of the
//! paper, plus JSON export for EXPERIMENTS.md bookkeeping.

use crate::branch::BranchStudy;
use crate::inject::{InjectionCampaign, Outcome};
use crate::memdiv::MemDivStudy;
use crate::overhead::{harmonic_mean, OverheadRow, StudyConfig};
use crate::value::ValueRow;
use std::fmt::Write as _;

fn human(n: u64) -> String {
    if n >= 10_000_000 {
        format!("{:.2} M", n as f64 / 1e6)
    } else if n >= 10_000 {
        format!("{:.2} K", n as f64 / 1e3)
    } else {
        format!("{n}")
    }
}

/// Renders Table 1 (average branch divergence statistics).
pub fn table1(rows: &[BranchStudy]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Average branch divergence statistics.");
    let _ = writeln!(
        s,
        "{:<16} | {:>8} {:>9} {:>6} | {:>10} {:>10} {:>6}",
        "Benchmark", "Static", "Divergent", "Div%", "Dynamic", "Divergent", "Div%"
    );
    let _ = writeln!(s, "{}", "-".repeat(80));
    for r in rows {
        let row = &r.row;
        let _ = writeln!(
            s,
            "{:<16} | {:>8} {:>9} {:>6.0} | {:>10} {:>10} {:>6.1}",
            row.name,
            row.static_total,
            row.static_divergent,
            row.static_pct(),
            human(row.dynamic_total),
            human(row.dynamic_divergent),
            row.dynamic_pct()
        );
    }
    s
}

/// Renders Figure 5 (per-branch divergence profile) as a text bar
/// chart: one row per static branch, sorted by execution count.
pub fn figure5(study: &BranchStudy, max_rows: usize) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 5: per-branch profile for {}", study.row.name);
    let peak = study
        .per_branch
        .first()
        .map(|(_, st)| st.total_branches)
        .unwrap_or(1)
        .max(1);
    for (addr, st) in study.per_branch.iter().take(max_rows) {
        let width = (st.total_branches * 40 / peak) as usize;
        let marker = if st.divergent_branches > 0 { '#' } else { '=' };
        let _ = writeln!(
            s,
            "  pc {:>6x} {:>10} {} {}",
            addr,
            st.total_branches,
            if st.divergent_branches > 0 {
                "DIV"
            } else {
                "   "
            },
            marker.to_string().repeat(width.max(1))
        );
    }
    s
}

/// Renders Figure 7 (unique-cacheline PMFs) for several workloads.
pub fn figure7(studies: &[MemDivStudy]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 7: distribution (PMF) of unique 32B cachelines per warp memory instruction"
    );
    for st in studies {
        let _ = writeln!(
            s,
            "  {:<16} fully-diverged fraction: {:.2}",
            st.name, st.fully_diverged
        );
        let _ = write!(s, "    ");
        for (i, p) in st.pmf.iter().enumerate() {
            if *p >= 0.005 {
                let _ = write!(s, "{}:{:.0}% ", i + 1, p * 100.0);
            }
        }
        let _ = writeln!(s);
    }
    s
}

/// Renders Figure 8 (occupancy × divergence matrix) as a density map.
pub fn figure8(study: &MemDivStudy) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 8: warp occupancy (rows, 32..1) x address divergence (cols, 1..32) for {}",
        study.name
    );
    let glyph = |c: u64| match c {
        0 => ' ',
        1..=9 => '.',
        10..=99 => ':',
        100..=999 => 'o',
        1000..=9999 => 'O',
        _ => '@',
    };
    for active in (0..32).rev() {
        let _ = write!(s, "  {:>2} |", active + 1);
        for unique in 0..32 {
            let _ = write!(s, "{}", glyph(study.matrix[active][unique]));
        }
        let _ = writeln!(s, "|");
    }
    let _ = writeln!(s, "      {}", "^".repeat(32));
    s
}

/// Renders Table 2 (value profiling).
pub fn table2(rows: &[ValueRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 2: Results for value profiling.");
    let _ = writeln!(
        s,
        "{:<16} | {:>10} {:>7} | {:>10} {:>7}",
        "Benchmark", "dyn const%", "scalar%", "st const%", "scalar%"
    );
    let _ = writeln!(s, "{}", "-".repeat(62));
    for r in rows {
        let _ = writeln!(
            s,
            "{:<16} | {:>10.0} {:>7.0} | {:>10.0} {:>7.0}",
            r.name, r.dyn_const_bits, r.dyn_scalar, r.static_const_bits, r.static_scalar
        );
    }
    s
}

/// Renders Figure 10 (error-injection outcome distribution).
pub fn figure10(campaigns: &[InjectionCampaign]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Figure 10: error injection outcomes (fraction of runs).");
    let _ = write!(s, "{:<16} |", "Benchmark");
    for o in Outcome::all() {
        let _ = write!(s, " {:>9}", &o.label()[..o.label().len().min(9)]);
    }
    let _ = writeln!(s);
    let _ = writeln!(s, "{}", "-".repeat(16 + 6 * 10 + 2));
    for c in campaigns {
        let _ = write!(s, "{:<16} |", c.name);
        for o in Outcome::all() {
            let _ = write!(s, " {:>8.1}%", 100.0 * c.fraction(o));
        }
        let _ = writeln!(s);
    }
    // Average row, as in the paper's prose (≈79% masked etc.).
    let _ = write!(s, "{:<16} |", "average");
    for o in Outcome::all() {
        let avg =
            campaigns.iter().map(|c| c.fraction(o)).sum::<f64>() / campaigns.len().max(1) as f64;
        let _ = write!(s, " {:>8.1}%", 100.0 * avg);
    }
    let _ = writeln!(s);
    s
}

/// Renders Table 3 (instrumentation overheads).
pub fn table3(rows: &[OverheadRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Table 3: Instrumentation overheads (T = total, K = kernel slowdown)."
    );
    let _ = write!(
        s,
        "{:<16} | {:>8} {:>9} {:>8} |",
        "Benchmark", "t (ms)", "k (ms)", "launches"
    );
    for c in StudyConfig::table3() {
        let _ = write!(s, " {:>14}", c.label());
    }
    let _ = writeln!(s, " | {:>10} {:>6}", "stub K", "frac");
    let _ = writeln!(s, "{}", "-".repeat(130));
    for r in rows {
        let _ = write!(
            s,
            "{:<16} | {:>8.2} {:>9.2} {:>8} |",
            r.name,
            r.baseline_total_s * 1e3,
            r.baseline_kernel_ms,
            r.launches
        );
        for sd in &r.slowdowns {
            let _ = write!(s, " {:>5.1}t {:>6.1}k", sd.total, sd.kernel);
        }
        let _ = writeln!(s, " | {:>9.1}k {:>5.2}", r.stub.kernel, r.stub_fraction);
    }
    // Min / max / harmonic mean summary rows like the paper's footer.
    for (label, f) in [
        ("Minimum", f64::min as fn(f64, f64) -> f64),
        ("Maximum", f64::max as fn(f64, f64) -> f64),
    ] {
        let _ = write!(s, "{:<16} | {:>8} {:>9} {:>8} |", label, "", "", "");
        for i in 0..StudyConfig::table3().len() {
            let t = rows.iter().map(|r| r.slowdowns[i].total).fold(
                if label == "Minimum" {
                    f64::MAX
                } else {
                    f64::MIN
                },
                f,
            );
            let k = rows.iter().map(|r| r.slowdowns[i].kernel).fold(
                if label == "Minimum" {
                    f64::MAX
                } else {
                    f64::MIN
                },
                f,
            );
            let _ = write!(s, " {:>5.1}t {:>6.1}k", t, k);
        }
        let _ = writeln!(s);
    }
    let _ = write!(
        s,
        "{:<16} | {:>8} {:>9} {:>8} |",
        "Harmonic mean", "", "", ""
    );
    for i in 0..StudyConfig::table3().len() {
        let t = harmonic_mean(rows.iter().map(|r| r.slowdowns[i].total));
        let k = harmonic_mean(rows.iter().map(|r| r.slowdowns[i].kernel));
        let _ = write!(s, " {:>5.1}t {:>6.1}k", t, k);
    }
    let _ = writeln!(s);
    let mean_frac = rows.iter().map(|r| r.stub_fraction).sum::<f64>() / rows.len().max(1) as f64;
    let _ = writeln!(
        s,
        "\nStub-handler ablation: on average {:.0}% of the value-profiling kernel overhead\n\
         remains with an empty handler body (the paper reports ~80% from ABI setup + spills).",
        100.0 * mean_frac
    );
    s
}
