//! Golden-output verification: every workload, compiled and executed on
//! the simulated GPU, must reproduce its host-computed reference
//! bit-for-bit.

use sassi_workloads::{all_workloads, by_name, verify_golden};

macro_rules! golden {
    ($test:ident, $name:expr) => {
        #[test]
        fn $test() {
            let w = by_name($name).expect($name);
            let report = verify_golden(w.as_ref());
            assert!(report.kernel_cycles > 0);
            assert!(report.launches > 0);
        }
    };
}

golden!(bfs_1m, "bfs (1M)");
golden!(bfs_ny, "bfs (NY)");
golden!(bfs_sf, "bfs (SF)");
golden!(bfs_ut, "bfs (UT)");
golden!(sgemm_small, "sgemm (small)");
golden!(sgemm_medium, "sgemm (medium)");
golden!(tpacf_small, "tpacf (small)");
golden!(spmv_small, "spmv (small)");
golden!(spmv_medium, "spmv (medium)");
golden!(spmv_large, "spmv (large)");
golden!(stencil, "stencil");
golden!(histo, "histo");
golden!(lbm, "lbm");
golden!(sad, "sad");
golden!(cutcp, "cutcp");
golden!(mri_q, "mri-q");
golden!(mri_gridding, "mri-gridding");
golden!(rodinia_bfs, "bfs");
golden!(gaussian, "gaussian");
golden!(heartwall, "heartwall");
golden!(hotspot, "hotspot");
golden!(lud, "lud");
golden!(bplustree, "b+tree");
golden!(nn, "nn");
golden!(nw, "nw");
golden!(pathfinder, "pathfinder");
golden!(backprop, "backprop");
golden!(kmeans, "kmeans");
golden!(lavamd, "lavaMD");
golden!(srad_v1, "srad_v1");
golden!(srad_v2, "srad_v2");
golden!(streamcluster, "streamcluster");
golden!(minife_csr, "miniFE (CSR)");
golden!(minife_ell, "miniFE (ELL)");

#[test]
fn registry_names_are_unique() {
    let mut names: Vec<String> = all_workloads().iter().map(|w| w.name()).collect();
    let n = names.len();
    names.sort();
    names.dedup();
    assert_eq!(names.len(), n, "duplicate workload names");
    assert!(
        n >= 27,
        "expected at least the paper's 27 benchmarks, got {n}"
    );
}

#[test]
fn experiment_sets_resolve() {
    assert_eq!(sassi_workloads::table1_set().len(), 13);
    assert_eq!(sassi_workloads::fig7_set().len(), 11);
    assert_eq!(sassi_workloads::table2_set().len(), 27);
    assert!(sassi_workloads::fig10_set().len() >= 15);
}
