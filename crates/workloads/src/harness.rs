//! The workload abstraction and the execution harness that ties
//! compilation, instrumentation, launch and output checking together.

use sassi::Sassi;
use sassi_kir::KFunction;
use sassi_rt::{AppClock, ModuleBuilder, Runtime};
use sassi_sim::{Device, HandlerRuntime, KernelOutcome, LaunchError, Module, NoHandlers};
use std::fmt;

/// What a run produced: the program's "output files" (device buffers
/// downloaded at the end) and its "stdout" (a printed summary such as a
/// checksum) — the two channels the error-injection study diffs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadOutput {
    /// Downloaded result buffers.
    pub buffers: Vec<Vec<u32>>,
    /// Host-printed summary (derived from the buffers).
    pub summary: String,
}

/// Why a workload run did not produce output.
#[derive(Clone, Debug, PartialEq)]
pub enum RunFailure {
    /// A kernel aborted (memory violation etc.) — the application
    /// crashes with an API error.
    Fault(sassi_sim::FaultInfo),
    /// A kernel exceeded the watchdog.
    Hang,
    /// Host-side launch failure.
    Launch(String),
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunFailure::Fault(i) => write!(f, "kernel fault: {i}"),
            RunFailure::Hang => write!(f, "kernel hang (watchdog)"),
            RunFailure::Launch(m) => write!(f, "launch error: {m}"),
        }
    }
}

impl From<LaunchError> for RunFailure {
    fn from(e: LaunchError) -> RunFailure {
        RunFailure::Launch(e.to_string())
    }
}

/// Converts a launch result into a harness error when the kernel did
/// not complete (the CUDA sticky-error behaviour).
pub fn check_outcome(res: &sassi_sim::LaunchResult) -> Result<(), RunFailure> {
    match res.outcome {
        KernelOutcome::Completed => Ok(()),
        KernelOutcome::Fault(i) => Err(RunFailure::Fault(i)),
        KernelOutcome::Hang => Err(RunFailure::Hang),
    }
}

/// A benchmark application: kernels plus the host driver that feeds
/// them data and collects results.
///
/// `Send` because the campaign engine hands boxed workloads to worker
/// threads; implementations hold only owned data.
pub trait Workload: Send {
    /// Display name, including the dataset (e.g. `bfs (NY)`).
    fn name(&self) -> String;

    /// The kernels to compile into the module.
    fn kernels(&self) -> Vec<KFunction>;

    /// Runs the application end to end: allocate and upload inputs,
    /// launch kernels (through `handlers` so instrumentation traps
    /// fire), download outputs.
    ///
    /// # Errors
    ///
    /// [`RunFailure`] when a kernel faults, hangs or cannot launch.
    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure>;

    /// The golden output (host-computed reference).
    fn golden(&self) -> WorkloadOutput;
}

/// The result of one harness execution.
#[derive(Debug)]
pub struct ExecutionReport {
    /// Workload display name.
    pub name: String,
    /// Output, or how the run failed.
    pub output: Result<WorkloadOutput, RunFailure>,
    /// Whole-program clock.
    pub clock: AppClock,
    /// Total kernel cycles across launches.
    pub kernel_cycles: u64,
    /// Number of kernel launches.
    pub launches: u64,
    /// Warp-level instructions across launches.
    pub warp_instrs: u64,
    /// Thread-level instructions across launches.
    pub thread_instrs: u64,
    /// Handler traps taken.
    pub handler_calls: u64,
}

impl ExecutionReport {
    /// Whether the run completed and matched the golden output.
    pub fn matches_golden(&self, golden: &WorkloadOutput) -> bool {
        matches!(&self.output, Ok(o) if o == golden)
    }
}

/// Builds the module for `w` (optionally instrumented by `sassi`) and
/// runs it on a fresh default device.
///
/// `watchdog` overrides the per-launch cycle budget (used by the
/// error-injection study for hang detection).
pub fn execute(
    w: &dyn Workload,
    sassi: Option<&mut Sassi>,
    watchdog: Option<u64>,
) -> ExecutionReport {
    execute_with_jobs(w, sassi, watchdog, 1)
}

/// As [`execute`], with `cta_jobs` worker threads executing the CTA
/// shards of each launch. Results are byte-identical for any job count
/// (the device merges shard results in canonical order).
pub fn execute_with_jobs(
    w: &dyn Workload,
    sassi: Option<&mut Sassi>,
    watchdog: Option<u64>,
    cta_jobs: usize,
) -> ExecutionReport {
    execute_with_opts(w, sassi, watchdog, cta_jobs, None)
}

/// As [`execute_with_jobs`], additionally pinning the block-stepped
/// scheduler on or off (`None` keeps the device default, i.e. the
/// `SASSI_BLOCK_STEP` environment setting). Instruction-derived
/// results are byte-identical either way; the determinism suite pins
/// both values to prove it.
pub fn execute_with_opts(
    w: &dyn Workload,
    mut sassi: Option<&mut Sassi>,
    watchdog: Option<u64>,
    cta_jobs: usize,
    block_step: Option<bool>,
) -> ExecutionReport {
    let mut mb = ModuleBuilder::new();
    for k in w.kernels() {
        mb.add_kernel(k);
    }
    let module = match mb.build(sassi.as_deref()) {
        Ok(m) => m,
        Err(e) => {
            return ExecutionReport {
                name: w.name(),
                output: Err(RunFailure::Launch(e.to_string())),
                clock: AppClock::new(),
                kernel_cycles: 0,
                launches: 0,
                warp_instrs: 0,
                thread_instrs: 0,
                handler_calls: 0,
            }
        }
    };
    let mut rt = Runtime::new(Device::with_defaults());
    rt.device.cta_jobs = cta_jobs.max(1);
    if let Some(bs) = block_step {
        rt.device.block_step = bs;
    }
    if let Some(wd) = watchdog {
        rt.watchdog_cycles = wd;
    }
    let output = match &mut sassi {
        Some(s) => w.execute(&mut rt, &module, *s),
        None => w.execute(&mut rt, &module, &mut NoHandlers),
    };
    let (mut wi, mut ti, mut hc) = (0, 0, 0);
    for r in rt.records() {
        wi += r.result.stats.warp_instrs;
        ti += r.result.stats.thread_instrs;
        hc += r.result.stats.handler_calls;
    }
    ExecutionReport {
        name: w.name(),
        output,
        clock: rt.clock,
        kernel_cycles: rt.total_kernel_cycles(),
        launches: rt.launch_count(),
        warp_instrs: wi,
        thread_instrs: ti,
        handler_calls: hc,
    }
}

/// Convenience: runs uninstrumented and asserts the golden output —
/// the self-check every workload's unit test calls.
pub fn verify_golden(w: &dyn Workload) -> ExecutionReport {
    let report = execute(w, None, None);
    let golden = w.golden();
    match &report.output {
        Ok(out) => assert_eq!(
            out,
            &golden,
            "{}: device output diverges from host golden",
            w.name()
        ),
        Err(e) => panic!("{}: run failed: {e}", w.name()),
    }
    report
}

/// Summarizes buffers into the "stdout" string: a short per-buffer
/// checksum, as real benchmarks print.
pub fn summarize(buffers: &[Vec<u32>]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    for (i, b) in buffers.iter().enumerate() {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in b {
            h ^= v as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let _ = writeln!(s, "buffer{i}: n={} fnv={h:016x}", b.len());
    }
    s
}
