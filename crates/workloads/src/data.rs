//! Deterministic synthetic dataset generators.
//!
//! The paper's inputs (road networks for `bfs NY/SF/UT`, the `1M`
//! random graph, sparse matrices for `spmv`/miniFE) are not
//! redistributable, so we synthesize inputs with the same *structural*
//! character: road-like graphs are near-planar lattices with long
//! diameters and degree ≈ 3–4; the `1M`-style graph is uniform random
//! with short diameter; CSR matrices have skewed row lengths while ELL
//! is padded-regular.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A graph in CSR adjacency form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// Row pointers, length `nodes + 1`.
    pub row_ptr: Vec<u32>,
    /// Concatenated adjacency lists.
    pub cols: Vec<u32>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.cols.len()
    }

    /// Host BFS distances from node 0 (u32::MAX = unreachable).
    pub fn bfs_distances(&self) -> Vec<u32> {
        let n = self.nodes();
        let mut dist = vec![u32::MAX; n];
        let mut frontier = vec![0u32];
        dist[0] = 0;
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                let (s, e) = (self.row_ptr[u as usize], self.row_ptr[u as usize + 1]);
                for &v in &self.cols[s as usize..e as usize] {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = level;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        dist
    }
}

/// A road-network-like graph: a `w × h` lattice with a sprinkle of
/// removed and diagonal edges. Long diameter, degree ≤ 4 — the shape of
/// the NY/SF/UT inputs.
pub fn road_graph(w: usize, h: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = w * h;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    for y in 0..h {
        for x in 0..w {
            let u = idx(x, y);
            if x + 1 < w && rng.gen_bool(0.92) {
                adj[u as usize].push(idx(x + 1, y));
                adj[(idx(x + 1, y)) as usize].push(u);
            }
            if y + 1 < h && rng.gen_bool(0.92) {
                adj[u as usize].push(idx(x, y + 1));
                adj[(idx(x, y + 1)) as usize].push(u);
            }
            if x + 1 < w && y + 1 < h && rng.gen_bool(0.05) {
                adj[u as usize].push(idx(x + 1, y + 1));
                adj[(idx(x + 1, y + 1)) as usize].push(u);
            }
        }
    }
    to_csr(adj)
}

/// A uniform random graph with mean out-degree `deg` — the shape of the
/// `1M` input: short diameter, wide frontiers.
pub fn uniform_graph(n: usize, deg: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    // A Hamiltonian-ish backbone keeps everything reachable.
    for (u, edges) in adj.iter_mut().enumerate().take(n - 1) {
        edges.push(u as u32 + 1);
    }
    // Near-constant out-degree: uniform random graphs drive wide, regular
    // frontiers, which is what keeps the paper's `1M` input convergent
    // relative to ragged road networks.
    for (u, edges) in adj.iter_mut().enumerate() {
        for _ in 0..deg {
            let v = rng.gen_range(0..n) as u32;
            if v as usize != u {
                edges.push(v);
            }
        }
    }
    to_csr(adj)
}

fn to_csr(adj: Vec<Vec<u32>>) -> CsrGraph {
    let mut row_ptr = Vec::with_capacity(adj.len() + 1);
    let mut cols = Vec::new();
    row_ptr.push(0u32);
    for mut list in adj {
        list.sort_unstable();
        list.dedup();
        cols.extend_from_slice(&list);
        row_ptr.push(cols.len() as u32);
    }
    CsrGraph { row_ptr, cols }
}

/// A sparse matrix in CSR with integer values (exact arithmetic keeps
/// golden checks bit-exact).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrMatrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols_n: usize,
    /// Row pointers.
    pub row_ptr: Vec<u32>,
    /// Column indices.
    pub col_idx: Vec<u32>,
    /// Values.
    pub values: Vec<u32>,
}

impl CsrMatrix {
    /// Host sparse mat-vec `y = A x` in wrapping u32 arithmetic.
    pub fn spmv(&self, x: &[u32]) -> Vec<u32> {
        (0..self.rows)
            .map(|r| {
                let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                let mut acc = 0u32;
                for k in s..e {
                    acc =
                        acc.wrapping_add(self.values[k].wrapping_mul(x[self.col_idx[k] as usize]));
                }
                acc
            })
            .collect()
    }

    /// Converts to padded ELL (column-major): `(width, cols, vals)`
    /// where entry `(r, j)` lives at `j * rows + r`.
    pub fn to_ell(&self) -> (usize, Vec<u32>, Vec<u32>) {
        let width = (0..self.rows)
            .map(|r| (self.row_ptr[r + 1] - self.row_ptr[r]) as usize)
            .max()
            .unwrap_or(0);
        let mut cols = vec![0u32; width * self.rows];
        let mut vals = vec![0u32; width * self.rows];
        for r in 0..self.rows {
            let (s, e) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for (j, k) in (s..e).enumerate() {
                cols[j * self.rows + r] = self.col_idx[k];
                vals[j * self.rows + r] = self.values[k];
            }
        }
        (width, cols, vals)
    }
}

/// A random CSR matrix with *skewed* row lengths (a few heavy rows,
/// many light ones) — the access pattern that makes CSR kernels
/// address-diverged.
pub fn skewed_csr(rows: usize, cols_n: usize, mean_nnz: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = vec![0u32];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for _ in 0..rows {
        // Pareto-ish: mostly short rows, occasionally 8× the mean.
        let len = if rng.gen_bool(0.9) {
            rng.gen_range(1..=mean_nnz.max(1))
        } else {
            rng.gen_range(mean_nnz..=8 * mean_nnz.max(1))
        };
        let mut cs: Vec<u32> = (0..len).map(|_| rng.gen_range(0..cols_n) as u32).collect();
        cs.sort_unstable();
        cs.dedup();
        for c in cs {
            col_idx.push(c);
            values.push(rng.gen_range(1..16));
        }
        row_ptr.push(col_idx.len() as u32);
    }
    CsrMatrix {
        rows,
        cols_n,
        row_ptr,
        col_idx,
        values,
    }
}

/// A banded, regular CSR matrix (every row similar length, neighbours
/// nearby) — what discretized PDE matrices like miniFE's look like, and
/// what ELL represents efficiently.
pub fn banded_csr(rows: usize, band: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = vec![0u32];
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    for r in 0..rows {
        let lo = r.saturating_sub(band / 2);
        let hi = (r + band / 2 + 1).min(rows);
        for c in lo..hi {
            col_idx.push(c as u32);
            values.push(rng.gen_range(1..16));
        }
        row_ptr.push(col_idx.len() as u32);
    }
    CsrMatrix {
        rows,
        cols_n: rows,
        row_ptr,
        col_idx,
        values,
    }
}

/// Deterministic pseudo-random `u32` vector.
pub fn random_u32(n: usize, max: u32, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

/// Deterministic pseudo-random `f32` vector in [0, 1), as bit patterns.
pub fn random_f32_bits(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(0.0f32..1.0).to_bits())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn road_graph_is_connected_enough() {
        let g = road_graph(16, 16, 1);
        assert_eq!(g.nodes(), 256);
        let d = g.bfs_distances();
        let reachable = d.iter().filter(|&&x| x != u32::MAX).count();
        assert!(reachable > 200, "only {reachable} reachable");
        // Road graphs have long diameters relative to size.
        let diam = d.iter().filter(|&&x| x != u32::MAX).max().unwrap();
        assert!(*diam >= 16, "diameter {diam} too short for a road graph");
    }

    #[test]
    fn uniform_graph_has_short_diameter() {
        let g = uniform_graph(512, 4, 2);
        let d = g.bfs_distances();
        assert!(
            d.iter().all(|&x| x != u32::MAX),
            "backbone keeps it connected"
        );
        let diam = *d.iter().max().unwrap();
        assert!(
            diam <= 16,
            "uniform graph diameter {diam} unexpectedly long"
        );
    }

    #[test]
    fn csr_spmv_and_ell_agree() {
        let m = skewed_csr(64, 64, 4, 3);
        let x = random_u32(64, 100, 4);
        let y = m.spmv(&x);
        let (width, cols, vals) = m.to_ell();
        let mut y2 = vec![0u32; m.rows];
        for r in 0..m.rows {
            for j in 0..width {
                let v = vals[j * m.rows + r];
                let c = cols[j * m.rows + r];
                y2[r] = y2[r].wrapping_add(v.wrapping_mul(x[c as usize]));
            }
        }
        assert_eq!(y, y2);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(road_graph(8, 8, 7), road_graph(8, 8, 7));
        assert_eq!(skewed_csr(32, 32, 3, 9), skewed_csr(32, 32, 3, 9));
        assert_eq!(random_u32(16, 10, 5), random_u32(16, 10, 5));
    }
}
