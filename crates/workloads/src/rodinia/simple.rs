//! Rodinia-style kernels with simple host drivers: `nn` (nearest
//! neighbour), `pathfinder` (grid DP), `kmeans` (assignment step) and
//! `streamcluster` (weighted distance evaluation).

use crate::prelude::*;

// ---------------------------------------------------------------- nn --

/// `nn`: per-record Euclidean distance to a query point. Tiny,
/// CPU-bound, fully convergent.
#[derive(Clone, Copy, Debug)]
pub struct Nn {
    /// Record count.
    pub n: usize,
}

impl Nn {
    /// Default dataset.
    pub fn new() -> Nn {
        Nn { n: 2048 }
    }

    fn coords(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_f32_bits(self.n, 0xb1),
            data::random_f32_bits(self.n, 0xb2),
        )
    }
}

impl Default for Nn {
    fn default() -> Nn {
        Nn::new()
    }
}

fn nn_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("nn");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let xs = b.param_ptr(1);
    let ys = b.param_ptr(2);
    let out = b.param_ptr(3);
    let qx = b.param_f32(4);
    let qy = b.param_f32(5);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ex = b.lea(xs, tid, 2);
        let x = b.ld_global_f32(ex);
        let ey = b.lea(ys, tid, 2);
        let y = b.ld_global_f32(ey);
        let dx = b.fsub(x, qx);
        let dy = b.fsub(y, qy);
        let dx2 = b.fmul(dx, dx);
        let d2 = b.ffma(dy, dy, dx2);
        let d = b.fsqrt(d2);
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, d);
    });
    b.finish()
}

impl Workload for Nn {
    fn name(&self) -> String {
        "nn".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![nn_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (xs, ys) = self.coords();
        rt.clock.add_host(0.25e-3); // record parsing dominates nn
        let dx = rt.alloc_u32(&xs);
        let dy = rt.alloc_u32(&ys);
        let dout = rt.alloc_zeroed_u32(self.n);
        let q = (0.5f32.to_bits() as u64, 0.25f32.to_bits() as u64);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 256), 256);
        let res = rt.launch(
            module,
            "nn",
            dims,
            &[self.n as u64, dx.addr, dy.addr, dout.addr, q.0, q.1],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(dout);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (xs, ys) = self.coords();
        let out: Vec<u32> = xs
            .iter()
            .zip(&ys)
            .map(|(&xb, &yb)| {
                let dx = f32::from_bits(xb) - 0.5;
                let dy = f32::from_bits(yb) - 0.25;
                let d2 = dy.mul_add(dy, dx * dx);
                d2.sqrt().to_bits()
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// -------------------------------------------------------- pathfinder --

/// `pathfinder`: row-by-row dynamic programming; each step takes the
/// min of three lower neighbours, with edge-lane divergence.
#[derive(Clone, Copy, Debug)]
pub struct Pathfinder {
    /// Columns.
    pub cols: usize,
    /// Rows.
    pub rows: usize,
}

impl Pathfinder {
    /// Default dataset.
    pub fn new() -> Pathfinder {
        Pathfinder {
            cols: 2048,
            rows: 12,
        }
    }

    fn grid(&self) -> Vec<Vec<u32>> {
        (0..self.rows)
            .map(|r| data::random_u32(self.cols, 100, 0xc0 + r as u64))
            .collect()
    }
}

impl Default for Pathfinder {
    fn default() -> Pathfinder {
        Pathfinder::new()
    }
}

fn pathfinder_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("pathfinder_step");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let prev = b.param_ptr(1);
    let row = b.param_ptr(2);
    let next = b.param_ptr(3);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ec = b.lea(prev, tid, 2);
        let center = b.ld_global_u32(ec);
        let best = b.var_u32(0u32);
        b.assign(best, center);
        // left neighbour (tid > 0)
        let nz = b.setp_u32_ne(tid, 0u32);
        b.if_(nz, |b| {
            let lm = b.isub(tid, 1u32);
            let el = b.lea(prev, lm, 2);
            let l = b.ld_global_u32(el);
            let m = b.umin(best, l);
            b.assign(best, m);
        });
        // right neighbour (tid < n-1)
        let nm1 = b.isub(n, 1u32);
        let has_r = b.setp_u32_lt(tid, nm1);
        b.if_(has_r, |b| {
            let rp = b.iadd(tid, 1u32);
            let er = b.lea(prev, rp, 2);
            let r = b.ld_global_u32(er);
            let m = b.umin(best, r);
            b.assign(best, m);
        });
        let ew = b.lea(row, tid, 2);
        let w = b.ld_global_u32(ew);
        let sum = b.iadd(best, w);
        let en = b.lea(next, tid, 2);
        b.st_global_u32(en, sum);
    });
    b.finish()
}

impl Workload for Pathfinder {
    fn name(&self) -> String {
        "pathfinder".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![pathfinder_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let grid = self.grid();
        rt.clock.add_host(0.3e-3);
        let mut bufs = [rt.alloc_u32(&grid[0]), rt.alloc_zeroed_u32(self.cols)];
        let rows: Vec<DevBuf> = grid[1..].iter().map(|r| rt.alloc_u32(r)).collect();
        for row in &rows {
            let dims = LaunchDims::linear(grid_for(self.cols as u32, 256), 256);
            let res = rt.launch(
                module,
                "pathfinder_step",
                dims,
                &[self.cols as u64, bufs[0].addr, row.addr, bufs[1].addr],
                handlers,
            )?;
            check_outcome(&res)?;
            bufs.swap(0, 1);
        }
        let out = rt.read_u32(bufs[0]);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let grid = self.grid();
        let mut prev = grid[0].clone();
        for row in &grid[1..] {
            let mut next = vec![0u32; self.cols];
            for i in 0..self.cols {
                let mut best = prev[i];
                if i > 0 {
                    best = best.min(prev[i - 1]);
                }
                if i + 1 < self.cols {
                    best = best.min(prev[i + 1]);
                }
                next[i] = best + row[i];
            }
            prev = next;
        }
        let summary = summarize(std::slice::from_ref(&prev));
        WorkloadOutput {
            buffers: vec![prev],
            summary,
        }
    }
}

// ------------------------------------------------------------ kmeans --

/// `kmeans`: the assignment step — each point scans all centroids for
/// the nearest one. Uniform loops, mostly convergent.
#[derive(Clone, Copy, Debug)]
pub struct Kmeans {
    /// Points.
    pub n: usize,
    /// Centroids.
    pub k: usize,
}

impl Kmeans {
    /// Default dataset.
    pub fn new() -> Kmeans {
        Kmeans { n: 2048, k: 8 }
    }

    fn points(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.n, 1024, 0xd1),
            data::random_u32(self.n, 1024, 0xd2),
        )
    }

    fn centroids(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.k, 1024, 0xd3),
            data::random_u32(self.k, 1024, 0xd4),
        )
    }
}

impl Default for Kmeans {
    fn default() -> Kmeans {
        Kmeans::new()
    }
}

fn kmeans_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("kmeans_assign");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let k = b.param_u32(1);
    let px = b.param_ptr(2);
    let py = b.param_ptr(3);
    let cx = b.param_ptr(4);
    let cy = b.param_ptr(5);
    let assign = b.param_ptr(6);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ex = b.lea(px, tid, 2);
        let x = b.ld_global_u32(ex);
        let ey = b.lea(py, tid, 2);
        let y = b.ld_global_u32(ey);
        let best_d = b.var_u32(u32::MAX);
        let best_i = b.var_u32(0u32);
        b.for_range(0u32, k, 1, |b, c| {
            let ecx = b.lea(cx, c, 2);
            let cxv = b.ld_global_u32(ecx);
            let ecy = b.lea(cy, c, 2);
            let cyv = b.ld_global_u32(ecy);
            let dx = b.isub(x, cxv);
            let dy = b.isub(y, cyv);
            let dx2 = b.imul(dx, dx);
            let d = b.imad(dy, dy, dx2);
            let better = b.setp_u32_lt(d, best_d);
            let nd = b.sel(better, d, best_d);
            let ni = b.sel(better, c, best_i);
            b.assign(best_d, nd);
            b.assign(best_i, ni);
        });
        let ea = b.lea(assign, tid, 2);
        b.st_global_u32(ea, best_i);
    });
    b.finish()
}

impl Workload for Kmeans {
    fn name(&self) -> String {
        "kmeans".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![kmeans_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (px, py) = self.points();
        let (cx, cy) = self.centroids();
        rt.clock.add_host(0.4e-3);
        let d_px = rt.alloc_u32(&px);
        let d_py = rt.alloc_u32(&py);
        let d_cx = rt.alloc_u32(&cx);
        let d_cy = rt.alloc_u32(&cy);
        let d_a = rt.alloc_zeroed_u32(self.n);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 256), 256);
        let res = rt.launch(
            module,
            "kmeans_assign",
            dims,
            &[
                self.n as u64,
                self.k as u64,
                d_px.addr,
                d_py.addr,
                d_cx.addr,
                d_cy.addr,
                d_a.addr,
            ],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_a);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (px, py) = self.points();
        let (cx, cy) = self.centroids();
        let out: Vec<u32> = (0..self.n)
            .map(|i| {
                let mut best = (u32::MAX, 0u32);
                for c in 0..self.k {
                    let dx = px[i].wrapping_sub(cx[c]);
                    let dy = py[i].wrapping_sub(cy[c]);
                    let d = dy.wrapping_mul(dy).wrapping_add(dx.wrapping_mul(dx));
                    if d < best.0 {
                        best = (d, c as u32);
                    }
                }
                best.1
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ----------------------------------------------------- streamcluster --

/// `streamcluster`: weighted distance of every point to a candidate
/// center — straight-line code, zero divergence (Table 1 shows 0%).
#[derive(Clone, Copy, Debug)]
pub struct Streamcluster {
    /// Points.
    pub n: usize,
    /// Dimensions (fixed small).
    pub dims: usize,
}

impl Streamcluster {
    /// Default dataset.
    pub fn new() -> Streamcluster {
        Streamcluster { n: 2048, dims: 8 }
    }

    fn points(&self) -> Vec<u32> {
        data::random_u32(self.n * self.dims, 256, 0xe1)
    }

    fn center(&self) -> Vec<u32> {
        data::random_u32(self.dims, 256, 0xe2)
    }

    fn weights(&self) -> Vec<u32> {
        data::random_u32(self.n, 8, 0xe3)
    }
}

impl Default for Streamcluster {
    fn default() -> Streamcluster {
        Streamcluster::new()
    }
}

fn streamcluster_kernel(dims: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("sc_dist");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let pts = b.param_ptr(1);
    let center = b.param_ptr(2);
    let weights = b.param_ptr(3);
    let out = b.param_ptr(4);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let base = b.imul(tid, dims as u32);
        let acc = b.var_u32(0u32);
        // Fully unrolled feature loop: uniform, no divergence. Feature
        // pairs are fetched with vectorized 64-bit loads (LD.64), the
        // "extended memory" category of the paper's Figure 3.
        for d in (0..dims).step_by(2) {
            let i = b.iadd(base, d as u32);
            let ep = b.lea(pts, i, 2);
            let pair = b.ld_global_u64(ep);
            let pv0 = b.lo32(pair);
            let pv1 = b.hi32(pair);
            let di = b.iconst(d as u32);
            let ec = b.lea(center, di, 2);
            let cpair = b.ld_global_u64(ec);
            let cv0 = b.lo32(cpair);
            let cv1 = b.hi32(cpair);
            let diff0 = b.isub(pv0, cv0);
            let nxt0 = b.imad(diff0, diff0, acc);
            b.assign(acc, nxt0);
            let diff1 = b.isub(pv1, cv1);
            let nxt1 = b.imad(diff1, diff1, acc);
            b.assign(acc, nxt1);
        }
        let ew = b.lea(weights, tid, 2);
        let w = b.ld_global_u32(ew);
        let cost = b.imul(acc, w);
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, cost);
    });
    b.finish()
}

impl Workload for Streamcluster {
    fn name(&self) -> String {
        "streamcluster".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![streamcluster_kernel(self.dims)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let pts = self.points();
        rt.clock.add_host(0.5e-3);
        let d_p = rt.alloc_u32(&pts);
        let d_c = rt.alloc_u32(&self.center());
        let d_w = rt.alloc_u32(&self.weights());
        let d_o = rt.alloc_zeroed_u32(self.n);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 256), 256);
        // Several rounds, like the clustering iterations of the original.
        for _ in 0..4 {
            let res = rt.launch(
                module,
                "sc_dist",
                dims,
                &[self.n as u64, d_p.addr, d_c.addr, d_w.addr, d_o.addr],
                handlers,
            )?;
            check_outcome(&res)?;
        }
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let pts = self.points();
        let c = self.center();
        let w = self.weights();
        let out: Vec<u32> = (0..self.n)
            .map(|i| {
                let mut acc = 0u32;
                for d in 0..self.dims {
                    let diff = pts[i * self.dims + d].wrapping_sub(c[d]);
                    acc = diff.wrapping_mul(diff).wrapping_add(acc);
                }
                acc.wrapping_mul(w[i])
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}
