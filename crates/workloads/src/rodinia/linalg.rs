//! Rodinia-style linear-algebra workloads: `gaussian` (elimination with
//! many tiny launches), `lud` (tiled LU with shared memory) and `nw`
//! (Needleman-Wunsch wavefront DP).

use crate::prelude::*;

// ---------------------------------------------------------- gaussian --

/// `gaussian`: elimination without pivoting; 2 launches per column
/// (matching the original's thousands of tiny launches).
#[derive(Clone, Copy, Debug)]
pub struct Gaussian {
    /// Matrix dimension.
    pub n: usize,
}

impl Gaussian {
    /// Default dataset.
    pub fn new() -> Gaussian {
        Gaussian { n: 48 }
    }

    /// Diagonally dominant input keeps the elimination stable.
    fn matrix(&self) -> Vec<u32> {
        let n = self.n;
        let mut a = data::random_f32_bits(n * n, 0x171);
        for i in 0..n {
            a[i * n + i] = (f32::from_bits(a[i * n + i]) + n as f32).to_bits();
        }
        a
    }

    fn host_eliminate(&self) -> Vec<u32> {
        let n = self.n;
        let mut a: Vec<f32> = self.matrix().iter().map(|&b| f32::from_bits(b)).collect();
        for k in 0..n - 1 {
            let inv = 1.0f32 / a[k * n + k];
            // Fan1: multipliers stored in column k below the diagonal.
            let ms: Vec<f32> = (k + 1..n).map(|i| a[i * n + k] * inv).collect();
            // Fan2: row updates.
            for (off, i) in (k + 1..n).enumerate() {
                let m = ms[off];
                for j in k..n {
                    a[i * n + j] -= m * a[k * n + j];
                }
                a[i * n + k] = m; // keep the multiplier, like LU
            }
        }
        a.iter().map(|v| v.to_bits()).collect()
    }
}

impl Default for Gaussian {
    fn default() -> Gaussian {
        Gaussian::new()
    }
}

/// Fan1: m[i] = a[i][k] / a[k][k] for i in k+1..n.
fn fan1_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("fan1");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let k = b.param_u32(1);
    let a = b.param_ptr(2);
    let m = b.param_ptr(3);
    let k1 = b.iadd(k, 1u32);
    let i = b.iadd(tid, k1);
    let inr = b.setp_u32_lt(i, n);
    b.if_(inr, |b| {
        let idx_kk = b.imad(k, n, k);
        let ekk = b.lea(a, idx_kk, 2);
        let akk = b.ld_global_f32(ekk);
        let inv = b.mufu(sassi_isa::MufuFunc::Rcp, akk);
        let idx_ik = b.imad(i, n, k);
        let eik = b.lea(a, idx_ik, 2);
        let aik = b.ld_global_f32(eik);
        let mv = b.fmul(aik, inv);
        let em = b.lea(m, i, 2);
        b.st_global_u32(em, mv);
    });
    b.finish()
}

/// Fan2: a[i][j] -= m[i] * a[k][j] for i>k, j>=k; then a[i][k] = m[i].
fn fan2_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("fan2");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let k = b.param_u32(1);
    let a = b.param_ptr(2);
    let m = b.param_ptr(3);
    let k1 = b.iadd(k, 1u32);
    let jj = b.imad(bx, 16u32, tx);
    let ii = b.imad(by, 16u32, ty);
    let i = b.iadd(ii, k1);
    let j = b.iadd(jj, k);
    let pi = b.setp_u32_lt(i, n);
    let pj = b.setp_u32_lt(j, n);
    let inr = b.and_p(pi, pj);
    b.if_(inr, |b| {
        let em = b.lea(m, i, 2);
        let mv = b.ld_global_f32(em);
        let idx_kj = b.imad(k, n, j);
        let ekj = b.lea(a, idx_kj, 2);
        let akj = b.ld_global_f32(ekj);
        let idx_ij = b.imad(i, n, j);
        let eij = b.lea(a, idx_ij, 2);
        let aij = b.ld_global_f32(eij);
        let prod = b.fmul(mv, akj);
        let nv = b.fsub(aij, prod);
        b.st_global_u32(eij, nv);
        // j == k lane also records the multiplier afterwards.
        let at_k = b.setp_u32_eq(j, k);
        b.if_(at_k, |b| {
            b.st_global_u32(eij, mv);
        });
    });
    b.finish()
}

impl Workload for Gaussian {
    fn name(&self) -> String {
        "gaussian".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![fan1_kernel(), fan2_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let n = self.n;
        rt.clock.add_host(0.3e-3);
        let d_a = rt.alloc_u32(&self.matrix());
        let d_m = rt.alloc_zeroed_u32(n);
        for k in 0..n - 1 {
            let rows = (n - k - 1) as u32;
            let res = rt.launch(
                module,
                "fan1",
                LaunchDims::linear(grid_for(rows, 64), 64),
                &[n as u64, k as u64, d_a.addr, d_m.addr],
                handlers,
            )?;
            check_outcome(&res)?;
            let cols = (n - k) as u32;
            let res = rt.launch(
                module,
                "fan2",
                LaunchDims::plane((cols.div_ceil(16), rows.div_ceil(16)), (16, 16)),
                &[n as u64, k as u64, d_a.addr, d_m.addr],
                handlers,
            )?;
            check_outcome(&res)?;
        }
        let out = rt.read_u32(d_a);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let out = self.host_eliminate();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// --------------------------------------------------------------- lud --

/// `lud`: blocked LU-style update using a shared-memory tile and block
/// barriers (exercises `LDS`/`STS` and `BAR.SYNC`).
#[derive(Clone, Copy, Debug)]
pub struct Lud {
    /// Matrix dimension (multiple of 16).
    pub n: usize,
}

impl Lud {
    /// Default dataset.
    pub fn new() -> Lud {
        Lud { n: 64 }
    }

    fn matrix(&self) -> Vec<u32> {
        data::random_u32(self.n * self.n, 64, 0x181)
    }

    fn host(&self) -> Vec<u32> {
        // The kernel computes, per 16×16 tile, out = tile + rowsum*colsum
        // staged through shared memory.
        let n = self.n;
        let a = self.matrix();
        let mut out = vec![0u32; n * n];
        for by in (0..n).step_by(16) {
            for bx in (0..n).step_by(16) {
                // Tile sums.
                let mut rowsum = [0u32; 16];
                let mut colsum = [0u32; 16];
                for y in 0..16 {
                    for x in 0..16 {
                        let v = a[(by + y) * n + bx + x];
                        rowsum[y] = rowsum[y].wrapping_add(v);
                        colsum[x] = colsum[x].wrapping_add(v);
                    }
                }
                for y in 0..16 {
                    for x in 0..16 {
                        let v = a[(by + y) * n + bx + x];
                        out[(by + y) * n + bx + x] =
                            v.wrapping_add(rowsum[y].wrapping_mul(colsum[x]));
                    }
                }
            }
        }
        out
    }
}

impl Default for Lud {
    fn default() -> Lud {
        Lud::new()
    }
}

fn lud_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("lud_tile");
    let tile = b.shared_alloc(16 * 16 * 4);
    let rowsum = b.shared_alloc(16 * 4);
    let colsum = b.shared_alloc(16 * 4);
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let a = b.param_ptr(1);
    let out = b.param_ptr(2);
    let gx = b.imad(bx, 16u32, tx);
    let gy = b.imad(by, 16u32, ty);
    let gidx = b.imad(gy, n, gx);
    let ea = b.lea(a, gidx, 2);
    let v = b.ld_global_u32(ea);
    // Stage the tile in shared memory.
    let t16 = b.imad(ty, 16u32, tx);
    let toff = b.shl(t16, 2u32);
    let tbase = b.iadd(toff, tile.offset);
    b.st_shared_u32(tbase, 0, v);
    b.bar_sync();
    // Row 0 threads compute column sums; column 0 threads row sums.
    let is_row0 = b.setp_u32_eq(ty, 0u32);
    b.if_(is_row0, |b| {
        let acc = b.var_u32(0u32);
        for yy in 0..16u32 {
            let idx = b.iadd(tx, yy * 16);
            let off = b.shl(idx, 2u32);
            let sb = b.iadd(off, tile.offset);
            let tv = b.ld_shared_u32(sb, 0);
            let nxt = b.iadd(acc, tv);
            b.assign(acc, nxt);
        }
        let co = b.shl(tx, 2u32);
        let cb = b.iadd(co, colsum.offset);
        b.st_shared_u32(cb, 0, acc);
    });
    let is_col0 = b.setp_u32_eq(tx, 0u32);
    b.if_(is_col0, |b| {
        let acc = b.var_u32(0u32);
        for xx in 0..16u32 {
            let c = b.iconst(xx);
            let idx = b.imad(ty, 16u32, c);
            let off = b.shl(idx, 2u32);
            let sb = b.iadd(off, tile.offset);
            let tv = b.ld_shared_u32(sb, 0);
            let nxt = b.iadd(acc, tv);
            b.assign(acc, nxt);
        }
        let ro = b.shl(ty, 2u32);
        let rb = b.iadd(ro, rowsum.offset);
        b.st_shared_u32(rb, 0, acc);
    });
    b.bar_sync();
    let ro = b.shl(ty, 2u32);
    let rb = b.iadd(ro, rowsum.offset);
    let rs = b.ld_shared_u32(rb, 0);
    let co = b.shl(tx, 2u32);
    let cb = b.iadd(co, colsum.offset);
    let cs = b.ld_shared_u32(cb, 0);
    let prod = b.imul(rs, cs);
    let res = b.iadd(v, prod);
    let eo = b.lea(out, gidx, 2);
    b.st_global_u32(eo, res);
    b.finish()
}

impl Workload for Lud {
    fn name(&self) -> String {
        "lud".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![lud_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let n = self.n;
        rt.clock.add_host(0.2e-3);
        let d_a = rt.alloc_u32(&self.matrix());
        let d_o = rt.alloc_zeroed_u32(n * n);
        let blocks = (n as u32) / 16;
        let res = rt.launch(
            module,
            "lud_tile",
            LaunchDims::plane((blocks, blocks), (16, 16)),
            &[n as u64, d_a.addr, d_o.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let out = self.host();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ---------------------------------------------------------------- nw --

/// `nw`: Needleman-Wunsch DP, computed one anti-diagonal per launch.
#[derive(Clone, Copy, Debug)]
pub struct Nw {
    /// Sequence length.
    pub n: usize,
    /// Gap penalty.
    pub gap: u32,
}

impl Nw {
    /// Default dataset.
    pub fn new() -> Nw {
        Nw { n: 96, gap: 2 }
    }

    fn similarity(&self) -> Vec<u32> {
        // Pre-computed similarity matrix entries in 0..10.
        data::random_u32(self.n * self.n, 10, 0x191)
    }

    fn host(&self) -> Vec<u32> {
        let n = self.n;
        let sim = self.similarity();
        // score is (n+1)x(n+1), stored row-major; borders are i*gap.
        let w = n + 1;
        let mut s = vec![0i64; w * w];
        for i in 0..w {
            s[i * w] = -((i as u32 * self.gap) as i64);
            s[i] = -((i as u32 * self.gap) as i64);
        }
        for i in 1..w {
            for j in 1..w {
                let m = s[(i - 1) * w + j - 1] + sim[(i - 1) * n + j - 1] as i64;
                let d = s[(i - 1) * w + j] - self.gap as i64;
                let l = s[i * w + j - 1] - self.gap as i64;
                s[i * w + j] = m.max(d).max(l);
            }
        }
        s.iter().map(|&v| v as i32 as u32).collect()
    }
}

impl Default for Nw {
    fn default() -> Nw {
        Nw::new()
    }
}

/// One anti-diagonal: cells (i, d-i) for valid i.
fn nw_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("nw_diag");
    let tid = b.global_tid_x();
    let n = b.param_u32(0); // sequence length
    let d = b.param_u32(1); // diagonal index, 2..=2n
    let score = b.param_ptr(2); // (n+1)^2 i32 grid
    let sim = b.param_ptr(3);
    let w = b.iadd(n, 1u32);
    // i ranges over max(1, d-n) ..= min(n, d-1); thread tid maps to
    // i = lo + tid.
    let dm1 = b.isub(d, 1u32);
    let dmn = b.isub(d, n);
    let one = b.iconst(1);
    let lo_p = b.setp_s32_gt(dmn, 1u32);
    let lo = b.sel(lo_p, dmn, VSrc::Reg(one.vreg()));
    let hi_a = b.umin(dm1, n);
    let i = b.iadd(lo, tid);
    let hi1 = b.iadd(hi_a, 1u32);
    let ok = b.setp_u32_lt(i, hi1);
    b.if_(ok, |b| {
        let j = b.isub(d, i);
        let im1 = b.isub(i, 1u32);
        let jm1 = b.isub(j, 1u32);
        let idx_m = b.imad(im1, w, jm1);
        let em = b.lea(score, idx_m, 2);
        let sm = b.ld_global_u32(em);
        let idx_u = b.imad(im1, w, j);
        let eu = b.lea(score, idx_u, 2);
        let su = b.ld_global_u32(eu);
        let idx_l = b.imad(i, w, jm1);
        let el = b.lea(score, idx_l, 2);
        let sl = b.ld_global_u32(el);
        let idx_s = b.imad(im1, n, jm1);
        let es = b.lea(sim, idx_s, 2);
        let sv = b.ld_global_u32(es);
        let gap = b.param_u32(4);
        let m = b.iadd(sm, sv);
        let dd = b.isub(su, gap);
        let ll = b.isub(sl, gap);
        let mx1 = b.imax(m, dd);
        let mx = b.imax(mx1, ll);
        let idx = b.imad(i, w, j);
        let eo = b.lea(score, idx, 2);
        b.st_global_u32(eo, mx);
    });
    b.finish()
}

impl Workload for Nw {
    fn name(&self) -> String {
        "nw".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![nw_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let n = self.n;
        let w = n + 1;
        rt.clock.add_host(0.25e-3);
        let mut init = vec![0u32; w * w];
        for i in 0..w {
            init[i * w] = (-((i as u32 * self.gap) as i64) as i32) as u32;
            init[i] = (-((i as u32 * self.gap) as i64) as i32) as u32;
        }
        let d_s = rt.alloc_u32(&init);
        let d_sim = rt.alloc_u32(&self.similarity());
        for d in 2..=2 * n {
            let lo = if d > n { d - n } else { 1 };
            let hi = n.min(d - 1);
            let count = (hi - lo + 1) as u32;
            let res = rt.launch(
                module,
                "nw_diag",
                LaunchDims::linear(grid_for(count, 64), 64),
                &[n as u64, d as u64, d_s.addr, d_sim.addr, self.gap as u64],
                handlers,
            )?;
            check_outcome(&res)?;
        }
        let out = rt.read_u32(d_s);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let out = self.host();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}
