//! The irregular Rodinia-style workloads: `heartwall` (data-dependent
//! search windows — Table 1's 42% divergence), `b+tree` (pointer-chasing
//! index search), `backprop` (shared-memory layer reduction),
//! `lavaMD` (neighbour-box particle interactions) and `mummergpu`
//! (byte-granular string matching).

use crate::prelude::*;

// ---------------------------------------------------------- heartwall --

/// `heartwall`: per-point template search with a data-dependent window
/// — lanes in a warp run very different trip counts.
#[derive(Clone, Copy, Debug)]
pub struct Heartwall {
    /// Tracking points.
    pub points: usize,
    /// Signal length.
    pub n: usize,
}

impl Heartwall {
    /// Default dataset.
    pub fn new() -> Heartwall {
        Heartwall {
            points: 512,
            n: 4096,
        }
    }

    fn signal(&self) -> Vec<u32> {
        data::random_u32(self.n, 256, 0x1c1)
    }

    fn anchors(&self) -> Vec<u32> {
        data::random_u32(self.points, (self.n - 256) as u32, 0x1c2)
    }
}

impl Default for Heartwall {
    fn default() -> Heartwall {
        Heartwall::new()
    }
}

fn heartwall_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("heartwall");
    let tid = b.global_tid_x();
    let npts = b.param_u32(0);
    let signal = b.param_ptr(1);
    let anchors = b.param_ptr(2);
    let out = b.param_ptr(3);
    let p = b.setp_u32_lt(tid, npts);
    b.if_(p, |b| {
        let ea = b.lea(anchors, tid, 2);
        let a = b.ld_global_u32(ea);
        // Window size depends on the data at the anchor: 8..=135.
        let es = b.lea(signal, a, 2);
        let s0 = b.ld_global_u32(es);
        let wlow = b.and(s0, 127u32);
        let window = b.iadd(wlow, 8u32);
        let best = b.var_u32(u32::MAX);
        let besti = b.var_u32(0u32);
        b.for_range(0u32, window, 1, |b, off| {
            // 8-sample SAD against a sawtooth template.
            let acc = b.var_u32(0u32);
            for k in 0..8u32 {
                let base = b.iadd(a, off);
                let i = b.iadd(base, k);
                let ev = b.lea(signal, i, 2);
                let v = b.ld_global_u32(ev);
                let t = b.iconst(k * 32);
                let mx = b.umax(v, t);
                let mn = b.umin(v, t);
                let d = b.isub(mx, mn);
                let nxt = b.iadd(acc, d);
                b.assign(acc, nxt);
            }
            let better = b.setp_u32_lt(acc, best);
            let nb = b.sel(better, acc, best);
            let ni = b.sel(better, off, besti);
            b.assign(best, nb);
            b.assign(besti, ni);
        });
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, besti);
    });
    b.finish()
}

impl Workload for Heartwall {
    fn name(&self) -> String {
        "heartwall".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![heartwall_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        rt.clock.add_host(0.3e-3);
        let d_s = rt.alloc_u32(&self.signal());
        let d_a = rt.alloc_u32(&self.anchors());
        let d_o = rt.alloc_zeroed_u32(self.points);
        let dims = LaunchDims::linear(grid_for(self.points as u32, 128), 128);
        let res = rt.launch(
            module,
            "heartwall",
            dims,
            &[self.points as u64, d_s.addr, d_a.addr, d_o.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let s = self.signal();
        let a = self.anchors();
        let out: Vec<u32> = (0..self.points)
            .map(|t| {
                let anchor = a[t] as usize;
                let window = (s[anchor] & 127) + 8;
                let mut best = (u32::MAX, 0u32);
                for off in 0..window {
                    let mut acc = 0u32;
                    for k in 0..8u32 {
                        let v = s[anchor + off as usize + k as usize];
                        acc += v.abs_diff(k * 32);
                    }
                    if acc < best.0 {
                        best = (acc, off);
                    }
                }
                best.1
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ------------------------------------------------------------ b+tree --

/// `b+tree`: batched key search through a breadth-first-laid-out tree
/// of order 8 — value-similar traversals (Table 2's top scalar score).
#[derive(Clone, Copy, Debug)]
pub struct BplusTree {
    /// Leaf keys.
    pub keys: usize,
    /// Queries.
    pub queries: usize,
}

impl BplusTree {
    /// Default dataset.
    pub fn new() -> BplusTree {
        BplusTree {
            keys: 4096,
            queries: 1024,
        }
    }

    /// Sorted keys 0, 4, 8, ... laid out in a complete 8-ary tree of
    /// separator arrays.
    fn tree(&self) -> (Vec<u32>, usize) {
        // levels of separators; level l has 8^(l+1) entries guiding into
        // 8^(l+1) children; leaves store keys.
        let depth = 4; // 8^4 = 4096 leaves
        let mut seps = Vec::new();
        let fanout = 8usize;
        let total = self.keys;
        for l in 0..depth {
            let groups = fanout.pow(l as u32 + 1);
            let span = total / groups;
            for g in 0..groups {
                seps.push((g * span) as u32 * 4);
            }
        }
        (seps, depth)
    }

    fn queries_vec(&self) -> Vec<u32> {
        data::random_u32(self.queries, (self.keys * 4) as u32, 0x1d1)
    }
}

impl Default for BplusTree {
    fn default() -> BplusTree {
        BplusTree::new()
    }
}

fn btree_kernel(depth: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("btree_search");
    let tid = b.global_tid_x();
    let nq = b.param_u32(0);
    let seps = b.param_ptr(1);
    let queries = b.param_ptr(2);
    let out = b.param_ptr(3);
    let p = b.setp_u32_lt(tid, nq);
    b.if_(p, |b| {
        let eq = b.lea(queries, tid, 2);
        let q = b.ld_global_u32(eq);
        let node = b.var_u32(0u32); // child index within level
        let level_base = b.var_u32(0u32);
        let mut groups = 8u32;
        for _l in 0..depth {
            // Linear scan of the 8 separators of this node.
            let slot = b.var_u32(0u32);
            let base8 = b.shl(node, 3u32); // node*8
            for s in 1..8u32 {
                let idx_rel = b.iadd(base8, s);
                let idx = b.iadd(level_base, idx_rel);
                let es = b.lea(seps, idx, 2);
                let sep = b.ld_global_u32(es);
                let ge = b.setp_u32_ge(q, sep);
                let s_c = b.iconst(s);
                let ns = b.sel(ge, s_c, slot);
                b.assign(slot, ns);
            }
            let child = b.iadd(base8, slot);
            b.assign(node, child);
            let nb = b.iadd(level_base, groups);
            b.assign(level_base, nb);
            groups *= 8;
        }
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, node);
    });
    b.finish()
}

impl Workload for BplusTree {
    fn name(&self) -> String {
        "b+tree".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        let (_, depth) = self.tree();
        vec![btree_kernel(depth)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (seps, _) = self.tree();
        rt.clock.add_host(0.6e-3); // tree build
        let d_s = rt.alloc_u32(&seps);
        let d_q = rt.alloc_u32(&self.queries_vec());
        let d_o = rt.alloc_zeroed_u32(self.queries);
        let dims = LaunchDims::linear(grid_for(self.queries as u32, 128), 128);
        let res = rt.launch(
            module,
            "btree_search",
            dims,
            &[self.queries as u64, d_s.addr, d_q.addr, d_o.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (seps, depth) = self.tree();
        let qs = self.queries_vec();
        let out: Vec<u32> = qs
            .iter()
            .map(|&q| {
                let mut node = 0u32;
                let mut level_base = 0u32;
                let mut groups = 8u32;
                for _ in 0..depth {
                    let base8 = node * 8;
                    let mut slot = 0u32;
                    for s in 1..8 {
                        let sep = seps[(level_base + base8 + s) as usize];
                        if q >= sep {
                            slot = s;
                        }
                    }
                    node = base8 + slot;
                    level_base += groups;
                    groups *= 8;
                }
                node
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ----------------------------------------------------------- backprop --

/// `backprop`: one hidden-layer forward pass — each block reduces the
/// weighted inputs of one hidden unit in shared memory.
#[derive(Clone, Copy, Debug)]
pub struct Backprop {
    /// Input units (block size).
    pub inputs: usize,
    /// Hidden units (grid size).
    pub hidden: usize,
}

impl Backprop {
    /// Default dataset.
    pub fn new() -> Backprop {
        Backprop {
            inputs: 64,
            hidden: 32,
        }
    }

    fn weights(&self) -> Vec<u32> {
        data::random_u32(self.inputs * self.hidden, 16, 0x1e1)
    }

    fn input(&self) -> Vec<u32> {
        data::random_u32(self.inputs, 16, 0x1e2)
    }
}

impl Default for Backprop {
    fn default() -> Backprop {
        Backprop::new()
    }
}

fn backprop_kernel(inputs: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("backprop_fwd");
    let partial = b.shared_alloc((inputs * 4) as u32);
    let tid = b.tid_x();
    let hid = b.ctaid_x();
    let n_in = b.param_u32(0);
    let w = b.param_ptr(1);
    let x = b.param_ptr(2);
    let out = b.param_ptr(3);
    // partial[tid] = w[hid*n_in + tid] * x[tid]
    let base = b.imul(hid, n_in);
    let iw = b.iadd(base, tid);
    let ew = b.lea(w, iw, 2);
    let wv = b.ld_global_u32(ew);
    let ex = b.lea(x, tid, 2);
    let xv = b.ld_global_u32(ex);
    let zero = b.iconst(0);
    let prod = b.imad(wv, xv, zero);
    let soff = b.shl(tid, 2u32);
    let sbase = {
        let c = b.iconst(partial.offset);
        b.iadd(soff, c)
    };
    b.st_shared_u32(sbase, 0, prod);
    b.bar_sync();
    // Tree reduction in shared memory.
    let mut stride = (inputs / 2) as u32;
    while stride >= 1 {
        let sc = b.iconst(stride);
        let active = b.setp_u32_lt(tid, sc);
        b.if_(active, |b| {
            let other_i = b.iadd(tid, stride);
            let ooff = b.shl(other_i, 2u32);
            let obase = {
                let c = b.iconst(partial.offset);
                b.iadd(ooff, c)
            };
            let ov = b.ld_shared_u32(obase, 0);
            let mineoff = b.shl(tid, 2u32);
            let mbase = {
                let c = b.iconst(partial.offset);
                b.iadd(mineoff, c)
            };
            let mv = b.ld_shared_u32(mbase, 0);
            let sum = b.iadd(mv, ov);
            b.st_shared_u32(mbase, 0, sum);
        });
        b.bar_sync();
        stride /= 2;
    }
    let leader = b.setp_u32_eq(tid, 0u32);
    b.if_(leader, |b| {
        let c = b.iconst(partial.offset);
        let v = b.ld_shared_u32(c, 0);
        let eo = b.lea(out, hid, 2);
        b.st_global_u32(eo, v);
    });
    b.finish()
}

impl Workload for Backprop {
    fn name(&self) -> String {
        "backprop".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![backprop_kernel(self.inputs)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        rt.clock.add_host(0.2e-3);
        let d_w = rt.alloc_u32(&self.weights());
        let d_x = rt.alloc_u32(&self.input());
        let d_o = rt.alloc_zeroed_u32(self.hidden);
        let dims = LaunchDims::linear(self.hidden as u32, self.inputs as u32);
        let res = rt.launch(
            module,
            "backprop_fwd",
            dims,
            &[self.inputs as u64, d_w.addr, d_x.addr, d_o.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let w = self.weights();
        let x = self.input();
        let out: Vec<u32> = (0..self.hidden)
            .map(|h| {
                (0..self.inputs).fold(0u32, |acc, i| {
                    acc.wrapping_add(w[h * self.inputs + i].wrapping_mul(x[i]))
                })
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ------------------------------------------------------------- lavaMD --

/// `lavaMD`: particles interact with every particle in their own and
/// neighbouring boxes, with a cutoff branch inside the pair loop.
#[derive(Clone, Copy, Debug)]
pub struct LavaMd {
    /// Boxes (1-D ring).
    pub boxes: usize,
    /// Particles per box.
    pub per_box: usize,
}

impl LavaMd {
    /// Default dataset.
    pub fn new() -> LavaMd {
        LavaMd {
            boxes: 32,
            per_box: 32,
        }
    }

    fn positions(&self) -> Vec<u32> {
        data::random_u32(self.boxes * self.per_box, 1024, 0x1f1)
    }
}

impl Default for LavaMd {
    fn default() -> LavaMd {
        LavaMd::new()
    }
}

fn lavamd_kernel(per_box: usize, boxes: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("lavamd");
    let tid = b.tid_x(); // particle within box
    let bx = b.ctaid_x(); // box
    let pos = b.param_ptr(0);
    let out = b.param_ptr(1);
    let pb = b.iconst(per_box as u32);
    let my_i = b.imad(bx, VSrc::Reg(pb.vreg()), tid);
    let ep = b.lea(pos, my_i, 2);
    let my_pos = b.ld_global_u32(ep);
    let acc = b.var_u32(0u32);
    // Own box + left + right neighbour (ring).
    for d in [0i32, -1, 1] {
        let nbox = if d == 0 {
            bx
        } else {
            let off = b.iconst(((boxes as i32 + d) % boxes as i32) as u32);
            let sum = b.iadd(bx, off);
            let bc = b.iconst(boxes as u32);
            // modulo via subtract-if-ge (boxes is a power of two here,
            // but stay general):
            let ge = b.setp_u32_ge(sum, bc);
            let red = b.isub(sum, boxes as u32);
            b.sel(ge, red, VSrc::Reg(sum.vreg()))
        };
        let nbase = b.imul(nbox, per_box as u32);
        b.for_range(0u32, pb, 1, |b, j| {
            let oi = b.iadd(nbase, j);
            let eo = b.lea(pos, oi, 2);
            let opos = b.ld_global_u32(eo);
            let mx = b.umax(my_pos, opos);
            let mn = b.umin(my_pos, opos);
            let dist = b.isub(mx, mn);
            let near = b.setp_u32_lt(dist, 64u32);
            b.if_(near, |b| {
                let d2 = b.imul(dist, dist);
                let k4096 = b.iconst(64 * 64);
                let term = b.isub(k4096, d2);
                let nxt = b.iadd(acc, term);
                b.assign(acc, nxt);
            });
        });
    }
    let eo2 = b.lea(out, my_i, 2);
    b.st_global_u32(eo2, acc);
    b.finish()
}

impl Workload for LavaMd {
    fn name(&self) -> String {
        "lavaMD".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![lavamd_kernel(self.per_box, self.boxes)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        rt.clock.add_host(0.3e-3);
        let d_p = rt.alloc_u32(&self.positions());
        let d_o = rt.alloc_zeroed_u32(self.boxes * self.per_box);
        let dims = LaunchDims::linear(self.boxes as u32, self.per_box as u32);
        let res = rt.launch(module, "lavamd", dims, &[d_p.addr, d_o.addr], handlers)?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let pos = self.positions();
        let (nb, pb) = (self.boxes, self.per_box);
        let out: Vec<u32> = (0..nb * pb)
            .map(|i| {
                let my_box = i / pb;
                let my_pos = pos[i];
                let mut acc = 0u32;
                for d in [0isize, -1, 1] {
                    let nbox = ((my_box as isize + d + nb as isize) as usize) % nb;
                    for j in 0..pb {
                        let dist = my_pos.abs_diff(pos[nbox * pb + j]);
                        if dist < 64 {
                            acc = acc
                                .wrapping_add((64 * 64u32).wrapping_sub(dist.wrapping_mul(dist)));
                        }
                    }
                }
                acc
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ---------------------------------------------------------- mummergpu --

/// `mummergpu`: byte-granular substring matching — each thread extends
/// a query against the reference while characters match (data-dependent
/// while loop, `U8` loads).
#[derive(Clone, Copy, Debug)]
pub struct MummerGpu {
    /// Reference length.
    pub ref_len: usize,
    /// Queries.
    pub queries: usize,
}

impl MummerGpu {
    /// Default dataset.
    pub fn new() -> MummerGpu {
        MummerGpu {
            ref_len: 8192,
            queries: 1024,
        }
    }

    fn reference(&self) -> Vec<u32> {
        // 4-letter alphabet packed one byte per u32 slot's low byte via
        // byte buffer: store as bytes in u32 array (4 per word).
        data::random_u32(self.ref_len.div_ceil(4), u32::MAX, 0x201)
    }

    fn starts(&self) -> Vec<u32> {
        data::random_u32(self.queries, (self.ref_len - 64) as u32, 0x202)
    }
}

impl Default for MummerGpu {
    fn default() -> MummerGpu {
        MummerGpu::new()
    }
}

fn mummer_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("mummer");
    let tid = b.global_tid_x();
    let nq = b.param_u32(0);
    let reference = b.param_ptr(1);
    let starts = b.param_ptr(2);
    let out = b.param_ptr(3);
    let p = b.setp_u32_lt(tid, nq);
    b.if_(p, |b| {
        let es = b.lea(starts, tid, 2);
        let start = b.ld_global_u32(es);
        // Match run: compare bytes at `start+k` and `start+k+1` while the
        // 2-bit symbols agree, up to 63.
        let len = b.var_u32(0u32);
        let going = b.var_u32(1u32);
        b.while_(
            |b| {
                let more = b.setp_u32_lt(len, 63u32);
                let g = b.setp_u32_ne(going, 0u32);
                b.and_p(more, g)
            },
            |b| {
                let i = b.iadd(start, len);
                let ea = b.lea(reference, i, 0);
                let ca = b.ld_global_u8(ea);
                let i1 = b.iadd(i, 1u32);
                let eb = b.lea(reference, i1, 0);
                let cb = b.ld_global_u8(eb);
                let sa = b.and(ca, 3u32);
                let sb2 = b.and(cb, 3u32);
                let same = b.setp_u32_eq(sa, sb2);
                b.if_else(
                    same,
                    |b| {
                        let nl = b.iadd(len, 1u32);
                        b.assign(len, nl);
                    },
                    |b| {
                        b.assign_imm(going, 0);
                    },
                );
            },
        );
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, len);
    });
    b.finish()
}

impl Workload for MummerGpu {
    fn name(&self) -> String {
        "mummergpu".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![mummer_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        rt.clock.add_host(1.0e-3); // suffix-tree build in the original
        let d_r = rt.alloc_u32(&self.reference());
        let d_s = rt.alloc_u32(&self.starts());
        let d_o = rt.alloc_zeroed_u32(self.queries);
        let dims = LaunchDims::linear(grid_for(self.queries as u32, 128), 128);
        let res = rt.launch(
            module,
            "mummer",
            dims,
            &[self.queries as u64, d_r.addr, d_s.addr, d_o.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_o);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let words = self.reference();
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let starts = self.starts();
        let out: Vec<u32> = starts
            .iter()
            .map(|&s| {
                let mut len = 0u32;
                while len < 63 {
                    let a = bytes[(s + len) as usize] & 3;
                    let b = bytes[(s + len + 1) as usize] & 3;
                    if a != b {
                        break;
                    }
                    len += 1;
                }
                len
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}
