//! Rodinia-style workloads.

pub mod bfs;
pub mod complex;
pub mod linalg;
pub mod simple;
pub mod stencils;

pub use bfs::RodiniaBfs;
pub use complex::{Backprop, BplusTree, Heartwall, LavaMd, MummerGpu};
pub use linalg::{Gaussian, Lud, Nw};
pub use simple::{Kmeans, Nn, Pathfinder, Streamcluster};
pub use stencils::{Hotspot, Srad, SradVariant};
