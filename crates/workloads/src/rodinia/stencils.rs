//! Rodinia-style stencils: `hotspot` (shared-memory tile + barrier) and
//! `srad` in its two variants (v1 monolithic, v2 split kernels) whose
//! differing branch structure Table 1 highlights (0.5% vs 21.3%).

use crate::prelude::*;

// ------------------------------------------------------------ hotspot --

/// `hotspot`: thermal simulation step on a 2-D grid, staged through
/// shared memory with a block barrier.
#[derive(Clone, Copy, Debug)]
pub struct Hotspot {
    /// Grid side (multiple of 16).
    pub n: usize,
    /// Steps.
    pub steps: usize,
}

impl Hotspot {
    /// Default dataset.
    pub fn new() -> Hotspot {
        Hotspot { n: 64, steps: 2 }
    }

    fn temp(&self) -> Vec<u32> {
        data::random_u32(self.n * self.n, 1000, 0x1a1)
    }

    fn power(&self) -> Vec<u32> {
        data::random_u32(self.n * self.n, 16, 0x1a2)
    }

    fn host_step(&self, t: &[u32], p: &[u32]) -> Vec<u32> {
        let n = self.n;
        let mut out = t.to_vec();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                let sum = t[i - 1]
                    .wrapping_add(t[i + 1])
                    .wrapping_add(t[i - n])
                    .wrapping_add(t[i + n]);
                let delta = (sum.wrapping_sub(t[i].wrapping_mul(4)).wrapping_add(p[i])) >> 3;
                out[i] = t[i].wrapping_add(delta);
            }
        }
        out
    }
}

impl Default for Hotspot {
    fn default() -> Hotspot {
        Hotspot::new()
    }
}

fn hotspot_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("hotspot_step");
    // 18x18 halo tile of u32.
    let tile = b.shared_alloc(18 * 18 * 4);
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let temp = b.param_ptr(1);
    let power = b.param_ptr(2);
    let out = b.param_ptr(3);
    let gx = b.imad(bx, 16u32, tx);
    let gy = b.imad(by, 16u32, ty);
    let gi = b.imad(gy, n, gx);

    // Load center cell into the tile (+1,+1 halo offset).
    let ev = b.lea(temp, gi, 2);
    let v = b.ld_global_u32(ev);
    let lx = b.iadd(tx, 1u32);
    let ly = b.iadd(ty, 1u32);
    let li = b.imad(ly, 18u32, lx);
    let lb = b.shl(li, 2u32);
    let lb = {
        let base = b.iconst(tile.offset);
        b.iadd(lb, base)
    };
    b.st_shared_u32(lb, 0, v);

    // Edge threads also fetch their halo neighbour.
    let nm1 = b.isub(n, 1u32);
    let x_lo = b.setp_u32_eq(tx, 0u32);
    let g_ok = b.setp_u32_ne(gx, 0u32);
    let both = b.and_p(x_lo, g_ok);
    b.if_(both, |b| {
        let gl = b.isub(gi, 1u32);
        let e = b.lea(temp, gl, 2);
        let hv = b.ld_global_u32(e);
        let hl = b.isub(lb, 4u32);
        b.st_shared_u32(hl, 0, hv);
    });
    let x_hi = b.setp_u32_eq(tx, 15u32);
    let g_ok2 = b.setp_u32_lt(gx, nm1);
    let both2 = b.and_p(x_hi, g_ok2);
    b.if_(both2, |b| {
        let gr = b.iadd(gi, 1u32);
        let e = b.lea(temp, gr, 2);
        let hv = b.ld_global_u32(e);
        let hr = b.iadd(lb, 4u32);
        b.st_shared_u32(hr, 0, hv);
    });
    let y_lo = b.setp_u32_eq(ty, 0u32);
    let gy_ok = b.setp_u32_ne(gy, 0u32);
    let both3 = b.and_p(y_lo, gy_ok);
    b.if_(both3, |b| {
        let gu = b.isub(gi, n);
        let e = b.lea(temp, gu, 2);
        let hv = b.ld_global_u32(e);
        let hu = b.isub(lb, 18 * 4u32);
        b.st_shared_u32(hu, 0, hv);
    });
    let y_hi = b.setp_u32_eq(ty, 15u32);
    let gy_ok2 = b.setp_u32_lt(gy, nm1);
    let both4 = b.and_p(y_hi, gy_ok2);
    b.if_(both4, |b| {
        let gd = b.iadd(gi, n);
        let e = b.lea(temp, gd, 2);
        let hv = b.ld_global_u32(e);
        let hd = b.iadd(lb, 18 * 4u32);
        b.st_shared_u32(hd, 0, hv);
    });
    b.bar_sync();

    // Interior update from shared memory.
    let gx1 = b.isub(gx, 1u32);
    let gy1 = b.isub(gy, 1u32);
    let nm2 = b.isub(n, 2u32);
    let px = b.setp_u32_lt(gx1, nm2);
    let py = b.setp_u32_lt(gy1, nm2);
    let interior = b.and_p(px, py);
    b.if_(interior, |b| {
        let l = b.isub(lb, 4u32);
        let vl = b.ld_shared_u32(l, 0);
        let r = b.iadd(lb, 4u32);
        let vr = b.ld_shared_u32(r, 0);
        let u = b.isub(lb, 72u32);
        let vu = b.ld_shared_u32(u, 0);
        let dn = b.iadd(lb, 72u32);
        let vd = b.ld_shared_u32(dn, 0);
        let ep = b.lea(power, gi, 2);
        let pw = b.ld_global_u32(ep);
        let sum = b.iadd(vl, vr);
        let sum = b.iadd(sum, vu);
        let sum = b.iadd(sum, vd);
        let c4 = b.shl(v, 2u32);
        let diff = b.isub(sum, c4);
        let withp = b.iadd(diff, pw);
        let delta = b.shr(withp, 3u32);
        let nv = b.iadd(v, delta);
        let eo = b.lea(out, gi, 2);
        b.st_global_u32(eo, nv);
    });
    b.finish()
}

impl Workload for Hotspot {
    fn name(&self) -> String {
        "hotspot".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![hotspot_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let t0 = self.temp();
        rt.clock.add_host(0.3e-3);
        let mut bufs = [rt.alloc_u32(&t0), rt.alloc_u32(&t0)];
        let d_p = rt.alloc_u32(&self.power());
        let blocks = (self.n as u32) / 16;
        for _ in 0..self.steps {
            let cur = rt.read_u32(bufs[0]);
            rt.write_u32(bufs[1], &cur); // boundary carry-through
            let res = rt.launch(
                module,
                "hotspot_step",
                LaunchDims::plane((blocks, blocks), (16, 16)),
                &[self.n as u64, bufs[0].addr, d_p.addr, bufs[1].addr],
                handlers,
            )?;
            check_outcome(&res)?;
            bufs.swap(0, 1);
        }
        let out = rt.read_u32(bufs[0]);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let p = self.power();
        let mut t = self.temp();
        for _ in 0..self.steps {
            t = self.host_step(&t, &p);
        }
        let summary = summarize(std::slice::from_ref(&t));
        WorkloadOutput {
            buffers: vec![t],
            summary,
        }
    }
}

// --------------------------------------------------------------- srad --

/// Which SRAD formulation to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SradVariant {
    /// Monolithic kernel (few, boundary-only branches).
    V1,
    /// Split kernels with a data-dependent clamp branch (more
    /// divergence, as Table 1 reports: 0.5% vs 21.3%).
    V2,
}

/// `srad`: speckle-reducing anisotropic diffusion (integerized).
#[derive(Clone, Copy, Debug)]
pub struct Srad {
    /// Variant.
    pub variant: SradVariant,
    /// Image side.
    pub n: usize,
    /// Iterations.
    pub iters: usize,
}

impl Srad {
    /// The v1 formulation.
    pub fn v1() -> Srad {
        Srad {
            variant: SradVariant::V1,
            n: 64,
            iters: 2,
        }
    }

    /// The v2 formulation.
    pub fn v2() -> Srad {
        Srad {
            variant: SradVariant::V2,
            n: 64,
            iters: 2,
        }
    }

    fn image(&self) -> Vec<u32> {
        data::random_u32(self.n * self.n, 256, 0x1b1)
    }

    fn host_step_v1(&self, img: &[u32]) -> Vec<u32> {
        let n = self.n;
        let mut out = img.to_vec();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                let lap = img[i - 1]
                    .wrapping_add(img[i + 1])
                    .wrapping_add(img[i - n])
                    .wrapping_add(img[i + n])
                    .wrapping_sub(img[i].wrapping_mul(4));
                out[i] = img[i].wrapping_add(lap >> 2);
            }
        }
        out
    }

    fn host_step_v2(&self, img: &[u32]) -> Vec<u32> {
        let n = self.n;
        // Pass 1: diffusion coefficient (clamped gradient).
        let mut coeff = vec![0u32; n * n];
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                let g = img[i + 1].abs_diff(img[i - 1]) + img[i + n].abs_diff(img[i - n]);
                coeff[i] = if g > 64 { 64 } else { g };
            }
        }
        // Pass 2: update.
        let mut out = img.to_vec();
        for y in 1..n - 1 {
            for x in 1..n - 1 {
                let i = y * n + x;
                let lap = img[i - 1]
                    .wrapping_add(img[i + 1])
                    .wrapping_add(img[i - n])
                    .wrapping_add(img[i + n])
                    .wrapping_sub(img[i].wrapping_mul(4));
                out[i] = img[i].wrapping_add(lap.wrapping_mul(coeff[i]) >> 8);
            }
        }
        out
    }
}

fn interior_guard(b: &mut KernelBuilder, gx: V32, gy: V32, n: V32) -> sassi_kir::VP {
    let x1 = b.isub(gx, 1u32);
    let y1 = b.isub(gy, 1u32);
    let nm2 = b.isub(n, 2u32);
    let px = b.setp_u32_lt(x1, nm2);
    let py = b.setp_u32_lt(y1, nm2);
    b.and_p(px, py)
}

fn srad_v1_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("srad_v1");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let dst = b.param_ptr(2);
    let gx = b.imad(bx, 16u32, tx);
    let gy = b.imad(by, 16u32, ty);
    let inside = interior_guard(&mut b, gx, gy, n);
    b.if_(inside, |b| {
        let i = b.imad(gy, n, gx);
        let e = b.lea(src, i, 2);
        let c = b.ld_global_u32(e);
        let il = b.isub(i, 1u32);
        let e1 = b.lea(src, il, 2);
        let vl = b.ld_global_u32(e1);
        let ir = b.iadd(i, 1u32);
        let e2 = b.lea(src, ir, 2);
        let vr = b.ld_global_u32(e2);
        let iu = b.isub(i, n);
        let e3 = b.lea(src, iu, 2);
        let vu = b.ld_global_u32(e3);
        let id = b.iadd(i, n);
        let e4 = b.lea(src, id, 2);
        let vd = b.ld_global_u32(e4);
        let sum = b.iadd(vl, vr);
        let sum = b.iadd(sum, vu);
        let sum = b.iadd(sum, vd);
        let c4 = b.shl(c, 2u32);
        let lap = b.isub(sum, c4);
        let q = b.shr(lap, 2u32);
        let nv = b.iadd(c, q);
        let eo = b.lea(dst, i, 2);
        b.st_global_u32(eo, nv);
    });
    b.finish()
}

fn srad_v2_kernel1() -> KFunction {
    let mut b = KernelBuilder::kernel("srad_v2_coeff");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let coeff = b.param_ptr(2);
    let gx = b.imad(bx, 16u32, tx);
    let gy = b.imad(by, 16u32, ty);
    let inside = interior_guard(&mut b, gx, gy, n);
    b.if_(inside, |b| {
        let i = b.imad(gy, n, gx);
        let ir = b.iadd(i, 1u32);
        let e1 = b.lea(src, ir, 2);
        let vr = b.ld_global_u32(e1);
        let il = b.isub(i, 1u32);
        let e2 = b.lea(src, il, 2);
        let vl = b.ld_global_u32(e2);
        let id = b.iadd(i, n);
        let e3 = b.lea(src, id, 2);
        let vd = b.ld_global_u32(e3);
        let iu = b.isub(i, n);
        let e4 = b.lea(src, iu, 2);
        let vu = b.ld_global_u32(e4);
        // |a-b| with unsigned ops.
        let mx = b.umax(vr, vl);
        let mn = b.umin(vr, vl);
        let gh = b.isub(mx, mn);
        let mx2 = b.umax(vd, vu);
        let mn2 = b.umin(vd, vu);
        let gv = b.isub(mx2, mn2);
        let g = b.iadd(gh, gv);
        // Data-dependent clamp: the divergent branch of v2.
        let big = b.setp_u32_gt(g, 64u32);
        let out = b.var_u32(0u32);
        b.assign(out, g);
        b.if_(big, |b| {
            b.assign_imm(out, 64);
        });
        let eo = b.lea(coeff, i, 2);
        b.st_global_u32(eo, out);
    });
    b.finish()
}

fn srad_v2_kernel2() -> KFunction {
    let mut b = KernelBuilder::kernel("srad_v2_update");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let src = b.param_ptr(1);
    let coeff = b.param_ptr(2);
    let dst = b.param_ptr(3);
    let gx = b.imad(bx, 16u32, tx);
    let gy = b.imad(by, 16u32, ty);
    let inside = interior_guard(&mut b, gx, gy, n);
    b.if_(inside, |b| {
        let i = b.imad(gy, n, gx);
        let e = b.lea(src, i, 2);
        let c = b.ld_global_u32(e);
        let il = b.isub(i, 1u32);
        let e1 = b.lea(src, il, 2);
        let vl = b.ld_global_u32(e1);
        let ir = b.iadd(i, 1u32);
        let e2 = b.lea(src, ir, 2);
        let vr = b.ld_global_u32(e2);
        let iu = b.isub(i, n);
        let e3 = b.lea(src, iu, 2);
        let vu = b.ld_global_u32(e3);
        let id = b.iadd(i, n);
        let e4 = b.lea(src, id, 2);
        let vd = b.ld_global_u32(e4);
        let ec = b.lea(coeff, i, 2);
        let cf = b.ld_global_u32(ec);
        let sum = b.iadd(vl, vr);
        let sum = b.iadd(sum, vu);
        let sum = b.iadd(sum, vd);
        let c4 = b.shl(c, 2u32);
        let lap = b.isub(sum, c4);
        let scaled = b.imul(lap, cf);
        let q = b.shr(scaled, 8u32);
        let nv = b.iadd(c, q);
        let eo = b.lea(dst, i, 2);
        b.st_global_u32(eo, nv);
    });
    b.finish()
}

impl Workload for Srad {
    fn name(&self) -> String {
        match self.variant {
            SradVariant::V1 => "srad_v1".to_string(),
            SradVariant::V2 => "srad_v2".to_string(),
        }
    }

    fn kernels(&self) -> Vec<KFunction> {
        match self.variant {
            SradVariant::V1 => vec![srad_v1_kernel()],
            SradVariant::V2 => vec![srad_v2_kernel1(), srad_v2_kernel2()],
        }
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let img0 = self.image();
        rt.clock.add_host(0.2e-3);
        let mut bufs = [rt.alloc_u32(&img0), rt.alloc_u32(&img0)];
        let d_cf = rt.alloc_zeroed_u32(self.n * self.n);
        let blocks = (self.n as u32) / 16;
        let dims = LaunchDims::plane((blocks, blocks), (16, 16));
        for _ in 0..self.iters {
            let cur = rt.read_u32(bufs[0]);
            rt.write_u32(bufs[1], &cur);
            match self.variant {
                SradVariant::V1 => {
                    let res = rt.launch(
                        module,
                        "srad_v1",
                        dims,
                        &[self.n as u64, bufs[0].addr, bufs[1].addr],
                        handlers,
                    )?;
                    check_outcome(&res)?;
                }
                SradVariant::V2 => {
                    let res = rt.launch(
                        module,
                        "srad_v2_coeff",
                        dims,
                        &[self.n as u64, bufs[0].addr, d_cf.addr],
                        handlers,
                    )?;
                    check_outcome(&res)?;
                    let res = rt.launch(
                        module,
                        "srad_v2_update",
                        dims,
                        &[self.n as u64, bufs[0].addr, d_cf.addr, bufs[1].addr],
                        handlers,
                    )?;
                    check_outcome(&res)?;
                }
            }
            bufs.swap(0, 1);
        }
        let out = rt.read_u32(bufs[0]);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let mut img = self.image();
        for _ in 0..self.iters {
            img = match self.variant {
                SradVariant::V1 => self.host_step_v1(&img),
                SradVariant::V2 => self.host_step_v2(&img),
            };
        }
        let summary = summarize(std::slice::from_ref(&img));
        WorkloadOutput {
            buffers: vec![img],
            summary,
        }
    }
}
