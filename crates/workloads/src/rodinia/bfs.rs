//! Rodinia-style `bfs`: one thread per *node* each level, with frontier
//! membership flags — most threads idle every level, the classic
//! low-warp-efficiency formulation (Table 1 reports 14.2% dynamic
//! divergence).

use crate::prelude::*;

/// The Rodinia-flavoured BFS.
#[derive(Clone, Copy, Debug)]
pub struct RodiniaBfs {
    /// Node count for the synthetic uniform graph.
    pub nodes: usize,
}

impl RodiniaBfs {
    /// Default dataset.
    pub fn new() -> RodiniaBfs {
        RodiniaBfs { nodes: 4096 }
    }

    fn graph(&self) -> data::CsrGraph {
        data::uniform_graph(self.nodes, 3, 0x161)
    }
}

impl Default for RodiniaBfs {
    fn default() -> RodiniaBfs {
        RodiniaBfs::new()
    }
}

/// Phase 1: frontier nodes label unvisited neighbours `updating`.
fn bfs_kernel1() -> KFunction {
    let mut b = KernelBuilder::kernel("rbfs_k1");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let row_ptr = b.param_ptr(1);
    let cols = b.param_ptr(2);
    let frontier = b.param_ptr(3);
    let visited = b.param_ptr(4);
    let updating = b.param_ptr(5);
    let cost = b.param_ptr(6);
    let inr = b.setp_u32_lt(tid, n);
    b.if_(inr, |b| {
        let ef = b.lea(frontier, tid, 2);
        let f = b.ld_global_u32(ef);
        let active = b.setp_u32_ne(f, 0u32);
        b.if_(active, |b| {
            let z = b.iconst(0);
            b.st_global_u32(ef, z);
            let erp = b.lea(row_ptr, tid, 2);
            let start = b.ld_global_u32(erp);
            let end = b.ld_global_u32_off(erp, 4);
            let ec0 = b.lea(cost, tid, 2);
            let my_cost = b.ld_global_u32(ec0);
            let nc = b.iadd(my_cost, 1u32);
            b.for_range(start, end, 1, |b, k| {
                let ecol = b.lea(cols, k, 2);
                let v = b.ld_global_u32(ecol);
                let ev = b.lea(visited, v, 2);
                let seen = b.ld_global_u32(ev);
                let fresh = b.setp_u32_eq(seen, 0u32);
                b.if_(fresh, |b| {
                    let ecost = b.lea(cost, v, 2);
                    b.st_global_u32(ecost, nc);
                    let eu = b.lea(updating, v, 2);
                    let one = b.iconst(1);
                    b.st_global_u32(eu, one);
                });
            });
        });
    });
    b.finish()
}

/// Phase 2: promote `updating` to `frontier`, set the continue flag.
fn bfs_kernel2() -> KFunction {
    let mut b = KernelBuilder::kernel("rbfs_k2");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let frontier = b.param_ptr(1);
    let visited = b.param_ptr(2);
    let updating = b.param_ptr(3);
    let go_again = b.param_ptr(4);
    let inr = b.setp_u32_lt(tid, n);
    b.if_(inr, |b| {
        let eu = b.lea(updating, tid, 2);
        let u = b.ld_global_u32(eu);
        let pend = b.setp_u32_ne(u, 0u32);
        b.if_(pend, |b| {
            let one = b.iconst(1);
            let ef = b.lea(frontier, tid, 2);
            b.st_global_u32(ef, one);
            let ev = b.lea(visited, tid, 2);
            b.st_global_u32(ev, one);
            let z = b.iconst(0);
            b.st_global_u32(eu, z);
            b.st_global_u32(go_again, one);
        });
    });
    b.finish()
}

impl Workload for RodiniaBfs {
    fn name(&self) -> String {
        "bfs".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![bfs_kernel1(), bfs_kernel2()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let g = self.graph();
        let n = g.nodes();
        rt.clock.add_host(0.5e-3);
        let d_rp = rt.alloc_u32(&g.row_ptr);
        let d_c = rt.alloc_u32(&g.cols);
        let mut frontier0 = vec![0u32; n];
        frontier0[0] = 1;
        let mut visited0 = vec![0u32; n];
        visited0[0] = 1;
        let mut cost0 = vec![u32::MAX; n];
        cost0[0] = 0;
        let d_f = rt.alloc_u32(&frontier0);
        let d_v = rt.alloc_u32(&visited0);
        let d_u = rt.alloc_zeroed_u32(n);
        let d_cost = rt.alloc_u32(&cost0);
        let d_go = rt.alloc_zeroed_u32(1);

        let dims = LaunchDims::linear(grid_for(n as u32, 256), 256);
        let mut rounds = 0u32;
        for _ in 0..n {
            rounds += 1;
            rt.write_u32(d_go, &[0]);
            let res = rt.launch(
                module,
                "rbfs_k1",
                dims,
                &[
                    n as u64,
                    d_rp.addr,
                    d_c.addr,
                    d_f.addr,
                    d_v.addr,
                    d_u.addr,
                    d_cost.addr,
                ],
                handlers,
            )?;
            check_outcome(&res)?;
            let res = rt.launch(
                module,
                "rbfs_k2",
                dims,
                &[n as u64, d_f.addr, d_v.addr, d_u.addr, d_go.addr],
                handlers,
            )?;
            check_outcome(&res)?;
            if rt.read_u32(d_go)[0] == 0 {
                break;
            }
        }
        let out = rt.read_u32(d_cost);
        let summary = format!("rounds={rounds}\n{}", summarize(std::slice::from_ref(&out)));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let d = self.graph().bfs_distances();
        let rounds = d
            .iter()
            .filter(|&&x| x != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0)
            + 1;
        let summary = format!("rounds={rounds}\n{}", summarize(std::slice::from_ref(&d)));
        WorkloadOutput {
            buffers: vec![d],
            summary,
        }
    }
}
