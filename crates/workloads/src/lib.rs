//! # sassi-workloads — the benchmark suite
//!
//! Kernels in the spirit of the Parboil and Rodinia suites and NERSC's
//! miniFE, written in the [`sassi_kir`] builder DSL and driven by host
//! code through [`sassi_rt`]. Each workload generates deterministic
//! synthetic inputs (see [`data`]), runs end to end on the simulated
//! GPU, and checks itself against a host-computed golden output — the
//! ground truth the error-injection study diffs against.
//!
//! The suite spans the behavioural space the paper's case studies need:
//! fully convergent kernels (`sgemm`, `streamcluster`), data-dependent
//! divergence (`bfs`, `tpacf`, `heartwall`, `mummergpu`), coalesced vs
//! scattered access (miniFE ELL vs CSR, `spmv`), atomics (`histo`,
//! `bfs`), warp intrinsics (miniFE's dot), barriers and shared memory
//! (`hotspot`, `backprop`, `lud`), and SFU-heavy math (`mri-q`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod data;
pub mod harness;
pub mod minife;
pub mod parboil;
pub mod prelude;
pub mod rodinia;

mod registry;

pub use harness::{
    execute, execute_with_jobs, execute_with_opts, verify_golden, ExecutionReport, RunFailure,
    Workload, WorkloadOutput,
};
pub use registry::{
    all_workloads, by_name, fig10_set, fig7_set, table1_set, table2_set, table3_set,
};
