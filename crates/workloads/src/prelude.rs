//! Shared imports for workload modules.

pub use crate::data;
pub use crate::harness::{check_outcome, summarize, RunFailure, Workload, WorkloadOutput};
pub use sassi_kir::{KFunction, KernelBuilder, VSrc, V32, V64};
pub use sassi_rt::{DevBuf, Runtime};
pub use sassi_sim::{HandlerRuntime, LaunchDims, Module};

/// Blocks needed to cover `n` threads with `block`-sized blocks.
pub fn grid_for(n: u32, block: u32) -> u32 {
    n.div_ceil(block).max(1)
}
