//! The workload registry: named construction and the per-experiment
//! benchmark sets matching the paper's tables and figures.

use crate::harness::Workload;
use crate::minife::MiniFe;
use crate::parboil::{
    BfsDataset, Cutcp, Histo, Lbm, MriGridding, MriQ, ParboilBfs, Sad, Sgemm, Spmv, Stencil, Tpacf,
};
use crate::rodinia::{
    Backprop, BplusTree, Gaussian, Heartwall, Hotspot, Kmeans, LavaMd, Lud, MummerGpu, Nn, Nw,
    Pathfinder, RodiniaBfs, Srad, Streamcluster,
};

/// Every workload in the suite (27 entries, one per distinct
/// benchmark+dataset used anywhere in the evaluation).
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    let mut v: Vec<Box<dyn Workload>> = Vec::new();
    for d in BfsDataset::all() {
        v.push(Box::new(ParboilBfs::new(d)));
    }
    v.push(Box::new(Sgemm::small()));
    v.push(Box::new(Sgemm::medium()));
    v.push(Box::new(Tpacf::small()));
    v.push(Box::new(Spmv::small()));
    v.push(Box::new(Spmv::medium()));
    v.push(Box::new(Spmv::large()));
    v.push(Box::new(Stencil::new()));
    v.push(Box::new(Histo::new()));
    v.push(Box::new(Lbm::new()));
    v.push(Box::new(Sad::new()));
    v.push(Box::new(Cutcp::new()));
    v.push(Box::new(MriQ::new()));
    v.push(Box::new(MriGridding::new()));
    v.push(Box::new(RodiniaBfs::new()));
    v.push(Box::new(Gaussian::new()));
    v.push(Box::new(Heartwall::new()));
    v.push(Box::new(Hotspot::new()));
    v.push(Box::new(Lud::new()));
    v.push(Box::new(BplusTree::new()));
    v.push(Box::new(Nn::new()));
    v.push(Box::new(Nw::new()));
    v.push(Box::new(Pathfinder::new()));
    v.push(Box::new(Backprop::new()));
    v.push(Box::new(Kmeans::new()));
    v.push(Box::new(LavaMd::new()));
    v.push(Box::new(Srad::v1()));
    v.push(Box::new(Srad::v2()));
    v.push(Box::new(Streamcluster::new()));
    v.push(Box::new(MummerGpu::new()));
    v.push(Box::new(MiniFe::csr()));
    v.push(Box::new(MiniFe::ell()));
    v
}

/// Finds a workload by its display name.
pub fn by_name(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

fn pick(names: &[&str]) -> Vec<Box<dyn Workload>> {
    names
        .iter()
        .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown workload `{n}`")))
        .collect()
}

/// Table 1's benchmark rows: branch-divergence statistics.
pub fn table1_set() -> Vec<Box<dyn Workload>> {
    pick(&[
        "bfs (1M)",
        "bfs (NY)",
        "bfs (SF)",
        "bfs (UT)",
        "sgemm (small)",
        "sgemm (medium)",
        "tpacf (small)",
        "bfs",
        "gaussian",
        "heartwall",
        "srad_v1",
        "srad_v2",
        "streamcluster",
    ])
}

/// Figure 7's benchmark series: memory-divergence PMFs.
pub fn fig7_set() -> Vec<Box<dyn Workload>> {
    pick(&[
        "bfs (NY)",
        "bfs (SF)",
        "bfs (UT)",
        "spmv (small)",
        "spmv (medium)",
        "spmv (large)",
        "bfs",
        "heartwall",
        "mri-gridding",
        "miniFE (ELL)",
        "miniFE (CSR)",
    ])
}

/// Table 2's benchmark rows: value profiling.
pub fn table2_set() -> Vec<Box<dyn Workload>> {
    pick(&[
        "bfs (1M)",
        "cutcp",
        "histo",
        "lbm",
        "mri-gridding",
        "mri-q",
        "sad",
        "sgemm (medium)",
        "spmv (large)",
        "stencil",
        "tpacf (small)",
        "b+tree",
        "backprop",
        "bfs",
        "gaussian",
        "heartwall",
        "hotspot",
        "kmeans",
        "lavaMD",
        "lud",
        "mummergpu",
        "nn",
        "nw",
        "pathfinder",
        "srad_v1",
        "srad_v2",
        "streamcluster",
    ])
}

/// Table 3's benchmark rows: instrumentation overheads.
pub fn table3_set() -> Vec<Box<dyn Workload>> {
    table2_set()
}

/// Figure 10's benchmark set: error injection.
pub fn fig10_set() -> Vec<Box<dyn Workload>> {
    pick(&[
        "bfs (1M)",
        "cutcp",
        "histo",
        "lbm",
        "mri-q",
        "sad",
        "sgemm (medium)",
        "spmv (large)",
        "stencil",
        "backprop",
        "gaussian",
        "hotspot",
        "kmeans",
        "lud",
        "nn",
        "nw",
        "pathfinder",
        "srad_v1",
        "streamcluster",
    ])
}
