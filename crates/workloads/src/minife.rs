//! miniFE-style CG step: sparse mat-vec plus a dot product, with the
//! matrix stored either as **CSR** (row-per-thread, scattered accesses,
//! heavily address-diverged — Figure 8 left) or as column-major **ELL**
//! (lane-contiguous accesses, well coalesced — Figure 8 right).

use crate::parboil::spmv::csr_spmv_kernel;
use crate::prelude::*;

/// Matrix storage format.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MiniFeFormat {
    /// Compressed sparse row.
    Csr,
    /// Padded ELLPACK, column-major.
    Ell,
}

/// The miniFE-style workload.
#[derive(Clone, Copy, Debug)]
pub struct MiniFe {
    /// Storage format.
    pub format: MiniFeFormat,
    /// Rows of the banded system matrix.
    pub rows: usize,
}

impl MiniFe {
    /// miniFE with the CSR matrix format.
    pub fn csr() -> MiniFe {
        MiniFe {
            format: MiniFeFormat::Csr,
            rows: 2048,
        }
    }

    /// miniFE with the ELL matrix format.
    pub fn ell() -> MiniFe {
        MiniFe {
            format: MiniFeFormat::Ell,
            rows: 2048,
        }
    }

    fn matrix(&self) -> data::CsrMatrix {
        match self.format {
            // The CSR variant stresses irregularity: skewed rows.
            MiniFeFormat::Csr => data::skewed_csr(self.rows, self.rows, 8, 0xf1),
            // The ELL variant holds the banded (regular) matrix.
            MiniFeFormat::Ell => data::banded_csr(self.rows, 7, 0xf2),
        }
    }

    fn x(&self) -> Vec<u32> {
        data::random_u32(self.rows, 64, 0xf3)
    }
}

/// ELL mat-vec: entry (r, j) at `j*rows + r`, so warps read
/// consecutive addresses each iteration.
fn ell_spmv_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("minife_ell");
    let row = b.global_tid_x();
    let nrows = b.param_u32(0);
    let width = b.param_u32(1);
    let cols = b.param_ptr(2);
    let vals = b.param_ptr(3);
    let x = b.param_ptr(4);
    let y = b.param_ptr(5);
    let inr = b.setp_u32_lt(row, nrows);
    b.if_(inr, |b| {
        let acc = b.var_u32(0u32);
        b.for_range(0u32, width, 1, |b, j| {
            let idx = b.imad(j, nrows, row);
            let ev = b.lea(vals, idx, 2);
            let v = b.ld_global_u32(ev);
            let ec = b.lea(cols, idx, 2);
            let c = b.ld_global_u32(ec);
            let ex = b.lea(x, c, 2);
            let xv = b.ld_global_u32(ex);
            let nxt = b.imad(v, xv, acc);
            b.assign(acc, nxt);
        });
        let ey = b.lea(y, row, 2);
        b.st_global_u32(ey, acc);
    });
    b.finish()
}

/// Warp-reduced dot product `out += Σ a[i]*b[i]` using `SHFL` butterfly
/// reduction plus one atomic per warp — miniFE's CG dot.
fn dot_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("minife_dot");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let pa = b.param_ptr(1);
    let pb = b.param_ptr(2);
    let out = b.param_ptr(3);
    let inr = b.setp_u32_lt(tid, n);
    let zero = b.iconst(0);
    let prod = b.var_u32(0u32);
    b.if_(inr, |b| {
        let ea = b.lea(pa, tid, 2);
        let av = b.ld_global_u32(ea);
        let eb = b.lea(pb, tid, 2);
        let bv = b.ld_global_u32(eb);
        let p = b.imad(av, bv, zero);
        b.assign(prod, p);
    });
    // Butterfly reduction across the (fully reconverged) warp.
    for delta in [16u32, 8, 4, 2, 1] {
        let other = b.shfl_xor(prod, delta);
        let sum = b.iadd(prod, other);
        b.assign(prod, sum);
    }
    let lane = b.lane_id();
    let is_leader = b.setp_u32_eq(lane, 0u32);
    b.if_(is_leader, |b| {
        let _ = b.atom_add_global(out, prod);
    });
    b.finish()
}

impl Workload for MiniFe {
    fn name(&self) -> String {
        match self.format {
            MiniFeFormat::Csr => "miniFE (CSR)".to_string(),
            MiniFeFormat::Ell => "miniFE (ELL)".to_string(),
        }
    }

    fn kernels(&self) -> Vec<KFunction> {
        match self.format {
            MiniFeFormat::Csr => vec![csr_spmv_kernel("minife_csr"), dot_kernel()],
            MiniFeFormat::Ell => vec![ell_spmv_kernel(), dot_kernel()],
        }
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let m = self.matrix();
        let x = self.x();
        rt.clock.add_host(1.2e-3); // mesh assembly
        let d_x = rt.alloc_u32(&x);
        let d_y = rt.alloc_zeroed_u32(m.rows);
        let dims = LaunchDims::linear(grid_for(m.rows as u32, 128), 128);

        match self.format {
            MiniFeFormat::Csr => {
                let d_rp = rt.alloc_u32(&m.row_ptr);
                let d_ci = rt.alloc_u32(&m.col_idx);
                let d_v = rt.alloc_u32(&m.values);
                let res = rt.launch(
                    module,
                    "minife_csr",
                    dims,
                    &[
                        m.rows as u64,
                        d_rp.addr,
                        d_ci.addr,
                        d_v.addr,
                        d_x.addr,
                        d_y.addr,
                    ],
                    handlers,
                )?;
                check_outcome(&res)?;
            }
            MiniFeFormat::Ell => {
                let (width, cols, vals) = m.to_ell();
                let d_c = rt.alloc_u32(&cols);
                let d_v = rt.alloc_u32(&vals);
                let res = rt.launch(
                    module,
                    "minife_ell",
                    dims,
                    &[
                        m.rows as u64,
                        width as u64,
                        d_c.addr,
                        d_v.addr,
                        d_x.addr,
                        d_y.addr,
                    ],
                    handlers,
                )?;
                check_outcome(&res)?;
            }
        }

        let d_dot = rt.alloc_zeroed_u32(1);
        let res = rt.launch(
            module,
            "minife_dot",
            dims,
            &[m.rows as u64, d_y.addr, d_x.addr, d_dot.addr],
            handlers,
        )?;
        check_outcome(&res)?;

        let y = rt.read_u32(d_y);
        let dot = rt.read_u32(d_dot);
        let summary = summarize(&[y.clone(), dot.clone()]);
        Ok(WorkloadOutput {
            buffers: vec![y, dot],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let m = self.matrix();
        let x = self.x();
        let y = m.spmv(&x);
        let dot = vec![y
            .iter()
            .zip(&x)
            .fold(0u32, |acc, (&a, &b)| acc.wrapping_add(a.wrapping_mul(b)))];
        let summary = summarize(&[y.clone(), dot.clone()]);
        WorkloadOutput {
            buffers: vec![y, dot],
            summary,
        }
    }
}
