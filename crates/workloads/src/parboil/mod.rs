//! Parboil-style workloads.

pub mod bfs;
pub mod compute;
pub mod histo;
pub mod sgemm;
pub mod spmv;
pub mod stencil;

pub use bfs::{BfsDataset, ParboilBfs};
pub use compute::{Cutcp, Lbm, MriGridding, MriQ, Sad, Tpacf};
pub use histo::Histo;
pub use sgemm::Sgemm;
pub use spmv::Spmv;
pub use stencil::Stencil;
