//! Parboil-style `histo`: saturating histogram with atomic updates.
//! Convergent control flow, heavy atomic contention on popular bins.

use crate::prelude::*;

/// 256-bin histogram over `n` samples.
#[derive(Clone, Copy, Debug)]
pub struct Histo {
    /// Sample count.
    pub n: usize,
}

impl Histo {
    /// The default dataset.
    pub fn new() -> Histo {
        Histo { n: 8192 }
    }

    fn input(&self) -> Vec<u32> {
        // Zipf-ish skew: low bins are hot, like histo's image input.
        data::random_u32(self.n, 256, 0xaa)
            .into_iter()
            .map(|v| (v * v) >> 8)
            .collect()
    }
}

impl Default for Histo {
    fn default() -> Histo {
        Histo::new()
    }
}

fn histo_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("histo");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let input = b.param_ptr(1);
    let hist = b.param_ptr(2);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ei = b.lea(input, tid, 2);
        let v = b.ld_global_u32(ei);
        let eh = b.lea(hist, v, 2);
        let one = b.iconst(1);
        // Fire-and-forget reduction (RED.ADD), like the original.
        b.red_global(sassi_isa::AtomOp::Add, eh, one);
    });
    b.finish()
}

impl Workload for Histo {
    fn name(&self) -> String {
        "histo".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![histo_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let input = self.input();
        rt.clock.add_host(0.8e-3); // image decode
        let d_in = rt.alloc_u32(&input);
        let d_h = rt.alloc_zeroed_u32(256);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 256), 256);
        let res = rt.launch(
            module,
            "histo",
            dims,
            &[self.n as u64, d_in.addr, d_h.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_h);
        rt.clock.add_host(0.2e-3);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let mut h = vec![0u32; 256];
        for v in self.input() {
            h[v as usize] += 1;
        }
        let summary = summarize(std::slice::from_ref(&h));
        WorkloadOutput {
            buffers: vec![h],
            summary,
        }
    }
}
