//! Parboil-style `spmv`: sparse matrix–vector product, CSR, one row per
//! thread. Skewed row lengths make both control flow (loop trip counts)
//! and memory addresses diverge — a Figure 7 staple.

use crate::prelude::*;

/// CSR sparse mat-vec.
#[derive(Clone, Copy, Debug)]
pub struct Spmv {
    /// Matrix rows/cols.
    pub rows: usize,
    /// Mean nonzeros per row.
    pub mean_nnz: usize,
    /// Dataset label ("small" / "medium" / "large").
    pub dataset: &'static str,
}

impl Spmv {
    /// The `small` dataset.
    pub fn small() -> Spmv {
        Spmv {
            rows: 1024,
            mean_nnz: 4,
            dataset: "small",
        }
    }

    /// The `medium` dataset.
    pub fn medium() -> Spmv {
        Spmv {
            rows: 2048,
            mean_nnz: 6,
            dataset: "medium",
        }
    }

    /// The `large` dataset.
    pub fn large() -> Spmv {
        Spmv {
            rows: 4096,
            mean_nnz: 8,
            dataset: "large",
        }
    }

    fn matrix(&self) -> data::CsrMatrix {
        data::skewed_csr(self.rows, self.rows, self.mean_nnz, 0x77 + self.rows as u64)
    }

    fn x(&self) -> Vec<u32> {
        data::random_u32(self.rows, 1000, 0x88)
    }
}

/// Builds the CSR row-per-thread kernel shared with miniFE's CSR
/// variant.
pub fn csr_spmv_kernel(name: &str) -> KFunction {
    let mut b = KernelBuilder::kernel(name);
    let row = b.global_tid_x();
    let nrows = b.param_u32(0);
    let row_ptr = b.param_ptr(1);
    let col_idx = b.param_ptr(2);
    let values = b.param_ptr(3);
    let x = b.param_ptr(4);
    let y = b.param_ptr(5);
    let inrange = b.setp_u32_lt(row, nrows);
    b.if_(inrange, |b| {
        let erp = b.lea(row_ptr, row, 2);
        let start = b.ld_global_u32(erp);
        let end = b.ld_global_u32_off(erp, 4);
        let acc = b.var_u32(0u32);
        b.for_range(start, end, 1, |b, k| {
            let ev = b.lea(values, k, 2);
            let v = b.ld_global_u32(ev);
            let ec = b.lea(col_idx, k, 2);
            let c = b.ld_global_u32(ec);
            let ex = b.lea(x, c, 2);
            let xv = b.ld_global_u32(ex);
            let nxt = b.imad(v, xv, acc);
            b.assign(acc, nxt);
        });
        let ey = b.lea(y, row, 2);
        b.st_global_u32(ey, acc);
    });
    b.finish()
}

impl Workload for Spmv {
    fn name(&self) -> String {
        format!("spmv ({})", self.dataset)
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![csr_spmv_kernel("spmv_csr")]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let m = self.matrix();
        let x = self.x();
        rt.clock.add_host(0.5e-3);
        let d_rp = rt.alloc_u32(&m.row_ptr);
        let d_ci = rt.alloc_u32(&m.col_idx);
        let d_v = rt.alloc_u32(&m.values);
        let d_x = rt.alloc_u32(&x);
        let d_y = rt.alloc_zeroed_u32(m.rows);
        let dims = LaunchDims::linear(grid_for(m.rows as u32, 128), 128);
        let res = rt.launch(
            module,
            "spmv_csr",
            dims,
            &[
                m.rows as u64,
                d_rp.addr,
                d_ci.addr,
                d_v.addr,
                d_x.addr,
                d_y.addr,
            ],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(d_y);
        rt.clock.add_host(0.1e-3);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let y = self.matrix().spmv(&self.x());
        let summary = summarize(std::slice::from_ref(&y));
        WorkloadOutput {
            buffers: vec![y],
            summary,
        }
    }
}
