//! Parboil-style `stencil`: 3-D 7-point Jacobi sweep. One thread per
//! (x, y) column, marching in z; boundary threads idle, giving the
//! light, structured divergence typical of stencils.

use crate::prelude::*;

/// 7-point stencil on an `nx × ny × nz` grid.
#[derive(Clone, Copy, Debug)]
pub struct Stencil {
    /// Grid extent in x.
    pub nx: u32,
    /// Grid extent in y.
    pub ny: u32,
    /// Grid extent in z.
    pub nz: u32,
}

impl Stencil {
    /// The default dataset.
    pub fn new() -> Stencil {
        Stencil {
            nx: 24,
            ny: 24,
            nz: 8,
        }
    }

    fn input(&self) -> Vec<u32> {
        data::random_f32_bits((self.nx * self.ny * self.nz) as usize, 0x99)
    }

    fn host_stencil(&self, a: &[u32]) -> Vec<u32> {
        let (nx, ny, nz) = (self.nx as usize, self.ny as usize, self.nz as usize);
        let idx = |x: usize, y: usize, z: usize| z * nx * ny + y * nx + x;
        let mut out = a.to_vec();
        for z in 1..nz - 1 {
            for y in 1..ny - 1 {
                for x in 1..nx - 1 {
                    let f = |i: usize| f32::from_bits(a[i]);
                    // Same association order as the kernel.
                    let sum = f(idx(x - 1, y, z)) + f(idx(x + 1, y, z));
                    let sum = sum + f(idx(x, y - 1, z));
                    let sum = sum + f(idx(x, y + 1, z));
                    let sum = sum + f(idx(x, y, z - 1));
                    let sum = sum + f(idx(x, y, z + 1));
                    let c = f(idx(x, y, z));
                    let v = 0.15f32.mul_add(sum, c * 0.1);
                    out[idx(x, y, z)] = v.to_bits();
                }
            }
        }
        out
    }
}

impl Default for Stencil {
    fn default() -> Stencil {
        Stencil::new()
    }
}

fn stencil_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("stencil");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let nx = b.param_u32(0);
    let ny = b.param_u32(1);
    let nz = b.param_u32(2);
    let src = b.param_ptr(3);
    let dst = b.param_ptr(4);
    let x = b.imad(bx, 16u32, tx);
    let y = b.imad(by, 16u32, ty);

    let x1 = b.isub(x, 1u32);
    let y1 = b.isub(y, 1u32);
    let nxm = b.isub(nx, 2u32);
    let nym = b.isub(ny, 2u32);
    // interior iff x-1 < nx-2 (unsigned trick: x >= 1 && x <= nx-2).
    let px = b.setp_u32_lt(x1, nxm);
    let py = b.setp_u32_lt(y1, nym);
    let interior = b.and_p(px, py);
    b.if_(interior, |b| {
        let plane = b.imul(nx, ny);
        let row = b.imad(y, nx, x);
        let nzm1 = b.isub(nz, 1u32);
        let z = b.var_u32(1u32);
        b.while_(
            |b| b.setp_u32_lt(z, nzm1),
            |b| {
                let center = b.imad(z, plane, row);
                let e_c = b.lea(src, center, 2);
                let c = b.ld_global_f32(e_c);
                let im1 = b.isub(center, 1u32);
                let e1 = b.lea(src, im1, 2);
                let v1 = b.ld_global_f32(e1);
                let ip1 = b.iadd(center, 1u32);
                let e2 = b.lea(src, ip1, 2);
                let v2 = b.ld_global_f32(e2);
                let iym = b.isub(center, nx);
                let e3 = b.lea(src, iym, 2);
                let v3 = b.ld_global_f32(e3);
                let iyp = b.iadd(center, nx);
                let e4 = b.lea(src, iyp, 2);
                let v4 = b.ld_global_f32(e4);
                let izm = b.isub(center, plane);
                let e5 = b.lea(src, izm, 2);
                let v5 = b.ld_global_f32(e5);
                let izp = b.iadd(center, plane);
                let e6 = b.lea(src, izp, 2);
                let v6 = b.ld_global_f32(e6);

                let sum = b.fadd(v1, v2);
                let sum = b.fadd(sum, v3);
                let sum = b.fadd(sum, v4);
                let sum = b.fadd(sum, v5);
                let sum = b.fadd(sum, v6);
                let k015 = b.fconst(0.15);
                let cterm = b.fmul(c, 0.1f32);
                let v = b.ffma(k015, sum, cterm);
                let e_o = b.lea(dst, center, 2);
                b.st_global_u32(e_o, v);

                let zn = b.iadd(z, 1u32);
                b.assign(z, zn);
            },
        );
    });
    b.finish()
}

impl Workload for Stencil {
    fn name(&self) -> String {
        "stencil".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![stencil_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let a = self.input();
        rt.clock.add_host(0.3e-3);
        let src = rt.alloc_u32(&a);
        let dst = rt.alloc_u32(&a); // boundaries carry through
        let dims = LaunchDims::plane((self.nx.div_ceil(16), self.ny.div_ceil(16)), (16, 16));
        let res = rt.launch(
            module,
            "stencil",
            dims,
            &[
                self.nx as u64,
                self.ny as u64,
                self.nz as u64,
                src.addr,
                dst.addr,
            ],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(dst);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let out = self.host_stencil(&self.input());
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}
