//! Parboil-style `sgemm`: dense single-precision matrix multiply.
//!
//! One thread per output element, uniform loop bounds — fully
//! convergent control flow, which is why Table 1 reports zero divergent
//! branches for it on every dataset.

use crate::prelude::*;

/// Dense matmul with `n × n` matrices.
#[derive(Clone, Copy, Debug)]
pub struct Sgemm {
    /// Matrix dimension.
    pub n: u32,
    /// Dataset label ("small" / "medium").
    pub dataset: &'static str,
}

impl Sgemm {
    /// The `small` dataset.
    pub fn small() -> Sgemm {
        Sgemm {
            n: 48,
            dataset: "small",
        }
    }

    /// The `medium` dataset.
    pub fn medium() -> Sgemm {
        Sgemm {
            n: 80,
            dataset: "medium",
        }
    }

    fn inputs(&self) -> (Vec<u32>, Vec<u32>) {
        let n = (self.n * self.n) as usize;
        (
            data::random_f32_bits(n, 0x5e),
            data::random_f32_bits(n, 0x6f),
        )
    }

    fn host_gemm(&self, a: &[u32], bm: &[u32]) -> Vec<u32> {
        let n = self.n as usize;
        let mut c = vec![0u32; n * n];
        for y in 0..n {
            for x in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    let av = f32::from_bits(a[y * n + k]);
                    let bv = f32::from_bits(bm[k * n + x]);
                    acc = av.mul_add(bv, acc); // FFMA, same as the kernel
                }
                c[y * n + x] = acc.to_bits();
            }
        }
        c
    }
}

fn sgemm_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("sgemm");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let n = b.param_u32(0);
    let pa = b.param_ptr(1);
    let pb = b.param_ptr(2);
    let pc = b.param_ptr(3);
    let x = b.imad(bx, 16u32, tx);
    let y = b.imad(by, 16u32, ty);
    let inx = b.setp_u32_lt(x, n);
    let iny = b.setp_u32_lt(y, n);
    let inside = b.and_p(inx, iny);
    b.if_(inside, |b| {
        let acc = b.var_u32(0u32); // f32 bits
        let row_base = b.imul(y, VSrc::Reg(n.vreg())); // y*n
        b.for_range(0u32, n, 1, |b, k| {
            let ia = b.iadd(row_base, VSrc::Reg(k.vreg())); // y*n + k
            let ea = b.lea(pa, ia, 2);
            let av = b.ld_global_f32(ea);
            let ib = b.imad(k, VSrc::Reg(n.vreg()), x); // k*n + x
            let eb = b.lea(pb, ib, 2);
            let bv = b.ld_global_f32(eb);
            let nxt = b.ffma(av, VSrc::Reg(bv.vreg()), acc);
            b.assign(acc, nxt);
        });
        let ic = b.iadd(row_base, VSrc::Reg(x.vreg()));
        let ec = b.lea(pc, ic, 2);
        b.st_global_u32(ec, acc);
    });
    b.finish()
}

impl Workload for Sgemm {
    fn name(&self) -> String {
        format!("sgemm ({})", self.dataset)
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![sgemm_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (a, bm) = self.inputs();
        rt.clock.add_host(0.6e-3);
        let da = rt.alloc_u32(&a);
        let db = rt.alloc_u32(&bm);
        let dc = rt.alloc_zeroed_u32((self.n * self.n) as usize);
        let blocks = self.n.div_ceil(16);
        let dims = LaunchDims::plane((blocks, blocks), (16, 16));
        let res = rt.launch(
            module,
            "sgemm",
            dims,
            &[self.n as u64, da.addr, db.addr, dc.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(dc);
        rt.clock.add_host(0.2e-3);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (a, bm) = self.inputs();
        let c = self.host_gemm(&a, &bm);
        let summary = summarize(std::slice::from_ref(&c));
        WorkloadOutput {
            buffers: vec![c],
            summary,
        }
    }
}
