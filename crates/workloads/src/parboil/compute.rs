//! The compute-heavy Parboil-style workloads: `tpacf`, `lbm`, `sad`,
//! `cutcp`, `mri-q` and `mri-gridding`.

use crate::prelude::*;

// ------------------------------------------------------------- tpacf --

/// `tpacf`: two-point angular correlation — all-pairs dot products
/// binned by a divergent linear search (Table 1: ~25% dynamic branch
/// divergence).
#[derive(Clone, Copy, Debug)]
pub struct Tpacf {
    /// Points.
    pub n: usize,
    /// Histogram bins.
    pub bins: usize,
}

impl Tpacf {
    /// The `small` dataset.
    pub fn small() -> Tpacf {
        Tpacf { n: 256, bins: 16 }
    }

    fn points(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.n, 256, 0x101),
            data::random_u32(self.n, 256, 0x102),
        )
    }

    fn edges(&self) -> Vec<u32> {
        // Monotone bin edges over the dot-product range.
        (0..self.bins as u32).map(|i| i * i * 1024).collect()
    }
}

fn tpacf_kernel(bins: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("tpacf");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let xs = b.param_ptr(1);
    let ys = b.param_ptr(2);
    let edges = b.param_ptr(3);
    let hist = b.param_ptr(4);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let exi = b.lea(xs, tid, 2);
        let xi = b.ld_global_u32(exi);
        let eyi = b.lea(ys, tid, 2);
        let yi = b.ld_global_u32(eyi);
        b.for_range(0u32, n, 1, |b, j| {
            let exj = b.lea(xs, j, 2);
            let xj = b.ld_global_u32(exj);
            let eyj = b.lea(ys, j, 2);
            let yj = b.ld_global_u32(eyj);
            let dx = b.imul(xi, xj);
            let dot = b.imad(yi, yj, dx);
            // Divergent linear bin search: trip count depends on dot.
            let bin = b.var_u32(0u32);
            let last = (bins - 1) as u32;
            b.while_(
                |b| {
                    let more = b.setp_u32_lt(bin, last);
                    let bin1 = b.iadd(bin, 1u32);
                    let ee = b.lea(edges, bin1, 2);
                    let edge = b.ld_global_u32(ee);
                    let below = b.setp_u32_ge(dot, edge);
                    b.and_p(more, below)
                },
                |b| {
                    let nxt = b.iadd(bin, 1u32);
                    b.assign(bin, nxt);
                },
            );
            let eh = b.lea(hist, bin, 2);
            let one = b.iconst(1);
            b.red_global(sassi_isa::AtomOp::Add, eh, one);
        });
    });
    b.finish()
}

impl Workload for Tpacf {
    fn name(&self) -> String {
        "tpacf (small)".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![tpacf_kernel(self.bins)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (xs, ys) = self.points();
        rt.clock.add_host(0.5e-3);
        let dx = rt.alloc_u32(&xs);
        let dy = rt.alloc_u32(&ys);
        let de = rt.alloc_u32(&self.edges());
        let dh = rt.alloc_zeroed_u32(self.bins);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 128), 128);
        let res = rt.launch(
            module,
            "tpacf",
            dims,
            &[self.n as u64, dx.addr, dy.addr, de.addr, dh.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(dh);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (xs, ys) = self.points();
        let edges = self.edges();
        let mut h = vec![0u32; self.bins];
        for i in 0..self.n {
            for j in 0..self.n {
                let dot = ys[i]
                    .wrapping_mul(ys[j])
                    .wrapping_add(xs[i].wrapping_mul(xs[j]));
                let mut bin = 0usize;
                while bin < self.bins - 1 && dot >= edges[bin + 1] {
                    bin += 1;
                }
                h[bin] += 1;
            }
        }
        let summary = summarize(std::slice::from_ref(&h));
        WorkloadOutput {
            buffers: vec![h],
            summary,
        }
    }
}

// --------------------------------------------------------------- lbm --

/// `lbm`: lattice-Boltzmann-style per-cell relaxation over a D2Q5
/// neighbourhood with an obstacle branch. GPU-bound and float-heavy.
#[derive(Clone, Copy, Debug)]
pub struct Lbm {
    /// Lattice width.
    pub w: usize,
    /// Lattice height.
    pub h: usize,
    /// Time steps.
    pub steps: usize,
}

impl Lbm {
    /// The default (long) dataset.
    pub fn new() -> Lbm {
        Lbm {
            w: 64,
            h: 48,
            steps: 4,
        }
    }

    fn density(&self) -> Vec<u32> {
        data::random_f32_bits(self.w * self.h, 0x111)
    }

    fn obstacles(&self) -> Vec<u32> {
        data::random_u32(self.w * self.h, 100, 0x112)
            .into_iter()
            .map(|v| u32::from(v < 6))
            .collect()
    }

    fn host_step(&self, f: &[u32], obs: &[u32]) -> Vec<u32> {
        let (w, h) = (self.w, self.h);
        let mut out = f.to_vec();
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                if obs[i] != 0 {
                    continue;
                }
                let g = |k: usize| f32::from_bits(f[k]);
                let sum = g(i - 1) + g(i + 1);
                let sum = sum + g(i - w);
                let sum = sum + g(i + w);
                let v = 0.2f32.mul_add(sum, g(i) * 0.2);
                out[i] = v.to_bits();
            }
        }
        out
    }
}

impl Default for Lbm {
    fn default() -> Lbm {
        Lbm::new()
    }
}

fn lbm_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("lbm_step");
    let bx = b.ctaid_x();
    let by = b.ctaid_y();
    let tx = b.tid_x();
    let ty = b.tid_y();
    let w = b.param_u32(0);
    let h = b.param_u32(1);
    let src = b.param_ptr(2);
    let dst = b.param_ptr(3);
    let obs = b.param_ptr(4);
    let x = b.imad(bx, 16u32, tx);
    let y = b.imad(by, 16u32, ty);
    let x1 = b.isub(x, 1u32);
    let y1 = b.isub(y, 1u32);
    let wi = b.isub(w, 2u32);
    let hi = b.isub(h, 2u32);
    let px = b.setp_u32_lt(x1, wi);
    let py = b.setp_u32_lt(y1, hi);
    let interior = b.and_p(px, py);
    b.if_(interior, |b| {
        let i = b.imad(y, w, x);
        let eo = b.lea(obs, i, 2);
        let o = b.ld_global_u32(eo);
        let fluid = b.setp_u32_eq(o, 0u32);
        b.if_(fluid, |b| {
            let e_c = b.lea(src, i, 2);
            let c = b.ld_global_f32(e_c);
            let im = b.isub(i, 1u32);
            let e1 = b.lea(src, im, 2);
            let v1 = b.ld_global_f32(e1);
            let ip = b.iadd(i, 1u32);
            let e2 = b.lea(src, ip, 2);
            let v2 = b.ld_global_f32(e2);
            let iu = b.isub(i, w);
            let e3 = b.lea(src, iu, 2);
            let v3 = b.ld_global_f32(e3);
            let id = b.iadd(i, w);
            let e4 = b.lea(src, id, 2);
            let v4 = b.ld_global_f32(e4);
            let sum = b.fadd(v1, v2);
            let sum = b.fadd(sum, v3);
            let sum = b.fadd(sum, v4);
            let k = b.fconst(0.2);
            let ct = b.fmul(c, 0.2f32);
            let v = b.ffma(k, sum, ct);
            let ed = b.lea(dst, i, 2);
            b.st_global_u32(ed, v);
        });
    });
    b.finish()
}

impl Workload for Lbm {
    fn name(&self) -> String {
        "lbm".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![lbm_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let f0 = self.density();
        let obs = self.obstacles();
        rt.clock.add_host(0.4e-3);
        let mut bufs = [rt.alloc_u32(&f0), rt.alloc_u32(&f0)];
        let dobs = rt.alloc_u32(&obs);
        let dims = LaunchDims::plane(
            ((self.w as u32).div_ceil(16), (self.h as u32).div_ceil(16)),
            (16, 16),
        );
        for _ in 0..self.steps {
            // Carry non-updated cells through.
            let cur = rt.read_u32(bufs[0]);
            rt.write_u32(bufs[1], &cur);
            let res = rt.launch(
                module,
                "lbm_step",
                dims,
                &[
                    self.w as u64,
                    self.h as u64,
                    bufs[0].addr,
                    bufs[1].addr,
                    dobs.addr,
                ],
                handlers,
            )?;
            check_outcome(&res)?;
            bufs.swap(0, 1);
        }
        let out = rt.read_u32(bufs[0]);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let obs = self.obstacles();
        let mut f = self.density();
        for _ in 0..self.steps {
            f = self.host_step(&f, &obs);
        }
        let summary = summarize(std::slice::from_ref(&f));
        WorkloadOutput {
            buffers: vec![f],
            summary,
        }
    }
}

// --------------------------------------------------------------- sad --

/// `sad`: sum-of-absolute-differences block matching over a small
/// search window; integer-only, modest divergence at frame edges.
#[derive(Clone, Copy, Debug)]
pub struct Sad {
    /// Frame length (1-D simplification).
    pub n: usize,
    /// Block length.
    pub block: usize,
    /// Search offsets.
    pub offsets: usize,
}

impl Sad {
    /// The default dataset.
    pub fn new() -> Sad {
        Sad {
            n: 4096,
            block: 8,
            offsets: 8,
        }
    }

    fn frames(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.n, 256, 0x121),
            data::random_u32(self.n, 256, 0x122),
        )
    }
}

impl Default for Sad {
    fn default() -> Sad {
        Sad::new()
    }
}

fn sad_kernel(block: usize, offsets: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("sad");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let cur = b.param_ptr(1);
    let reference = b.param_ptr(2);
    let out = b.param_ptr(3);
    // Valid block starts: tid + block + offsets <= n.
    let margin = (block + offsets) as u32;
    let lim = b.isub(n, margin);
    let p = b.setp_u32_lt(tid, lim);
    b.if_(p, |b| {
        let best = b.var_u32(u32::MAX);
        for off in 0..offsets {
            let acc = b.var_u32(0u32);
            for k in 0..block {
                let ic = b.iadd(tid, k as u32);
                let ec = b.lea(cur, ic, 2);
                let cv = b.ld_global_u32(ec);
                let ir = b.iadd(tid, (off + k) as u32);
                let er = b.lea(reference, ir, 2);
                let rv = b.ld_global_u32(er);
                let mx = b.umax(cv, rv);
                let mn = b.umin(cv, rv);
                let d = b.isub(mx, mn);
                let nxt = b.iadd(acc, d);
                b.assign(acc, nxt);
            }
            let m = b.umin(best, acc);
            b.assign(best, m);
        }
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, best);
    });
    b.finish()
}

impl Workload for Sad {
    fn name(&self) -> String {
        "sad".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![sad_kernel(self.block, self.offsets)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (cur, reference) = self.frames();
        rt.clock.add_host(0.6e-3); // frame decode
        let dc = rt.alloc_u32(&cur);
        let dr = rt.alloc_u32(&reference);
        let douts = rt.alloc_zeroed_u32(self.n);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 128), 128);
        let res = rt.launch(
            module,
            "sad",
            dims,
            &[self.n as u64, dc.addr, dr.addr, douts.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(douts);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (cur, reference) = self.frames();
        let margin = self.block + self.offsets;
        let mut out = vec![0u32; self.n];
        for t in 0..self.n.saturating_sub(margin) {
            let mut best = u32::MAX;
            for off in 0..self.offsets {
                let mut acc = 0u32;
                for k in 0..self.block {
                    acc += cur[t + k].abs_diff(reference[t + off + k]);
                }
                best = best.min(acc);
            }
            out[t] = best;
        }
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// ------------------------------------------------------------- cutcp --

/// `cutcp`: cutoff Coulomb potential — grid points accumulate
/// contributions of atoms inside a cutoff radius (divergent distance
/// test, SFU reciprocal).
#[derive(Clone, Copy, Debug)]
pub struct Cutcp {
    /// Grid points.
    pub points: usize,
    /// Atoms.
    pub atoms: usize,
}

impl Cutcp {
    /// The default dataset.
    pub fn new() -> Cutcp {
        Cutcp {
            points: 2048,
            atoms: 64,
        }
    }

    fn coords(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.atoms, 256, 0x131), // ax
            data::random_u32(self.atoms, 256, 0x132), // ay
            data::random_u32(self.atoms, 16, 0x133),  // charge
        )
    }
}

impl Default for Cutcp {
    fn default() -> Cutcp {
        Cutcp::new()
    }
}

const CUTOFF2: u32 = 4096;

fn cutcp_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("cutcp");
    let tid = b.global_tid_x();
    let npts = b.param_u32(0);
    let natoms = b.param_u32(1);
    let ax = b.param_ptr(2);
    let ay = b.param_ptr(3);
    let q = b.param_ptr(4);
    let out = b.param_ptr(5);
    let p = b.setp_u32_lt(tid, npts);
    b.if_(p, |b| {
        // Grid point coordinates derived from tid.
        let gx = b.and(tid, 0xff_u32);
        let gy = b.shr(tid, 8u32);
        let acc = b.var_u32(0u32); // f32 bits
        b.for_range(0u32, natoms, 1, |b, a| {
            let eax = b.lea(ax, a, 2);
            let axv = b.ld_global_u32(eax);
            let eay = b.lea(ay, a, 2);
            let ayv = b.ld_global_u32(eay);
            let dx = b.isub(gx, axv);
            let dy = b.isub(gy, ayv);
            let dx2 = b.imul(dx, dx);
            let d2 = b.imad(dy, dy, dx2);
            let inside = b.setp_u32_lt(d2, CUTOFF2);
            b.if_(inside, |b| {
                let eq = b.lea(q, a, 2);
                let qv = b.ld_global_u32(eq);
                let qf = b.i2f(qv);
                let d2p1 = b.iadd(d2, 1u32);
                let df = b.i2f(d2p1);
                let inv = b.mufu(sassi_isa::MufuFunc::Rcp, df);
                let term = b.fmul(qf, inv);
                let nxt = b.fadd(acc, term);
                b.assign(acc, nxt);
            });
        });
        let eo = b.lea(out, tid, 2);
        b.st_global_u32(eo, acc);
    });
    b.finish()
}

impl Workload for Cutcp {
    fn name(&self) -> String {
        "cutcp".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![cutcp_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (ax, ay, q) = self.coords();
        rt.clock.add_host(0.5e-3);
        let dax = rt.alloc_u32(&ax);
        let day = rt.alloc_u32(&ay);
        let dq = rt.alloc_u32(&q);
        let douts = rt.alloc_zeroed_u32(self.points);
        let dims = LaunchDims::linear(grid_for(self.points as u32, 128), 128);
        let res = rt.launch(
            module,
            "cutcp",
            dims,
            &[
                self.points as u64,
                self.atoms as u64,
                dax.addr,
                day.addr,
                dq.addr,
                douts.addr,
            ],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(douts);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (ax, ay, q) = self.coords();
        let out: Vec<u32> = (0..self.points)
            .map(|t| {
                let gx = (t as u32) & 0xff;
                let gy = (t as u32) >> 8;
                let mut acc = 0.0f32;
                for a in 0..self.atoms {
                    let dx = gx.wrapping_sub(ax[a]);
                    let dy = gy.wrapping_sub(ay[a]);
                    let d2 = dy.wrapping_mul(dy).wrapping_add(dx.wrapping_mul(dx));
                    if d2 < CUTOFF2 {
                        let term = q[a] as i32 as f32 * (1.0 / (d2.wrapping_add(1) as i32 as f32));
                        acc += term;
                    }
                }
                acc.to_bits()
            })
            .collect();
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}

// -------------------------------------------------------------- mri-q --

/// `mri-q`: Q-matrix computation — per-sample trigonometric
/// accumulation over the k-space trajectory. SFU-heavy and convergent.
#[derive(Clone, Copy, Debug)]
pub struct MriQ {
    /// Samples.
    pub n: usize,
    /// K-space points.
    pub k: usize,
}

impl MriQ {
    /// The default dataset.
    pub fn new() -> MriQ {
        MriQ { n: 1024, k: 64 }
    }

    fn inputs(&self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        (
            data::random_f32_bits(self.n, 0x141),
            data::random_f32_bits(self.k, 0x142),
            data::random_f32_bits(self.k, 0x143),
        )
    }
}

impl Default for MriQ {
    fn default() -> MriQ {
        MriQ::new()
    }
}

fn mriq_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("mriq");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let k = b.param_u32(1);
    let xs = b.param_ptr(2);
    let kx = b.param_ptr(3);
    let rho = b.param_ptr(4);
    let out_r = b.param_ptr(5);
    let out_i = b.param_ptr(6);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ex = b.lea(xs, tid, 2);
        let x = b.ld_global_f32(ex);
        let qr = b.var_u32(0u32);
        let qi = b.var_u32(0u32);
        b.for_range(0u32, k, 1, |b, j| {
            let ek = b.lea(kx, j, 2);
            let kv = b.ld_global_f32(ek);
            let er = b.lea(rho, j, 2);
            let rv = b.ld_global_f32(er);
            let phi = b.fmul(kv, x);
            let c = b.mufu(sassi_isa::MufuFunc::Cos, phi);
            let s = b.mufu(sassi_isa::MufuFunc::Sin, phi);
            let nr = b.ffma(rv, c, qr);
            let ni = b.ffma(rv, s, qi);
            b.assign(qr, nr);
            b.assign(qi, ni);
        });
        let er = b.lea(out_r, tid, 2);
        b.st_global_u32(er, qr);
        let ei = b.lea(out_i, tid, 2);
        b.st_global_u32(ei, qi);
    });
    b.finish()
}

impl Workload for MriQ {
    fn name(&self) -> String {
        "mri-q".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![mriq_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (xs, kx, rho) = self.inputs();
        rt.clock.add_host(0.15e-3);
        let dx = rt.alloc_u32(&xs);
        let dk = rt.alloc_u32(&kx);
        let dr = rt.alloc_u32(&rho);
        let dor = rt.alloc_zeroed_u32(self.n);
        let doi = rt.alloc_zeroed_u32(self.n);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 128), 128);
        let res = rt.launch(
            module,
            "mriq",
            dims,
            &[
                self.n as u64,
                self.k as u64,
                dx.addr,
                dk.addr,
                dr.addr,
                dor.addr,
                doi.addr,
            ],
            handlers,
        )?;
        check_outcome(&res)?;
        let outr = rt.read_u32(dor);
        let outi = rt.read_u32(doi);
        let summary = summarize(&[outr.clone(), outi.clone()]);
        Ok(WorkloadOutput {
            buffers: vec![outr, outi],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (xs, kx, rho) = self.inputs();
        let mut outr = vec![0u32; self.n];
        let mut outi = vec![0u32; self.n];
        for t in 0..self.n {
            let x = f32::from_bits(xs[t]);
            let (mut qr, mut qi) = (0.0f32, 0.0f32);
            for j in 0..self.k {
                let phi = f32::from_bits(kx[j]) * x;
                let rv = f32::from_bits(rho[j]);
                qr = rv.mul_add(phi.cos(), qr);
                qi = rv.mul_add(phi.sin(), qi);
            }
            outr[t] = qr.to_bits();
            outi[t] = qi.to_bits();
        }
        let summary = summarize(&[outr.clone(), outi.clone()]);
        WorkloadOutput {
            buffers: vec![outr, outi],
            summary,
        }
    }
}

// ------------------------------------------------------ mri-gridding --

/// `mri-gridding`: scattering irregular samples onto a regular grid
/// with atomics — data-dependent window sizes make both control flow
/// and addresses diverge (a Figure 7 subject).
#[derive(Clone, Copy, Debug)]
pub struct MriGridding {
    /// Samples.
    pub n: usize,
    /// Grid cells.
    pub grid: usize,
}

impl MriGridding {
    /// The default dataset.
    pub fn new() -> MriGridding {
        MriGridding { n: 2048, grid: 512 }
    }

    fn samples(&self) -> (Vec<u32>, Vec<u32>) {
        (
            data::random_u32(self.n, self.grid as u32, 0x151), // position
            data::random_u32(self.n, 15, 0x152),               // weight (also window)
        )
    }
}

impl Default for MriGridding {
    fn default() -> MriGridding {
        MriGridding::new()
    }
}

fn gridding_kernel(grid: usize) -> KFunction {
    let mut b = KernelBuilder::kernel("gridding");
    let tid = b.global_tid_x();
    let n = b.param_u32(0);
    let pos = b.param_ptr(1);
    let wgt = b.param_ptr(2);
    let out = b.param_ptr(3);
    let p = b.setp_u32_lt(tid, n);
    b.if_(p, |b| {
        let ep = b.lea(pos, tid, 2);
        let c = b.ld_global_u32(ep);
        let ew = b.lea(wgt, tid, 2);
        let w = b.ld_global_u32(ew);
        // Window radius = w & 3 (data dependent).
        let r = b.and(w, 3u32);
        let lo = b.isub(c, r);
        let hi = b.iadd(c, r);
        let hi1 = b.iadd(hi, 1u32);
        let g = b.var_u32(0u32);
        b.assign(g, lo);
        let gmax = (grid - 1) as u32;
        b.while_(
            |b| b.setp_u32_lt(g, hi1),
            |b| {
                // Clamp into the grid (positions near 0 underflow-wrap).
                let clamped = b.umin(g, gmax);
                let eo = b.lea(out, clamped, 2);
                b.red_global(sassi_isa::AtomOp::Add, eo, w);
                let nxt = b.iadd(g, 1u32);
                b.assign(g, nxt);
            },
        );
    });
    b.finish()
}

impl Workload for MriGridding {
    fn name(&self) -> String {
        "mri-gridding".to_string()
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![gridding_kernel(self.grid)]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let (pos, wgt) = self.samples();
        rt.clock.add_host(0.9e-3);
        let dp = rt.alloc_u32(&pos);
        let dw = rt.alloc_u32(&wgt);
        let douts = rt.alloc_zeroed_u32(self.grid);
        let dims = LaunchDims::linear(grid_for(self.n as u32, 128), 128);
        let res = rt.launch(
            module,
            "gridding",
            dims,
            &[self.n as u64, dp.addr, dw.addr, douts.addr],
            handlers,
        )?;
        check_outcome(&res)?;
        let out = rt.read_u32(douts);
        let summary = summarize(std::slice::from_ref(&out));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let (pos, wgt) = self.samples();
        let mut out = vec![0u32; self.grid];
        for t in 0..self.n {
            let r = wgt[t] & 3;
            let lo = pos[t].wrapping_sub(r);
            let hi = pos[t].wrapping_add(r);
            let mut g = lo;
            while g < hi.wrapping_add(1) {
                let clamped = g.min(self.grid as u32 - 1) as usize;
                out[clamped] = out[clamped].wrapping_add(wgt[t]);
                g = g.wrapping_add(1);
            }
        }
        let summary = summarize(std::slice::from_ref(&out));
        WorkloadOutput {
            buffers: vec![out],
            summary,
        }
    }
}
