//! Parboil-style `bfs`: frontier-based breadth-first search.
//!
//! One kernel launch per BFS level; each thread expands one frontier
//! node, claiming unvisited neighbours with `atomicCAS` and appending
//! them to the next frontier with `atomicAdd`. Control flow is
//! data-dependent twice over (frontier membership, adjacency length),
//! which is why the paper's Table 1 and Figure 5 show its branch
//! behaviour varying so strongly across datasets.

use crate::prelude::*;

/// Which synthetic input to run (named after the paper's datasets).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfsDataset {
    /// Uniform random graph (the `1M` input, scaled).
    OneM,
    /// Road-network-like lattice (New York).
    Ny,
    /// Road-network-like lattice (San Francisco), larger.
    Sf,
    /// Road-network-like lattice (Utah), sparser.
    Ut,
}

impl BfsDataset {
    /// All four datasets.
    pub fn all() -> [BfsDataset; 4] {
        [
            BfsDataset::OneM,
            BfsDataset::Ny,
            BfsDataset::Sf,
            BfsDataset::Ut,
        ]
    }

    fn label(self) -> &'static str {
        match self {
            BfsDataset::OneM => "1M",
            BfsDataset::Ny => "NY",
            BfsDataset::Sf => "SF",
            BfsDataset::Ut => "UT",
        }
    }

    fn graph(self) -> data::CsrGraph {
        match self {
            BfsDataset::OneM => data::uniform_graph(4096, 4, 0x1a),
            BfsDataset::Ny => data::road_graph(56, 56, 0x2b),
            BfsDataset::Sf => data::road_graph(72, 64, 0x3c),
            BfsDataset::Ut => data::road_graph(48, 48, 0x4d),
        }
    }
}

/// The Parboil-style BFS workload.
#[derive(Clone, Copy, Debug)]
pub struct ParboilBfs {
    /// Input dataset.
    pub dataset: BfsDataset,
}

impl ParboilBfs {
    /// BFS on the given dataset.
    pub fn new(dataset: BfsDataset) -> ParboilBfs {
        ParboilBfs { dataset }
    }
}

fn bfs_step_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("bfs_step");
    let tid = b.global_tid_x();
    let fsize = b.param_u32(0);
    let frontier = b.param_ptr(1);
    let row_ptr = b.param_ptr(2);
    let cols = b.param_ptr(3);
    let dist = b.param_ptr(4);
    let nextf = b.param_ptr(5);
    let nsize = b.param_ptr(6);
    let level = b.param_u32(7);
    let in_frontier = b.setp_u32_lt(tid, fsize);
    b.if_(in_frontier, |b| {
        let eu = b.lea(frontier, tid, 2);
        let u = b.ld_global_u32(eu);
        let erp = b.lea(row_ptr, u, 2);
        let start = b.ld_global_u32(erp);
        let end = b.ld_global_u32_off(erp, 4);
        b.for_range(start, end, 1, |b, k| {
            let ec = b.lea(cols, k, 2);
            let v = b.ld_global_u32(ec);
            let ed = b.lea(dist, v, 2);
            let unvisited = b.iconst(u32::MAX);
            let old = b.atom_cas_global(ed, unvisited, level);
            let claimed = b.setp_u32_eq(old, u32::MAX);
            b.if_(claimed, |b| {
                let one = b.iconst(1);
                let idx = b.atom_add_global(nsize, one);
                let en = b.lea(nextf, idx, 2);
                b.st_global_u32(en, v);
            });
        });
    });
    b.finish()
}

impl Workload for ParboilBfs {
    fn name(&self) -> String {
        format!("bfs ({})", self.dataset.label())
    }

    fn kernels(&self) -> Vec<KFunction> {
        vec![bfs_step_kernel()]
    }

    fn execute(
        &self,
        rt: &mut Runtime,
        module: &Module,
        handlers: &mut dyn HandlerRuntime,
    ) -> Result<WorkloadOutput, RunFailure> {
        let g = self.dataset.graph();
        let n = g.nodes();
        rt.clock.add_host(0.4e-3); // graph parsing / setup

        let row_ptr = rt.alloc_u32(&g.row_ptr);
        let cols = rt.alloc_u32(&g.cols);
        let mut dist_init = vec![u32::MAX; n];
        dist_init[0] = 0;
        let dist = rt.alloc_u32(&dist_init);
        let cap = g.edges().max(1);
        let f_a = rt.alloc_u32(&{
            let mut f = vec![0u32; cap];
            f[0] = 0;
            f
        });
        let f_b = rt.alloc_zeroed_u32(cap);
        let nsize = rt.alloc_zeroed_u32(1);

        let mut frontiers = [f_a, f_b];
        let mut fsize = 1u32;
        let mut level = 1u32;
        let mut rounds = 0u32;
        while fsize > 0 && level < 10_000 {
            rounds += 1;
            rt.write_u32(nsize, &[0]);
            let dims = LaunchDims::linear(grid_for(fsize, 128), 128);
            let res = rt.launch(
                module,
                "bfs_step",
                dims,
                &[
                    fsize as u64,
                    frontiers[0].addr,
                    row_ptr.addr,
                    cols.addr,
                    dist.addr,
                    frontiers[1].addr,
                    nsize.addr,
                    level as u64,
                ],
                handlers,
            )?;
            check_outcome(&res)?;
            fsize = rt.read_u32(nsize)[0];
            frontiers.swap(0, 1);
            level += 1;
        }

        let out = rt.read_u32(dist);
        rt.clock.add_host(0.1e-3); // result write-out
                                   // The host prints how many BFS rounds ran — stdout content that
                                   // is *not* derived from the output buffer (an injection can
                                   // perturb it while distances stay correct).
        let summary = format!("rounds={rounds}\n{}", summarize(std::slice::from_ref(&out)));
        Ok(WorkloadOutput {
            buffers: vec![out],
            summary,
        })
    }

    fn golden(&self) -> WorkloadOutput {
        let d = self.dataset.graph().bfs_distances();
        let rounds = d
            .iter()
            .filter(|&&x| x != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0)
            + 1;
        let summary = format!("rounds={rounds}\n{}", summarize(std::slice::from_ref(&d)));
        WorkloadOutput {
            buffers: vec![d],
            summary,
        }
    }
}
