//! Instructions: a guard predicate plus an operation, and the operand
//! building blocks (`Src`, `MemAddr`, `Label`).

use crate::op::Op;
use crate::reg::{CBankAddr, Gpr, PredReg};
use crate::space::AddrSpace;
use serde::{Deserialize, Serialize};

/// A source operand: register, immediate, or constant-bank slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Src {
    /// A general-purpose register.
    Reg(Gpr),
    /// A 32-bit immediate.
    Imm(u32),
    /// A constant-bank slot `c[bank][offset]`.
    Const(CBankAddr),
}

impl Src {
    /// The register named by the operand, if any.
    pub fn reg(self) -> Option<Gpr> {
        match self {
            Src::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Gpr> for Src {
    fn from(r: Gpr) -> Src {
        Src::Reg(r)
    }
}

impl From<u32> for Src {
    fn from(v: u32) -> Src {
        Src::Imm(v)
    }
}

impl From<i32> for Src {
    fn from(v: i32) -> Src {
        Src::Imm(v as u32)
    }
}

impl From<CBankAddr> for Src {
    fn from(c: CBankAddr) -> Src {
        Src::Const(c)
    }
}

/// A branch / call target.
///
/// Before linking, calls may name a function or an instrumentation
/// handler symbolically; the linker rewrites `Func` targets to absolute
/// `Pc` values in the module's flat code space. `Handler` targets
/// survive linking: they trap into native instrumentation handlers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Label {
    /// An absolute instruction index in the module's code space (after
    /// linking) or a function-relative index (before linking).
    Pc(u32),
    /// A linked device function, by function id.
    Func(u32),
    /// A native instrumentation handler trap, by handler id.
    Handler(u32),
}

/// A memory operand: `[base + offset]` within an address space.
///
/// For `Global`/`Generic` accesses the base is a 64-bit register *pair*
/// (`base` holds the low word, `base.pair_hi()` the high word). For
/// `Local`/`Shared` the base is a single 32-bit register. A base of
/// `RZ` yields an absolute address equal to `offset`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct MemAddr {
    /// Address space of the access.
    pub space: AddrSpace,
    /// Base register (low word of a pair for 64-bit spaces).
    pub base: Gpr,
    /// Byte offset added to the base.
    pub offset: i32,
}

impl MemAddr {
    /// Global-space operand `[Rb(+1) + offset]`.
    pub fn global(base: Gpr, offset: i32) -> MemAddr {
        MemAddr {
            space: AddrSpace::Global,
            base,
            offset,
        }
    }

    /// Local-space operand `[Rb + offset]` (per-thread stack slab).
    pub fn local(base: Gpr, offset: i32) -> MemAddr {
        MemAddr {
            space: AddrSpace::Local,
            base,
            offset,
        }
    }

    /// Shared-space operand `[Rb + offset]`.
    pub fn shared(base: Gpr, offset: i32) -> MemAddr {
        MemAddr {
            space: AddrSpace::Shared,
            base,
            offset,
        }
    }

    /// Generic operand `[Rb(+1) + offset]`, resolved through the window
    /// tags at execution time.
    pub fn generic(base: Gpr, offset: i32) -> MemAddr {
        MemAddr {
            space: AddrSpace::Generic,
            base,
            offset,
        }
    }

    /// Whether the base is a 64-bit register pair.
    pub fn is_wide_base(&self) -> bool {
        matches!(self.space, AddrSpace::Global | AddrSpace::Generic)
    }
}

/// The guard predicate of an instruction (`@P0`, `@!P3`, or always).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: PredReg,
    /// Whether the predicate is complemented (`@!P`).
    pub neg: bool,
}

impl Guard {
    /// The always-true guard (`@PT`).
    pub const ALWAYS: Guard = Guard {
        pred: PredReg::PT,
        neg: false,
    };

    /// Guard that fires when `p` is true.
    pub fn on(p: PredReg) -> Guard {
        Guard {
            pred: p,
            neg: false,
        }
    }

    /// Guard that fires when `p` is false.
    pub fn not(p: PredReg) -> Guard {
        Guard { pred: p, neg: true }
    }

    /// Whether the guard is statically always true.
    pub fn is_always(&self) -> bool {
        self.pred.is_pt() && !self.neg
    }

    /// Whether the guard is statically always false (`@!PT`).
    pub fn is_never(&self) -> bool {
        self.pred.is_pt() && self.neg
    }
}

impl Default for Guard {
    fn default() -> Guard {
        Guard::ALWAYS
    }
}

/// A machine instruction: an operation under a guard predicate.
#[derive(PartialEq, Debug, Serialize, Deserialize)]
pub struct Instr {
    /// The guard predicate; lanes where it is false skip the operation.
    pub guard: Guard,
    /// The operation and its operands.
    pub op: Op,
}

// Hand-written so debug builds can count clones: the simulator's
// pre-decoded hot loop must never clone an `Instr` per step, and the
// differential tests assert that via [`clone_count`].
impl Clone for Instr {
    fn clone(&self) -> Instr {
        #[cfg(debug_assertions)]
        clone_count::bump();
        Instr {
            guard: self.guard,
            op: self.op.clone(),
        }
    }
}

/// Debug-build accounting of [`Instr`] clones, used by tests to prove
/// the simulator hot loop is clone-free (compile passes like linking
/// legitimately clone, so callers snapshot around the region of
/// interest).
#[cfg(debug_assertions)]
pub mod clone_count {
    use std::cell::Cell;

    thread_local! {
        static COUNT: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn bump() {
        COUNT.with(|c| c.set(c.get() + 1));
    }

    /// Total `Instr` clones performed by this thread so far.
    pub fn current() -> u64 {
        COUNT.with(Cell::get)
    }
}

impl Instr {
    /// Unguarded instruction.
    pub fn new(op: Op) -> Instr {
        Instr {
            guard: Guard::ALWAYS,
            op,
        }
    }

    /// Instruction guarded by `guard`.
    pub fn guarded(guard: Guard, op: Op) -> Instr {
        Instr { guard, op }
    }

    /// Whether the instruction carries a non-trivial guard, which is
    /// what makes a branch *conditional* for SASSI's
    /// `IsCondControlXfer` classification.
    pub fn is_guarded(&self) -> bool {
        !self.guard.is_always()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn guard_constructors() {
        let p = PredReg::new(2);
        assert!(
            Guard::on(p)
                == Guard {
                    pred: p,
                    neg: false
                }
        );
        assert!(Guard::not(p).neg);
        assert!(Guard::ALWAYS.is_always());
        assert!(Guard {
            pred: PredReg::PT,
            neg: true
        }
        .is_never());
    }

    #[test]
    fn src_conversions() {
        assert_eq!(Src::from(Gpr::new(3)), Src::Reg(Gpr::new(3)));
        assert_eq!(Src::from(7u32), Src::Imm(7));
        assert_eq!(Src::from(-1i32), Src::Imm(u32::MAX));
        assert_eq!(Src::Imm(4).reg(), None);
        assert_eq!(Src::Reg(Gpr::RZ).reg(), Some(Gpr::RZ));
    }

    #[test]
    fn memaddr_wide_base() {
        assert!(MemAddr::global(Gpr::new(4), 0).is_wide_base());
        assert!(MemAddr::generic(Gpr::new(4), 0).is_wide_base());
        assert!(!MemAddr::local(Gpr::SP, 8).is_wide_base());
        assert!(!MemAddr::shared(Gpr::new(2), 0).is_wide_base());
    }

    #[test]
    fn instr_guard_query() {
        let i = Instr::new(Op::Nop);
        assert!(!i.is_guarded());
        let g = Instr::guarded(Guard::not(PredReg::new(0)), Op::Nop);
        assert!(g.is_guarded());
    }
}
