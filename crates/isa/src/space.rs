//! The device virtual address map shared by the compiler, the
//! instrumentor and the simulator.
//!
//! Generic 64-bit addresses are partitioned into windows, mirroring how
//! NVIDIA GPUs resolve generic pointers in the load/store unit:
//!
//! | range | space |
//! |---|---|
//! | `0x0000_0000 .. 0x0001_0000` | null guard page (always faults) |
//! | `GENERIC_LOCAL_TAG | off` | per-thread local (stack) memory |
//! | `GENERIC_SHARED_TAG | off` | per-block shared memory |
//! | `GLOBAL_HEAP_BASE ..` | global memory heap |
//!
//! The local window tag is published to kernels in `c[0x0][0x24]` so
//! that code can form a generic pointer to a stack slot with a single
//! `LOP.OR` — the exact idiom the paper's Figure 2 trampoline uses to
//! pass stack-allocated parameter objects to instrumentation handlers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory spaces an access can name statically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AddrSpace {
    /// Device-wide global memory.
    Global,
    /// Per-thread local memory (stack, spill slots).
    Local,
    /// Per-block shared scratchpad.
    Shared,
    /// Generic: resolved against the window tags at execution time.
    Generic,
}

impl AddrSpace {
    /// Short SASS-style suffix (`LDG`, `LDL`, `LDS`, `LD.E`).
    pub fn suffix(self) -> &'static str {
        match self {
            AddrSpace::Global => "G",
            AddrSpace::Local => "L",
            AddrSpace::Shared => "S",
            AddrSpace::Generic => ".E",
        }
    }
}

impl fmt::Display for AddrSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddrSpace::Global => "global",
            AddrSpace::Local => "local",
            AddrSpace::Shared => "shared",
            AddrSpace::Generic => "generic",
        };
        f.write_str(s)
    }
}

/// Addresses below this value fault: the null guard page.
pub const NULL_GUARD_TOP: u64 = 0x1_0000;

/// Window tag marking a generic address as *local*. The low 24 bits are
/// the byte offset within the thread's local slab.
pub const GENERIC_LOCAL_TAG: u64 = 0x0100_0000;

/// Window tag marking a generic address as *shared*. The low 24 bits are
/// the byte offset within the block's shared segment.
pub const GENERIC_SHARED_TAG: u64 = 0x0200_0000;

/// First byte of the global heap in the generic address space.
pub const GLOBAL_HEAP_BASE: u64 = 0x1000_0000;

/// Classifies a generic address into the space it resolves to.
///
/// Returns `None` for addresses in the null guard page or in the gap
/// between windows — the simulator turns those into memory-violation
/// faults.
pub fn resolve_generic(addr: u64) -> Option<(AddrSpace, u64)> {
    if addr < NULL_GUARD_TOP {
        return None;
    }
    if addr & !0xff_ffff == GENERIC_LOCAL_TAG {
        return Some((AddrSpace::Local, addr & 0xff_ffff));
    }
    if addr & !0xff_ffff == GENERIC_SHARED_TAG {
        return Some((AddrSpace::Shared, addr & 0xff_ffff));
    }
    if addr >= GLOBAL_HEAP_BASE {
        return Some((AddrSpace::Global, addr));
    }
    None
}

/// Reports whether a generic address points into global memory, the
/// analogue of CUDA's `__isGlobal` used by the paper's Figure 6 handler
/// to filter non-global requests out of the divergence profile.
pub fn is_global(addr: u64) -> bool {
    matches!(resolve_generic(addr), Some((AddrSpace::Global, _)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_page_faults() {
        assert_eq!(resolve_generic(0), None);
        assert_eq!(resolve_generic(0xffff), None);
    }

    #[test]
    fn local_window_resolves() {
        let a = GENERIC_LOCAL_TAG | 0x80;
        assert_eq!(resolve_generic(a), Some((AddrSpace::Local, 0x80)));
        assert!(!is_global(a));
    }

    #[test]
    fn shared_window_resolves() {
        let a = GENERIC_SHARED_TAG | 0x1234;
        assert_eq!(resolve_generic(a), Some((AddrSpace::Shared, 0x1234)));
    }

    #[test]
    fn global_heap_resolves() {
        let a = GLOBAL_HEAP_BASE + 64;
        assert_eq!(resolve_generic(a), Some((AddrSpace::Global, a)));
        assert!(is_global(a));
    }

    #[test]
    fn window_gap_faults() {
        assert_eq!(resolve_generic(0x0300_0000), None);
        assert_eq!(resolve_generic(GLOBAL_HEAP_BASE - 1), None);
    }
}
