//! Register def/use extraction — the raw material for liveness analysis
//! in the backend compiler and for SASSI's minimal spill decisions.

use crate::instr::{Instr, MemAddr, Src};
use crate::op::{MemWidth, Op};
use crate::reg::{Gpr, PredReg};
use serde::{Deserialize, Serialize};

/// A set of architectural registers: GPRs, predicates and the CC flag.
///
/// Backed by a 256-bit GPR bitmap (RZ membership is ignored: it is
/// never live), a 7-bit predicate bitmap (PT likewise ignored) and a CC
/// bit.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug, Serialize, Deserialize)]
pub struct RegSet {
    gprs: [u64; 4],
    preds: u8,
    cc: bool,
}

impl RegSet {
    /// The empty set.
    pub fn new() -> RegSet {
        RegSet::default()
    }

    /// Inserts a GPR (no-op for `RZ`).
    pub fn insert_gpr(&mut self, r: Gpr) {
        if !r.is_rz() {
            let i = r.index() as usize;
            self.gprs[i / 64] |= 1 << (i % 64);
        }
    }

    /// Inserts `count` consecutive GPRs starting at `r`.
    pub fn insert_gpr_run(&mut self, r: Gpr, count: u8) {
        if r.is_rz() {
            return;
        }
        for k in 0..count {
            self.insert_gpr(Gpr::new(r.index() + k));
        }
    }

    /// Inserts a predicate register (no-op for `PT`).
    pub fn insert_pred(&mut self, p: PredReg) {
        if !p.is_pt() {
            self.preds |= 1 << p.index();
        }
    }

    /// Marks the CC flag as a member.
    pub fn insert_cc(&mut self) {
        self.cc = true;
    }

    /// Membership test for a GPR (`RZ` is never a member).
    pub fn contains_gpr(&self, r: Gpr) -> bool {
        if r.is_rz() {
            return false;
        }
        let i = r.index() as usize;
        self.gprs[i / 64] & (1 << (i % 64)) != 0
    }

    /// Membership test for a predicate (`PT` is never a member).
    pub fn contains_pred(&self, p: PredReg) -> bool {
        !p.is_pt() && self.preds & (1 << p.index()) != 0
    }

    /// Whether the CC flag is a member.
    pub fn contains_cc(&self) -> bool {
        self.cc
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.gprs == [0; 4] && self.preds == 0 && !self.cc
    }

    /// Number of GPRs in the set.
    pub fn gpr_count(&self) -> u32 {
        self.gprs.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of predicates in the set.
    pub fn pred_count(&self) -> u32 {
        self.preds.count_ones()
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &RegSet) {
        for i in 0..4 {
            self.gprs[i] |= other.gprs[i];
        }
        self.preds |= other.preds;
        self.cc |= other.cc;
    }

    /// Set difference, in place (`self -= other`).
    pub fn subtract(&mut self, other: &RegSet) {
        for i in 0..4 {
            self.gprs[i] &= !other.gprs[i];
        }
        self.preds &= !other.preds;
        self.cc &= !other.cc;
    }

    /// Set intersection, returning a new set.
    pub fn intersection(&self, other: &RegSet) -> RegSet {
        let mut out = RegSet::new();
        for i in 0..4 {
            out.gprs[i] = self.gprs[i] & other.gprs[i];
        }
        out.preds = self.preds & other.preds;
        out.cc = self.cc && other.cc;
        out
    }

    /// Iterates the GPRs in ascending register order.
    pub fn iter_gprs(&self) -> impl Iterator<Item = Gpr> + '_ {
        (0u16..255).filter_map(move |i| {
            let r = Gpr::new(i as u8);
            self.contains_gpr(r).then_some(r)
        })
    }

    /// Iterates the predicates in ascending order.
    pub fn iter_preds(&self) -> impl Iterator<Item = PredReg> + '_ {
        (0u8..7).filter_map(move |i| {
            let p = PredReg::new(i);
            self.contains_pred(p).then_some(p)
        })
    }
}

impl FromIterator<Gpr> for RegSet {
    fn from_iter<T: IntoIterator<Item = Gpr>>(iter: T) -> RegSet {
        let mut s = RegSet::new();
        for r in iter {
            s.insert_gpr(r);
        }
        s
    }
}

impl Extend<Gpr> for RegSet {
    fn extend<T: IntoIterator<Item = Gpr>>(&mut self, iter: T) {
        for r in iter {
            self.insert_gpr(r);
        }
    }
}

/// The registers an instruction defines and uses.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct RegDefsUses {
    /// Registers written by the instruction.
    pub defs: RegSet,
    /// Registers read by the instruction (including the guard predicate
    /// and memory-address bases).
    pub uses: RegSet,
}

fn use_src(set: &mut RegSet, s: &Src) {
    if let Src::Reg(r) = s {
        set.insert_gpr(*r);
    }
}

fn use_addr(set: &mut RegSet, a: &MemAddr) {
    set.insert_gpr(a.base);
    if a.is_wide_base() && !a.base.is_rz() {
        set.insert_gpr(a.base.pair_hi());
    }
}

fn def_wide(set: &mut RegSet, d: Gpr, width: MemWidth) {
    set.insert_gpr_run(d, width.regs());
}

impl Instr {
    /// Computes the registers this instruction defines and uses.
    ///
    /// The guard predicate counts as a use. Wide memory operations
    /// def/use full register runs; wide address bases use the pair.
    pub fn defs_uses(&self) -> RegDefsUses {
        let mut d = RegSet::new();
        let mut u = RegSet::new();
        if !self.guard.pred.is_pt() {
            u.insert_pred(self.guard.pred);
        }
        match &self.op {
            Op::Mov { d: dst, a } => {
                d.insert_gpr(*dst);
                use_src(&mut u, a);
            }
            Op::Mov32I { d: dst, .. } => d.insert_gpr(*dst),
            Op::S2R { d: dst, .. } => d.insert_gpr(*dst),
            Op::IAdd {
                d: dst,
                a,
                b,
                x,
                cc,
            } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                if *x {
                    u.insert_cc();
                }
                if *cc {
                    d.insert_cc();
                }
            }
            Op::ISub { d: dst, a, b } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::IMul { d: dst, a, b, .. }
            | Op::Shl { d: dst, a, b }
            | Op::Shr { d: dst, a, b, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::IMad { d: dst, a, b, c } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                u.insert_gpr(*c);
            }
            Op::IScAdd { d: dst, a, b, .. } | Op::IMnMx { d: dst, a, b, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::Lop { d: dst, a, b, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::Popc { d: dst, a } | Op::Flo { d: dst, a } | Op::Brev { d: dst, a } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
            }
            Op::Sel {
                d: dst, a, b, p, ..
            } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                u.insert_pred(*p);
            }
            Op::FAdd { d: dst, a, b, .. }
            | Op::FMul { d: dst, a, b }
            | Op::FMnMx { d: dst, a, b, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::FFma {
                d: dst, a, b, c, ..
            } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                u.insert_gpr(*c);
            }
            Op::Mufu { d: dst, a, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
            }
            Op::I2F { d: dst, a, .. } | Op::F2I { d: dst, a, .. } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
            }
            Op::ISetP {
                p, a, b, combine, ..
            } => {
                d.insert_pred(*p);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                if let Some((cp, _)) = combine {
                    u.insert_pred(*cp);
                }
            }
            Op::FSetP { p, a, b, .. } => {
                d.insert_pred(*p);
                u.insert_gpr(*a);
                use_src(&mut u, b);
            }
            Op::PSetP { p, a, b, .. } => {
                d.insert_pred(*p);
                u.insert_pred(*a);
                u.insert_pred(*b);
            }
            Op::P2R { d: dst } => {
                d.insert_gpr(*dst);
                for i in 0..7 {
                    u.insert_pred(PredReg::new(i));
                }
            }
            Op::R2P { a } => {
                u.insert_gpr(*a);
                for i in 0..7 {
                    d.insert_pred(PredReg::new(i));
                }
            }
            Op::Ld {
                d: dst,
                width,
                addr,
                ..
            }
            | Op::Tld {
                d: dst,
                width,
                addr,
            } => {
                def_wide(&mut d, *dst, *width);
                use_addr(&mut u, addr);
            }
            Op::St { v, width, addr, .. } => {
                u.insert_gpr_run(*v, width.regs());
                use_addr(&mut u, addr);
            }
            Op::Atom {
                d: dst,
                addr,
                v,
                v2,
                wide,
                ..
            } => {
                let n = if *wide { 2 } else { 1 };
                d.insert_gpr_run(*dst, n);
                u.insert_gpr_run(*v, n);
                if let Some(v2) = v2 {
                    u.insert_gpr_run(*v2, n);
                }
                use_addr(&mut u, addr);
            }
            Op::Red { addr, v, wide, .. } => {
                u.insert_gpr_run(*v, if *wide { 2 } else { 1 });
                use_addr(&mut u, addr);
            }
            Op::MemBar => {}
            Op::Vote {
                d: dst, p_out, src, ..
            } => {
                d.insert_gpr(*dst);
                if let Some(p) = p_out {
                    d.insert_pred(*p);
                }
                u.insert_pred(*src);
            }
            Op::Shfl {
                d: dst,
                a,
                b,
                c,
                p_out,
                ..
            } => {
                d.insert_gpr(*dst);
                u.insert_gpr(*a);
                use_src(&mut u, b);
                use_src(&mut u, c);
                if let Some(p) = p_out {
                    d.insert_pred(*p);
                }
            }
            Op::Ssy { .. }
            | Op::Sync
            | Op::Bra { .. }
            | Op::Jcal { .. }
            | Op::Ret
            | Op::Exit
            | Op::BarSync
            | Op::Nop => {}
        }
        RegDefsUses { defs: d, uses: u }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Guard;
    use crate::op::MemWidth;

    fn r(n: u8) -> Gpr {
        Gpr::new(n)
    }

    #[test]
    fn regset_basic_ops() {
        let mut s = RegSet::new();
        assert!(s.is_empty());
        s.insert_gpr(r(3));
        s.insert_gpr(r(200));
        s.insert_gpr(Gpr::RZ); // ignored
        assert!(s.contains_gpr(r(3)) && s.contains_gpr(r(200)));
        assert!(!s.contains_gpr(Gpr::RZ));
        assert_eq!(s.gpr_count(), 2);

        let mut t = RegSet::new();
        t.insert_gpr(r(3));
        let i = s.intersection(&t);
        assert!(i.contains_gpr(r(3)) && !i.contains_gpr(r(200)));
        s.subtract(&t);
        assert!(!s.contains_gpr(r(3)));
    }

    #[test]
    fn regset_iters_sorted() {
        let s: RegSet = [r(9), r(2), r(31)].into_iter().collect();
        let got: Vec<u8> = s.iter_gprs().map(|g| g.index()).collect();
        assert_eq!(got, vec![2, 9, 31]);
    }

    #[test]
    fn guard_counts_as_use() {
        let i = Instr::guarded(
            Guard::on(PredReg::new(3)),
            Op::Mov {
                d: r(0),
                a: Src::Imm(1),
            },
        );
        let du = i.defs_uses();
        assert!(du.uses.contains_pred(PredReg::new(3)));
        assert!(du.defs.contains_gpr(r(0)));
    }

    #[test]
    fn wide_load_defines_pair_and_uses_base_pair() {
        let i = Instr::new(Op::Ld {
            d: r(10),
            width: MemWidth::B64,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        });
        let du = i.defs_uses();
        assert!(du.defs.contains_gpr(r(10)) && du.defs.contains_gpr(r(11)));
        assert!(du.uses.contains_gpr(r(4)) && du.uses.contains_gpr(r(5)));
    }

    #[test]
    fn local_store_uses_single_base() {
        let i = Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, 16),
            spill: false,
        });
        let du = i.defs_uses();
        assert!(du.uses.contains_gpr(Gpr::SP));
        assert!(!du.uses.contains_gpr(r(2)));
    }

    #[test]
    fn carry_chain_defs_uses_cc() {
        let lo = Instr::new(Op::IAdd {
            d: r(6),
            a: r(10),
            b: Src::Imm(0),
            x: false,
            cc: true,
        });
        let hi = Instr::new(Op::IAdd {
            d: r(7),
            a: r(11),
            b: Src::Reg(Gpr::RZ),
            x: true,
            cc: false,
        });
        assert!(lo.defs_uses().defs.contains_cc());
        assert!(hi.defs_uses().uses.contains_cc());
    }

    #[test]
    fn p2r_uses_all_preds_r2p_defines_them() {
        let p2r = Instr::new(Op::P2R { d: r(3) });
        assert_eq!(p2r.defs_uses().uses.pred_count(), 7);
        let r2p = Instr::new(Op::R2P { a: r(3) });
        assert_eq!(r2p.defs_uses().defs.pred_count(), 7);
    }

    #[test]
    fn b128_defines_four_regs() {
        let i = Instr::new(Op::Ld {
            d: r(8),
            width: MemWidth::B128,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        });
        let du = i.defs_uses();
        for k in 8..12 {
            assert!(du.defs.contains_gpr(r(k)));
        }
        assert!(!du.defs.contains_gpr(r(12)));
    }
}
