//! Program containers: a compiled [`Function`] of SASS instructions plus
//! the compile-time metadata the backend compiler hands to SASSI.
//!
//! The paper stresses (§10.1) that a compiler-integrated instrumentor has
//! structural information a binary rewriter cannot easily reconstruct —
//! control-flow structure, reconvergence targets, basic-block headers and
//! register liveness. [`FunctionMeta`] is where our backend records it.

use crate::instr::Instr;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Compile-time metadata attached to a function by the backend compiler.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionMeta {
    /// For each `SYNC` instruction (by instruction index), the pc of the
    /// reconvergence point established by its matching `SSY`. Used to
    /// build a precise CFG for liveness and by verification.
    pub sync_reconv: BTreeMap<u32, u32>,
    /// Instruction indices that begin basic blocks.
    pub block_headers: Vec<u32>,
    /// Per-thread stack frame bytes reserved by the prologue (spills and
    /// local arrays).
    pub frame_bytes: u32,
    /// Static bytes of shared memory the function requires per block.
    pub shared_bytes: u32,
    /// Highest GPR index used plus one (occupancy input).
    pub reg_high_water: u32,
    /// Whether the function executes block-wide barriers.
    pub uses_barrier: bool,
}

/// A compiled device function: straight-line SASS with in-function
/// branch targets expressed as instruction indices.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (kernel or handler symbol).
    pub name: String,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// Backend-compiler metadata.
    pub meta: FunctionMeta,
}

impl Function {
    /// Creates a function from raw parts, recomputing nothing.
    pub fn new(name: impl Into<String>, instrs: Vec<Instr>, meta: FunctionMeta) -> Function {
        Function {
            name: name.into(),
            instrs,
            meta,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the function has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Renders a `cuobjdump`-style listing of the function.
    pub fn listing(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, ".func {}:", self.name);
        for (i, ins) in self.instrs.iter().enumerate() {
            let _ = writeln!(s, "  /*{i:04}*/  {ins};");
        }
        s
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    #[test]
    fn listing_contains_indices() {
        let f = Function::new(
            "k",
            vec![Instr::new(Op::Nop), Instr::new(Op::Exit)],
            FunctionMeta::default(),
        );
        let l = f.listing();
        assert!(l.contains("/*0000*/  NOP;"));
        assert!(l.contains("/*0001*/  EXIT;"));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }
}
