//! Static instruction classification — the facts SASSI exposes to
//! instrumentation handlers via `SASSIBeforeParams` (paper Figure 2(b)):
//! memory / control transfer / numeric / texture / sync, plus a compact
//! static encoding used to populate the `insEncoding` field.

use crate::instr::Instr;
use crate::op::Op;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The opcode family of an instruction, the analogue of the paper's
/// `SASSIOpcodes` returned by `GetOpcode()`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum OpcodeKind {
    Mov,
    Mov32I,
    S2R,
    IAdd,
    ISub,
    IMul,
    IMad,
    IScAdd,
    IMnMx,
    Shl,
    Shr,
    Lop,
    Popc,
    Flo,
    Brev,
    Sel,
    FAdd,
    FMul,
    FFma,
    FMnMx,
    Mufu,
    I2F,
    F2I,
    ISetP,
    FSetP,
    PSetP,
    P2R,
    R2P,
    Ld,
    St,
    Tld,
    Atom,
    Red,
    MemBar,
    Vote,
    Shfl,
    Ssy,
    Sync,
    Bra,
    Jcal,
    Ret,
    Exit,
    BarSync,
    Nop,
}

impl OpcodeKind {
    /// Small stable integer for encodings and histograms.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// All opcode kinds, for exhaustive histograms.
    pub fn all() -> &'static [OpcodeKind] {
        use OpcodeKind::*;
        &[
            Mov, Mov32I, S2R, IAdd, ISub, IMul, IMad, IScAdd, IMnMx, Shl, Shr, Lop, Popc, Flo,
            Brev, Sel, FAdd, FMul, FFma, FMnMx, Mufu, I2F, F2I, ISetP, FSetP, PSetP, P2R, R2P, Ld,
            St, Tld, Atom, Red, MemBar, Vote, Shfl, Ssy, Sync, Bra, Jcal, Ret, Exit, BarSync, Nop,
        ]
    }
}

impl fmt::Display for OpcodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The static classification of one instruction.
///
/// Constructed by [`Instr::class`]; every query the paper's
/// `SASSIBeforeParams` offers is answered from here.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct InstrClass {
    kind: OpcodeKind,
    mem_read: bool,
    mem_write: bool,
    spill: bool,
    texture: bool,
    control_xfer: bool,
    cond_control_xfer: bool,
    sync: bool,
    numeric: bool,
    atomic: bool,
}

impl InstrClass {
    /// The opcode family (`GetOpcode()` in the paper).
    pub fn opcode(&self) -> OpcodeKind {
        self.kind
    }

    /// Whether the instruction touches memory (`IsMem`).
    pub fn is_mem(&self) -> bool {
        self.mem_read || self.mem_write
    }

    /// Whether it reads memory (`IsMemRead`).
    pub fn is_mem_read(&self) -> bool {
        self.mem_read
    }

    /// Whether it writes memory (`IsMemWrite`).
    pub fn is_mem_write(&self) -> bool {
        self.mem_write
    }

    /// Whether it is a compiler-generated register spill or fill
    /// (`IsSpillOrFill`).
    pub fn is_spill_or_fill(&self) -> bool {
        self.spill
    }

    /// Whether it uses the surface-memory path (`IsSurfaceMemory`).
    /// The simulated machine has no surface memory; always `false`,
    /// kept for interface parity with the paper.
    pub fn is_surface_memory(&self) -> bool {
        false
    }

    /// Whether it transfers control (`IsControlXfer`): branches, calls,
    /// returns, exits and reconvergence pops.
    pub fn is_control_xfer(&self) -> bool {
        self.control_xfer
    }

    /// Whether it transfers control conditionally (`IsCondControlXfer`):
    /// a control transfer under a non-trivial guard.
    pub fn is_cond_control_xfer(&self) -> bool {
        self.cond_control_xfer
    }

    /// Whether it is a synchronization operation (`IsSync`): barriers
    /// and memory fences.
    pub fn is_sync(&self) -> bool {
        self.sync
    }

    /// Whether it is a numeric (integer or floating-point arithmetic)
    /// operation (`IsNumeric`).
    pub fn is_numeric(&self) -> bool {
        self.numeric
    }

    /// Whether it uses the texture path (`IsTexture`).
    pub fn is_texture(&self) -> bool {
        self.texture
    }

    /// Whether it is an atomic read-modify-write.
    pub fn is_atomic(&self) -> bool {
        self.atomic
    }
}

impl Instr {
    /// Computes the static classification of this instruction.
    pub fn class(&self) -> InstrClass {
        let kind = self.opcode();
        let (mem_read, mem_write, spill, texture, atomic) = match &self.op {
            Op::Ld { spill, .. } => (true, false, *spill, false, false),
            Op::St { spill, .. } => (false, true, *spill, false, false),
            Op::Tld { .. } => (true, false, false, true, false),
            Op::Atom { .. } => (true, true, false, false, true),
            Op::Red { .. } => (true, true, false, false, true),
            _ => (false, false, false, false, false),
        };
        let control_xfer = matches!(
            self.op,
            Op::Bra { .. } | Op::Jcal { .. } | Op::Ret | Op::Exit | Op::Sync
        );
        let cond_control_xfer = control_xfer && self.is_guarded();
        let sync = matches!(self.op, Op::BarSync | Op::MemBar);
        let numeric = matches!(
            self.op,
            Op::IAdd { .. }
                | Op::ISub { .. }
                | Op::IMul { .. }
                | Op::IMad { .. }
                | Op::IScAdd { .. }
                | Op::IMnMx { .. }
                | Op::Shl { .. }
                | Op::Shr { .. }
                | Op::Lop { .. }
                | Op::Popc { .. }
                | Op::Flo { .. }
                | Op::Brev { .. }
                | Op::FAdd { .. }
                | Op::FMul { .. }
                | Op::FFma { .. }
                | Op::FMnMx { .. }
                | Op::Mufu { .. }
                | Op::I2F { .. }
                | Op::F2I { .. }
        );
        InstrClass {
            kind,
            mem_read,
            mem_write,
            spill,
            texture,
            control_xfer,
            cond_control_xfer,
            sync,
            numeric,
            atomic,
        }
    }

    /// The opcode family of this instruction.
    pub fn opcode(&self) -> OpcodeKind {
        match &self.op {
            Op::Mov { .. } => OpcodeKind::Mov,
            Op::Mov32I { .. } => OpcodeKind::Mov32I,
            Op::S2R { .. } => OpcodeKind::S2R,
            Op::IAdd { .. } => OpcodeKind::IAdd,
            Op::ISub { .. } => OpcodeKind::ISub,
            Op::IMul { .. } => OpcodeKind::IMul,
            Op::IMad { .. } => OpcodeKind::IMad,
            Op::IScAdd { .. } => OpcodeKind::IScAdd,
            Op::IMnMx { .. } => OpcodeKind::IMnMx,
            Op::Shl { .. } => OpcodeKind::Shl,
            Op::Shr { .. } => OpcodeKind::Shr,
            Op::Lop { .. } => OpcodeKind::Lop,
            Op::Popc { .. } => OpcodeKind::Popc,
            Op::Flo { .. } => OpcodeKind::Flo,
            Op::Brev { .. } => OpcodeKind::Brev,
            Op::Sel { .. } => OpcodeKind::Sel,
            Op::FAdd { .. } => OpcodeKind::FAdd,
            Op::FMul { .. } => OpcodeKind::FMul,
            Op::FFma { .. } => OpcodeKind::FFma,
            Op::FMnMx { .. } => OpcodeKind::FMnMx,
            Op::Mufu { .. } => OpcodeKind::Mufu,
            Op::I2F { .. } => OpcodeKind::I2F,
            Op::F2I { .. } => OpcodeKind::F2I,
            Op::ISetP { .. } => OpcodeKind::ISetP,
            Op::FSetP { .. } => OpcodeKind::FSetP,
            Op::PSetP { .. } => OpcodeKind::PSetP,
            Op::P2R { .. } => OpcodeKind::P2R,
            Op::R2P { .. } => OpcodeKind::R2P,
            Op::Ld { .. } => OpcodeKind::Ld,
            Op::St { .. } => OpcodeKind::St,
            Op::Tld { .. } => OpcodeKind::Tld,
            Op::Atom { .. } => OpcodeKind::Atom,
            Op::Red { .. } => OpcodeKind::Red,
            Op::MemBar => OpcodeKind::MemBar,
            Op::Vote { .. } => OpcodeKind::Vote,
            Op::Shfl { .. } => OpcodeKind::Shfl,
            Op::Ssy { .. } => OpcodeKind::Ssy,
            Op::Sync => OpcodeKind::Sync,
            Op::Bra { .. } => OpcodeKind::Bra,
            Op::Jcal { .. } => OpcodeKind::Jcal,
            Op::Ret => OpcodeKind::Ret,
            Op::Exit => OpcodeKind::Exit,
            Op::BarSync => OpcodeKind::BarSync,
            Op::Nop => OpcodeKind::Nop,
        }
    }

    /// Packs static properties into a 32-bit word, the value SASSI
    /// stores into `SASSIBeforeParams::insEncoding`: opcode code in the
    /// low byte, classification flags above it.
    pub fn encode_static(&self) -> u32 {
        let c = self.class();
        let mut enc = c.opcode().code() as u32;
        let mut bit = 8;
        let mut set = |b: bool, bit: &mut u32| {
            if b {
                enc |= 1 << *bit;
            }
            *bit += 1;
        };
        set(c.is_mem(), &mut bit);
        set(c.is_mem_read(), &mut bit);
        set(c.is_mem_write(), &mut bit);
        set(c.is_spill_or_fill(), &mut bit);
        set(c.is_control_xfer(), &mut bit);
        set(c.is_cond_control_xfer(), &mut bit);
        set(c.is_sync(), &mut bit);
        set(c.is_numeric(), &mut bit);
        set(c.is_texture(), &mut bit);
        set(c.is_atomic(), &mut bit);
        enc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Guard, MemAddr, Src};
    use crate::op::{AtomOp, MemWidth};
    use crate::reg::{Gpr, PredReg};

    fn r(n: u8) -> Gpr {
        Gpr::new(n)
    }

    #[test]
    fn load_is_mem_read() {
        let i = Instr::new(Op::Ld {
            d: r(0),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        });
        let c = i.class();
        assert!(c.is_mem() && c.is_mem_read() && !c.is_mem_write());
        assert!(!c.is_spill_or_fill());
        assert!(!c.is_numeric());
    }

    #[test]
    fn spill_store_flagged() {
        let i = Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, 8),
            spill: true,
        });
        assert!(i.class().is_spill_or_fill());
        assert!(i.class().is_mem_write());
    }

    #[test]
    fn atomic_reads_and_writes() {
        let i = Instr::new(Op::Atom {
            d: r(0),
            op: AtomOp::Add,
            addr: MemAddr::global(r(4), 0),
            v: r(6),
            v2: None,
            wide: false,
        });
        let c = i.class();
        assert!(c.is_mem_read() && c.is_mem_write() && c.is_atomic());
    }

    #[test]
    fn texture_classified() {
        let i = Instr::new(Op::Tld {
            d: r(0),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 0),
        });
        assert!(i.class().is_texture());
        assert!(i.class().is_mem_read());
    }

    #[test]
    fn conditional_branch_classification() {
        let plain = Instr::new(Op::Bra {
            target: crate::Label::Pc(0),
            uniform: false,
        });
        assert!(plain.class().is_control_xfer());
        assert!(!plain.class().is_cond_control_xfer());

        let guarded = Instr::guarded(
            Guard::not(PredReg::new(0)),
            Op::Bra {
                target: crate::Label::Pc(0),
                uniform: false,
            },
        );
        assert!(guarded.class().is_cond_control_xfer());
    }

    #[test]
    fn numeric_and_sync() {
        let add = Instr::new(Op::IAdd {
            d: r(0),
            a: r(1),
            b: Src::Imm(1),
            x: false,
            cc: false,
        });
        assert!(add.class().is_numeric());
        let bar = Instr::new(Op::BarSync);
        assert!(bar.class().is_sync());
        assert!(!bar.class().is_numeric());
    }

    #[test]
    fn surface_memory_always_false() {
        let i = Instr::new(Op::Nop);
        assert!(!i.class().is_surface_memory());
    }

    #[test]
    fn encoding_distinguishes_classes() {
        let ld = Instr::new(Op::Ld {
            d: r(0),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        });
        let st = Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        });
        assert_ne!(ld.encode_static(), st.encode_static());
        assert_eq!(ld.encode_static() & 0xff, OpcodeKind::Ld.code() as u32);
    }

    #[test]
    fn opcode_kind_roundtrip_all() {
        // every kind appears exactly once in `all`
        let all = OpcodeKind::all();
        for (i, k) in all.iter().enumerate() {
            assert_eq!(
                all.iter().filter(|x| **x == *k).count(),
                1,
                "duplicate {k:?} at {i}"
            );
        }
    }
}
