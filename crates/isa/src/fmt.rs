//! SASS-style textual disassembly (`Display` for [`Instr`]).
//!
//! The output deliberately mimics `cuobjdump`-style SASS listings, e.g.
//! `@P0 ST.E [R10], R0;` — useful for debugging kernels and for showing
//! instrumented code the way the paper's Figure 2(a) does.

use crate::instr::{Instr, Label, MemAddr, Src};
use crate::op::{MemWidth, Op};
use crate::space::AddrSpace;
use std::fmt;

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => {
                if *v < 10 {
                    write!(f, "{v}")
                } else {
                    write!(f, "{v:#x}")
                }
            }
            Src::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Pc(pc) => write!(f, "`({pc})"),
            Label::Func(id) => write!(f, "`func{id}"),
            Label::Handler(id) => write!(f, "`handler{id}"),
        }
    }
}

impl fmt::Display for MemAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else if self.offset > 0 {
            write!(f, "[{}+{:#x}]", self.base, self.offset)
        } else {
            write!(f, "[{}-{:#x}]", self.base, -self.offset)
        }
    }
}

fn mem_mnemonic(load: bool, space: AddrSpace, width: MemWidth) -> String {
    let base = match (load, space) {
        (true, AddrSpace::Generic) => "LD.E".to_string(),
        (false, AddrSpace::Generic) => "ST.E".to_string(),
        (true, s) => format!("LD{}", s.suffix()),
        (false, s) => format!("ST{}", s.suffix()),
    };
    format!("{base}{}", width.suffix())
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always() {
            if self.guard.neg {
                write!(f, "@!{} ", self.guard.pred)?;
            } else {
                write!(f, "@{} ", self.guard.pred)?;
            }
        }
        match &self.op {
            Op::Mov { d, a } => write!(f, "MOV {d}, {a}"),
            Op::Mov32I { d, imm } => write!(f, "MOV32I {d}, {imm:#x}"),
            Op::S2R { d, sr } => write!(f, "S2R {d}, {sr}"),
            Op::IAdd { d, a, b, x, cc } => {
                let x = if *x { ".X" } else { "" };
                let cc = if *cc { ".CC" } else { "" };
                write!(f, "IADD{x} {d}{cc}, {a}, {b}")
            }
            Op::ISub { d, a, b } => write!(f, "IADD {d}, {a}, -{b}"),
            Op::IMul {
                d,
                a,
                b,
                signed,
                hi,
            } => {
                let s = if *signed { "" } else { ".U32" };
                let h = if *hi { ".HI" } else { "" };
                write!(f, "IMUL{s}{h} {d}, {a}, {b}")
            }
            Op::IMad { d, a, b, c } => write!(f, "IMAD {d}, {a}, {b}, {c}"),
            Op::IScAdd { d, a, b, shift } => write!(f, "ISCADD {d}, {a}, {b}, {shift:#x}"),
            Op::IMnMx { d, a, b, min, .. } => {
                write!(
                    f,
                    "IMNMX {d}, {a}, {b}, {}",
                    if *min { "PT" } else { "!PT" }
                )
            }
            Op::Shl { d, a, b } => write!(f, "SHL {d}, {a}, {b}"),
            Op::Shr { d, a, b, signed } => {
                write!(f, "SHR{} {d}, {a}, {b}", if *signed { "" } else { ".U32" })
            }
            Op::Lop { d, op, a, b, inv_b } => {
                let inv = if *inv_b { "~" } else { "" };
                write!(f, "LOP.{} {d}, {a}, {inv}{b}", op.mnemonic())
            }
            Op::Popc { d, a } => write!(f, "POPC {d}, {a}"),
            Op::Flo { d, a } => write!(f, "FLO.U32 {d}, {a}"),
            Op::Brev { d, a } => write!(f, "BREV {d}, {a}"),
            Op::Sel { d, a, b, p, neg_p } => {
                let n = if *neg_p { "!" } else { "" };
                write!(f, "SEL {d}, {a}, {b}, {n}{p}")
            }
            Op::FAdd {
                d,
                a,
                b,
                neg_a,
                neg_b,
            } => {
                let na = if *neg_a { "-" } else { "" };
                let nb = if *neg_b { "-" } else { "" };
                write!(f, "FADD {d}, {na}{a}, {nb}{b}")
            }
            Op::FMul { d, a, b } => write!(f, "FMUL {d}, {a}, {b}"),
            Op::FFma {
                d,
                a,
                b,
                c,
                neg_b,
                neg_c,
            } => {
                let nb = if *neg_b { "-" } else { "" };
                let nc = if *neg_c { "-" } else { "" };
                write!(f, "FFMA {d}, {a}, {nb}{b}, {nc}{c}")
            }
            Op::FMnMx { d, a, b, min } => {
                write!(
                    f,
                    "FMNMX {d}, {a}, {b}, {}",
                    if *min { "PT" } else { "!PT" }
                )
            }
            Op::Mufu { d, func, a } => write!(f, "MUFU.{} {d}, {a}", func.mnemonic()),
            Op::I2F { d, a, .. } => write!(f, "I2F.F32 {d}, {a}"),
            Op::F2I { d, a, .. } => write!(f, "F2I.TRUNC {d}, {a}"),
            Op::ISetP {
                p,
                cmp,
                a,
                b,
                signed,
                combine,
            } => {
                let s = if *signed { "" } else { ".U32" };
                write!(f, "ISETP.{}{s}.AND {p}, PT, {a}, {b}", cmp.mnemonic())?;
                if let Some((cp, neg)) = combine {
                    write!(f, ", {}{cp}", if *neg { "!" } else { "" })?;
                } else {
                    write!(f, ", PT")?;
                }
                Ok(())
            }
            Op::FSetP { p, cmp, a, b } => {
                write!(f, "FSETP.{}.AND {p}, PT, {a}, {b}, PT", cmp.mnemonic())
            }
            Op::PSetP {
                p,
                op,
                a,
                b,
                neg_a,
                neg_b,
            } => {
                let na = if *neg_a { "!" } else { "" };
                let nb = if *neg_b { "!" } else { "" };
                write!(
                    f,
                    "PSETP.{}.AND {p}, PT, {na}{a}, {nb}{b}, PT",
                    op.mnemonic()
                )
            }
            Op::P2R { d } => write!(f, "P2R {d}, PR, RZ, 0x7f"),
            Op::R2P { a } => write!(f, "R2P PR, {a}, 0x7f"),
            Op::Ld {
                d,
                width,
                addr,
                spill,
            } => {
                let lcl = if *spill { ".SPILL" } else { "" };
                write!(
                    f,
                    "{}{lcl} {d}, {addr}",
                    mem_mnemonic(true, addr.space, *width)
                )
            }
            Op::St {
                v,
                width,
                addr,
                spill,
            } => {
                let lcl = if *spill { ".SPILL" } else { "" };
                write!(
                    f,
                    "{}{lcl} {addr}, {v}",
                    mem_mnemonic(false, addr.space, *width)
                )
            }
            Op::Tld { d, width, addr } => {
                write!(f, "TLD.LZ{} {d}, {addr}", width.suffix())
            }
            Op::Atom {
                d,
                op,
                addr,
                v,
                v2,
                wide,
            } => {
                let w = if *wide { ".64" } else { "" };
                write!(f, "ATOM.{}{w} {d}, {addr}, {v}", op.mnemonic())?;
                if let Some(v2) = v2 {
                    write!(f, ", {v2}")?;
                }
                Ok(())
            }
            Op::Red { op, addr, v, wide } => {
                let w = if *wide { ".64" } else { "" };
                write!(f, "RED.{}{w} {addr}, {v}", op.mnemonic())
            }
            Op::MemBar => write!(f, "MEMBAR.GL"),
            Op::Vote {
                mode,
                d,
                p_out,
                src,
                neg_src,
            } => {
                let n = if *neg_src { "!" } else { "" };
                match p_out {
                    Some(p) => write!(f, "VOTE.{} {d}, {p}, {n}{src}", mode.mnemonic()),
                    None => write!(f, "VOTE.{} {d}, {n}{src}", mode.mnemonic()),
                }
            }
            Op::Shfl {
                mode,
                d,
                a,
                b,
                c,
                p_out,
            } => match p_out {
                Some(p) => write!(f, "SHFL.{} {p}, {d}, {a}, {b}, {c}", mode.mnemonic()),
                None => write!(f, "SHFL.{} PT, {d}, {a}, {b}, {c}", mode.mnemonic()),
            },
            Op::Ssy { target } => write!(f, "SSY {target}"),
            Op::Sync => write!(f, "SYNC"),
            Op::Bra { target, uniform } => {
                write!(f, "BRA{} {target}", if *uniform { ".U" } else { "" })
            }
            Op::Jcal { target } => write!(f, "JCAL {target}"),
            Op::Ret => write!(f, "RET"),
            Op::Exit => write!(f, "EXIT"),
            Op::BarSync => write!(f, "BAR.SYNC 0x0"),
            Op::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Guard;
    use crate::reg::{Gpr, PredReg};

    fn r(n: u8) -> Gpr {
        Gpr::new(n)
    }

    #[test]
    fn figure2_style_store() {
        // The paper's Figure 2(a) original instruction: @P0 ST.E [R10], R0;
        let i = Instr::guarded(
            Guard::on(PredReg::new(0)),
            Op::St {
                v: r(0),
                width: MemWidth::B32,
                addr: MemAddr::generic(r(10), 0),
                spill: false,
            },
        );
        assert_eq!(i.to_string(), "@P0 ST.E [R10], R0");
    }

    #[test]
    fn figure2_style_stack_adjust() {
        let i = Instr::new(Op::IAdd {
            d: Gpr::SP,
            a: Gpr::SP,
            b: Src::Imm(-0x80i32 as u32),
            x: false,
            cc: false,
        });
        assert_eq!(i.to_string(), "IADD R1, R1, 0xffffff80");
    }

    #[test]
    fn local_store_with_offset() {
        let i = Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, 0x18),
            spill: false,
        });
        assert_eq!(i.to_string(), "STL [R1+0x18], R0");
    }

    #[test]
    fn wide_local_store() {
        let i = Instr::new(Op::St {
            v: r(10),
            width: MemWidth::B64,
            addr: MemAddr::local(Gpr::SP, 0x60),
            spill: false,
        });
        assert_eq!(i.to_string(), "STL.64 [R1+0x60], R10");
    }

    #[test]
    fn negated_guard() {
        let i = Instr::guarded(Guard::not(PredReg::new(0)), Op::Sync);
        assert_eq!(i.to_string(), "@!P0 SYNC");
    }

    #[test]
    fn every_op_formats_nonempty() {
        use crate::op::{AtomOp, CmpOp, LogicOp, MufuFunc, ShflMode, VoteMode};
        use crate::reg::SpecialReg;
        let ops = vec![
            Op::Mov {
                d: r(0),
                a: Src::Imm(1),
            },
            Op::Mov32I {
                d: r(0),
                imm: 0xdead,
            },
            Op::S2R {
                d: r(0),
                sr: SpecialReg::TidX,
            },
            Op::IAdd {
                d: r(0),
                a: r(1),
                b: Src::Imm(1),
                x: true,
                cc: true,
            },
            Op::ISub {
                d: r(0),
                a: r(1),
                b: Src::Imm(1),
            },
            Op::IMul {
                d: r(0),
                a: r(1),
                b: Src::Imm(3),
                signed: false,
                hi: true,
            },
            Op::IMad {
                d: r(0),
                a: r(1),
                b: Src::Imm(3),
                c: r(2),
            },
            Op::IScAdd {
                d: r(0),
                a: r(1),
                b: Src::Reg(r(2)),
                shift: 2,
            },
            Op::IMnMx {
                d: r(0),
                a: r(1),
                b: Src::Imm(3),
                min: true,
                signed: true,
            },
            Op::Shl {
                d: r(0),
                a: r(1),
                b: Src::Imm(2),
            },
            Op::Shr {
                d: r(0),
                a: r(1),
                b: Src::Imm(2),
                signed: true,
            },
            Op::Lop {
                d: r(0),
                op: LogicOp::Or,
                a: r(1),
                b: Src::Const(crate::CBankAddr::new(0, 0x24)),
                inv_b: false,
            },
            Op::Popc { d: r(0), a: r(1) },
            Op::Flo { d: r(0), a: r(1) },
            Op::Brev { d: r(0), a: r(1) },
            Op::Sel {
                d: r(0),
                a: r(1),
                b: Src::Imm(0),
                p: PredReg::new(0),
                neg_p: true,
            },
            Op::FAdd {
                d: r(0),
                a: r(1),
                b: Src::Reg(r(2)),
                neg_a: false,
                neg_b: true,
            },
            Op::FMul {
                d: r(0),
                a: r(1),
                b: Src::Reg(r(2)),
            },
            Op::FFma {
                d: r(0),
                a: r(1),
                b: Src::Reg(r(2)),
                c: r(3),
                neg_b: false,
                neg_c: false,
            },
            Op::FMnMx {
                d: r(0),
                a: r(1),
                b: Src::Reg(r(2)),
                min: false,
            },
            Op::Mufu {
                d: r(0),
                func: MufuFunc::Rcp,
                a: r(1),
            },
            Op::I2F {
                d: r(0),
                a: r(1),
                from: crate::IntWidth::S32,
            },
            Op::F2I {
                d: r(0),
                a: r(1),
                to: crate::IntWidth::S32,
            },
            Op::ISetP {
                p: PredReg::new(0),
                cmp: CmpOp::Lt,
                a: r(1),
                b: Src::Imm(5),
                signed: true,
                combine: Some((PredReg::new(1), true)),
            },
            Op::FSetP {
                p: PredReg::new(0),
                cmp: CmpOp::Ge,
                a: r(1),
                b: Src::Reg(r(2)),
            },
            Op::PSetP {
                p: PredReg::new(0),
                op: LogicOp::And,
                a: PredReg::new(1),
                b: PredReg::new(2),
                neg_a: true,
                neg_b: false,
            },
            Op::P2R { d: r(3) },
            Op::R2P { a: r(3) },
            Op::Ld {
                d: r(0),
                width: MemWidth::B32,
                addr: MemAddr::global(r(4), -8),
                spill: false,
            },
            Op::St {
                v: r(0),
                width: MemWidth::U8,
                addr: MemAddr::shared(r(4), 4),
                spill: false,
            },
            Op::Tld {
                d: r(0),
                width: MemWidth::B32,
                addr: MemAddr::global(r(4), 0),
            },
            Op::Atom {
                d: r(0),
                op: AtomOp::Cas,
                addr: MemAddr::global(r(4), 0),
                v: r(6),
                v2: Some(r(8)),
                wide: false,
            },
            Op::Red {
                op: AtomOp::Add,
                addr: MemAddr::global(r(4), 0),
                v: r(6),
                wide: true,
            },
            Op::MemBar,
            Op::Vote {
                mode: VoteMode::Ballot,
                d: r(0),
                p_out: None,
                src: PredReg::PT,
                neg_src: false,
            },
            Op::Shfl {
                mode: ShflMode::Idx,
                d: r(0),
                a: r(1),
                b: Src::Imm(0),
                c: Src::Imm(0x1f),
                p_out: Some(PredReg::new(1)),
            },
            Op::Ssy {
                target: Label::Pc(10),
            },
            Op::Sync,
            Op::Bra {
                target: Label::Pc(3),
                uniform: true,
            },
            Op::Jcal {
                target: Label::Handler(0),
            },
            Op::Ret,
            Op::Exit,
            Op::BarSync,
            Op::Nop,
        ];
        for op in ops {
            let s = Instr::new(op).to_string();
            assert!(!s.is_empty());
        }
    }
}
