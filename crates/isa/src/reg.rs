//! Register-file name spaces: GPRs, predicate registers, special registers
//! and constant-bank addresses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A general-purpose 32-bit register.
///
/// Encodings `0..=254` name the ordinary registers `R0..R254`; encoding
/// `255` is the architectural zero register [`Gpr::RZ`], which reads as
/// `0` and ignores writes. 64-bit quantities are held in an *aligned
/// pair*: `Rn` holds the low word and `Rn+1` the high word, with `n`
/// even (see [`Gpr::pair_hi`]).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Gpr(u8);

impl Gpr {
    /// The zero register: reads as zero, writes are discarded.
    pub const RZ: Gpr = Gpr(255);

    /// The ABI stack pointer. By convention of our compute ABI (as on
    /// NVIDIA GPUs) `R1` holds the per-thread local-memory stack pointer.
    pub const SP: Gpr = Gpr(1);

    /// Creates `Rn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 254` (255 is reserved for `RZ`; use [`Gpr::RZ`]).
    pub fn new(n: u8) -> Gpr {
        assert!(n < 255, "R{n} out of range (R0..R254)");
        Gpr(n)
    }

    /// The raw register number (255 for `RZ`).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the zero register.
    pub fn is_rz(self) -> bool {
        self.0 == 255
    }

    /// The high half of the 64-bit pair whose low half is `self`.
    ///
    /// `RZ.pair_hi()` is `RZ` (a 64-bit zero is a pair of zero reads).
    ///
    /// # Panics
    ///
    /// Panics if `self` is `R254` (no `R255` exists).
    pub fn pair_hi(self) -> Gpr {
        if self.is_rz() {
            return Gpr::RZ;
        }
        assert!(self.0 < 254, "R{} has no pair high register", self.0);
        Gpr(self.0 + 1)
    }
}

impl fmt::Display for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_rz() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

impl fmt::Debug for Gpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A single-bit predicate register.
///
/// Encodings `0..=6` name `P0..P6`; encoding `7` is the always-true
/// predicate [`PredReg::PT`], which reads as `true` and ignores writes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PredReg(u8);

impl PredReg {
    /// The always-true predicate.
    pub const PT: PredReg = PredReg(7);

    /// Creates `Pn`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 6` (7 is reserved for `PT`; use [`PredReg::PT`]).
    pub fn new(n: u8) -> PredReg {
        assert!(n < 7, "P{n} out of range (P0..P6)");
        PredReg(n)
    }

    /// The raw predicate number (7 for `PT`).
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the always-true predicate.
    pub fn is_pt(self) -> bool {
        self.0 == 7
    }
}

impl fmt::Display for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pt() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

impl fmt::Debug for PredReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Special (read-only) registers accessible through `S2R`.
///
/// These expose the thread's coordinates and machine identifiers, like
/// the `%tid`/`%ctaid`/`%laneid` special registers of PTX/SASS.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SpecialReg {
    /// Thread index within the block, x component.
    TidX,
    /// Thread index within the block, y component.
    TidY,
    /// Thread index within the block, z component.
    TidZ,
    /// Block index within the grid, x component.
    CtaIdX,
    /// Block index within the grid, y component.
    CtaIdY,
    /// Block index within the grid, z component.
    CtaIdZ,
    /// Block dimensions, x component.
    NTidX,
    /// Block dimensions, y component.
    NTidY,
    /// Block dimensions, z component.
    NTidZ,
    /// Grid dimensions, x component.
    NCtaIdX,
    /// Grid dimensions, y component.
    NCtaIdY,
    /// Grid dimensions, z component.
    NCtaIdZ,
    /// Lane index within the warp (0..31).
    LaneId,
    /// Warp index within the SM.
    WarpId,
    /// Identifier of the SM executing the thread.
    SmId,
    /// Low 32 bits of the SM cycle counter.
    ClockLo,
    /// High 32 bits of the SM cycle counter.
    ClockHi,
    /// Mask of lanes with id < this thread's lane id.
    LaneMaskLt,
    /// Mask of lanes that are active at this instruction.
    ActiveMask,
}

impl fmt::Display for SpecialReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpecialReg::TidX => "SR_TID.X",
            SpecialReg::TidY => "SR_TID.Y",
            SpecialReg::TidZ => "SR_TID.Z",
            SpecialReg::CtaIdX => "SR_CTAID.X",
            SpecialReg::CtaIdY => "SR_CTAID.Y",
            SpecialReg::CtaIdZ => "SR_CTAID.Z",
            SpecialReg::NTidX => "SR_NTID.X",
            SpecialReg::NTidY => "SR_NTID.Y",
            SpecialReg::NTidZ => "SR_NTID.Z",
            SpecialReg::NCtaIdX => "SR_NCTAID.X",
            SpecialReg::NCtaIdY => "SR_NCTAID.Y",
            SpecialReg::NCtaIdZ => "SR_NCTAID.Z",
            SpecialReg::LaneId => "SR_LANEID",
            SpecialReg::WarpId => "SR_WARPID",
            SpecialReg::SmId => "SR_SMID",
            SpecialReg::ClockLo => "SR_CLOCKLO",
            SpecialReg::ClockHi => "SR_CLOCKHI",
            SpecialReg::LaneMaskLt => "SR_LANEMASK_LT",
            SpecialReg::ActiveMask => "SR_ACTIVEMASK",
        };
        f.write_str(s)
    }
}

/// An address into a constant bank, `c[bank][offset]`.
///
/// Bank 0 holds launch metadata and kernel parameters, like NVIDIA's
/// `c[0x0]` bank. Offsets are byte offsets and must be 4-byte aligned.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct CBankAddr {
    /// Constant bank number.
    pub bank: u8,
    /// Byte offset within the bank (4-byte aligned).
    pub offset: u16,
}

impl CBankAddr {
    /// Creates a constant-bank address.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is not 4-byte aligned.
    pub fn new(bank: u8, offset: u16) -> CBankAddr {
        assert_eq!(offset % 4, 0, "constant bank offset must be 4-byte aligned");
        CBankAddr { bank, offset }
    }
}

impl fmt::Display for CBankAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c[{:#x}][{:#x}]", self.bank, self.offset)
    }
}

/// Well-known bank-0 offsets, mirroring the layout NVIDIA's driver
/// establishes for compute kernels.
pub mod cbank0 {
    /// Block dimension x (`ntid.x`).
    pub const NTID_X: u16 = 0x00;
    /// Block dimension y.
    pub const NTID_Y: u16 = 0x04;
    /// Block dimension z.
    pub const NTID_Z: u16 = 0x08;
    /// Grid dimension x (`nctaid.x`).
    pub const NCTAID_X: u16 = 0x0c;
    /// Grid dimension y.
    pub const NCTAID_Y: u16 = 0x10;
    /// Grid dimension z.
    pub const NCTAID_Z: u16 = 0x14;
    /// Per-thread local (stack) slab size in bytes.
    pub const LOCAL_SIZE: u16 = 0x18;
    /// Shared memory size allocated to the block, in bytes.
    pub const SHARED_SIZE: u16 = 0x1c;
    /// Generic-address window tag for local memory. This is the constant
    /// the paper's Figure 2 ORs with a stack offset
    /// (`LOP.OR R4, R1, c[0x0][0x24]`) to form a generic pointer to a
    /// stack-allocated object.
    pub const LOCAL_WINDOW: u16 = 0x24;
    /// Generic-address window tag for shared memory.
    pub const SHARED_WINDOW: u16 = 0x28;
    /// First byte of user kernel parameters.
    pub const PARAM_BASE: u16 = 0x140;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_display_and_rz() {
        assert_eq!(Gpr::new(0).to_string(), "R0");
        assert_eq!(Gpr::new(254).to_string(), "R254");
        assert_eq!(Gpr::RZ.to_string(), "RZ");
        assert!(Gpr::RZ.is_rz());
        assert!(!Gpr::new(3).is_rz());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gpr_255_rejected() {
        let _ = Gpr::new(255);
    }

    #[test]
    fn gpr_pairs() {
        assert_eq!(Gpr::new(4).pair_hi(), Gpr::new(5));
        assert_eq!(Gpr::RZ.pair_hi(), Gpr::RZ);
    }

    #[test]
    fn pred_display_and_pt() {
        assert_eq!(PredReg::new(0).to_string(), "P0");
        assert_eq!(PredReg::PT.to_string(), "PT");
        assert!(PredReg::PT.is_pt());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pred_7_rejected() {
        let _ = PredReg::new(7);
    }

    #[test]
    fn cbank_display() {
        assert_eq!(CBankAddr::new(0, 0x24).to_string(), "c[0x0][0x24]");
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn cbank_unaligned_rejected() {
        let _ = CBankAddr::new(0, 0x25);
    }

    #[test]
    fn sp_is_r1() {
        assert_eq!(Gpr::SP, Gpr::new(1));
    }
}
