//! The operation payload of an instruction: opcodes with their operands.

use crate::instr::{Label, MemAddr, Src};
use crate::reg::{Gpr, PredReg, SpecialReg};
use serde::{Deserialize, Serialize};

/// Integer comparison / set-predicate conditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
        }
    }

    /// Evaluates the comparison on signed 64-bit promoted operands.
    pub fn eval_i64(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// Evaluates the comparison on `f32` operands (IEEE semantics: any
    /// comparison with NaN except `Ne` is false).
    pub fn eval_f32(self, a: f32, b: f32) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }
}

/// Bitwise logic operations for `LOP` and predicate combination.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LogicOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Pass the second operand through unchanged (`LOP.PASS_B`).
    PassB,
}

impl LogicOp {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            LogicOp::And => "AND",
            LogicOp::Or => "OR",
            LogicOp::Xor => "XOR",
            LogicOp::PassB => "PASS_B",
        }
    }

    /// Applies the operation to 32-bit values.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            LogicOp::And => a & b,
            LogicOp::Or => a | b,
            LogicOp::Xor => a ^ b,
            LogicOp::PassB => b,
        }
    }
}

/// Atomic read-modify-write operations (`ATOM` / `RED`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AtomOp {
    /// Integer add.
    Add,
    /// Unsigned minimum.
    Min,
    /// Unsigned maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Exchange (swap).
    Exch,
    /// Compare-and-swap.
    Cas,
}

impl AtomOp {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AtomOp::Add => "ADD",
            AtomOp::Min => "MIN",
            AtomOp::Max => "MAX",
            AtomOp::And => "AND",
            AtomOp::Or => "OR",
            AtomOp::Xor => "XOR",
            AtomOp::Exch => "EXCH",
            AtomOp::Cas => "CAS",
        }
    }
}

/// Access widths for loads and stores, in bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MemWidth {
    /// 1 byte, zero-extended on load.
    U8,
    /// 1 byte, sign-extended on load.
    S8,
    /// 2 bytes, zero-extended on load.
    U16,
    /// 2 bytes, sign-extended on load.
    S16,
    /// 4 bytes.
    B32,
    /// 8 bytes (register pair).
    B64,
    /// 16 bytes (four consecutive registers).
    B128,
}

impl MemWidth {
    /// Width of the access in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::U8 | MemWidth::S8 => 1,
            MemWidth::U16 | MemWidth::S16 => 2,
            MemWidth::B32 => 4,
            MemWidth::B64 => 8,
            MemWidth::B128 => 16,
        }
    }

    /// Number of consecutive 32-bit registers transferred.
    pub fn regs(self) -> u8 {
        match self {
            MemWidth::B64 => 2,
            MemWidth::B128 => 4,
            _ => 1,
        }
    }

    /// SASS mnemonic suffix (empty for the default 32-bit width).
    pub fn suffix(self) -> &'static str {
        match self {
            MemWidth::U8 => ".U8",
            MemWidth::S8 => ".S8",
            MemWidth::U16 => ".U16",
            MemWidth::S16 => ".S16",
            MemWidth::B32 => "",
            MemWidth::B64 => ".64",
            MemWidth::B128 => ".128",
        }
    }
}

/// Transcendental / special-function unit operations (`MUFU`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MufuFunc {
    /// Reciprocal, `1/x`.
    Rcp,
    /// Square root.
    Sqrt,
    /// Reciprocal square root.
    Rsq,
    /// Base-2 exponential.
    Ex2,
    /// Base-2 logarithm.
    Lg2,
    /// Sine (argument in radians).
    Sin,
    /// Cosine (argument in radians).
    Cos,
}

impl MufuFunc {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            MufuFunc::Rcp => "RCP",
            MufuFunc::Sqrt => "SQRT",
            MufuFunc::Rsq => "RSQ",
            MufuFunc::Ex2 => "EX2",
            MufuFunc::Lg2 => "LG2",
            MufuFunc::Sin => "SIN",
            MufuFunc::Cos => "COS",
        }
    }

    /// Applies the function.
    pub fn eval(self, x: f32) -> f32 {
        match self {
            MufuFunc::Rcp => 1.0 / x,
            MufuFunc::Sqrt => x.sqrt(),
            MufuFunc::Rsq => 1.0 / x.sqrt(),
            MufuFunc::Ex2 => x.exp2(),
            MufuFunc::Lg2 => x.log2(),
            MufuFunc::Sin => x.sin(),
            MufuFunc::Cos => x.cos(),
        }
    }
}

/// Warp vote modes (`VOTE`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum VoteMode {
    /// True iff the predicate holds on every active lane (`__all`).
    All,
    /// True iff the predicate holds on any active lane (`__any`).
    Any,
    /// Bit mask of active lanes where the predicate holds (`__ballot`).
    Ballot,
}

impl VoteMode {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            VoteMode::All => "ALL",
            VoteMode::Any => "ANY",
            VoteMode::Ballot => "BALLOT",
        }
    }
}

/// Warp shuffle modes (`SHFL`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ShflMode {
    /// Read from an absolute lane index (`__shfl`).
    Idx,
    /// Read from `lane - delta` (`__shfl_up`).
    Up,
    /// Read from `lane + delta` (`__shfl_down`).
    Down,
    /// Read from `lane ^ mask` (`__shfl_xor`).
    Bfly,
}

impl ShflMode {
    /// SASS mnemonic suffix.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ShflMode::Idx => "IDX",
            ShflMode::Up => "UP",
            ShflMode::Down => "DOWN",
            ShflMode::Bfly => "BFLY",
        }
    }
}

/// Integer widths for conversions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IntWidth {
    /// Signed 32-bit.
    S32,
    /// Unsigned 32-bit.
    U32,
}

/// Floating-point widths for conversions (the simulated machine computes
/// in `f32`; `F64` is accepted for ISA completeness and modelled as
/// `f32` precision).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FloatWidth {
    /// 32-bit IEEE float.
    F32,
}

/// An operation: the opcode plus its operands.
///
/// The variants cover the subset of Kepler SASS needed by realistic
/// compute kernels, the SASSI trampoline of the paper's Figure 2, and
/// instrumentation handlers compiled under the 16-register cap.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are documented by convention: d = dest, a/b/c = sources
pub enum Op {
    // ---- data movement -------------------------------------------------
    /// `MOV d, a` — copy a 32-bit value.
    Mov { d: Gpr, a: Src },
    /// `MOV32I d, imm` — load a 32-bit immediate.
    Mov32I { d: Gpr, imm: u32 },
    /// `S2R d, sr` — read a special register.
    S2R { d: Gpr, sr: SpecialReg },

    // ---- integer arithmetic ---------------------------------------------
    /// `IADD[.X] d, a, b` — integer add; `x` consumes the carry flag,
    /// `cc` writes it. Subtraction is `neg_b`.
    IAdd {
        d: Gpr,
        a: Gpr,
        b: Src,
        x: bool,
        cc: bool,
    },
    /// `IADD` with negated b operand (`IADD d, a, -b`).
    ISub { d: Gpr, a: Gpr, b: Src },
    /// `IMUL d, a, b` — low 32 bits of the product.
    IMul {
        d: Gpr,
        a: Gpr,
        b: Src,
        signed: bool,
        hi: bool,
    },
    /// `IMAD d, a, b, c` — `d = a*b + c` (low 32 bits).
    IMad { d: Gpr, a: Gpr, b: Src, c: Gpr },
    /// `ISCADD d, a, b, shift` — `d = (a << shift) + b`.
    IScAdd { d: Gpr, a: Gpr, b: Src, shift: u8 },
    /// `IMNMX d, a, b` — integer min (`min == true`) or max.
    IMnMx {
        d: Gpr,
        a: Gpr,
        b: Src,
        min: bool,
        signed: bool,
    },
    /// `SHL d, a, b` — logical shift left.
    Shl { d: Gpr, a: Gpr, b: Src },
    /// `SHR d, a, b` — shift right; arithmetic if `signed`.
    Shr {
        d: Gpr,
        a: Gpr,
        b: Src,
        signed: bool,
    },
    /// `LOP.op d, a, b` — bitwise logic; `inv_b` complements b first.
    Lop {
        d: Gpr,
        op: LogicOp,
        a: Gpr,
        b: Src,
        inv_b: bool,
    },
    /// `POPC d, a` — population count.
    Popc { d: Gpr, a: Gpr },
    /// `FLO d, a` — find leading one (bit index of MSB set, `0xffffffff`
    /// if a is zero).
    Flo { d: Gpr, a: Gpr },
    /// `BREV d, a` — bit reverse.
    Brev { d: Gpr, a: Gpr },
    /// `SEL d, a, b, p` — `d = p ? a : b`.
    Sel {
        d: Gpr,
        a: Gpr,
        b: Src,
        p: PredReg,
        neg_p: bool,
    },

    // ---- floating point --------------------------------------------------
    /// `FADD d, a, b` — float add; `neg_a`/`neg_b` negate inputs.
    FAdd {
        d: Gpr,
        a: Gpr,
        b: Src,
        neg_a: bool,
        neg_b: bool,
    },
    /// `FMUL d, a, b`.
    FMul { d: Gpr, a: Gpr, b: Src },
    /// `FFMA d, a, b, c` — fused `a*b + c`.
    FFma {
        d: Gpr,
        a: Gpr,
        b: Src,
        c: Gpr,
        neg_b: bool,
        neg_c: bool,
    },
    /// `FMNMX d, a, b` — float min/max.
    FMnMx { d: Gpr, a: Gpr, b: Src, min: bool },
    /// `MUFU.func d, a` — special function unit.
    Mufu { d: Gpr, func: MufuFunc, a: Gpr },

    // ---- conversions ------------------------------------------------------
    /// `I2F d, a` — int to float.
    I2F { d: Gpr, a: Gpr, from: IntWidth },
    /// `F2I d, a` — float to int (round toward zero).
    F2I { d: Gpr, a: Gpr, to: IntWidth },

    // ---- predicates / CC ---------------------------------------------------
    /// `ISETP.cmp p, a, b` — integer compare into a predicate; the result
    /// is optionally ANDed with `combine` (possibly negated).
    ISetP {
        p: PredReg,
        cmp: CmpOp,
        a: Gpr,
        b: Src,
        signed: bool,
        combine: Option<(PredReg, bool)>,
    },
    /// `FSETP.cmp p, a, b` — float compare into a predicate.
    FSetP {
        p: PredReg,
        cmp: CmpOp,
        a: Gpr,
        b: Src,
    },
    /// `PSETP p, op, a, b` — predicate logic (`neg_*` complement inputs).
    PSetP {
        p: PredReg,
        op: LogicOp,
        a: PredReg,
        b: PredReg,
        neg_a: bool,
        neg_b: bool,
    },
    /// `P2R d` — pack predicate registers P0..P6 into bits 0..6 of d.
    P2R { d: Gpr },
    /// `R2P a` — unpack bits 0..6 of a into predicate registers P0..P6.
    R2P { a: Gpr },

    // ---- memory ---------------------------------------------------------
    /// `LD{G,L,S,.E} d, [addr]` — load. `spill` marks compiler-generated
    /// register fills (reported through `IsSpillOrFill`).
    Ld {
        d: Gpr,
        width: MemWidth,
        addr: MemAddr,
        spill: bool,
    },
    /// `ST{G,L,S,.E} [addr], v`.
    St {
        v: Gpr,
        width: MemWidth,
        addr: MemAddr,
        spill: bool,
    },
    /// `TLD d, [addr]` — texture-path load (read-only, classified as
    /// texture for SASSI purposes).
    Tld {
        d: Gpr,
        width: MemWidth,
        addr: MemAddr,
    },
    /// `ATOM d, op, [addr], v[, v2]` — atomic RMW returning the old value.
    Atom {
        d: Gpr,
        op: AtomOp,
        addr: MemAddr,
        v: Gpr,
        v2: Option<Gpr>,
        wide: bool,
    },
    /// `RED op, [addr], v` — reduction (atomic without return value).
    Red {
        op: AtomOp,
        addr: MemAddr,
        v: Gpr,
        wide: bool,
    },
    /// `MEMBAR` — memory fence.
    MemBar,

    // ---- warp-wide -------------------------------------------------------
    /// `VOTE.mode d, p` — warp vote; ballot result into `d` (RZ to
    /// discard), ANY/ALL verdict into `p_out` if given.
    Vote {
        mode: VoteMode,
        d: Gpr,
        p_out: Option<PredReg>,
        src: PredReg,
        neg_src: bool,
    },
    /// `SHFL.mode d, a, b, c` — warp shuffle; `p_out` is set if the
    /// source lane was in range.
    Shfl {
        mode: ShflMode,
        d: Gpr,
        a: Gpr,
        b: Src,
        c: Src,
        p_out: Option<PredReg>,
    },

    // ---- control flow ----------------------------------------------------
    /// `SSY target` — push a reconvergence point.
    Ssy { target: Label },
    /// `SYNC` — this path is done; park active lanes at the pending
    /// reconvergence point (predicated `@!P0 SYNC` parks only some lanes).
    Sync,
    /// `BRA target` — branch (conditional when guarded).
    Bra { target: Label, uniform: bool },
    /// `JCAL target` — absolute call. Targets a linked function or an
    /// instrumentation handler trap address.
    Jcal { target: Label },
    /// `RET` — return from call.
    Ret,
    /// `EXIT` — thread terminates.
    Exit,
    /// `BAR.SYNC` — block-wide barrier.
    BarSync,
    /// `NOP`.
    Nop,
}

impl Op {
    /// The control-transfer target of the operation, if it has one —
    /// the operand a linker relocates and a decoder resolves.
    pub fn target(&self) -> Option<&Label> {
        match self {
            Op::Bra { target, .. } | Op::Ssy { target } | Op::Jcal { target } => Some(target),
            _ => None,
        }
    }

    /// Mutable access to the control-transfer target, if any.
    pub fn target_mut(&mut self) -> Option<&mut Label> {
        match self {
            Op::Bra { target, .. } | Op::Ssy { target } | Op::Jcal { target } => Some(target),
            _ => None,
        }
    }
}
