//! # sassi-isa — a SASS-like GPU assembly ISA
//!
//! This crate defines the machine ISA of the simulated GPU used throughout
//! the SASSI reproduction. It plays the role NVIDIA's native **SASS** ISA
//! plays in the paper *Flexible Software Profiling of GPU Architectures*
//! (ISCA 2015): the level at which the backend compiler emits code and at
//! which the SASSI instrumentor operates.
//!
//! The ISA is deliberately Kepler-flavoured:
//!
//! * 255 general-purpose 32-bit registers `R0..R254` plus the always-zero
//!   register `RZ`; 64-bit values live in aligned, adjacent register pairs.
//! * seven predicate registers `P0..P6` plus the always-true `PT`, and a
//!   condition-code register `CC`.
//! * every instruction can be guarded by a predicate (`@P0 ...`,
//!   `@!P2 ...`).
//! * SIMT control flow via `SSY`/`SYNC` reconvergence and predicated
//!   branches, warp-wide `VOTE`/`SHFL`/`POPC`, block-wide `BAR.SYNC`.
//! * explicit memory spaces (global / local / shared / generic) with
//!   coalescing-relevant widths of 1–16 bytes.
//!
//! The crate is purely *definitional*: execution semantics live in
//! `sassi-sim`, compilation in `sassi-kir`, and instrumentation in the
//! `sassi` core crate. What lives here is everything SASSI needs to ask
//! about an instruction statically: its operands, its register
//! defs/uses, and its *classification* (memory / control transfer /
//! numeric / texture / sync — the predicates exposed to handlers through
//! `SASSIBeforeParams` in the paper's Figure 2).
//!
//! ```
//! use sassi_isa::{Gpr, Instr, Op, Src, Guard};
//!
//! let i = Instr::new(Op::IAdd {
//!     d: Gpr::new(4),
//!     a: Gpr::RZ,
//!     b: Src::Imm(0x15),
//!     x: false,
//!     cc: false,
//! });
//! assert!(i.class().is_numeric());
//! assert_eq!(i.to_string(), "IADD R4, RZ, 0x15");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod class;
mod fmt;
mod instr;
mod op;
mod prog;
mod reg;
mod rw;
mod space;

pub use class::{InstrClass, OpcodeKind};
#[cfg(debug_assertions)]
pub use instr::clone_count;
pub use instr::{Guard, Instr, Label, MemAddr, Src};
pub use op::{
    AtomOp, CmpOp, FloatWidth, IntWidth, LogicOp, MemWidth, MufuFunc, Op, ShflMode, VoteMode,
};
pub use prog::{Function, FunctionMeta};
pub use reg::{cbank0, CBankAddr, Gpr, PredReg, SpecialReg};
pub use rw::{RegDefsUses, RegSet};
pub use space::{
    is_global, resolve_generic, AddrSpace, GENERIC_LOCAL_TAG, GENERIC_SHARED_TAG, GLOBAL_HEAP_BASE,
    NULL_GUARD_TOP,
};

/// Number of threads in a warp. Fixed at 32, as on all NVIDIA
/// architectures the paper targets (Fermi, Kepler, Maxwell).
pub const WARP_SIZE: usize = 32;

/// A 32-lane mask, one bit per thread in a warp (bit *n* = lane *n*).
pub type LaneMask = u32;

/// Mask with all 32 lanes active.
pub const FULL_MASK: LaneMask = u32::MAX;

/// Iterator over the set lanes of a [`LaneMask`], in ascending lane
/// order. `Copy`, allocation-free, and exact-sized (`len()` is the
/// mask's popcount), so it can replace `Vec<usize>` lane lists in hot
/// paths without changing iteration order.
#[derive(Clone, Copy, Debug)]
pub struct Lanes(LaneMask);

impl Iterator for Lanes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let lane = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(lane)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Lanes {}
impl std::iter::FusedIterator for Lanes {}

/// Iterates the set lanes of `mask` in ascending order.
#[inline]
pub fn lanes(mask: LaneMask) -> Lanes {
    Lanes(mask)
}

#[cfg(test)]
mod lane_tests {
    use super::*;

    #[test]
    fn lanes_match_filter_iteration() {
        for mask in [0u32, 1, 0x8000_0000, 0xDEAD_BEEF, FULL_MASK] {
            let via_mask: Vec<usize> = lanes(mask).collect();
            let via_filter: Vec<usize> = (0..WARP_SIZE).filter(|l| mask & (1 << l) != 0).collect();
            assert_eq!(via_mask, via_filter, "mask {mask:#x}");
            assert_eq!(lanes(mask).len(), mask.count_ones() as usize);
        }
    }

    #[test]
    fn lanes_is_fused_and_copy() {
        let mut it = lanes(0b101);
        let copy = it;
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), Some(2));
        assert_eq!(it.next(), None);
        assert_eq!(it.next(), None);
        assert_eq!(copy.count(), 2);
    }
}
