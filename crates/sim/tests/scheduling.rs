//! Machine-level behaviour: SM scaling, occupancy limits, barrier
//! semantics with retiring warps, and cache locality effects on cycle
//! counts.

use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{Device, GpuConfig, LaunchDims, Module, NoHandlers};

fn compute_kernel() -> Module {
    let mut b = KernelBuilder::kernel("work");
    let tid = b.global_tid_x();
    let out = b.param_ptr(0);
    let acc = b.var_u32(1u32);
    let bound = b.iconst(200);
    b.for_range(0u32, bound, 1, |b, i| {
        let t = b.imad(acc, 17u32, i);
        b.assign(acc, t);
    });
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
}

fn run_with(cfg: GpuConfig, module: &Module, blocks: u32) -> u64 {
    let mut dev = Device::new(cfg, 16 << 20);
    let out = dev.mem.alloc(4 * 32 * blocks as u64, 8).unwrap();
    let res = dev
        .launch(
            module,
            "work",
            LaunchDims::linear(blocks, 32),
            &[out],
            &mut NoHandlers,
            0,
            1 << 32,
        )
        .unwrap();
    assert!(res.is_ok());
    res.stats.cycles
}

#[test]
fn more_sms_finish_sooner() {
    let module = compute_kernel();
    let one = run_with(
        GpuConfig {
            num_sms: 1,
            ..GpuConfig::default()
        },
        &module,
        64,
    );
    let eight = run_with(
        GpuConfig {
            num_sms: 8,
            ..GpuConfig::default()
        },
        &module,
        64,
    );
    assert!(
        eight * 4 < one,
        "8 SMs should be much faster than 1 on 64 blocks: {one} vs {eight}"
    );
}

#[test]
fn warp_parallelism_hides_latency() {
    // The same total work in one block (serialized on one SM) vs many.
    let module = compute_kernel();
    let cfg = GpuConfig {
        num_sms: 1,
        max_warps_per_sm: 16,
        ..GpuConfig::default()
    };
    let few_warps = run_with(cfg, &module, 2);
    let cfg1 = GpuConfig {
        num_sms: 1,
        max_warps_per_sm: 2,
        ..GpuConfig::default()
    };
    let starved = run_with(cfg1, &module, 2);
    assert!(
        few_warps <= starved,
        "more resident warps never hurt: {few_warps} vs {starved}"
    );
}

#[test]
fn barrier_releases_after_early_warp_exit() {
    // Warp 0 exits before the barrier; warp 1 must still be released
    // (the simulator recomputes the barrier target as warps retire).
    let mut b = KernelBuilder::kernel("bar_exit");
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let w = b.shr(tid, 5u32);
    let is_w0 = b.setp_u32_eq(w, 0u32);
    b.exit_if(is_w0);
    b.bar_sync();
    let one = b.iconst(1);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, one);
    let module = Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 64, 8).unwrap();
    let res = dev
        .launch(
            &module,
            "bar_exit",
            LaunchDims::linear(1, 64),
            &[out],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok(), "{:?}", res.outcome);
    assert_eq!(
        dev.mem.read_u32(out + 4 * 40).unwrap(),
        1,
        "warp 1 proceeded"
    );
    assert_eq!(
        dev.mem.read_u32(out).unwrap(),
        0,
        "warp 0 exited before its store"
    );
}

#[test]
fn cache_locality_shows_in_cycles() {
    // Re-reading one hot line repeatedly is much faster than streaming.
    let hot = {
        let mut b = KernelBuilder::kernel("work");
        let tid = b.global_tid_x();
        let buf = b.param_ptr(0);
        let acc = b.var_u32(0u32);
        let bound = b.iconst(64);
        b.for_range(0u32, bound, 1, |b, _i| {
            let v = b.ld_global_u32(buf);
            let t = b.iadd(acc, v);
            b.assign(acc, t);
        });
        let e = b.lea(buf, tid, 2);
        b.st_global_u32(e, acc);
        Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
    };
    let streaming = {
        let mut b = KernelBuilder::kernel("work");
        let tid = b.global_tid_x();
        let buf = b.param_ptr(0);
        let acc = b.var_u32(0u32);
        let bound = b.iconst(64);
        b.for_range(0u32, bound, 1, |b, i| {
            // stride 4KiB per iteration: guaranteed misses
            let big = b.shl(i, 10u32);
            let idx = b.iadd(big, tid);
            let e = b.lea(buf, idx, 2);
            let v = b.ld_global_u32(e);
            let t = b.iadd(acc, v);
            b.assign(acc, t);
        });
        let e = b.lea(buf, tid, 2);
        b.st_global_u32(e, acc);
        Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap()
    };
    let cfg = GpuConfig::default();
    let mut dev = Device::new(cfg, 64 << 20);
    let buf = dev.mem.alloc(4 << 20, 8).unwrap();
    let a = dev
        .launch(
            &hot,
            "work",
            LaunchDims::linear(1, 32),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 32,
        )
        .unwrap();
    let mut dev2 = Device::new(cfg, 64 << 20);
    let buf2 = dev2.mem.alloc(4 << 20, 8).unwrap();
    let c = dev2
        .launch(
            &streaming,
            "work",
            LaunchDims::linear(1, 32),
            &[buf2],
            &mut NoHandlers,
            0,
            1 << 32,
        )
        .unwrap();
    assert!(a.is_ok() && c.is_ok());
    assert!(
        c.stats.cycles > 2 * a.stats.cycles,
        "streaming ({}) should be much slower than hot-line ({})",
        c.stats.cycles,
        a.stats.cycles
    );
    assert!(c.mem.l1.hit_rate() < a.mem.l1.hit_rate());
}

#[test]
fn occupancy_respects_shared_memory() {
    // A block using 40 KiB of shared memory allows only one CTA per SM
    // (48 KiB budget); the launch still completes correctly.
    let mut b = KernelBuilder::kernel("bigshared");
    let slot = b.shared_alloc(40 * 1024);
    let tid = b.tid_x();
    let out = b.param_ptr(0);
    let off = b.shl(tid, 2u32);
    let addr = b.iadd(off, slot.offset);
    let v = b.imul(tid, 3u32);
    b.st_shared_u32(addr, 0, v);
    b.bar_sync();
    let rv = b.ld_shared_u32(addr, 0);
    let gid = b.global_tid_x();
    let e = b.lea(out, gid, 2);
    b.st_global_u32(e, rv);
    let module = Module::link(&[Compiler::new().compile(&b.finish()).unwrap()]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(4 * 32 * 8, 8).unwrap();
    let res = dev
        .launch(
            &module,
            "bigshared",
            LaunchDims::linear(8, 32),
            &[out],
            &mut NoHandlers,
            0,
            1 << 28,
        )
        .unwrap();
    assert!(res.is_ok());
    for blk in 0..8u64 {
        for t in 0..32u64 {
            assert_eq!(
                dev.mem.read_u32(out + 4 * (blk * 32 + t)).unwrap(),
                t as u32 * 3
            );
        }
    }
}

#[test]
fn oversized_block_rejected() {
    let module = compute_kernel();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(1 << 16, 8).unwrap();
    // 17 warps per block exceeds max_warps_per_sm = 16.
    let err = dev.launch(
        &module,
        "work",
        LaunchDims::linear(1, 17 * 32),
        &[out],
        &mut NoHandlers,
        0,
        1 << 24,
    );
    assert!(err.is_err());
}
