//! Differential tests: the pre-decoded µop interpreter
//! ([`ExecMode::Decoded`]) must be observationally identical to the
//! reference interpreter ([`ExecMode::Reference`], the original seed
//! semantics) — same outputs, same memory, same `LaunchStats` to the
//! cycle, same fault outcomes — across the whole benchmark registry, a
//! random kernel corpus, and hand-built fault-path modules.

use proptest::prelude::*;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_kir::{Compiler, KernelBuilder, V32};
use sassi_rt::{LaunchRecord, ModuleBuilder, Runtime};
use sassi_sim::{
    Device, ExecMode, FaultKind, KernelOutcome, LaunchDims, LaunchResult, LinkedFunction, Module,
    NoHandlers,
};
use sassi_workloads::{all_workloads, RunFailure, Workload, WorkloadOutput};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Registry workloads: every benchmark, both interpreters, everything
// observable compared.

fn run_workload(
    w: &dyn Workload,
    mode: ExecMode,
) -> (Result<WorkloadOutput, RunFailure>, Vec<LaunchRecord>) {
    let mut mb = ModuleBuilder::new();
    for k in w.kernels() {
        mb.add_kernel(k);
    }
    let module = mb.build(None).expect("build");
    let mut rt = Runtime::with_defaults();
    rt.device.exec_mode = mode;
    // This suite is the cycle-exact differential against the reference
    // interpreter, so the decoded engine must single-step: the
    // block-stepped scheduler is instruction-identical but folds
    // intra-block stalls, shifting cycle counts (its own equivalence
    // suite lives in `block_step.rs` / `cta_parallel.rs`).
    rt.set_block_step(false);
    let out = w.execute(&mut rt, &module, &mut NoHandlers);
    (out, rt.records().to_vec())
}

fn check_workload(w: &dyn Workload) {
    let name = w.name();
    let (out_d, rec_d) = run_workload(w, ExecMode::Decoded);
    let (out_r, rec_r) = run_workload(w, ExecMode::Reference);
    assert_eq!(out_d, out_r, "{name}: output diverges across exec modes");
    assert_eq!(
        rec_d.len(),
        rec_r.len(),
        "{name}: launch count diverges across exec modes"
    );
    for (d, r) in rec_d.iter().zip(&rec_r) {
        // LaunchRecord equality covers outcome, every LaunchStats
        // counter (cycles, instrs, divergence, issue-class breakdown)
        // and the memory-system counters.
        assert_eq!(d, r, "{name}: launch {} diverges", d.info.launch_index);
        assert_eq!(
            d.result.stats.issue.total(),
            d.result.stats.warp_instrs,
            "{name}: issue-class counters must partition warp_instrs"
        );
    }
}

#[test]
fn registry_workloads_agree_across_modes() {
    // Each workload runs twice (once per mode); spread them over worker
    // threads so the debug-profile suite stays fast.
    let workloads = all_workloads();
    let n_threads = 8;
    std::thread::scope(|s| {
        let mut chunks: Vec<Vec<Box<dyn Workload>>> = (0..n_threads).map(|_| Vec::new()).collect();
        for (i, w) in workloads.into_iter().enumerate() {
            chunks[i % n_threads].push(w);
        }
        for chunk in chunks {
            s.spawn(move || {
                for w in &chunk {
                    check_workload(w.as_ref());
                }
            });
        }
    });
}

// ---------------------------------------------------------------------
// Random kernel corpus: straight-line arithmetic and nested divergence,
// plain and fully instrumented (the instrumented variant exercises the
// Trap µop and the handler return path).

#[derive(Clone, Debug)]
enum Step {
    Add(usize, usize),
    Mul(usize, usize),
    Xor(usize, usize),
    Shl(usize, u32),
    SelLt(usize, usize, usize),
    If { bit: u8, then_n: u8, else_n: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Xor(a, b)),
        (any::<usize>(), 0u32..32).prop_map(|(a, s)| Step::Shl(a, s)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(a, b, c)| Step::SelLt(a, b, c)),
        (0u8..5, 1u8..4, 0u8..4).prop_map(|(bit, t, e)| Step::If {
            bit,
            then_n: t,
            else_n: e
        }),
    ]
}

fn build_kernel(seeds: &[u32], steps: &[Step]) -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("prog");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let mut vals: Vec<V32> = seeds.iter().map(|&s| b.iadd(tid, s)).collect();
    for st in steps {
        let n = vals.len();
        let v = match st {
            Step::Add(a, c) => b.iadd(vals[a % n], vals[c % n]),
            Step::Mul(a, c) => b.imul(vals[a % n], vals[c % n]),
            Step::Xor(a, c) => b.xor(vals[a % n], vals[c % n]),
            Step::Shl(a, s) => b.shl(vals[a % n], *s),
            Step::SelLt(a, c, d) => {
                let p = b.setp_u32_lt(vals[a % n], vals[c % n]);
                b.sel(p, vals[a % n], vals[d % n])
            }
            Step::If {
                bit,
                then_n,
                else_n,
            } => {
                let last = *vals.last().unwrap();
                let t = b.shr(tid, *bit as u32);
                let tb = b.and(t, 1u32);
                let taken = b.setp_u32_eq(tb, 1u32);
                let result = b.var_u32(0u32);
                b.if_else(
                    taken,
                    |b| {
                        let mut v = last;
                        for _ in 0..*then_n {
                            let one = b.iconst(1);
                            v = b.imad(v, 2u32, one);
                        }
                        b.assign(result, v);
                    },
                    |b| {
                        let mut v = last;
                        for _ in 0..*else_n {
                            v = b.iadd(v, 13u32);
                        }
                        b.assign(result, v);
                    },
                );
                result
            }
        };
        vals.push(v);
    }
    let mut acc = b.iconst(0);
    for v in &vals {
        acc = b.iadd(acc, *v);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    b.finish()
}

/// Runs a linked module in `mode`; returns the launch result and the
/// output buffer contents.
fn run_mode(
    module: &Module,
    mode: ExecMode,
    handlers: Option<&mut Sassi>,
) -> (LaunchResult, Vec<u32>) {
    let mut dev = Device::with_defaults();
    dev.exec_mode = mode;
    dev.block_step = false; // cycle-exact differential: single-step
    let out = dev.mem.alloc(64 * 4, 8).unwrap();
    let res = match handlers {
        Some(s) => dev
            .launch(
                module,
                "prog",
                LaunchDims::linear(2, 32),
                &[out],
                s,
                0,
                1 << 32,
            )
            .unwrap(),
        None => dev
            .launch(
                module,
                "prog",
                LaunchDims::linear(2, 32),
                &[out],
                &mut NoHandlers,
                0,
                1 << 32,
            )
            .unwrap(),
    };
    assert!(res.is_ok(), "{:?}", res.outcome);
    let mem = (0..64)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect();
    (res, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random kernels (arithmetic, predication, nested divergence) give
    /// identical results, stats and memory in both modes — plain and
    /// under every-site instrumentation.
    #[test]
    fn random_kernels_agree_across_modes(
        seeds in prop::collection::vec(any::<u32>(), 2..6),
        steps in prop::collection::vec(step_strategy(), 3..16),
    ) {
        let kf = build_kernel(&seeds, &steps);
        let func = Compiler::new().compile(&kf).unwrap();

        let module = Module::link(std::slice::from_ref(&func)).unwrap();
        let (res_d, mem_d) = run_mode(&module, ExecMode::Decoded, None);
        let (res_r, mem_r) = run_mode(&module, ExecMode::Reference, None);
        prop_assert_eq!(&res_d, &res_r, "plain launch result diverges");
        prop_assert_eq!(&mem_d, &mem_r, "plain memory diverges");

        // Instrumented: every instruction becomes a trap site, so the
        // decoded Trap µop and handler resume path run constantly.
        let mut sassi = Sassi::new();
        sassi.on_before(SiteFilter::ALL, InfoFlags::NONE, Box::new(FnHandler::free(|_| {})));
        let inst = sassi.apply(&func, 0);
        let imodule = Module::link(std::slice::from_ref(&inst)).unwrap();
        let (ires_d, imem_d) = run_mode(&imodule, ExecMode::Decoded, Some(&mut sassi));
        let (ires_r, imem_r) = run_mode(&imodule, ExecMode::Reference, Some(&mut sassi));
        prop_assert_eq!(&ires_d, &ires_r, "instrumented launch result diverges");
        prop_assert_eq!(&imem_d, &imem_r, "instrumented memory diverges");
        prop_assert!(ires_d.stats.handler_calls > 0);
        prop_assert_eq!(&mem_d, &imem_d, "instrumentation not transparent");
    }
}

// ---------------------------------------------------------------------
// Fault paths: ill-formed control transfers must fault identically —
// the decode stage turns them into `UOp::Invalid` at link time, but the
// fault must only fire if a warp actually reaches the site, with the
// exact FaultKind the reference interpreter raises.

use sassi_isa::{FunctionMeta, Instr, Label, Op};

fn raw_module(code: Vec<Instr>) -> Module {
    let end = code.len() as u32;
    let f = LinkedFunction {
        name: "k".to_string(),
        entry: 0,
        end,
        meta: FunctionMeta {
            reg_high_water: 8,
            ..FunctionMeta::default()
        },
    };
    Module::from_parts(code, vec![f], BTreeMap::new())
}

fn launch_raw(module: &Module, mode: ExecMode) -> LaunchResult {
    launch_raw_with(module, mode, false)
}

fn launch_raw_with(module: &Module, mode: ExecMode, block_step: bool) -> LaunchResult {
    let mut dev = Device::with_defaults();
    dev.exec_mode = mode;
    dev.block_step = block_step;
    dev.launch(
        module,
        "k",
        LaunchDims::linear(1, 32),
        &[],
        &mut NoHandlers,
        0,
        1 << 20,
    )
    .unwrap()
}

fn assert_fault_parity(module: &Module, want: FaultKind) {
    let d = launch_raw(module, ExecMode::Decoded);
    let r = launch_raw(module, ExecMode::Reference);
    assert_eq!(d, r, "fault outcome diverges across exec modes");
    match d.outcome {
        KernelOutcome::Fault(info) => assert_eq!(info.kind, want),
        other => panic!("expected fault {want:?}, got {other:?}"),
    }
    // The block-stepped scheduler must raise the exact same precise
    // fault (kind, pc, sm) even though it batches µops per pick.
    let b = launch_raw_with(module, ExecMode::Decoded, true);
    assert_eq!(
        b.outcome, d.outcome,
        "fault outcome diverges under block stepping"
    );
}

#[test]
fn far_branch_faults_identically() {
    let m = raw_module(vec![
        Instr::new(Op::Bra {
            target: Label::Pc(999),
            uniform: false,
        }),
        Instr::new(Op::Exit),
    ]);
    assert_fault_parity(&m, FaultKind::InvalidPc { pc: 999 });
}

#[test]
fn non_pc_branch_label_faults_identically() {
    let m = raw_module(vec![
        Instr::new(Op::Bra {
            target: Label::Func(0),
            uniform: false,
        }),
        Instr::new(Op::Exit),
    ]);
    assert_fault_parity(&m, FaultKind::InvalidPc { pc: u64::MAX });
}

#[test]
fn unlinked_call_faults_identically() {
    let m = raw_module(vec![
        Instr::new(Op::Jcal {
            target: Label::Func(0),
        }),
        Instr::new(Op::Exit),
    ]);
    assert_fault_parity(&m, FaultKind::InvalidPc { pc: 0 });
}

#[test]
fn unreached_invalid_site_is_harmless() {
    // The bad branch sits after EXIT: decode marks it UOp::Invalid, but
    // no warp reaches it, so the launch completes in both modes.
    let m = raw_module(vec![
        Instr::new(Op::Exit),
        Instr::new(Op::Bra {
            target: Label::Pc(999),
            uniform: false,
        }),
    ]);
    let d = launch_raw(&m, ExecMode::Decoded);
    let r = launch_raw(&m, ExecMode::Reference);
    assert_eq!(d, r);
    assert!(d.is_ok());
}

// ---------------------------------------------------------------------
// The zero-allocation claim: a launch in either mode must never clone
// an `Instr` (the seed interpreter cloned one per warp-step). Only
// meaningful under cfg(debug_assertions), where the ISA crate counts
// clones.

#[cfg(debug_assertions)]
#[test]
fn launches_never_clone_instructions() {
    let mut b = KernelBuilder::kernel("prog");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let v = b.imul(tid, 3u32);
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let func = Compiler::new().compile(&b.finish()).unwrap();
    let module = Module::link(std::slice::from_ref(&func)).unwrap();

    for mode in [ExecMode::Decoded, ExecMode::Reference] {
        let mut dev = Device::with_defaults();
        dev.exec_mode = mode;
        let out = dev.mem.alloc(64 * 4, 8).unwrap();
        let before = sassi_isa::clone_count::current();
        let res = dev
            .launch(
                &module,
                "prog",
                LaunchDims::linear(2, 32),
                &[out],
                &mut NoHandlers,
                0,
                1 << 32,
            )
            .unwrap();
        let after = sassi_isa::clone_count::current();
        assert!(res.is_ok());
        assert_eq!(
            after - before,
            0,
            "{mode:?} execution cloned Instrs in the hot loop"
        );
    }
}
