//! The block-stepped scheduler's contract, in two halves:
//!
//! 1. **Table invariants** — over random instruction streams, the
//!    decode-time basic-block table is a partition of the pc space
//!    whose internal pcs are exactly the non-boundary µops and whose
//!    block-ending pcs are exactly the control-transfer/barrier µops
//!    (or the end of the module).
//! 2. **Execution equivalence** — running whole blocks per scheduler
//!    pick must leave every observable except the cycle counter
//!    untouched: outputs, memory, all instruction-derived
//!    `LaunchStats` counters, handler activity and precise faults are
//!    byte-identical to the single-stepped decoded interpreter.

use proptest::prelude::*;
use sassi::{FnHandler, InfoFlags, Sassi, SiteFilter};
use sassi_isa::{FunctionMeta, Instr, Label, Op};
use sassi_kir::{Compiler, KernelBuilder};
use sassi_sim::{
    is_block_boundary, DecodedModule, Device, ExecMode, KernelOutcome, LaunchDims, LaunchResult,
    LaunchStats, LinkedFunction, Module, NoHandlers,
};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Half 1: table invariants over arbitrary instruction streams.

/// A compact generator of instruction streams that mixes straight-line
/// µops with every block-ending shape: branches (valid and wild),
/// reconvergence pushes/pops, barriers, returns, calls to functions
/// (unlinked → `Invalid`) and to handlers (→ `Trap`, which must NOT
/// end a block).
fn instr_strategy(len: u32) -> impl Strategy<Value = Instr> {
    // The vendored proptest shim has no weighted arms or `Just`; a
    // single discriminant draw keeps straight-line µops (Nop) common
    // enough that runs of useful length appear.
    (0u32..16, 0..len * 2, 0u32..4).prop_map(|(kind, pc, h)| {
        Instr::new(match kind {
            0..=5 => Op::Nop,
            6 => Op::MemBar,
            7 | 8 => Op::Bra {
                target: Label::Pc(pc),
                uniform: false,
            },
            9 => Op::Ssy {
                target: Label::Pc(pc),
            },
            10 => Op::Sync,
            11 => Op::BarSync,
            12 => Op::Ret,
            13 => Op::Exit,
            14 => Op::Jcal {
                target: Label::Handler(h),
            },
            _ => Op::Jcal {
                target: Label::Func(h),
            },
        })
    })
}

fn raw_module(code: Vec<Instr>) -> Module {
    let end = code.len() as u32;
    let f = LinkedFunction {
        name: "k".to_string(),
        entry: 0,
        end,
        meta: FunctionMeta {
            reg_high_water: 8,
            ..FunctionMeta::default()
        },
    };
    Module::from_parts(code, vec![f], BTreeMap::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every pc belongs to exactly one block, blocks tile `0..len`
    /// contiguously, and a pc is the last of its block iff its µop is
    /// a block boundary or the module's final instruction.
    #[test]
    fn block_table_partitions_pc_space(
        code in prop::collection::vec(instr_strategy(64), 1..64),
    ) {
        let module = raw_module(code);
        let dm = DecodedModule::decode(&module);
        let n = dm.len() as u32;
        let blocks = dm.blocks();

        // Partition: contiguous, non-empty, covering exactly 0..n.
        prop_assert!(!blocks.is_empty());
        prop_assert_eq!(blocks[0].start, 0);
        prop_assert_eq!(blocks[blocks.len() - 1].end, n);
        for w in blocks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start, "blocks must tile the pc space");
            prop_assert!(w[0].start < w[0].end, "blocks are non-empty");
        }

        for pc in 0..n {
            // Membership: block_index agrees with the block extents.
            let bi = dm.block_index(pc).expect("in-range pc") as usize;
            let b = blocks[bi];
            prop_assert!(b.start <= pc && pc < b.end, "pc {} outside its block {:?}", pc, b);
            prop_assert_eq!(dm.block_end(pc), b.end);

            // Boundary coincidence: last-of-block ⟺ boundary µop or
            // final instruction; internal pcs are never boundaries.
            let uop = &dm.get(pc).unwrap().uop;
            let is_last = pc + 1 == b.end;
            if is_block_boundary(uop) {
                prop_assert!(is_last, "boundary µop at {} must end its block", pc);
            } else if is_last {
                prop_assert_eq!(b.end, n, "only the module end may close a block \
                                           on a non-boundary µop (pc {})", pc);
            }
        }

        // Out-of-range pcs degrade to a single-fetch extent.
        prop_assert_eq!(dm.block_end(n), n + 1);
    }
}

// ---------------------------------------------------------------------
// Half 2: execution equivalence, block-stepped vs single-stepped.

/// Launches `module`'s kernel `k` on a decoded device with the given
/// stepping mode; returns the result and the first `words` of `buf0`.
fn run_decoded(
    module: &Module,
    kernel: &str,
    dims: LaunchDims,
    out_words: u64,
    block_step: bool,
    sassi: Option<&mut Sassi>,
) -> (LaunchResult, Vec<u32>) {
    let mut dev = Device::with_defaults();
    dev.exec_mode = ExecMode::Decoded;
    dev.block_step = block_step;
    let out = dev.mem.alloc(out_words * 4, 8).unwrap();
    let res = match sassi {
        Some(s) => dev.launch(module, kernel, dims, &[out], s, 0, 1 << 32),
        None => dev.launch(module, kernel, dims, &[out], &mut NoHandlers, 0, 1 << 32),
    }
    .unwrap();
    let mem = (0..out_words)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect();
    (res, mem)
}

/// Every instruction-derived `LaunchStats` counter — everything except
/// `cycles` and the cycle-weighted `handler_cycles` share of stalls.
fn work_counters(s: &LaunchStats) -> (u64, u64, u64, u64, u64, u64, u64, [u64; 4]) {
    (
        s.warp_instrs,
        s.thread_instrs,
        s.divergent_branches,
        s.cond_branches,
        s.handler_calls,
        s.handler_cycles,
        s.blocks,
        [
            s.issue.memory,
            s.issue.control,
            s.issue.numeric,
            s.issue.misc,
        ],
    )
}

/// Kernel with nested divergence, a barrier astride the divergent
/// region's reconvergence point, and global traffic — every boundary
/// kind on one hot path.
fn divergent_barrier_kernel(n_then: u32, n_else: u32, bit: u32) -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("k");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let t = b.shr(tid, bit);
    let tb = b.and(t, 1u32);
    let taken = b.setp_u32_eq(tb, 1u32);
    let acc = b.var_u32(0u32);
    b.if_else(
        taken,
        |b| {
            let mut v = tid;
            for _ in 0..n_then {
                v = b.imul(v, 3u32);
            }
            b.assign(acc, v);
        },
        |b| {
            let mut v = tid;
            for _ in 0..n_else {
                v = b.iadd(v, 7u32);
            }
            b.assign(acc, v);
        },
    );
    b.bar_sync();
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, acc);
    b.finish()
}

/// Kernel where lanes selected by `bit` store through a wild pointer —
/// the precise-fault case. Lanes fault mid-module with live stores
/// before and after the faulting site.
fn faulting_kernel(bit: u32, n_pre: u32) -> sassi_kir::KFunction {
    let mut b = KernelBuilder::kernel("k");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let mut v = tid;
    for _ in 0..n_pre {
        v = b.iadd(v, 11u32);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let t = b.shr(tid, bit);
    let tb = b.and(t, 1u32);
    let taken = b.setp_u32_eq(tb, 1u32);
    b.if_else(
        taken,
        |b| {
            // 64 MiB past the base: outside every allocation, and small
            // enough to survive the 32-bit shift inside `lea`.
            let wild = b.iconst(0x0100_0000u32);
            let e = b.lea(out, wild, 2);
            b.st_global_u32(e, wild);
        },
        |_| {},
    );
    let e2 = b.lea(out, tid, 2);
    b.st_global_u32(e2, v);
    b.finish()
}

fn check_equivalent(module: &Module, dims: LaunchDims, out_words: u64, instrument: bool) {
    let (mut s_single, mut s_block) = (Sassi::new(), Sassi::new());
    for s in [&mut s_single, &mut s_block] {
        s.on_before(
            SiteFilter::ALL,
            InfoFlags::NONE,
            Box::new(FnHandler::free(|_| {})),
        );
    }
    let (res_s, mem_s) = run_decoded(
        module,
        "k",
        dims,
        out_words,
        false,
        instrument.then_some(&mut s_single),
    );
    let (res_b, mem_b) = run_decoded(
        module,
        "k",
        dims,
        out_words,
        true,
        instrument.then_some(&mut s_block),
    );
    assert_eq!(res_b.outcome, res_s.outcome, "outcome diverges");
    assert_eq!(mem_b, mem_s, "memory diverges");
    if matches!(res_s.outcome, KernelOutcome::Completed) {
        assert_eq!(
            work_counters(&res_b.stats),
            work_counters(&res_s.stats),
            "instruction-derived stats diverge"
        );
        assert_eq!(res_b.mem, res_s.mem, "memory-system counters diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Divergence + barrier + memory kernels: block-stepped execution
    /// is byte-identical to single-step on everything but cycles, with
    /// and without every-site instrumentation (traps inside blocks).
    #[test]
    fn block_step_matches_single_step(
        n_then in 0u32..4,
        n_else in 0u32..4,
        bit in 0u32..5,
        instrument in any::<bool>(),
    ) {
        let kf = divergent_barrier_kernel(n_then, n_else, bit);
        let plain = Compiler::new().compile(&kf).unwrap();
        let func = if instrument {
            let mut s = Sassi::new();
            s.on_before(SiteFilter::ALL, InfoFlags::NONE, Box::new(FnHandler::free(|_| {})));
            s.apply(&plain, 0)
        } else {
            plain
        };
        let module = Module::link(std::slice::from_ref(&func)).unwrap();
        check_equivalent(&module, LaunchDims::linear(2, 64), 128, instrument);
    }

    /// Faulting kernels: the block-stepped scheduler reports the exact
    /// same precise fault (kind, pc, sm) and identical memory effects
    /// up to the fault.
    #[test]
    fn block_step_preserves_precise_faults(
        bit in 0u32..5,
        n_pre in 0u32..4,
    ) {
        let kf = faulting_kernel(bit, n_pre);
        let func = Compiler::new().compile(&kf).unwrap();
        let module = Module::link(std::slice::from_ref(&func)).unwrap();
        let (res_s, mem_s) = run_decoded(&module, "k", LaunchDims::linear(2, 32), 64, false, None);
        let (res_b, mem_b) = run_decoded(&module, "k", LaunchDims::linear(2, 32), 64, true, None);
        prop_assert!(matches!(res_s.outcome, KernelOutcome::Fault(_)), "expected a fault");
        prop_assert_eq!(res_b.outcome, res_s.outcome, "fault identity diverges");
        prop_assert_eq!(mem_b, mem_s, "pre-fault memory diverges");
    }
}

/// A trap-dense straight-line kernel: with every-site instrumentation
/// the whole body is one block full of `Trap` µops — the case that
/// motivates keeping traps out of the boundary set.
#[test]
fn traps_do_not_fragment_blocks() {
    let mut b = KernelBuilder::kernel("k");
    let out = b.param_ptr(0);
    let tid = b.global_tid_x();
    let mut v = tid;
    for i in 0..8 {
        v = b.iadd(v, i + 1);
    }
    let e = b.lea(out, tid, 2);
    b.st_global_u32(e, v);
    let plain = Compiler::new().compile(&b.finish()).unwrap();
    let mut s = Sassi::new();
    s.on_before(
        SiteFilter::ALL,
        InfoFlags::NONE,
        Box::new(FnHandler::free(|_| {})),
    );
    let inst = s.apply(&plain, 0);
    let module = Module::link(std::slice::from_ref(&inst)).unwrap();
    let dm = DecodedModule::decode(&module);
    assert!(dm.trap_count() > 0);
    // Trap sites sit strictly inside blocks: none ends a block.
    for site in dm.sites() {
        assert!(
            dm.block_end(site.pc) > site.pc + 1,
            "trap at {} must not end its block",
            site.pc
        );
    }
    check_equivalent(&module, LaunchDims::linear(2, 32), 64, true);
}
