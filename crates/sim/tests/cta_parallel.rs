//! The SM-worker execution model's guarantees: launches are
//! byte-identical for any `cta_jobs` value (outputs, stats, handler
//! state), the decoded CTA-parallel engine matches the reference
//! serial interpreter, cross-CTA reduction atomics merge exactly, and
//! per-warp state survives relaunch without reallocation.

use sassi_isa::AtomOp;
use sassi_kir::{KFunction, KernelBuilder};
use sassi_rt::{LaunchRecord, ModuleBuilder, Runtime};
use sassi_sim::{ExecMode, LaunchDims, NoHandlers};
use sassi_workloads::{by_name, RunFailure, Workload, WorkloadOutput};

fn run_workload(
    w: &dyn Workload,
    mode: ExecMode,
    cta_jobs: usize,
    block_step: bool,
) -> (Result<WorkloadOutput, RunFailure>, Vec<LaunchRecord>) {
    let mut mb = ModuleBuilder::new();
    for k in w.kernels() {
        mb.add_kernel(k);
    }
    let module = mb.build(None).expect("build");
    let mut rt = Runtime::with_defaults();
    rt.device.exec_mode = mode;
    rt.set_cta_jobs(cta_jobs);
    rt.set_block_step(block_step);
    let out = w.execute(&mut rt, &module, &mut NoHandlers);
    (out, rt.records().to_vec())
}

/// A record with cycle-derived fields zeroed, for comparisons across
/// schedulers that are instruction-identical but not cycle-identical.
fn strip_cycles(mut recs: Vec<LaunchRecord>) -> Vec<LaunchRecord> {
    for r in &mut recs {
        r.result.stats.cycles = 0;
    }
    recs
}

/// Workloads covering the engine's interesting regimes: reduction
/// atomics on contended bins (`histo`), barriers plus shared memory
/// (`streamcluster`, `hotspot`), divergent traversal with a
/// consuming-form CAS that must gate the launch to the serial path
/// (`bfs`), a consuming-form `atom.add` (`miniFE`), and a multi-launch
/// convergent kernel (`sgemm`).
const PARALLEL_SAMPLE: &[&str] = &[
    "histo",
    "streamcluster",
    "hotspot",
    "bfs (UT)",
    "miniFE (CSR)",
    "sgemm (small)",
];

#[test]
fn cta_parallel_launches_match_serial() {
    for name in PARALLEL_SAMPLE {
        for block_step in [false, true] {
            let w = by_name(name).expect("workload");
            let (out_1, rec_1) = run_workload(w.as_ref(), ExecMode::Decoded, 1, block_step);
            let (out_4, rec_4) = run_workload(w.as_ref(), ExecMode::Decoded, 4, block_step);
            assert_eq!(out_1, out_4, "{name}: output diverges with cta_jobs=4");
            // LaunchRecord equality covers outcome, every LaunchStats
            // counter (cycles, instrs, divergence, issue classes,
            // handler calls) and the memory-system counters.
            assert_eq!(
                rec_1, rec_4,
                "{name}: launch records diverge (block_step={block_step})"
            );
        }
    }
}

#[test]
fn decoded_parallel_matches_reference_serial() {
    for name in PARALLEL_SAMPLE {
        let w = by_name(name).expect("workload");
        let (out_p, rec_p) = run_workload(w.as_ref(), ExecMode::Decoded, 4, false);
        let (out_r, rec_r) = run_workload(w.as_ref(), ExecMode::Reference, 1, false);
        assert_eq!(
            out_p, out_r,
            "{name}: decoded parallel output diverges from reference serial"
        );
        assert_eq!(rec_p, rec_r, "{name}: launch records diverge");
    }
}

/// The block-stepped scheduler may fold intra-block stalls (so cycle
/// counts shift), but every instruction-derived counter — work, issue
/// classes, divergence, memory traffic — and all outputs must match the
/// single-stepped reference exactly.
#[test]
fn block_stepped_matches_reference_modulo_cycles() {
    for name in PARALLEL_SAMPLE {
        let w = by_name(name).expect("workload");
        let (out_b, rec_b) = run_workload(w.as_ref(), ExecMode::Decoded, 4, true);
        let (out_r, rec_r) = run_workload(w.as_ref(), ExecMode::Reference, 1, false);
        assert_eq!(
            out_b, out_r,
            "{name}: block-stepped output diverges from reference"
        );
        assert_eq!(
            strip_cycles(rec_b),
            strip_cycles(rec_r),
            "{name}: instruction-derived stats diverge under block stepping"
        );
    }
}

/// Every thread of every CTA RED-adds into one of eight contended
/// global bins — the cross-CTA commutative-atomic case the journal
/// commit has to merge exactly.
fn red_bins_kernel() -> KFunction {
    let mut b = KernelBuilder::kernel("red_bins");
    let bins = b.param_ptr(0);
    let i = b.global_tid_x();
    let seven = b.iconst(7);
    let bin = b.and(i, seven);
    let e = b.lea(bins, bin, 2);
    let one = b.iconst(1);
    b.red_global(AtomOp::Add, e, one);
    b.finish()
}

#[test]
fn cross_cta_reduction_atomics_merge_exactly() {
    let mut mb = ModuleBuilder::new();
    mb.add_kernel(red_bins_kernel());
    let module = mb.build(None).unwrap();
    let mut results = Vec::new();
    for jobs in [1usize, 4] {
        let mut rt = Runtime::with_defaults();
        rt.set_cta_jobs(jobs);
        let bins = rt.alloc_zeroed_u32(8);
        let res = rt
            .launch(
                &module,
                "red_bins",
                LaunchDims::linear(64, 64),
                &[bins.addr],
                &mut NoHandlers,
            )
            .unwrap();
        assert!(res.is_ok());
        let out = rt.read_u32(bins);
        // 64 CTAs x 64 threads spread evenly over 8 bins.
        assert_eq!(out, vec![512u32; 8], "jobs={jobs}");
        results.push((out, res));
    }
    assert_eq!(results[0], results[1], "stats diverge across job counts");
}

#[test]
fn relaunch_reuses_warp_state() {
    let mut mb = ModuleBuilder::new();
    mb.add_kernel(red_bins_kernel());
    let module = mb.build(None).unwrap();
    let mut rt = Runtime::with_defaults();
    let bins = rt.alloc_zeroed_u32(8);
    let dims = LaunchDims::linear(32, 64);
    for _ in 0..2 {
        rt.launch(&module, "red_bins", dims, &[bins.addr], &mut NoHandlers)
            .unwrap();
    }
    let after_two = rt.device.warp_allocations();
    assert!(after_two > 0, "first launch must provision warps");
    // Two more launches with the same geometry: every warp context must
    // come from the recycled pool, never a fresh allocation.
    for _ in 0..2 {
        rt.launch(&module, "red_bins", dims, &[bins.addr], &mut NoHandlers)
            .unwrap();
    }
    assert_eq!(
        rt.device.warp_allocations(),
        after_two,
        "relaunch with identical geometry must not allocate warp state"
    );
    assert_eq!(rt.read_u32(bins), vec![4 * 256u32; 8]);
}
