//! Instruction-semantics tests: hand-constructed SASS executed on the
//! device, checked against architecturally expected values — carry
//! chains, predication, wide accesses, warp intrinsics, atomics,
//! special registers, barriers and fault detection.

use sassi_isa::{
    AtomOp, CmpOp, Function, FunctionMeta, Gpr, Guard, Instr, Label, LogicOp, MemAddr, MemWidth,
    MufuFunc, Op, PredReg, ShflMode, Src, VoteMode,
};
use sassi_sim::{Device, FaultKind, KernelOutcome, LaunchDims, Module, NoHandlers};

fn r(n: u8) -> Gpr {
    Gpr::new(n)
}

fn p(n: u8) -> PredReg {
    PredReg::new(n)
}

/// Runs raw instructions as a single-warp kernel; thread `lane` stores
/// R20 to `out[lane]` at the end. Returns the 32 output values.
fn run_raw(mut body: Vec<Instr>) -> Vec<u32> {
    // Epilogue: compute &out[lane] into R40:R41 and store R20.
    // out pointer arrives in c[0][0x140] (param 0).
    body.extend([
        Instr::new(Op::S2R {
            d: r(38),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::Shl {
            d: r(38),
            a: r(38),
            b: Src::Imm(2),
        }),
        Instr::new(Op::Mov {
            d: r(40),
            a: Src::Const(sassi_isa::CBankAddr::new(0, 0x140)),
        }),
        Instr::new(Op::Mov {
            d: r(41),
            a: Src::Const(sassi_isa::CBankAddr::new(0, 0x144)),
        }),
        Instr::new(Op::IAdd {
            d: r(40),
            a: r(40),
            b: Src::Reg(r(38)),
            x: false,
            cc: true,
        }),
        Instr::new(Op::IAdd {
            d: r(41),
            a: r(41),
            b: Src::Reg(Gpr::RZ),
            x: true,
            cc: false,
        }),
        Instr::new(Op::St {
            v: r(20),
            width: MemWidth::B32,
            addr: MemAddr::global(r(40), 0),
            spill: false,
        }),
        Instr::new(Op::Exit),
    ]);
    let f = Function::new("raw", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(32 * 4, 8).unwrap();
    let res = dev
        .launch(
            &module,
            "raw",
            LaunchDims::linear(1, 32),
            &[out],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok(), "{:?}", res.outcome);
    (0..32)
        .map(|i| dev.mem.read_u32(out + 4 * i).unwrap())
        .collect()
}

#[test]
fn carry_chain_64bit_add() {
    // R20:R21 = 0xffff_ffff + 1 with carry into the high word.
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(10),
            imm: 0xffff_ffff,
        }),
        Instr::new(Op::Mov32I { d: r(11), imm: 0 }),
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(10),
            b: Src::Imm(1),
            x: false,
            cc: true,
        }),
        Instr::new(Op::IAdd {
            d: r(21),
            a: r(11),
            b: Src::Reg(Gpr::RZ),
            x: true,
            cc: false,
        }),
        // fold high word into the observed register: R20 = R20 + R21
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(20),
            b: Src::Reg(r(21)),
            x: false,
            cc: false,
        }),
    ];
    let out = run_raw(body);
    assert!(
        out.iter().all(|&v| v == 1),
        "0xffffffff + 1 = 0x1_0000_0000"
    );
}

#[test]
fn predication_gates_lanes() {
    // P0 = lane < 8; R20 = 7 only where P0.
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::ISetP {
            p: p(0),
            cmp: CmpOp::Lt,
            a: r(2),
            b: Src::Imm(8),
            signed: false,
            combine: None,
        }),
        Instr::new(Op::Mov32I { d: r(20), imm: 0 }),
        Instr::guarded(Guard::on(p(0)), Op::Mov32I { d: r(20), imm: 7 }),
    ];
    let out = run_raw(body);
    for (lane, &v) in out.iter().enumerate().take(32) {
        assert_eq!(v, if lane < 8 { 7 } else { 0 }, "lane {lane}");
    }
}

#[test]
fn ballot_and_popc() {
    // ballot(lane is odd) = 0xaaaa_aaaa; popc = 16.
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::Lop {
            d: r(3),
            op: LogicOp::And,
            a: r(2),
            b: Src::Imm(1),
            inv_b: false,
        }),
        Instr::new(Op::ISetP {
            p: p(1),
            cmp: CmpOp::Eq,
            a: r(3),
            b: Src::Imm(1),
            signed: false,
            combine: None,
        }),
        Instr::new(Op::Vote {
            mode: VoteMode::Ballot,
            d: r(4),
            p_out: None,
            src: p(1),
            neg_src: false,
        }),
        Instr::new(Op::Popc { d: r(20), a: r(4) }),
    ];
    let out = run_raw(body);
    assert!(out.iter().all(|&v| v == 16));
}

#[test]
fn shfl_bfly_swaps_neighbours() {
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::Shfl {
            mode: ShflMode::Bfly,
            d: r(20),
            a: r(2),
            b: Src::Imm(1),
            c: Src::Imm(0x1f),
            p_out: None,
        }),
    ];
    let out = run_raw(body);
    for (lane, &v) in out.iter().enumerate().take(32) {
        assert_eq!(v, (lane ^ 1) as u32);
    }
}

#[test]
fn mufu_and_float_ops() {
    // R20 = f2i(rcp(4.0) * 8.0) = 2
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(2),
            imm: 4.0f32.to_bits(),
        }),
        Instr::new(Op::Mufu {
            d: r(3),
            func: MufuFunc::Rcp,
            a: r(2),
        }),
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: 8.0f32.to_bits(),
        }),
        Instr::new(Op::FMul {
            d: r(5),
            a: r(3),
            b: Src::Reg(r(4)),
        }),
        Instr::new(Op::F2I {
            d: r(20),
            a: r(5),
            to: sassi_isa::IntWidth::S32,
        }),
    ];
    let out = run_raw(body);
    assert!(out.iter().all(|&v| v == 2));
}

#[test]
fn signed_ops_and_shifts() {
    // R20 = (-8 >> 2 arithmetic) + (0x80000000 >> 31 logical) = -2 + 1
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(2),
            imm: (-8i32) as u32,
        }),
        Instr::new(Op::Shr {
            d: r(3),
            a: r(2),
            b: Src::Imm(2),
            signed: true,
        }),
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: 0x8000_0000,
        }),
        Instr::new(Op::Shr {
            d: r(5),
            a: r(4),
            b: Src::Imm(31),
            signed: false,
        }),
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(3),
            b: Src::Reg(r(5)),
            x: false,
            cc: false,
        }),
    ];
    let out = run_raw(body);
    assert!(
        out.iter().all(|&v| v == (-1i32) as u32),
        "got {:#x}",
        out[0]
    );
}

#[test]
fn flo_brev_imnmx() {
    // flo(0x0800) = 11; brev(1) = 0x8000_0000; min_s(-1, 1) = -1,
    // observed: 11 + (brev(1)>>31) + min == 11 + 1 - 1 = 11
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(2),
            imm: 0x800,
        }),
        Instr::new(Op::Flo { d: r(3), a: r(2) }),
        Instr::new(Op::Mov32I { d: r(4), imm: 1 }),
        Instr::new(Op::Brev { d: r(5), a: r(4) }),
        Instr::new(Op::Shr {
            d: r(5),
            a: r(5),
            b: Src::Imm(31),
            signed: false,
        }),
        Instr::new(Op::Mov32I {
            d: r(6),
            imm: (-1i32) as u32,
        }),
        Instr::new(Op::IMnMx {
            d: r(7),
            a: r(6),
            b: Src::Imm(1),
            min: true,
            signed: true,
        }),
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(3),
            b: Src::Reg(r(5)),
            x: false,
            cc: false,
        }),
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(20),
            b: Src::Reg(r(7)),
            x: false,
            cc: false,
        }),
    ];
    let out = run_raw(body);
    assert!(out.iter().all(|&v| v == 11), "got {}", out[0]);
}

#[test]
fn wide_load_store_roundtrip() {
    // Store R10:R11 as B64 to out[lane*2..], load back into R20 via B64.
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(32 * 8, 8).unwrap();
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::Shl {
            d: r(3),
            a: r(2),
            b: Src::Imm(3),
        }),
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: buf as u32,
        }),
        Instr::new(Op::Mov32I {
            d: r(5),
            imm: (buf >> 32) as u32,
        }),
        Instr::new(Op::IAdd {
            d: r(4),
            a: r(4),
            b: Src::Reg(r(3)),
            x: false,
            cc: true,
        }),
        Instr::new(Op::IAdd {
            d: r(5),
            a: r(5),
            b: Src::Reg(Gpr::RZ),
            x: true,
            cc: false,
        }),
        Instr::new(Op::Mov32I {
            d: r(10),
            imm: 0x1111_1111,
        }),
        Instr::new(Op::Mov32I {
            d: r(11),
            imm: 0x2222_2222,
        }),
        Instr::new(Op::St {
            v: r(10),
            width: MemWidth::B64,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        }),
        Instr::new(Op::Ld {
            d: r(20),
            width: MemWidth::B64,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        }),
        // fold: R20 += R21
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(20),
            b: Src::Reg(r(21)),
            x: false,
            cc: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("wide", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let res = dev
        .launch(
            &module,
            "wide",
            LaunchDims::linear(1, 32),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok());
    assert_eq!(dev.mem.read_u64(buf).unwrap(), 0x2222_2222_1111_1111);
}

#[test]
fn subword_loads_extend_correctly() {
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(64, 8).unwrap();
    dev.mem.write_u32(buf, 0xfedc_ba98).unwrap();
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: buf as u32,
        }),
        Instr::new(Op::Mov32I {
            d: r(5),
            imm: (buf >> 32) as u32,
        }),
        Instr::new(Op::Ld {
            d: r(10),
            width: MemWidth::U8,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        }),
        Instr::new(Op::Ld {
            d: r(11),
            width: MemWidth::S8,
            addr: MemAddr::global(r(4), 1),
            spill: false,
        }),
        Instr::new(Op::Ld {
            d: r(12),
            width: MemWidth::U16,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        }),
        Instr::new(Op::Ld {
            d: r(13),
            width: MemWidth::S16,
            addr: MemAddr::global(r(4), 2),
            spill: false,
        }),
        Instr::new(Op::St {
            v: r(10),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 16),
            spill: false,
        }),
        Instr::new(Op::St {
            v: r(11),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 20),
            spill: false,
        }),
        Instr::new(Op::St {
            v: r(12),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 24),
            spill: false,
        }),
        Instr::new(Op::St {
            v: r(13),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 28),
            spill: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("sub", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let res = dev
        .launch(
            &module,
            "sub",
            LaunchDims::linear(1, 1),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok());
    assert_eq!(dev.mem.read_u32(buf + 16).unwrap(), 0x98, "U8");
    assert_eq!(
        dev.mem.read_u32(buf + 20).unwrap(),
        0xffff_ffba,
        "S8 sign-extends"
    );
    assert_eq!(dev.mem.read_u32(buf + 24).unwrap(), 0xba98, "U16");
    assert_eq!(
        dev.mem.read_u32(buf + 28).unwrap(),
        0xffff_fedc,
        "S16 sign-extends"
    );
}

#[test]
fn atomic_cas_and_exch() {
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(16, 8).unwrap();
    dev.mem.write_u32(buf, 5).unwrap();
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: buf as u32,
        }),
        Instr::new(Op::Mov32I {
            d: r(5),
            imm: (buf >> 32) as u32,
        }),
        Instr::new(Op::Mov32I { d: r(6), imm: 5 }),
        Instr::new(Op::Mov32I { d: r(8), imm: 9 }),
        // CAS(buf, 5, 9): exactly one lane wins; all lanes read old.
        Instr::new(Op::Atom {
            d: r(10),
            op: AtomOp::Cas,
            addr: MemAddr::global(r(4), 0),
            v: r(6),
            v2: Some(r(8)),
            wide: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("cas", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let res = dev
        .launch(
            &module,
            "cas",
            LaunchDims::linear(1, 32),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok());
    assert_eq!(
        dev.mem.read_u32(buf).unwrap(),
        9,
        "first lane's CAS wins; later lanes see 9 != 5"
    );
}

#[test]
fn oob_store_faults_with_address() {
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(16, 8).unwrap();
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: (buf + 4096) as u32,
        }),
        Instr::new(Op::Mov32I {
            d: r(5),
            imm: ((buf + 4096) >> 32) as u32,
        }),
        Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::global(r(4), 0),
            spill: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("oob", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let res = dev
        .launch(
            &module,
            "oob",
            LaunchDims::linear(1, 1),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    match res.outcome {
        KernelOutcome::Fault(info) => match info.kind {
            FaultKind::MemViolation { addr } => assert_eq!(addr, buf + 4096),
            other => panic!("wrong fault {other:?}"),
        },
        other => panic!("expected fault, got {other:?}"),
    }
}

#[test]
fn misaligned_atomic_faults() {
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(16, 8).unwrap();
    let body = vec![
        Instr::new(Op::Mov32I {
            d: r(4),
            imm: (buf + 2) as u32,
        }),
        Instr::new(Op::Mov32I {
            d: r(5),
            imm: ((buf + 2) >> 32) as u32,
        }),
        Instr::new(Op::Atom {
            d: r(10),
            op: AtomOp::Add,
            addr: MemAddr::global(r(4), 0),
            v: r(0),
            v2: None,
            wide: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("mis", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let res = dev
        .launch(
            &module,
            "mis",
            LaunchDims::linear(1, 1),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(matches!(
        res.outcome,
        KernelOutcome::Fault(sassi_sim::FaultInfo {
            kind: FaultKind::Misaligned { .. },
            ..
        })
    ));
}

#[test]
fn stack_overflow_detected() {
    // Push the stack pointer far below zero and touch it.
    let body = vec![
        Instr::new(Op::IAdd {
            d: Gpr::SP,
            a: Gpr::SP,
            b: Src::Imm((-100_000i32) as u32),
            x: false,
            cc: false,
        }),
        Instr::new(Op::St {
            v: r(0),
            width: MemWidth::B32,
            addr: MemAddr::local(Gpr::SP, 0),
            spill: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("so", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let mut dev = Device::with_defaults();
    let buf = dev.mem.alloc(16, 8).unwrap();
    let res = dev
        .launch(
            &module,
            "so",
            LaunchDims::linear(1, 1),
            &[buf],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(matches!(
        res.outcome,
        KernelOutcome::Fault(sassi_sim::FaultInfo {
            kind: FaultKind::StackViolation { .. },
            ..
        })
    ));
}

#[test]
fn infinite_loop_hits_watchdog() {
    let body = vec![Instr::new(Op::Bra {
        target: Label::Pc(0),
        uniform: true,
    })];
    let f = Function::new("spin", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let mut dev = Device::with_defaults();
    let res = dev
        .launch(
            &module,
            "spin",
            LaunchDims::linear(1, 32),
            &[],
            &mut NoHandlers,
            0,
            50_000,
        )
        .unwrap();
    assert!(matches!(res.outcome, KernelOutcome::Hang));
}

#[test]
fn special_registers_report_geometry() {
    // R20 = ctaid.x * 1000 + ntid.x — checked across a 3-block launch.
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::CtaIdX,
        }),
        Instr::new(Op::S2R {
            d: r(3),
            sr: sassi_isa::SpecialReg::NTidX,
        }),
        Instr::new(Op::IMul {
            d: r(20),
            a: r(2),
            b: Src::Imm(1000),
            signed: false,
            hi: false,
        }),
        Instr::new(Op::IAdd {
            d: r(20),
            a: r(20),
            b: Src::Reg(r(3)),
            x: false,
            cc: false,
        }),
        // store to out[ctaid]
        Instr::new(Op::Mov {
            d: r(40),
            a: Src::Const(sassi_isa::CBankAddr::new(0, 0x140)),
        }),
        Instr::new(Op::Mov {
            d: r(41),
            a: Src::Const(sassi_isa::CBankAddr::new(0, 0x144)),
        }),
        Instr::new(Op::Shl {
            d: r(4),
            a: r(2),
            b: Src::Imm(2),
        }),
        Instr::new(Op::IAdd {
            d: r(40),
            a: r(40),
            b: Src::Reg(r(4)),
            x: false,
            cc: true,
        }),
        Instr::new(Op::IAdd {
            d: r(41),
            a: r(41),
            b: Src::Reg(Gpr::RZ),
            x: true,
            cc: false,
        }),
        Instr::new(Op::St {
            v: r(20),
            width: MemWidth::B32,
            addr: MemAddr::global(r(40), 0),
            spill: false,
        }),
        Instr::new(Op::Exit),
    ];
    let f = Function::new("geom", body, FunctionMeta::default());
    let module = Module::link(&[f]).unwrap();
    let mut dev = Device::with_defaults();
    let out = dev.mem.alloc(3 * 4, 8).unwrap();
    let res = dev
        .launch(
            &module,
            "geom",
            LaunchDims::linear(3, 32),
            &[out],
            &mut NoHandlers,
            0,
            1 << 24,
        )
        .unwrap();
    assert!(res.is_ok());
    for cta in 0..3u64 {
        assert_eq!(
            dev.mem.read_u32(out + 4 * cta).unwrap(),
            cta as u32 * 1000 + 32
        );
    }
}

#[test]
fn vote_all_any_under_divergence() {
    // With only lanes 0..4 active (via guarded exit), __all(lane<4)
    // must be true among survivors.
    let body = vec![
        Instr::new(Op::S2R {
            d: r(2),
            sr: sassi_isa::SpecialReg::LaneId,
        }),
        Instr::new(Op::ISetP {
            p: p(0),
            cmp: CmpOp::Ge,
            a: r(2),
            b: Src::Imm(4),
            signed: false,
            combine: None,
        }),
        Instr::guarded(Guard::on(p(0)), Op::Exit),
        // survivors: lanes 0..4
        Instr::new(Op::ISetP {
            p: p(1),
            cmp: CmpOp::Lt,
            a: r(2),
            b: Src::Imm(4),
            signed: false,
            combine: None,
        }),
        Instr::new(Op::Vote {
            mode: VoteMode::All,
            d: r(20),
            p_out: Some(p(2)),
            src: p(1),
            neg_src: false,
        }),
    ];
    let out = run_raw(body);
    for (lane, &v) in out.iter().enumerate().take(4) {
        assert_eq!(v, 1, "lane {lane} sees __all true");
    }
}

#[test]
fn psetp_logic_table() {
    // P0=true, P1=false; check AND/OR/XOR with negations via SEL.
    let cases = [
        (LogicOp::And, false, false, 0u32), // t && f
        (LogicOp::Or, false, false, 1),     // t || f
        (LogicOp::Xor, false, false, 1),    // t ^ f
        (LogicOp::And, false, true, 1),     // t && !f
        (LogicOp::Or, true, false, 0),      // !t || f
    ];
    for (op, na, nb, want) in cases {
        let body = vec![
            Instr::new(Op::ISetP {
                p: p(0),
                cmp: CmpOp::Eq,
                a: Gpr::RZ,
                b: Src::Imm(0),
                signed: false,
                combine: None,
            }), // P0 = true
            Instr::new(Op::ISetP {
                p: p(1),
                cmp: CmpOp::Ne,
                a: Gpr::RZ,
                b: Src::Imm(0),
                signed: false,
                combine: None,
            }), // P1 = false
            Instr::new(Op::PSetP {
                p: p(2),
                op,
                a: p(0),
                b: p(1),
                neg_a: na,
                neg_b: nb,
            }),
            Instr::new(Op::Mov32I { d: r(2), imm: 1 }),
            Instr::new(Op::Sel {
                d: r(20),
                a: r(2),
                b: Src::Imm(0),
                p: p(2),
                neg_p: false,
            }),
        ];
        let out = run_raw(body);
        assert_eq!(out[0], want, "{op:?} na={na} nb={nb}");
    }
}

#[test]
fn p2r_r2p_roundtrip_semantics() {
    // Set P0,P2 true; pack; clear preds; unpack; verify via SEL.
    let body = vec![
        Instr::new(Op::ISetP {
            p: p(0),
            cmp: CmpOp::Eq,
            a: Gpr::RZ,
            b: Src::Imm(0),
            signed: false,
            combine: None,
        }),
        Instr::new(Op::ISetP {
            p: p(2),
            cmp: CmpOp::Eq,
            a: Gpr::RZ,
            b: Src::Imm(0),
            signed: false,
            combine: None,
        }),
        Instr::new(Op::P2R { d: r(9) }),
        // clobber all predicates with zeros
        Instr::new(Op::Mov32I { d: r(8), imm: 0 }),
        Instr::new(Op::R2P { a: r(8) }),
        // restore
        Instr::new(Op::R2P { a: r(9) }),
        Instr::new(Op::Mov32I { d: r(2), imm: 4 }),
        Instr::new(Op::Mov32I { d: r(20), imm: 0 }),
        Instr::guarded(
            Guard::on(p(0)),
            Op::IAdd {
                d: r(20),
                a: r(20),
                b: Src::Imm(1),
                x: false,
                cc: false,
            },
        ),
        Instr::guarded(
            Guard::on(p(1)),
            Op::IAdd {
                d: r(20),
                a: r(20),
                b: Src::Imm(10),
                x: false,
                cc: false,
            },
        ),
        Instr::guarded(
            Guard::on(p(2)),
            Op::IAdd {
                d: r(20),
                a: r(20),
                b: Src::Reg(r(2)),
                x: false,
                cc: false,
            },
        ),
    ];
    let out = run_raw(body);
    assert!(
        out.iter().all(|&v| v == 5),
        "P0 and P2 restored, P1 clear: got {}",
        out[0]
    );
}
