//! # sassi-sim — the SIMT GPU simulator
//!
//! The hardware substrate of the SASSI reproduction: a multi-SM,
//! cycle-approximate simulator executing the SASS-like ISA of
//! [`sassi_isa`], standing in for the Kepler GPUs of the paper
//! *Flexible Software Profiling of GPU Architectures* (ISCA 2015).
//!
//! * **SIMT semantics** — 32-lane warps with stack-based divergence and
//!   `SSY`/`SYNC` reconvergence ([`Warp`]), block barriers, warp-wide
//!   votes and shuffles, predication, register pairs, carry chains.
//! * **Memory** — per-lane address generation feeding the coalescer and
//!   L1/L2/DRAM timing model of [`sassi_mem`], with full functional
//!   backing storage and fault detection (out-of-bounds, misalignment,
//!   stack and shared violations become [`FaultKind`]s, the raw
//!   material of the paper's error-injection study).
//! * **Traps** — `JCAL handlerN` suspends the warp and calls a
//!   [`HandlerRuntime`] with a [`TrapCtx`] exposing all architectural
//!   state: the execution vehicle for instrumentation handlers.
//!
//! ```
//! use sassi_kir::{Compiler, KernelBuilder};
//! use sassi_sim::{Device, LaunchDims, Module, NoHandlers};
//!
//! // out[i] = i * 3
//! let mut b = KernelBuilder::kernel("triple");
//! let i = b.global_tid_x();
//! let out = b.param_ptr(0);
//! let v = b.imul(i, 3u32);
//! let e = b.lea(out, i, 2);
//! b.st_global_u32(e, v);
//! let func = Compiler::new().compile(&b.finish()).unwrap();
//!
//! let module = Module::link(&[func]).unwrap();
//! let mut dev = Device::with_defaults();
//! let buf = dev.mem.alloc(64 * 4, 4).unwrap();
//! let res = dev
//!     .launch(&module, "triple", LaunchDims::linear(2, 32), &[buf], &mut NoHandlers, 0, 1_000_000)
//!     .unwrap();
//! assert!(res.is_ok());
//! assert_eq!(dev.mem.read_u32(buf + 4 * 10).unwrap(), 30);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod decode;
mod device;
mod module;
mod stats;
mod trap;
mod warp;

pub use config::{GpuConfig, LaunchDims};
pub use decode::{
    is_block_boundary, BasicBlock, DSrc, DecodedFault, DecodedInstr, DecodedModule, TrapSite, UOp,
    GUARD_ALWAYS,
};
pub use device::{block_step_env_default, Device, ExecMode, LaunchError};
pub use module::{LinkError, LinkedFunction, Module};
pub use stats::{
    FaultInfo, FaultKind, IssueClass, IssueCounters, KernelOutcome, LaunchResult, LaunchStats,
};
pub use trap::{HandlerCost, HandlerRuntime, NoHandlers, RuntimeShard, TrapCtx, TrapRef};
pub use warp::{StackEntry, Warp, WarpStatus};
