//! The trap interface between the simulator and native instrumentation
//! handlers.
//!
//! When a warp executes `JCAL handlerN`, the simulator suspends it and
//! invokes the registered [`HandlerRuntime`] with a [`TrapCtx`] exposing
//! the warp's architectural state — lane registers, predicates, local
//! stacks, shared and global memory, thread coordinates. This is the
//! execution vehicle for handlers written in Rust (the reproduction's
//! stand-in for the paper's CUDA handlers); the ABI trampoline that
//! leads up to the trap is real simulated SASS either way.

use crate::decode::TrapSite;
use crate::warp::Warp;
use sassi_isa::{
    lanes, resolve_generic, AddrSpace, Gpr, LaneMask, Lanes, PredReg, GENERIC_LOCAL_TAG,
};
use sassi_mem::{DeviceMemory, MemError};

/// Cost declared by a native handler for one invocation, charged to the
/// calling warp as cycles. This models the instructions the handler
/// would have executed had it been compiled to SASS under the
/// 16-register cap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandlerCost {
    /// Straight-line instructions executed.
    pub instructions: u32,
    /// Memory operations among them.
    pub memory_ops: u32,
    /// Atomic operations among them.
    pub atomics: u32,
}

impl HandlerCost {
    /// A zero-cost (free) invocation, for pure-observation experiments.
    pub const FREE: HandlerCost = HandlerCost {
        instructions: 0,
        memory_ops: 0,
        atomics: 0,
    };

    /// Converts the cost to warp cycles: dual-issue-ish ALU throughput,
    /// L1-latency memory operations, contended atomics.
    pub fn cycles(&self) -> u64 {
        2 * self.instructions as u64 + 12 * self.memory_ops as u64 + 30 * self.atomics as u64
    }
}

/// The per-trap view of a warp handed to handler runtimes.
///
/// Handlers observe and may mutate architectural state (registers,
/// predicates, memory), but must **not** redirect control flow:
/// `warp.pc` is owned by the interpreter, which resumes the warp at
/// `pc + 1` after every trap. The block-stepped scheduler relies on
/// this — trap sites sit in the middle of straight-line runs whose
/// extent was computed at decode time, so a handler that moved `pc`
/// would desynchronize the run (and, on real SASSI, would corrupt the
/// trampoline's return path just the same).
pub struct TrapCtx<'a> {
    /// The trapping warp (registers, predicates, local slabs, masks).
    pub warp: &'a mut Warp,
    /// The warp's block shared-memory segment.
    pub shared: &'a mut [u8],
    /// Global device memory.
    pub mem: &'a mut DeviceMemory,
    /// Block index of the warp's CTA.
    pub ctaid: (u32, u32, u32),
    /// Block dimensions.
    pub block_dim: (u32, u32, u32),
    /// Grid dimensions.
    pub grid_dim: (u32, u32, u32),
    /// SM executing the warp.
    pub sm_id: u32,
    /// Current cycle.
    pub cycle: u64,
    /// Name of the running kernel.
    pub kernel: &'a str,
    /// Dynamic index of this kernel launch (set by the host runtime).
    pub launch_index: u64,
}

impl TrapCtx<'_> {
    /// Active lanes at the trap.
    pub fn active_mask(&self) -> LaneMask {
        self.warp.active
    }

    /// Iterates active lane indices: a copyable, allocation-free mask
    /// iterator in ascending lane order.
    pub fn active_lanes(&self) -> Lanes {
        lanes(self.warp.active)
    }

    /// Calls `f` for each active lane in ascending order — the fast
    /// path for handlers that only need a per-lane visit.
    pub fn for_each_active(&self, mut f: impl FnMut(usize)) {
        let mut m = self.warp.active;
        while m != 0 {
            f(m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }

    /// The first active lane (handler "leader").
    pub fn leader(&self) -> Option<usize> {
        self.warp.leader()
    }

    /// Lane `lane`'s register `r`.
    pub fn reg(&self, lane: usize, r: Gpr) -> u32 {
        self.warp.reg(lane, r)
    }

    /// Writes lane `lane`'s register `r` (error injection uses this).
    pub fn set_reg(&mut self, lane: usize, r: Gpr, v: u32) {
        self.warp.set_reg(lane, r, v);
    }

    /// Lane `lane`'s register pair at `r` as 64-bit.
    pub fn reg64(&self, lane: usize, r: Gpr) -> u64 {
        self.warp.reg64(lane, r)
    }

    /// Lane `lane`'s predicate `p`.
    pub fn pred(&self, lane: usize, p: PredReg) -> bool {
        self.warp.pred(lane, p)
    }

    /// Writes lane `lane`'s predicate `p`.
    pub fn set_pred(&mut self, lane: usize, p: PredReg, v: bool) {
        self.warp.set_pred(lane, p, v);
    }

    /// Lane `lane`'s carry flag.
    pub fn cc(&self, lane: usize) -> bool {
        self.warp.cc[lane]
    }

    /// Writes lane `lane`'s carry flag.
    pub fn set_cc(&mut self, lane: usize, v: bool) {
        self.warp.cc[lane] = v;
    }

    /// The ABI parameter pair `idx` (0 → R4:R5, 1 → R6:R7) of a lane —
    /// the generic pointers the SASSI trampoline passes to handlers.
    pub fn abi_param(&self, lane: usize, idx: u8) -> u64 {
        debug_assert!(idx < 2);
        self.warp.reg64(lane, Gpr::new(4 + 2 * idx))
    }

    /// Thread coordinates of a lane within its block.
    pub fn thread_idx(&self, lane: usize) -> (u32, u32, u32) {
        let linear = self.warp.warp_in_cta * 32 + lane as u32;
        let (bx, by, _) = self.block_dim;
        (linear % bx, (linear / bx) % by, linear / (bx * by))
    }

    /// Flat global thread id of a lane.
    pub fn global_thread_id(&self, lane: usize) -> u64 {
        let threads_per_block = (self.block_dim.0 * self.block_dim.1 * self.block_dim.2) as u64;
        let block_linear = self.ctaid.0 as u64
            + self.grid_dim.0 as u64
                * (self.ctaid.1 as u64 + self.grid_dim.1 as u64 * self.ctaid.2 as u64);
        block_linear * threads_per_block + (self.warp.warp_in_cta * 32) as u64 + lane as u64
    }

    /// Reads a `u32` through a lane's generic address.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] for addresses outside every window or
    /// allocation.
    pub fn read_generic_u32(&self, lane: usize, addr: u64) -> Result<u32, MemError> {
        match resolve_generic(addr) {
            Some((AddrSpace::Local, off)) => {
                let slab = self.warp.lane_local(lane);
                let off = off as usize;
                if off + 4 > slab.len() {
                    return Err(MemError::OutOfBounds { addr });
                }
                Ok(u32::from_le_bytes(slab[off..off + 4].try_into().unwrap()))
            }
            Some((AddrSpace::Shared, off)) => {
                let off = off as usize;
                if off + 4 > self.shared.len() {
                    return Err(MemError::OutOfBounds { addr });
                }
                Ok(u32::from_le_bytes(
                    self.shared[off..off + 4].try_into().unwrap(),
                ))
            }
            Some((AddrSpace::Global, a)) => self.mem.read_u32(a),
            _ => Err(MemError::OutOfBounds { addr }),
        }
    }

    /// Reads a `u64` through a lane's generic address.
    ///
    /// # Errors
    ///
    /// As [`TrapCtx::read_generic_u32`].
    pub fn read_generic_u64(&self, lane: usize, addr: u64) -> Result<u64, MemError> {
        let lo = self.read_generic_u32(lane, addr)? as u64;
        let hi = self.read_generic_u32(lane, addr + 4)? as u64;
        Ok(lo | (hi << 32))
    }

    /// Writes a `u32` through a lane's generic address.
    ///
    /// # Errors
    ///
    /// As [`TrapCtx::read_generic_u32`].
    pub fn write_generic_u32(&mut self, lane: usize, addr: u64, v: u32) -> Result<(), MemError> {
        match resolve_generic(addr) {
            Some((AddrSpace::Local, off)) => {
                let slab = self.warp.lane_local_mut(lane);
                let off = off as usize;
                if off + 4 > slab.len() {
                    return Err(MemError::OutOfBounds { addr });
                }
                slab[off..off + 4].copy_from_slice(&v.to_le_bytes());
                Ok(())
            }
            Some((AddrSpace::Shared, off)) => {
                let off = off as usize;
                if off + 4 > self.shared.len() {
                    return Err(MemError::OutOfBounds { addr });
                }
                self.shared[off..off + 4].copy_from_slice(&v.to_le_bytes());
                Ok(())
            }
            Some((AddrSpace::Global, a)) => self.mem.write_u32(a, v),
            _ => Err(MemError::OutOfBounds { addr }),
        }
    }

    /// The generic address of a lane's current stack pointer — useful in
    /// tests for locating trampoline-allocated objects.
    pub fn stack_generic_addr(&self, lane: usize) -> u64 {
        GENERIC_LOCAL_TAG | self.warp.reg(lane, Gpr::SP) as u64
    }
}

/// A shard-local fork of a handler runtime, for CTA-parallel launches.
///
/// The `runtime` half moves to the shard's worker thread and receives
/// that shard's traps; `join` stays on the launching thread and is
/// called — in canonical shard order, after every shard has finished —
/// to merge the shard's accumulated handler state back into the parent.
pub struct RuntimeShard {
    /// The forked runtime executed by the shard.
    pub runtime: Box<dyn HandlerRuntime + Send>,
    /// Merges the shard's handler state into the parent runtime.
    pub join: Box<dyn FnOnce() + Send>,
}

/// The identity of the trap site being dispatched: the decode-time
/// site index (into the table passed to
/// [`HandlerRuntime::bind_sites`]) plus the raw handler id from the
/// `JCAL`, for runtimes that have not bound a site table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapRef {
    /// Index into the launch module's [`TrapSite`] table.
    pub site: u32,
    /// The native handler id named by the `JCAL handlerN`.
    pub handler: u32,
}

/// Receives traps from `JCAL handlerN` instructions.
pub trait HandlerRuntime {
    /// Handles the trap at `trap` for the given warp; the returned
    /// cost is charged to the warp as cycles.
    fn handle(&mut self, trap: TrapRef, ctx: &mut TrapCtx<'_>) -> HandlerCost;

    /// Called once per launch (and once per forked shard runtime),
    /// before any trap is dispatched, with the launching module's
    /// decode-time site table. Runtimes can pre-resolve per-site
    /// dispatch state here; `TrapRef::site` indexes the bound table.
    /// The default does nothing — runtimes that dispatch on
    /// `TrapRef::handler` alone need no table.
    fn bind_sites(&mut self, _sites: &[TrapSite]) {}

    /// Forks a shard-local runtime for one SM shard of a CTA-parallel
    /// launch, or `None` if this runtime's state cannot be merged (the
    /// device then falls back to running shards sequentially, which is
    /// always correct). The default is `None`: order-dependent runtimes
    /// stay sequential unless they opt in.
    fn fork_shard(&self) -> Option<RuntimeShard> {
        None
    }
}

/// A runtime with no handlers: traps are ignored at zero cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHandlers;

impl HandlerRuntime for NoHandlers {
    fn handle(&mut self, _trap: TrapRef, _ctx: &mut TrapCtx<'_>) -> HandlerCost {
        HandlerCost::FREE
    }

    fn fork_shard(&self) -> Option<RuntimeShard> {
        Some(RuntimeShard {
            runtime: Box::new(NoHandlers),
            join: Box::new(|| {}),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_cycles() {
        let c = HandlerCost {
            instructions: 10,
            memory_ops: 2,
            atomics: 1,
        };
        assert_eq!(c.cycles(), 20 + 24 + 30);
        assert_eq!(HandlerCost::FREE.cycles(), 0);
    }
}
