//! Machine configuration and launch geometry.

use sassi_mem::HierarchyConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the simulated GPU.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_ctas_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_per_sm: u32,
    /// Per-thread local memory (stack) slab in bytes.
    pub local_bytes_per_thread: u32,
    /// Registers provisioned per thread by the simulator's register
    /// file (instruction encodings may name up to R254, but resident
    /// state is capped here; the backend compiles to 63 by default).
    pub regs_per_thread: u32,
    /// Memory hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Core clock in MHz, used only to convert cycles to seconds for
    /// whole-program time modelling.
    pub clock_mhz: u32,
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        // A small Kepler-class device (think one GK104 cluster).
        GpuConfig {
            num_sms: 8,
            max_warps_per_sm: 16,
            max_ctas_per_sm: 8,
            shared_per_sm: 48 * 1024,
            local_bytes_per_thread: 2048,
            regs_per_thread: 64,
            hierarchy: HierarchyConfig::default(),
            clock_mhz: 745,
        }
    }
}

impl GpuConfig {
    /// Seconds represented by `cycles` at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz as f64 * 1e6)
    }
}

/// Grid and block dimensions of a kernel launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchDims {
    /// Grid dimensions in blocks.
    pub grid: (u32, u32, u32),
    /// Block dimensions in threads.
    pub block: (u32, u32, u32),
}

impl LaunchDims {
    /// 1-D launch helper.
    pub fn linear(grid: u32, block: u32) -> LaunchDims {
        LaunchDims {
            grid: (grid, 1, 1),
            block: (block, 1, 1),
        }
    }

    /// 2-D launch helper.
    pub fn plane(grid: (u32, u32), block: (u32, u32)) -> LaunchDims {
        LaunchDims {
            grid: (grid.0, grid.1, 1),
            block: (block.0, block.1, 1),
        }
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.0 * self.block.1 * self.block.2
    }

    /// Warps per block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Total blocks in the grid.
    pub fn total_blocks(&self) -> u32 {
        self.grid.0 * self.grid.1 * self.grid.2
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> u64 {
        self.total_blocks() as u64 * self.threads_per_block() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_math() {
        let d = LaunchDims::linear(10, 96);
        assert_eq!(d.threads_per_block(), 96);
        assert_eq!(d.warps_per_block(), 3);
        assert_eq!(d.total_blocks(), 10);
        assert_eq!(d.total_threads(), 960);
        let d = LaunchDims::plane((4, 4), (16, 16));
        assert_eq!(d.threads_per_block(), 256);
        assert_eq!(d.total_blocks(), 16);
    }

    #[test]
    fn clock_conversion() {
        let c = GpuConfig {
            clock_mhz: 1000,
            ..GpuConfig::default()
        };
        assert!((c.cycles_to_seconds(1_000_000) - 1e-3).abs() < 1e-12);
    }
}
