//! Link-time pre-decode: lowering a linked [`Module`]'s `Vec<Instr>`
//! into a flat, cache-friendly µop array the interpreter executes
//! without per-step allocation, cloning or operand re-matching.
//!
//! The seed interpreter cloned a full [`Instr`] (nested `Src`/`Label`
//! enums) out of `module.code` for every warp-instruction and
//! re-matched operand forms per lane. This module performs all of that
//! work once, at link time:
//!
//! * operand forms are resolved into the compact [`DSrc`] tagged enum
//!   (constant-bank reads collapse to a pre-offset bank-0 slot; reads
//!   of any other bank, which architecturally return zero, fold to an
//!   immediate 0);
//! * `Label::Pc` control targets become absolute `u32`s, validated
//!   once here instead of per execution — targets that would fault are
//!   lowered to [`UOp::Invalid`] so the fault (and only the fault)
//!   is deferred to execution, exactly as the un-decoded semantics
//!   demand;
//! * the guard predicate is packed into a one-byte header
//!   ([`DecodedInstr::guard`]) with a sentinel for the always-true
//!   guard, so unguarded instructions skip per-lane predicate reads;
//! * the ALU dependence latency and the [`IssueClass`] are
//!   precomputed into header bytes;
//! * instrumentation trap sites (`JCAL handlerN`) are recorded in a
//!   per-module bitmap, so SASSI's *selective instrumentation*
//!   property — uninstrumented instructions pay nothing — holds for
//!   the interpreter too, and tooling can query instrumentation
//!   density per function without rescanning instructions.
//!
//! The original `Instr` array stays on the [`Module`] solely for
//! traps, disassembly and error reporting.

use crate::module::Module;
use crate::stats::{FaultKind, IssueClass};
use sassi_isa::{
    AddrSpace, AtomOp, CmpOp, Gpr, Instr, Label, LogicOp, MemAddr, MemWidth, MufuFunc, Op, PredReg,
    ShflMode, SpecialReg, Src, VoteMode,
};

/// Guard byte sentinel: the statically-always-true guard (`@PT`).
pub const GUARD_ALWAYS: u8 = 0xFF;

/// Packs a guard into one byte: [`GUARD_ALWAYS`] for `@PT`, otherwise
/// bit 7 = complement, bits 0..2 = predicate register index. `@!PT`
/// keeps its per-lane encoding and evaluates to an empty mask, exactly
/// like the un-decoded guard loop.
fn encode_guard(ins: &Instr) -> u8 {
    if ins.guard.is_always() {
        GUARD_ALWAYS
    } else {
        ins.guard.pred.index() | if ins.guard.neg { 0x80 } else { 0 }
    }
}

/// A pre-resolved source operand.
///
/// `Const` operands are split at decode time: bank-0 reads keep their
/// byte offset (resolved against the launch's parameter image at
/// issue), reads of any other bank fold to `Imm(0)` — the value the
/// machine architecturally returns for them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DSrc {
    /// A general-purpose register, read per lane.
    Reg(Gpr),
    /// A literal 32-bit value.
    Imm(u32),
    /// A bank-0 constant at this byte offset (warp-uniform).
    C0(u16),
}

fn dsrc(s: Src) -> DSrc {
    match s {
        Src::Reg(r) => DSrc::Reg(r),
        Src::Imm(v) => DSrc::Imm(v),
        Src::Const(c) => {
            if c.bank == 0 {
                DSrc::C0(c.offset)
            } else {
                DSrc::Imm(0)
            }
        }
    }
}

/// A control-transfer defect detected at decode time.
///
/// Invalid targets must *not* reject the module: an instruction that
/// is never executed must never fault. Decode therefore lowers the
/// defect into the µop and the executor raises the matching
/// [`FaultKind`] only if the instruction actually issues — the same
/// observable behaviour as validating per execution, without the
/// per-execution cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodedFault {
    /// A branch or SSY target that is not a `Pc` label after linking.
    BadLabel,
    /// A branch target beyond the end of the module's code space.
    FarBranch(u32),
    /// A call to a `Func` label that survived linking.
    UnlinkedCall,
}

impl DecodedFault {
    /// The fault the seed semantics raise for this defect when the
    /// instruction at `pc` issues.
    pub fn fault(self, pc: u32) -> FaultKind {
        match self {
            DecodedFault::BadLabel => FaultKind::InvalidPc { pc: u64::MAX },
            DecodedFault::FarBranch(t) => FaultKind::InvalidPc { pc: t as u64 },
            DecodedFault::UnlinkedCall => FaultKind::InvalidPc { pc: pc as u64 },
        }
    }
}

/// A pre-decoded operation. Mirrors [`Op`] with operand forms resolved
/// and semantically-identical variants merged (`MOV32I` → `Mov` of an
/// immediate, `TLD` → `Ld`, `RED` → `Atom` without destination).
///
/// Every variant is `Copy` and carries no heap data, so the hot loop
/// never allocates or clones.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // operand fields follow the `Op` conventions: d = dest, a/b/c = sources
pub enum UOp {
    // ---- control flow ----------------------------------------------------
    /// `SSY` with its reconvergence pc resolved.
    Ssy {
        reconv: u32,
    },
    Sync,
    /// `BRA` with a pre-validated absolute target.
    Bra {
        target: u32,
    },
    Exit,
    /// `JCAL` to a linked device function.
    Call {
        target: u32,
    },
    /// `JCAL` into a native instrumentation handler (a SASSI trap
    /// site; these are the bits set in the module's trap bitmap).
    /// `site` indexes the module's decode-time site table
    /// ([`DecodedModule::sites`]), assigned in pc order.
    Trap {
        handler: u32,
        site: u32,
    },
    Ret,
    BarSync,
    MemBar,
    Nop,
    /// A decode-detected defect; faults if (and only if) executed.
    Invalid(DecodedFault),

    // ---- memory ----------------------------------------------------------
    Ld {
        d: Gpr,
        width: MemWidth,
        addr: MemAddr,
    },
    St {
        v: Gpr,
        width: MemWidth,
        addr: MemAddr,
    },
    Atom {
        d: Option<Gpr>,
        op: AtomOp,
        addr: MemAddr,
        v: Gpr,
        v2: Option<Gpr>,
        wide: bool,
    },

    // ---- warp-wide -------------------------------------------------------
    Vote {
        mode: VoteMode,
        d: Gpr,
        p_out: Option<PredReg>,
        src: PredReg,
        neg_src: bool,
    },
    Shfl {
        mode: ShflMode,
        d: Gpr,
        a: Gpr,
        b: DSrc,
        p_out: Option<PredReg>,
    },

    // ---- per-lane ALU ----------------------------------------------------
    Mov {
        d: Gpr,
        a: DSrc,
    },
    S2R {
        d: Gpr,
        sr: SpecialReg,
    },
    IAdd {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        x: bool,
        cc: bool,
    },
    ISub {
        d: Gpr,
        a: Gpr,
        b: DSrc,
    },
    IMul {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        signed: bool,
        hi: bool,
    },
    IMad {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        c: Gpr,
    },
    IScAdd {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        shift: u8,
    },
    IMnMx {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        min: bool,
        signed: bool,
    },
    Shl {
        d: Gpr,
        a: Gpr,
        b: DSrc,
    },
    Shr {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        signed: bool,
    },
    Lop {
        d: Gpr,
        op: LogicOp,
        a: Gpr,
        b: DSrc,
        inv_b: bool,
    },
    Popc {
        d: Gpr,
        a: Gpr,
    },
    Flo {
        d: Gpr,
        a: Gpr,
    },
    Brev {
        d: Gpr,
        a: Gpr,
    },
    Sel {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        p: PredReg,
        neg_p: bool,
    },
    FAdd {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        neg_a: bool,
        neg_b: bool,
    },
    FMul {
        d: Gpr,
        a: Gpr,
        b: DSrc,
    },
    FFma {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        c: Gpr,
        neg_b: bool,
        neg_c: bool,
    },
    FMnMx {
        d: Gpr,
        a: Gpr,
        b: DSrc,
        min: bool,
    },
    Mufu {
        d: Gpr,
        func: MufuFunc,
        a: Gpr,
    },
    I2F {
        d: Gpr,
        a: Gpr,
    },
    F2I {
        d: Gpr,
        a: Gpr,
    },
    ISetP {
        p: PredReg,
        cmp: CmpOp,
        a: Gpr,
        b: DSrc,
        signed: bool,
        combine: Option<(PredReg, bool)>,
    },
    FSetP {
        p: PredReg,
        cmp: CmpOp,
        a: Gpr,
        b: DSrc,
    },
    PSetP {
        p: PredReg,
        op: LogicOp,
        a: PredReg,
        b: PredReg,
        neg_a: bool,
        neg_b: bool,
    },
    P2R {
        d: Gpr,
    },
    R2P {
        a: Gpr,
    },
}

/// One pre-decoded instruction: a packed header plus the µop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DecodedInstr {
    /// Packed guard byte (see [`GUARD_ALWAYS`]).
    pub guard: u8,
    /// Dependence latency for ALU-class µops (control and memory µops
    /// compute their own).
    pub lat: u8,
    /// Issue class for the per-class counters in `LaunchStats`.
    pub class: IssueClass,
    /// The operation.
    pub uop: UOp,
}

impl DecodedInstr {
    /// Whether the instruction carries a non-trivial guard (what makes
    /// a control transfer *conditional* in the stats).
    pub fn is_guarded(&self) -> bool {
        self.guard != GUARD_ALWAYS
    }
}

/// One instrumentation trap site, resolved once at decode time.
///
/// Site indices are assigned in ascending pc order, so `sites[i].pc`
/// is sorted — [`DecodedModule::site_at`] binary-searches it. Handler
/// runtimes receive this table via `HandlerRuntime::bind_sites` before
/// a launch issues any trap, letting them pre-resolve per-site dispatch
/// state instead of re-deriving it on every trap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrapSite {
    /// The absolute pc of the `JCAL handlerN` µop.
    pub pc: u32,
    /// The native handler id the site calls.
    pub handler: u32,
    /// Cached trampoline save/restore cost: the spill-flagged GPR
    /// stores before the call plus the spill-flagged loads after it,
    /// bounded by the trampoline's own stack push/pop so surrounding
    /// program spills are not miscounted. Hand-written `JCAL handlerN`
    /// sites without an enclosing trampoline frame count 0.
    pub save_restore: u32,
}

/// One maximal straight-line run of µops: pcs `start..end` with the
/// block's single (optional) block-ending µop at `end - 1`.
///
/// Blocks partition the module's pc space purely by *block-ending*
/// µops (see [`is_block_boundary`]): every control transfer or
/// barrier ends the block containing it, and the last instruction of
/// the module ends the final block. Branch *targets* do not split
/// blocks — a jump into the middle of a run simply executes the
/// remaining suffix, which is why the interpreter asks for the extent
/// *from the current pc* rather than from the block leader.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// First pc of the block.
    pub start: u32,
    /// One past the last pc of the block.
    pub end: u32,
}

impl BasicBlock {
    /// Number of µops in the block (always ≥ 1).
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Blocks are never empty; this exists for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Whether `uop` ends a basic block: any control transfer (`BRA`,
/// `SSY`, `SYNC`, `EXIT`, `JCAL` to a *function*, `RET`), the CTA
/// barrier (`BAR.SYNC`, which can suspend the warp), or a decode-time
/// defect (`Invalid`, a guaranteed fetch fault). Instrumentation
/// traps (`UOp::Trap`) deliberately do **not** end blocks: dispatch
/// is two `Copy` reads plus a handler call and always resumes at
/// `pc + 1`, so straight-line runs flow through trap sites.
#[inline(always)]
pub fn is_block_boundary(uop: &UOp) -> bool {
    matches!(
        uop,
        UOp::Ssy { .. }
            | UOp::Sync
            | UOp::Bra { .. }
            | UOp::Exit
            | UOp::Call { .. }
            | UOp::Ret
            | UOp::BarSync
            | UOp::Invalid(_)
    )
}

/// The pre-decoded form of a linked module: the flat µop array, the
/// trap-site bitmap, the resolved trap-site table and the basic-block
/// table.
#[derive(Clone, Debug)]
pub struct DecodedModule {
    code: Vec<DecodedInstr>,
    /// Bit `pc` set iff `code[pc]` traps into a native handler.
    trap_bits: Vec<u64>,
    /// Trap sites in ascending pc order; `UOp::Trap::site` indexes this.
    sites: Vec<TrapSite>,
    /// Basic blocks in ascending pc order; a partition of `0..len()`.
    blocks: Vec<BasicBlock>,
    /// `block_idx[pc]` is the index into `blocks` of the block
    /// containing `pc`.
    block_idx: Vec<u32>,
    /// Whether any global/generic atomic *consumes* its old value
    /// (`ATOM` with a live destination, or any CAS/EXCH). See
    /// [`DecodedModule::has_consuming_global_atomics`].
    consuming_global_atomics: bool,
}

impl DecodedModule {
    /// Decodes every instruction of a linked module. Never fails:
    /// defective instructions become [`UOp::Invalid`] and fault only
    /// if executed.
    pub fn decode(module: &Module) -> DecodedModule {
        let n = module.code.len();
        let mut code = Vec::with_capacity(n);
        let mut trap_bits = vec![0u64; n.div_ceil(64)];
        let mut sites = Vec::new();
        let mut consuming_global_atomics = false;
        for (pc, ins) in module.code.iter().enumerate() {
            let mut di = decode_instr(ins, n as u32);
            if let UOp::Trap { handler, site } = &mut di.uop {
                *site = sites.len() as u32;
                sites.push(TrapSite {
                    pc: pc as u32,
                    handler: *handler,
                    save_restore: save_restore_at(&module.code, pc),
                });
                trap_bits[pc / 64] |= 1 << (pc % 64);
            }
            if let UOp::Atom { d, op, addr, .. } = di.uop {
                let global = matches!(addr.space, AddrSpace::Global | AddrSpace::Generic);
                let consuming =
                    matches!(op, AtomOp::Cas | AtomOp::Exch) || d.is_some_and(|g| !g.is_rz());
                consuming_global_atomics |= global && consuming;
            }
            code.push(di);
        }
        let (blocks, block_idx) = build_blocks(&code);
        DecodedModule {
            code,
            trap_bits,
            sites,
            blocks,
            block_idx,
            consuming_global_atomics,
        }
    }

    /// Whether the module contains a global (or generic) atomic whose
    /// old value can be observed by the program: an `ATOM` writing a
    /// live destination, or any CAS/EXCH. Such kernels see a total
    /// order over cross-CTA atomics, so CTA-parallel launches fall back
    /// to sequential shard execution. `RED`-style fire-and-forget
    /// reductions (destination-less or `RZ`) are commutative deltas and
    /// do not set this.
    pub fn has_consuming_global_atomics(&self) -> bool {
        self.consuming_global_atomics
    }

    /// The µop at `pc`, if in range.
    #[inline(always)]
    pub fn get(&self, pc: u32) -> Option<&DecodedInstr> {
        self.code.get(pc as usize)
    }

    /// Number of decoded instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the module has no code.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Whether the instruction at `pc` traps into an instrumentation
    /// handler.
    pub fn is_trap_site(&self, pc: u32) -> bool {
        let pc = pc as usize;
        pc < self.code.len() && self.trap_bits[pc / 64] & (1 << (pc % 64)) != 0
    }

    /// Total instrumentation trap sites in the module.
    pub fn trap_count(&self) -> u32 {
        self.sites.len() as u32
    }

    /// The decode-time trap-site table, in ascending pc order.
    /// `UOp::Trap::site` indexes this table directly.
    pub fn sites(&self) -> &[TrapSite] {
        &self.sites
    }

    /// The site index of the trap at `pc`, if any — the lookup the
    /// reference interpreter uses (the decoded loop carries the index
    /// inside the µop instead).
    pub fn site_at(&self, pc: u32) -> Option<u32> {
        self.sites
            .binary_search_by_key(&pc, |s| s.pc)
            .ok()
            .map(|i| i as u32)
    }

    /// The basic-block table: a partition of `0..len()` in ascending
    /// pc order (see [`BasicBlock`]).
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Index into [`DecodedModule::blocks`] of the block containing
    /// `pc`, if `pc` is in range.
    pub fn block_index(&self, pc: u32) -> Option<u32> {
        self.block_idx.get(pc as usize).copied()
    }

    /// The block containing `pc`, if `pc` is in range.
    pub fn block_of(&self, pc: u32) -> Option<BasicBlock> {
        self.block_index(pc).map(|i| self.blocks[i as usize])
    }

    /// Exclusive end of the straight-line run containing `pc`: the
    /// interpreter may execute `pc..block_end(pc)` without re-picking
    /// a warp (the run's only possible control transfer sits at
    /// `block_end(pc) - 1`). Out-of-range pcs return `pc + 1` so the
    /// caller performs exactly one fetch, which faults precisely.
    #[inline(always)]
    pub fn block_end(&self, pc: u32) -> u32 {
        match self.block_idx.get(pc as usize) {
            Some(&i) => self.blocks[i as usize].end,
            None => pc.saturating_add(1),
        }
    }

    /// Trap sites within `[entry, end)` — pass a `LinkedFunction`'s
    /// range to get per-function instrumentation density.
    pub fn trap_sites_in(&self, entry: u32, end: u32) -> u32 {
        let end = (end as usize).min(self.code.len());
        let entry = (entry as usize).min(end);
        let mut count = 0u32;
        for pc in entry..end {
            if self.trap_bits[pc / 64] & (1 << (pc % 64)) != 0 {
                count += 1;
            }
        }
        count
    }
}

/// Partitions the decoded code into basic blocks: a new block ends at
/// every block-ending µop ([`is_block_boundary`]) and at the end of
/// the module. Returns the block table plus the per-pc block index.
fn build_blocks(code: &[DecodedInstr]) -> (Vec<BasicBlock>, Vec<u32>) {
    let n = code.len();
    let mut blocks = Vec::new();
    let mut block_idx = vec![0u32; n];
    let mut start = 0usize;
    for pc in 0..n {
        if is_block_boundary(&code[pc].uop) || pc + 1 == n {
            let idx = blocks.len() as u32;
            blocks.push(BasicBlock {
                start: start as u32,
                end: pc as u32 + 1,
            });
            for slot in &mut block_idx[start..=pc] {
                *slot = idx;
            }
            start = pc + 1;
        }
    }
    (blocks, block_idx)
}

/// Counts the trampoline save/restore instructions around the trap at
/// `pc`: spill-flagged stores between the trampoline's stack push
/// (`IADD SP, SP, -frame`) and the call, plus spill-flagged loads
/// between the call and the stack pop. Scans are bounded by the
/// enclosing push/pop (and by any other call), so register-allocator
/// spills elsewhere in the function are never attributed to the site;
/// a `JCAL handlerN` with no enclosing frame counts 0.
fn save_restore_at(code: &[Instr], pc: usize) -> u32 {
    let sp_adjust = |op: &Op, downward: bool| {
        matches!(op, Op::IAdd { d, a, b: Src::Imm(v), .. }
            if *d == Gpr::SP && *a == Gpr::SP && ((*v as i32) < 0) == downward)
    };
    let mut saves = 0u32;
    let mut pushed = false;
    for ins in code[..pc].iter().rev() {
        if sp_adjust(&ins.op, true) {
            pushed = true;
            break;
        }
        if matches!(ins.op, Op::Jcal { .. }) {
            break;
        }
        if matches!(ins.op, Op::St { spill: true, .. }) {
            saves += 1;
        }
    }
    if !pushed {
        return 0;
    }
    let mut fills = 0u32;
    for ins in &code[pc + 1..] {
        if sp_adjust(&ins.op, false) {
            return saves + fills;
        }
        if matches!(ins.op, Op::Jcal { .. }) {
            break;
        }
        if matches!(ins.op, Op::Ld { spill: true, .. }) {
            fills += 1;
        }
    }
    0
}

/// Lowers a branch-style target: `code_len` is the exclusive upper
/// bound a branch may name (branching *to* `code_len` is legal and
/// faults on the next fetch, matching the seed's `>` check).
fn bra_target(target: Label, code_len: u32) -> UOp {
    match target {
        Label::Pc(t) if t > code_len => UOp::Invalid(DecodedFault::FarBranch(t)),
        Label::Pc(t) => UOp::Bra { target: t },
        _ => UOp::Invalid(DecodedFault::BadLabel),
    }
}

fn decode_instr(ins: &Instr, code_len: u32) -> DecodedInstr {
    let uop = match &ins.op {
        // ---- control flow -----------------------------------------------
        // SSY performs no range check (the seed doesn't either): a wild
        // reconvergence pc faults at fetch time, not push time.
        Op::Ssy { target } => match target {
            Label::Pc(t) => UOp::Ssy { reconv: *t },
            _ => UOp::Invalid(DecodedFault::BadLabel),
        },
        Op::Sync => UOp::Sync,
        Op::Bra { target, .. } => bra_target(*target, code_len),
        Op::Exit => UOp::Exit,
        Op::Jcal { target } => match target {
            // Calls are not range-checked (seed parity): an
            // out-of-range callee faults on its first fetch.
            Label::Pc(t) => UOp::Call { target: *t },
            // The site index is assigned by the decode loop, which
            // knows the module-wide site ordinal.
            Label::Handler(h) => UOp::Trap {
                handler: *h,
                site: u32::MAX,
            },
            Label::Func(_) => UOp::Invalid(DecodedFault::UnlinkedCall),
        },
        Op::Ret => UOp::Ret,
        Op::BarSync => UOp::BarSync,
        Op::MemBar => UOp::MemBar,
        Op::Nop => UOp::Nop,

        // ---- memory ------------------------------------------------------
        Op::Ld { d, width, addr, .. } => UOp::Ld {
            d: *d,
            width: *width,
            addr: *addr,
        },
        Op::Tld { d, width, addr } => UOp::Ld {
            d: *d,
            width: *width,
            addr: *addr,
        },
        Op::St { v, width, addr, .. } => UOp::St {
            v: *v,
            width: *width,
            addr: *addr,
        },
        Op::Atom {
            d,
            op,
            addr,
            v,
            v2,
            wide,
        } => UOp::Atom {
            d: Some(*d),
            op: *op,
            addr: *addr,
            v: *v,
            v2: *v2,
            wide: *wide,
        },
        Op::Red { op, addr, v, wide } => UOp::Atom {
            d: None,
            op: *op,
            addr: *addr,
            v: *v,
            v2: None,
            wide: *wide,
        },

        // ---- warp-wide ---------------------------------------------------
        Op::Vote {
            mode,
            d,
            p_out,
            src,
            neg_src,
        } => UOp::Vote {
            mode: *mode,
            d: *d,
            p_out: *p_out,
            src: *src,
            neg_src: *neg_src,
        },
        Op::Shfl {
            mode,
            d,
            a,
            b,
            c: _,
            p_out,
        } => UOp::Shfl {
            mode: *mode,
            d: *d,
            a: *a,
            b: dsrc(*b),
            p_out: *p_out,
        },

        // ---- per-lane ALU ------------------------------------------------
        Op::Mov { d, a } => UOp::Mov { d: *d, a: dsrc(*a) },
        Op::Mov32I { d, imm } => UOp::Mov {
            d: *d,
            a: DSrc::Imm(*imm),
        },
        Op::S2R { d, sr } => UOp::S2R { d: *d, sr: *sr },
        Op::IAdd { d, a, b, x, cc } => UOp::IAdd {
            d: *d,
            a: *a,
            b: dsrc(*b),
            x: *x,
            cc: *cc,
        },
        Op::ISub { d, a, b } => UOp::ISub {
            d: *d,
            a: *a,
            b: dsrc(*b),
        },
        Op::IMul {
            d,
            a,
            b,
            signed,
            hi,
        } => UOp::IMul {
            d: *d,
            a: *a,
            b: dsrc(*b),
            signed: *signed,
            hi: *hi,
        },
        Op::IMad { d, a, b, c } => UOp::IMad {
            d: *d,
            a: *a,
            b: dsrc(*b),
            c: *c,
        },
        Op::IScAdd { d, a, b, shift } => UOp::IScAdd {
            d: *d,
            a: *a,
            b: dsrc(*b),
            shift: *shift,
        },
        Op::IMnMx {
            d,
            a,
            b,
            min,
            signed,
        } => UOp::IMnMx {
            d: *d,
            a: *a,
            b: dsrc(*b),
            min: *min,
            signed: *signed,
        },
        Op::Shl { d, a, b } => UOp::Shl {
            d: *d,
            a: *a,
            b: dsrc(*b),
        },
        Op::Shr { d, a, b, signed } => UOp::Shr {
            d: *d,
            a: *a,
            b: dsrc(*b),
            signed: *signed,
        },
        Op::Lop { d, op, a, b, inv_b } => UOp::Lop {
            d: *d,
            op: *op,
            a: *a,
            b: dsrc(*b),
            inv_b: *inv_b,
        },
        Op::Popc { d, a } => UOp::Popc { d: *d, a: *a },
        Op::Flo { d, a } => UOp::Flo { d: *d, a: *a },
        Op::Brev { d, a } => UOp::Brev { d: *d, a: *a },
        Op::Sel { d, a, b, p, neg_p } => UOp::Sel {
            d: *d,
            a: *a,
            b: dsrc(*b),
            p: *p,
            neg_p: *neg_p,
        },
        Op::FAdd {
            d,
            a,
            b,
            neg_a,
            neg_b,
        } => UOp::FAdd {
            d: *d,
            a: *a,
            b: dsrc(*b),
            neg_a: *neg_a,
            neg_b: *neg_b,
        },
        Op::FMul { d, a, b } => UOp::FMul {
            d: *d,
            a: *a,
            b: dsrc(*b),
        },
        Op::FFma {
            d,
            a,
            b,
            c,
            neg_b,
            neg_c,
        } => UOp::FFma {
            d: *d,
            a: *a,
            b: dsrc(*b),
            c: *c,
            neg_b: *neg_b,
            neg_c: *neg_c,
        },
        Op::FMnMx { d, a, b, min } => UOp::FMnMx {
            d: *d,
            a: *a,
            b: dsrc(*b),
            min: *min,
        },
        Op::Mufu { d, func, a } => UOp::Mufu {
            d: *d,
            func: *func,
            a: *a,
        },
        Op::I2F { d, a, .. } => UOp::I2F { d: *d, a: *a },
        Op::F2I { d, a, .. } => UOp::F2I { d: *d, a: *a },
        Op::ISetP {
            p,
            cmp,
            a,
            b,
            signed,
            combine,
        } => UOp::ISetP {
            p: *p,
            cmp: *cmp,
            a: *a,
            b: dsrc(*b),
            signed: *signed,
            combine: *combine,
        },
        Op::FSetP { p, cmp, a, b } => UOp::FSetP {
            p: *p,
            cmp: *cmp,
            a: *a,
            b: dsrc(*b),
        },
        Op::PSetP {
            p,
            op,
            a,
            b,
            neg_a,
            neg_b,
        } => UOp::PSetP {
            p: *p,
            op: *op,
            a: *a,
            b: *b,
            neg_a: *neg_a,
            neg_b: *neg_b,
        },
        Op::P2R { d } => UOp::P2R { d: *d },
        Op::R2P { a } => UOp::R2P { a: *a },
    };
    let lat = match &ins.op {
        Op::Mufu { .. } | Op::MemBar => 8,
        Op::IMul { .. } | Op::IMad { .. } | Op::I2F { .. } | Op::F2I { .. } => 4,
        _ => 2,
    };
    DecodedInstr {
        guard: encode_guard(ins),
        lat,
        class: IssueClass::of(&ins.class()),
        uop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sassi_isa::{CBankAddr, Guard};

    fn module_of(instrs: Vec<Instr>) -> Module {
        use sassi_isa::{Function, FunctionMeta};
        Module::link(&[Function::new("k", instrs, FunctionMeta::default())]).unwrap()
    }

    #[test]
    fn guard_packing() {
        let always = Instr::new(Op::Nop);
        assert_eq!(encode_guard(&always), GUARD_ALWAYS);
        let pos = Instr::guarded(Guard::on(PredReg::new(3)), Op::Nop);
        assert_eq!(encode_guard(&pos), 3);
        let neg = Instr::guarded(Guard::not(PredReg::new(5)), Op::Nop);
        assert_eq!(encode_guard(&neg), 0x85);
        // @!PT keeps its encoding: evaluates per lane to an empty mask.
        let never = Instr::guarded(Guard::not(PredReg::PT), Op::Nop);
        assert_eq!(encode_guard(&never), 0x87);
    }

    #[test]
    fn const_operands_pre_resolved() {
        assert_eq!(
            dsrc(Src::Const(CBankAddr { bank: 0, offset: 8 })),
            DSrc::C0(8)
        );
        // Non-bank-0 constants architecturally read zero.
        assert_eq!(
            dsrc(Src::Const(CBankAddr { bank: 3, offset: 8 })),
            DSrc::Imm(0)
        );
        assert_eq!(dsrc(Src::Imm(7)), DSrc::Imm(7));
        assert_eq!(dsrc(Src::Reg(Gpr::new(2))), DSrc::Reg(Gpr::new(2)));
    }

    #[test]
    fn branch_targets_validated_once() {
        assert_eq!(bra_target(Label::Pc(3), 10), UOp::Bra { target: 3 });
        // Branching to exactly code_len is legal (faults at next fetch).
        assert_eq!(bra_target(Label::Pc(10), 10), UOp::Bra { target: 10 });
        assert_eq!(
            bra_target(Label::Pc(11), 10),
            UOp::Invalid(DecodedFault::FarBranch(11))
        );
        assert_eq!(
            bra_target(Label::Func(0), 10),
            UOp::Invalid(DecodedFault::BadLabel)
        );
    }

    #[test]
    fn decoded_fault_kinds_match_seed() {
        assert_eq!(
            DecodedFault::BadLabel.fault(4),
            FaultKind::InvalidPc { pc: u64::MAX }
        );
        assert_eq!(
            DecodedFault::FarBranch(99).fault(4),
            FaultKind::InvalidPc { pc: 99 }
        );
        assert_eq!(
            DecodedFault::UnlinkedCall.fault(4),
            FaultKind::InvalidPc { pc: 4 }
        );
    }

    #[test]
    fn variant_merging() {
        let m = module_of(vec![
            Instr::new(Op::Mov32I {
                d: Gpr::new(0),
                imm: 42,
            }),
            Instr::new(Op::Red {
                op: AtomOp::Add,
                addr: MemAddr::global(Gpr::new(4), 0),
                v: Gpr::new(6),
                wide: false,
            }),
            Instr::new(Op::Tld {
                d: Gpr::new(0),
                width: MemWidth::B32,
                addr: MemAddr::global(Gpr::new(4), 0),
            }),
            Instr::new(Op::Exit),
        ]);
        let d = m.decoded();
        assert_eq!(
            d.get(0).unwrap().uop,
            UOp::Mov {
                d: Gpr::new(0),
                a: DSrc::Imm(42)
            }
        );
        assert!(matches!(d.get(1).unwrap().uop, UOp::Atom { d: None, .. }));
        assert!(matches!(d.get(2).unwrap().uop, UOp::Ld { .. }));
    }

    #[test]
    fn trap_bitmap_marks_handler_calls() {
        let m = module_of(vec![
            Instr::new(Op::Nop),
            Instr::new(Op::Jcal {
                target: Label::Handler(7),
            }),
            Instr::new(Op::Nop),
            Instr::new(Op::Jcal {
                target: Label::Handler(2),
            }),
            Instr::new(Op::Exit),
        ]);
        let d = m.decoded();
        assert_eq!(d.trap_count(), 2);
        assert!(!d.is_trap_site(0));
        assert!(d.is_trap_site(1));
        assert!(d.is_trap_site(3));
        assert!(!d.is_trap_site(4));
        assert!(!d.is_trap_site(1000));
        assert_eq!(d.trap_sites_in(0, 5), 2);
        assert_eq!(d.trap_sites_in(2, 5), 1);
        assert_eq!(d.trap_sites_in(0, 1), 0);
    }

    #[test]
    fn block_table_partitions_by_control_transfers_only() {
        let m = module_of(vec![
            Instr::new(Op::Nop), // 0
            Instr::new(Op::Jcal {
                target: Label::Handler(1),
            }), // 1: trap, NOT a boundary
            Instr::new(Op::MemBar), // 2: not a boundary
            Instr::new(Op::Bra {
                target: Label::Pc(0),
                uniform: false,
            }), // 3: ends block 0
            Instr::new(Op::Nop), // 4
            Instr::new(Op::BarSync), // 5: ends block 1
            Instr::new(Op::Exit), // 6: ends block 2
        ]);
        let d = m.decoded();
        assert_eq!(
            d.blocks(),
            &[
                BasicBlock { start: 0, end: 4 },
                BasicBlock { start: 4, end: 6 },
                BasicBlock { start: 6, end: 7 },
            ]
        );
        // Every pc maps to exactly one block and extents answer from
        // mid-block pcs, not just leaders.
        assert_eq!(d.block_index(0), Some(0));
        assert_eq!(d.block_index(2), Some(0));
        assert_eq!(d.block_index(3), Some(0));
        assert_eq!(d.block_index(4), Some(1));
        assert_eq!(d.block_index(6), Some(2));
        assert_eq!(d.block_end(2), 4);
        assert_eq!(d.block_end(4), 6);
        assert_eq!(d.block_of(5), Some(BasicBlock { start: 4, end: 6 }));
        // Out of range: one fetch (which faults precisely).
        assert_eq!(d.block_index(7), None);
        assert_eq!(d.block_end(7), 8);
        assert_eq!(d.block_end(u32::MAX), u32::MAX);
    }

    #[test]
    fn block_boundary_classification() {
        assert!(is_block_boundary(&UOp::Sync));
        assert!(is_block_boundary(&UOp::Ssy { reconv: 3 }));
        assert!(is_block_boundary(&UOp::Bra { target: 0 }));
        assert!(is_block_boundary(&UOp::Exit));
        assert!(is_block_boundary(&UOp::Call { target: 0 }));
        assert!(is_block_boundary(&UOp::Ret));
        assert!(is_block_boundary(&UOp::BarSync));
        assert!(is_block_boundary(&UOp::Invalid(DecodedFault::BadLabel)));
        // Traps resume at pc + 1, so straight-line runs flow through.
        assert!(!is_block_boundary(&UOp::Trap {
            handler: 0,
            site: 0
        }));
        assert!(!is_block_boundary(&UOp::MemBar));
        assert!(!is_block_boundary(&UOp::Nop));
    }

    #[test]
    fn latency_precomputed() {
        let m = module_of(vec![
            Instr::new(Op::Mufu {
                d: Gpr::new(0),
                func: MufuFunc::Rcp,
                a: Gpr::new(1),
            }),
            Instr::new(Op::IMad {
                d: Gpr::new(0),
                a: Gpr::new(1),
                b: Src::Imm(3),
                c: Gpr::new(2),
            }),
            Instr::new(Op::IAdd {
                d: Gpr::new(0),
                a: Gpr::new(1),
                b: Src::Imm(3),
                x: false,
                cc: false,
            }),
            Instr::new(Op::Exit),
        ]);
        let d = m.decoded();
        assert_eq!(d.get(0).unwrap().lat, 8);
        assert_eq!(d.get(1).unwrap().lat, 4);
        assert_eq!(d.get(2).unwrap().lat, 2);
    }
}
