//! The device executor: multi-SM, cycle-approximate SIMT simulation.
//!
//! Functional semantics are exact (every lane's registers, predicates,
//! memories); timing is approximate but divergence-faithful: one warp
//! instruction issues per SM per cycle, memory operations stall warps
//! for latencies produced by the coalescer/cache/DRAM model, and
//! control divergence serializes paths exactly as the divergence stack
//! dictates.
//!
//! # SM-worker execution model
//!
//! A launch's CTAs are partitioned round-robin over `min(num_sms,
//! total_blocks)` *shards* — CTA `i` goes to shard `i % shards`, a pure
//! function of launch geometry. Each shard models one SM: its own warp
//! contexts, CTA slots, memory hierarchy and [`LaunchStats`]
//! accumulator, with its own cycle loop. Shard results merge in
//! canonical shard order (work counters sum, `cycles` takes the max),
//! so the merged result is independent of how shards were scheduled.
//!
//! [`Device::cta_jobs`] chooses how many worker threads execute the
//! shards (worker `k` runs shards `k`, `k + jobs`, …). Parallel workers
//! need private global-memory views: each shard gets a
//! [`DeviceMemory::fork`] whose write journal is committed back in
//! shard order, and the handler runtime must split via
//! [`HandlerRuntime::fork_shard`]. Kernels whose global atomics
//! *consume* the old value (CAS/EXCH or `ATOM` with a live
//! destination) observe a cross-CTA total order, so such launches —
//! and launches whose runtime declines to fork — run their shards
//! sequentially on the calling thread instead, which is always
//! deterministic. Fire-and-forget `RED` reductions are commutative and
//! parallelize fine.

use crate::config::{GpuConfig, LaunchDims};
use crate::decode::{DSrc, DecodedModule, UOp, GUARD_ALWAYS};
use crate::module::{LinkedFunction, Module};
use crate::stats::{FaultInfo, FaultKind, KernelOutcome, LaunchResult, LaunchStats};
use crate::trap::{HandlerRuntime, TrapCtx, TrapRef};
use crate::warp::{Warp, WarpStatus};
use sassi_isa::{
    cbank0, resolve_generic, AddrSpace, AtomOp, Gpr, LaneMask, LogicOp, MemAddr, MemWidth, PredReg,
    ShflMode, SpecialReg, VoteMode,
};
use sassi_mem::{
    apply_atom, DeviceMemory, HierarchyConfig, HierarchyStats, JournalOp, MemError, MemoryHierarchy,
};
use std::fmt;

mod reference;

/// Host-side launch misuse (distinct from device faults, which are
/// reported in [`LaunchResult`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel symbol is not in the module.
    UnknownKernel(String),
    /// The launch geometry cannot be scheduled on this device.
    BadGeometry(String),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            LaunchError::BadGeometry(m) => write!(f, "bad launch geometry: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Which interpreter loop [`Device::launch`] executes.
///
/// Both modes are bit-exact: identical `LaunchResult`s, stats and
/// memory effects. `Reference` exists as the differential-testing
/// oracle for the pre-decoded fast path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Execute the link-time pre-decoded µop array (the fast path).
    #[default]
    Decoded,
    /// Execute directly from the linked `Instr` array (the original
    /// seed semantics).
    Reference,
}

/// The simulated GPU: configuration, global memory and per-SM
/// execution state. Memory contents persist across launches, so hosts
/// can allocate buffers once and run many kernels, CUDA-style. SM
/// slots (warp contexts, CTA slots, cache hierarchies) also persist
/// and are recycled, so relaunching does not reallocate warp state.
pub struct Device {
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Global device memory.
    pub mem: DeviceMemory,
    /// Which interpreter loop `launch` runs (defaults to the decoded
    /// fast path; flip to `Reference` for differential testing).
    pub exec_mode: ExecMode,
    /// Worker threads executing SM shards of one launch. `1` (the
    /// default) runs shards sequentially on the calling thread; higher
    /// values fork per-shard memory views and handler runtimes and run
    /// shards on a fixed-size pool. Results are merged in canonical
    /// shard order, so they are identical for any value.
    pub cta_jobs: usize,
    /// Whether the decoded interpreter runs warps to their basic-block
    /// boundary per scheduler visit (the default) instead of one µop
    /// per visit. Block stepping preserves functional semantics and
    /// all instruction-derived statistics; only cycle-derived numbers
    /// shift (intra-block memory stalls overlap instead of
    /// serializing). Defaults from the `SASSI_BLOCK_STEP` environment
    /// variable (`0` → single-step); the reference interpreter and
    /// kernels with consuming global atomics (whose instruction
    /// streams observe warp interleaving) always single-step.
    pub block_step: bool,
    slots: Vec<SmSlot>,
    warp_allocations: u64,
}

/// Process-wide default for [`Device::block_step`]: `false` iff
/// `SASSI_BLOCK_STEP` is set to `0` (the debugging / A-B escape
/// hatch), `true` otherwise. Read once and cached — flip the field on
/// the device (or use `Runtime::set_block_step`) for programmatic
/// control within a process.
pub fn block_step_env_default() -> bool {
    static CACHE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        !matches!(
            std::env::var("SASSI_BLOCK_STEP").as_deref().map(str::trim),
            Ok("0")
        )
    })
}

/// Persistent per-SM execution state, recycled across launches.
struct SmSlot {
    hier: MemoryHierarchy,
    warps: Vec<Warp>,
    ctas: Vec<Cta>,
    free_warps: Vec<usize>,
    free_ctas: Vec<usize>,
}

impl SmSlot {
    fn new(cfg: HierarchyConfig) -> SmSlot {
        SmSlot {
            hier: MemoryHierarchy::new(1, cfg),
            warps: Vec::new(),
            ctas: Vec::new(),
            free_warps: Vec::new(),
            free_ctas: Vec::new(),
        }
    }
}

/// The launch-wide immutable inputs shared by every shard.
struct ShardEnv<'a> {
    cfg: &'a GpuConfig,
    module: &'a Module,
    decoded: &'a DecodedModule,
    mode: ExecMode,
    kernel: &'a LinkedFunction,
    dims: LaunchDims,
    cbank: Vec<u8>,
    launch_index: u64,
    max_cycles: u64,
    block_step: bool,
}

/// One shard's contribution to the launch result.
struct ShardOut {
    outcome: KernelOutcome,
    stats: LaunchStats,
    mem_stats: HierarchyStats,
    journal: Vec<JournalOp>,
    warp_allocs: u64,
}

impl Device {
    /// Creates a device with a global heap of `heap_bytes`.
    pub fn new(cfg: GpuConfig, heap_bytes: usize) -> Device {
        Device {
            cfg,
            mem: DeviceMemory::new(heap_bytes),
            exec_mode: ExecMode::default(),
            cta_jobs: 1,
            block_step: block_step_env_default(),
            slots: Vec::new(),
            warp_allocations: 0,
        }
    }

    /// A default device with a 256 MiB heap.
    pub fn with_defaults() -> Device {
        Device::new(GpuConfig::default(), 256 << 20)
    }

    /// Total fresh warp-context allocations since device creation.
    /// Relaunches reuse retired contexts, so this does not grow when
    /// the same geometry is launched again.
    pub fn warp_allocations(&self) -> u64 {
        self.warp_allocations
    }

    /// Launches `kernel` from `module` and runs it to completion (or
    /// fault / watchdog expiry). `params` are 8-byte argument slots.
    ///
    /// # Errors
    ///
    /// Host-side [`LaunchError`]s only; device faults and hangs are
    /// reported inside the returned [`LaunchResult`].
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: LaunchDims,
        params: &[u64],
        runtime: &mut dyn HandlerRuntime,
        launch_index: u64,
        max_cycles: u64,
    ) -> Result<LaunchResult, LaunchError> {
        let kf = module
            .function(kernel)
            .ok_or_else(|| LaunchError::UnknownKernel(kernel.to_string()))?;
        let wpb = dims.warps_per_block();
        if wpb == 0 || dims.total_blocks() == 0 {
            return Err(LaunchError::BadGeometry("empty grid or block".into()));
        }
        if wpb > self.cfg.max_warps_per_sm {
            return Err(LaunchError::BadGeometry(format!(
                "block needs {wpb} warps, SM holds {}",
                self.cfg.max_warps_per_sm
            )));
        }
        let shared_bytes = (kf.meta.shared_bytes + 7) & !7;
        if shared_bytes > self.cfg.shared_per_sm {
            return Err(LaunchError::BadGeometry(format!(
                "block needs {shared_bytes} B shared, SM has {}",
                self.cfg.shared_per_sm
            )));
        }

        let total = dims.total_blocks();
        let num_shards = self.cfg.num_sms.min(total).max(1) as usize;
        while self.slots.len() < num_shards {
            self.slots.push(SmSlot::new(self.cfg.hierarchy));
        }
        // CTA i runs on shard i % num_shards: a pure function of launch
        // geometry, so shard contents are identical for any job count.
        let queues: Vec<Vec<u32>> = (0..num_shards as u32)
            .map(|s| (s..total).step_by(num_shards).collect())
            .collect();
        let decoded = module.decoded();
        // Let the runtime pre-resolve per-site dispatch state once per
        // launch, before any trap fires (forked shard runtimes are
        // bound below, after forking).
        runtime.bind_sites(decoded.sites());
        let env = ShardEnv {
            cfg: &self.cfg,
            module,
            decoded,
            mode: self.exec_mode,
            kernel: kf,
            dims,
            cbank: build_cbank0(&self.cfg, kf, dims, params),
            launch_index,
            max_cycles,
            // The reference interpreter is the cycle-exact oracle for
            // the decoded path, so it always single-steps. Kernels with
            // consuming atomics also single-step: block stepping
            // coarsens the intra-SM warp interleaving, and a consumed
            // old value (CAS winners, `atom` destinations) feeds that
            // interleaving back into the instruction stream — the same
            // hazard that gates CTA-parallel shard forking below. All
            // other kernels' instruction-derived statistics are
            // interleaving-independent.
            block_step: self.block_step
                && self.exec_mode == ExecMode::Decoded
                && !decoded.has_consuming_global_atomics(),
        };

        let jobs = self.cta_jobs.max(1).min(num_shards);
        // Parallel shards need private memory views, which is only
        // sound when no CTA consumes another CTA's atomic results, and
        // a handler runtime whose state can be forked and merged.
        let forks = if jobs > 1 && num_shards > 1 && !decoded.has_consuming_global_atomics() {
            let mut v = Vec::with_capacity(num_shards);
            for _ in 0..num_shards {
                match runtime.fork_shard() {
                    Some(f) => v.push(f),
                    None => break,
                }
            }
            (v.len() == num_shards).then_some(v)
        } else {
            None
        };

        let mut joins: Vec<Option<Box<dyn FnOnce() + Send>>> = Vec::new();
        let outs: Vec<ShardOut> = match forks {
            Some(forks) => {
                let mut runtimes: Vec<Box<dyn HandlerRuntime + Send>> =
                    Vec::with_capacity(num_shards);
                for f in forks {
                    let mut rt = f.runtime;
                    rt.bind_sites(decoded.sites());
                    runtimes.push(rt);
                    joins.push(Some(f.join));
                }
                let mems: Vec<DeviceMemory> = (0..num_shards).map(|_| self.mem.fork()).collect();
                let env = &env;
                // One shard's worker assignment: its index, SM slot,
                // forked memory view and forked handler runtime.
                type ShardWork<'s> = (
                    usize,
                    &'s mut SmSlot,
                    DeviceMemory,
                    Box<dyn HandlerRuntime + Send>,
                );
                // Deal shards statically: worker k runs shards
                // k, k + jobs, … — no load-dependent scheduling.
                let mut groups: Vec<Vec<ShardWork<'_>>> = (0..jobs).map(|_| Vec::new()).collect();
                for (s, ((slot, mem), rt)) in self.slots[..num_shards]
                    .iter_mut()
                    .zip(mems)
                    .zip(runtimes)
                    .enumerate()
                {
                    groups[s % jobs].push((s, slot, mem, rt));
                }
                let queues = &queues;
                let mut results: Vec<Option<ShardOut>> = (0..num_shards).map(|_| None).collect();
                std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .into_iter()
                        .map(|group| {
                            scope.spawn(move || {
                                group
                                    .into_iter()
                                    .map(|(s, slot, mut mem, mut rt)| {
                                        let out = run_shard(
                                            env,
                                            slot,
                                            &mut mem,
                                            rt.as_mut(),
                                            s as u32,
                                            &queues[s],
                                        );
                                        (s, out)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        for (s, out) in h.join().expect("shard worker panicked") {
                            results[s] = Some(out);
                        }
                    }
                });
                results
                    .into_iter()
                    .map(|o| o.expect("every shard ran"))
                    .collect()
            }
            None => (0..num_shards)
                .map(|s| {
                    run_shard(
                        &env,
                        &mut self.slots[s],
                        &mut self.mem,
                        &mut *runtime,
                        s as u32,
                        &queues[s],
                    )
                })
                .collect(),
        };

        // Merge in canonical shard order: commit journals, sum work
        // counters (cycles take the max), pick the lowest-shard fault,
        // and fold shard handler state back into the parent runtime.
        let mut outcome = KernelOutcome::Completed;
        let mut stats = LaunchStats::default();
        let mut mem_stats = HierarchyStats::default();
        for (s, out) in outs.iter().enumerate() {
            self.mem.commit(&out.journal);
            stats.merge_shard(&out.stats);
            mem_stats.merge(&out.mem_stats);
            self.warp_allocations += out.warp_allocs;
            if outcome.is_ok() && !out.outcome.is_ok() {
                outcome = out.outcome;
            }
            if let Some(join) = joins.get_mut(s).and_then(|j| j.take()) {
                join();
            }
        }
        Ok(LaunchResult {
            outcome,
            stats,
            mem: mem_stats,
        })
    }
}

/// Runs one SM shard to completion and returns its contribution.
fn run_shard(
    env: &ShardEnv<'_>,
    slot: &mut SmSlot,
    mem: &mut DeviceMemory,
    runtime: &mut dyn HandlerRuntime,
    sm_id: u32,
    queue: &[u32],
) -> ShardOut {
    slot.hier.reset();
    slot.free_warps.clear();
    slot.free_warps.extend(0..slot.warps.len());
    slot.free_ctas.clear();
    slot.free_ctas.extend(0..slot.ctas.len());
    let mut exec = Exec {
        cfg: env.cfg,
        module: env.module,
        decoded: env.decoded,
        mode: env.mode,
        kernel: env.kernel,
        dims: env.dims,
        cbank: &env.cbank,
        mem,
        hier: &mut slot.hier,
        runtime,
        launch_index: env.launch_index,
        sm_id,
        queue,
        next_in_queue: 0,
        ctas: &mut slot.ctas,
        warps: &mut slot.warps,
        free_warps: &mut slot.free_warps,
        free_ctas: &mut slot.free_ctas,
        list: Vec::new(),
        rr: 0,
        cycle: 0,
        stats: LaunchStats::default(),
        warp_allocs: 0,
        retire_pending: false,
        block_step: env.block_step,
    };
    let outcome = exec.run(env.max_cycles);
    let mut stats = exec.stats;
    stats.cycles = exec.cycle;
    let warp_allocs = exec.warp_allocs;
    drop(exec);
    ShardOut {
        outcome,
        stats,
        mem_stats: slot.hier.stats(),
        journal: mem.take_journal(),
        warp_allocs,
    }
}

fn build_cbank0(cfg: &GpuConfig, kf: &LinkedFunction, dims: LaunchDims, params: &[u64]) -> Vec<u8> {
    let mut img = vec![0u8; cbank0::PARAM_BASE as usize + 8 * params.len().max(1)];
    let mut w32 = |off: u16, v: u32| {
        img[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    };
    w32(cbank0::NTID_X, dims.block.0);
    w32(cbank0::NTID_Y, dims.block.1);
    w32(cbank0::NTID_Z, dims.block.2);
    w32(cbank0::NCTAID_X, dims.grid.0);
    w32(cbank0::NCTAID_Y, dims.grid.1);
    w32(cbank0::NCTAID_Z, dims.grid.2);
    w32(cbank0::LOCAL_SIZE, cfg.local_bytes_per_thread);
    w32(cbank0::SHARED_SIZE, kf.meta.shared_bytes);
    w32(cbank0::LOCAL_WINDOW, sassi_isa::GENERIC_LOCAL_TAG as u32);
    w32(cbank0::SHARED_WINDOW, sassi_isa::GENERIC_SHARED_TAG as u32);
    for (i, p) in params.iter().enumerate() {
        let off = cbank0::PARAM_BASE as usize + 8 * i;
        img[off..off + 8].copy_from_slice(&p.to_le_bytes());
    }
    img
}

struct Cta {
    ctaid: (u32, u32, u32),
    shared: Vec<u8>,
    warps_total: u32,
    warps_done: u32,
    warps_at_barrier: u32,
}

/// The execution loop of one SM shard: borrows the shard's persistent
/// state from its [`SmSlot`] and runs its CTA queue to completion.
struct Exec<'a> {
    cfg: &'a GpuConfig,
    module: &'a Module,
    decoded: &'a DecodedModule,
    mode: ExecMode,
    kernel: &'a LinkedFunction,
    dims: LaunchDims,
    cbank: &'a [u8],
    mem: &'a mut DeviceMemory,
    hier: &'a mut MemoryHierarchy,
    runtime: &'a mut dyn HandlerRuntime,
    launch_index: u64,
    /// Global shard id — the SM id handlers and `%smid` observe.
    sm_id: u32,
    /// Linear CTA ids assigned to this shard, issued in order.
    queue: &'a [u32],
    next_in_queue: usize,
    ctas: &'a mut Vec<Cta>,
    warps: &'a mut Vec<Warp>,
    free_warps: &'a mut Vec<usize>,
    free_ctas: &'a mut Vec<usize>,
    /// Warp indices resident on this SM.
    list: Vec<usize>,
    rr: usize,
    cycle: u64,
    stats: LaunchStats,
    warp_allocs: u64,
    /// Whether some listed warp went `Done` since the last retire
    /// scan. Warps only finish during their own step, so `pick` can
    /// skip the scan entirely on the (vastly more common) cycles where
    /// nothing retired.
    retire_pending: bool,
    /// Run a picked warp to its basic-block boundary instead of one
    /// µop per pick (decoded mode only; see [`Device::block_step`]).
    block_step: bool,
}

impl Exec<'_> {
    fn ctas_per_sm(&self) -> u32 {
        let wpb = self.dims.warps_per_block();
        let by_warps = self.cfg.max_warps_per_sm / wpb;
        let shared = (self.kernel.meta.shared_bytes + 7) & !7;
        let by_shared = self
            .cfg
            .shared_per_sm
            .checked_div(shared)
            .unwrap_or(u32::MAX);
        self.cfg.max_ctas_per_sm.min(by_warps).min(by_shared).max(1)
    }

    fn block_coords(&self, linear: u32) -> (u32, u32, u32) {
        let (gx, gy, _) = self.dims.grid;
        (linear % gx, (linear / gx) % gy, linear / (gx * gy))
    }

    fn issue_block(&mut self) {
        let Some(&linear) = self.queue.get(self.next_in_queue) else {
            return;
        };
        self.next_in_queue += 1;
        self.stats.blocks += 1;
        let wpb = self.dims.warps_per_block();
        let tpb = self.dims.threads_per_block();
        let shared_len = ((self.kernel.meta.shared_bytes + 7) & !7) as usize;
        let ctaid = self.block_coords(linear);
        let cta_idx = match self.free_ctas.pop() {
            Some(i) => {
                let c = &mut self.ctas[i];
                c.ctaid = ctaid;
                c.shared.clear();
                c.shared.resize(shared_len, 0);
                c.warps_total = wpb;
                c.warps_done = 0;
                c.warps_at_barrier = 0;
                i
            }
            None => {
                self.ctas.push(Cta {
                    ctaid,
                    shared: vec![0; shared_len],
                    warps_total: wpb,
                    warps_done: 0,
                    warps_at_barrier: 0,
                });
                self.ctas.len() - 1
            }
        };
        for w in 0..wpb {
            let first = w * 32;
            let count = tpb.saturating_sub(first).min(32);
            let existing: LaneMask = if count == 32 {
                u32::MAX
            } else {
                (1u32 << count) - 1
            };
            let wi = match self.free_warps.pop() {
                Some(i) => {
                    self.warps[i].reset(
                        cta_idx,
                        w,
                        self.kernel.entry,
                        existing,
                        self.cfg.regs_per_thread,
                        self.cfg.local_bytes_per_thread,
                    );
                    i
                }
                None => {
                    self.warp_allocs += 1;
                    self.warps.push(Warp::new(
                        cta_idx,
                        w,
                        self.kernel.entry,
                        existing,
                        self.cfg.regs_per_thread,
                        self.cfg.local_bytes_per_thread,
                    ));
                    self.warps.len() - 1
                }
            };
            self.list.push(wi);
        }
    }

    fn run(&mut self, max_cycles: u64) -> KernelOutcome {
        // Fill the SM to occupancy.
        let target = self.ctas_per_sm();
        for _ in 0..target {
            self.issue_block();
        }

        // The decoded interpreter amortizes warp selection over whole
        // straight-line runs; the reference interpreter (and the
        // `SASSI_BLOCK_STEP=0` escape hatch) pays one pick per µop.
        let block_step = self.block_step && self.mode == ExecMode::Decoded;
        loop {
            if self.cycle > max_cycles {
                return KernelOutcome::Hang;
            }
            match self.pick() {
                Pick::Warp(wi) => {
                    // `step_block` charges its own cycles (one per µop
                    // executed); the single-step path charges one here.
                    // A faulting µop charges none in either path.
                    let stepped = if block_step {
                        self.step_block(wi)
                    } else {
                        self.step(wi)
                    };
                    if let Err(kind) = stepped {
                        return KernelOutcome::Fault(FaultInfo {
                            kind,
                            pc: self.warps[wi].pc,
                            sm: self.sm_id,
                        });
                    }
                    if self.warps[wi].status == WarpStatus::Done {
                        self.retire_pending = true;
                    }
                    if !block_step {
                        self.cycle += 1;
                    }
                }
                Pick::Stalled(until) => {
                    self.cycle = until.max(self.cycle + 1);
                }
                Pick::Empty => {
                    if self.next_in_queue >= self.queue.len() {
                        return KernelOutcome::Completed;
                    }
                    self.issue_block();
                }
            }
        }
    }

    /// Runs warp `wi` from its current pc to the end of the enclosing
    /// basic block: every remaining µop of the straight-line run
    /// (predicated-off ones included) executes under this one
    /// scheduler visit, bailing out early only on a fault, warp
    /// retirement or a barrier.
    ///
    /// Cycle accounting charges the run's µop count — one cycle per
    /// µop, exactly as single-stepping does — so instruction-derived
    /// statistics are byte-identical to `SASSI_BLOCK_STEP=0`.
    /// Intermediate dependence stalls are *not* waited out mid-block;
    /// instead the block's final `ready_at` is the max over its µops',
    /// so a long-latency load still delays the warp's next run while
    /// other warps fill the gap. That overlap (and nothing else) is
    /// what shifts cycle-derived artifacts versus single-stepping.
    fn step_block(&mut self, wi: usize) -> Result<(), FaultKind> {
        // The extent is asked from the *current* pc: jumps into the
        // middle of a run execute only its remaining suffix.
        let end = self.decoded.block_end(self.warps[wi].pc);
        let mut block_ready = 0u64;
        loop {
            // Straight-line fast path: consecutive ALU-class µops of
            // the run execute with the warp, the stat block and the
            // cycle counter borrowed once, instead of re-resolving
            // `self.warps[wi]` and dispatching through `step_decoded`
            // per µop. Semantics are identical: same guard
            // evaluation, same stat bumps, one cycle per µop, and the
            // same `ready_at` contribution (`cycle + lat`, what
            // `finish` would write) folded into the block maximum.
            // The boundary µop at `end - 1` — like memory, trap, S2R
            // and warp-wide µops — always takes the general path.
            {
                let dm: &DecodedModule = self.decoded;
                let cbank = self.cbank;
                let w = &mut self.warps[wi];
                let stats = &mut self.stats;
                let mut cycle = self.cycle;
                while w.pc + 1 < end {
                    let Some(di) = dm.get(w.pc) else { break };
                    let mask = guard_mask(w, di.guard);
                    if !Self::exec_alu(cbank, w, &di.uop, mask) {
                        break;
                    }
                    stats.warp_instrs += 1;
                    stats.thread_instrs += mask.count_ones() as u64;
                    stats.issue.bump(di.class);
                    w.pc += 1;
                    block_ready = block_ready.max(cycle + (di.lat as u64).max(1));
                    cycle += 1;
                }
                self.cycle = cycle;
            }
            let pc = self.warps[wi].pc;
            // On a fault the warp's pc still names the faulting µop
            // and earlier µops' cycles are already charged — precise
            // resume needs no boundary at fault-capable µops.
            self.step_decoded(wi)?;
            self.cycle += 1;
            let w = &self.warps[wi];
            block_ready = block_ready.max(w.ready_at);
            // `pc + 1 == end` means the run's last µop just executed —
            // checked against the pre-step pc because a block-ending
            // branch may land anywhere (including back inside this
            // block, which starts a *new* scheduler visit). Every
            // non-ending µop advances pc by exactly one.
            if pc + 1 >= end || w.status != WarpStatus::Ready {
                break;
            }
        }
        let w = &mut self.warps[wi];
        w.ready_at = block_ready.max(w.ready_at);
        Ok(())
    }

    fn pick(&mut self) -> Pick {
        // Retire finished warps lazily — only on cycles where a warp
        // actually went `Done` (`retire_pending`), so the common path
        // skips straight to warp selection.
        if self.retire_pending {
            self.retire_pending = false;
            let mut i = 0;
            while i < self.list.len() {
                let wi = self.list[i];
                if self.warps[wi].status == WarpStatus::Done {
                    // Unlist the warp and recycle its context (registers
                    // and local slab are zeroed on reuse, not freed).
                    self.list.swap_remove(i);
                    self.free_warps.push(wi);
                    let cta = self.warps[wi].cta;
                    self.ctas[cta].warps_done += 1;
                    self.maybe_release_barrier(cta);
                    if self.ctas[cta].warps_done == self.ctas[cta].warps_total {
                        self.free_ctas.push(cta);
                        self.issue_block();
                    }
                    continue;
                }
                i += 1;
            }
        }
        if self.list.is_empty() {
            return Pick::Empty;
        }
        // Round-robin from `rr`: two linear passes (wrap once) instead
        // of a modulo per candidate. Visit order is identical.
        let n = self.list.len();
        let start = self.rr % n;
        let mut min_ready = u64::MAX;
        for k in start..n {
            let w = &self.warps[self.list[k]];
            if w.status == WarpStatus::Ready {
                if w.ready_at <= self.cycle {
                    self.rr = (k + 1) % n;
                    return Pick::Warp(self.list[k]);
                }
                min_ready = min_ready.min(w.ready_at);
            }
        }
        for k in 0..start {
            let w = &self.warps[self.list[k]];
            if w.status == WarpStatus::Ready {
                if w.ready_at <= self.cycle {
                    self.rr = k + 1;
                    return Pick::Warp(self.list[k]);
                }
                min_ready = min_ready.min(w.ready_at);
            }
        }
        if min_ready == u64::MAX {
            // Everyone is at a barrier or done — barrier release happens
            // on warp retirement/arrival; nothing to wait for timewise.
            Pick::Stalled(self.cycle + 1)
        } else {
            Pick::Stalled(min_ready)
        }
    }

    fn maybe_release_barrier(&mut self, cta_idx: usize) {
        let cta = &self.ctas[cta_idx];
        let waiting_target = cta.warps_total - cta.warps_done;
        if cta.warps_at_barrier > 0 && cta.warps_at_barrier >= waiting_target {
            self.ctas[cta_idx].warps_at_barrier = 0;
            for i in 0..self.list.len() {
                let wi = self.list[i];
                let w = &mut self.warps[wi];
                if w.cta == cta_idx && w.status == WarpStatus::AtBarrier {
                    w.status = WarpStatus::Ready;
                }
            }
        }
    }

    /// Reads 4 bytes of the bank-0 constant image (out-of-image reads
    /// return 0, matching hardware's zero-backed tail).
    #[inline(always)]
    fn c0_read(&self, offset: u16) -> u32 {
        c0_read_img(self.cbank, offset)
    }

    /// Resolves a pre-decoded operand for this warp-step: constants
    /// and immediates become values here, once; only registers remain
    /// per-lane work.
    #[inline(always)]
    fn rsrc(&self, s: DSrc) -> RSrc {
        rsrc_c(self.cbank, s)
    }

    /// Guard evaluation from the packed guard byte.
    fn guard_mask_decoded(&self, w: &Warp, g: u8) -> LaneMask {
        guard_mask(w, g)
    }

    /// Executes one instruction of warp `wi`. Returns a fault kind on
    /// abort.
    fn step(&mut self, wi: usize) -> Result<(), FaultKind> {
        match self.mode {
            ExecMode::Decoded => self.step_decoded(wi),
            ExecMode::Reference => self.step_reference(wi),
        }
    }

    /// The pre-decoded hot loop: executes one µop with no allocation,
    /// no `Instr` clone and no operand re-matching.
    fn step_decoded(&mut self, wi: usize) -> Result<(), FaultKind> {
        // Copying the long-lived reference out of `self` unties the
        // instruction from the `&mut self` borrow, so the borrow
        // checker permits mutating warp/stat state while `di` lives.
        let dm: &DecodedModule = self.decoded;
        let pc = self.warps[wi].pc;
        let Some(di) = dm.get(pc) else {
            return Err(FaultKind::InvalidPc { pc: pc as u64 });
        };
        let mask = self.guard_mask_decoded(&self.warps[wi], di.guard);
        self.stats.warp_instrs += 1;
        self.stats.thread_instrs += mask.count_ones() as u64;
        self.stats.issue.bump(di.class);

        let lat: u64 = di.lat as u64;
        match di.uop {
            // ---- control flow ------------------------------------------------
            UOp::Ssy { reconv } => {
                let w = &mut self.warps[wi];
                w.stack.push(crate::warp::StackEntry::Ssy {
                    reconv,
                    mask: w.active,
                });
                w.pc += 1;
                finish(w, self.cycle, 1);
                return Ok(());
            }
            UOp::Bra { target } => {
                let w = &mut self.warps[wi];
                if di.is_guarded() {
                    self.stats.cond_branches += 1;
                }
                if w.branch(target, mask) {
                    self.stats.divergent_branches += 1;
                }
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            UOp::Sync => {
                let w = &mut self.warps[wi];
                if di.is_guarded() {
                    // A predicated SYNC is a conditional control
                    // transfer: lanes that pass the guard park, the
                    // rest fall through.
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.sync(mask);
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            UOp::Exit => {
                let w = &mut self.warps[wi];
                if di.is_guarded() {
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.exit_lanes(mask);
                finish(&mut self.warps[wi], self.cycle, 1);
                return Ok(());
            }
            UOp::Call { target } => {
                let w = &mut self.warps[wi];
                w.call_stack.push(w.pc + 1);
                w.pc = target;
                finish(w, self.cycle, 4);
                return Ok(());
            }
            UOp::Trap { handler, site } => {
                self.stats.handler_calls += 1;
                let cost = {
                    let warp = &mut self.warps[wi];
                    let cta = &mut self.ctas[warp.cta];
                    let mut ctx = TrapCtx {
                        warp,
                        shared: &mut cta.shared,
                        mem: self.mem,
                        ctaid: cta.ctaid,
                        block_dim: self.dims.block,
                        grid_dim: self.dims.grid,
                        sm_id: self.sm_id,
                        cycle: self.cycle,
                        kernel: &self.kernel.name,
                        launch_index: self.launch_index,
                    };
                    self.runtime.handle(TrapRef { site, handler }, &mut ctx)
                };
                let cycles = cost.cycles();
                self.stats.handler_cycles += cycles;
                self.warps[wi].pc += 1;
                finish(&mut self.warps[wi], self.cycle, 4 + cycles);
                return Ok(());
            }
            UOp::Ret => {
                let w = &mut self.warps[wi];
                match w.call_stack.pop() {
                    Some(r) => w.pc = r,
                    None => return Err(FaultKind::CallStackUnderflow),
                }
                finish(&mut self.warps[wi], self.cycle, 4);
                return Ok(());
            }
            UOp::BarSync => {
                let cta_idx = self.warps[wi].cta;
                {
                    let w = &mut self.warps[wi];
                    w.pc += 1;
                    w.status = WarpStatus::AtBarrier;
                    w.ready_at = self.cycle + 1;
                }
                self.ctas[cta_idx].warps_at_barrier += 1;
                self.maybe_release_barrier(cta_idx);
                return Ok(());
            }
            UOp::Invalid(defect) => return Err(defect.fault(pc)),

            // ---- memory -----------------------------------------------------
            UOp::Ld { d, width, addr } => {
                self.mem_load(wi, mask, d, width, &addr, false)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            UOp::St { v, width, addr } => {
                self.mem_store(wi, mask, v, width, &addr)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            UOp::Atom {
                d,
                op,
                addr,
                v,
                v2,
                wide,
            } => {
                self.mem_atomic(wi, mask, d, op, &addr, v, v2, wide)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            UOp::MemBar => {} // lat precomputed in the header

            // ---- warp-wide ---------------------------------------------------
            UOp::Vote {
                mode,
                d,
                p_out,
                src,
                neg_src,
            } => {
                let w = &mut self.warps[wi];
                let mut ballot: u32 = 0;
                for_lanes(mask, |lane| {
                    if w.pred(lane, src) != neg_src {
                        ballot |= 1 << lane;
                    }
                });
                let all = ballot & mask == mask && mask != 0;
                let any = ballot != 0;
                for_lanes(mask, |lane| {
                    match mode {
                        VoteMode::Ballot => w.set_reg(lane, d, ballot),
                        VoteMode::All => w.set_reg(lane, d, all as u32),
                        VoteMode::Any => w.set_reg(lane, d, any as u32),
                    }
                    if let Some(p) = p_out {
                        let v = match mode {
                            VoteMode::All => all,
                            VoteMode::Any => any,
                            VoteMode::Ballot => ballot != 0,
                        };
                        w.set_pred(lane, p, v);
                    }
                });
            }
            UOp::Shfl {
                mode,
                d,
                a,
                b,
                p_out,
            } => {
                let b = self.rsrc(b);
                let w = &mut self.warps[wi];
                let mut snapshot = [0u32; 32];
                for (l, s) in snapshot.iter_mut().enumerate() {
                    *s = w.reg(l, a);
                }
                for_lanes(mask, |lane| {
                    let bv = rval(w, lane, b);
                    let src_lane = match mode {
                        ShflMode::Idx => (bv & 31) as usize,
                        ShflMode::Up => lane.wrapping_sub(bv as usize),
                        ShflMode::Down => lane + bv as usize,
                        ShflMode::Bfly => lane ^ (bv as usize & 31),
                    };
                    let in_range = src_lane < 32 && (mask & (1 << src_lane)) != 0;
                    let val = if in_range {
                        snapshot[src_lane]
                    } else {
                        snapshot[lane]
                    };
                    w.set_reg(lane, d, val);
                    if let Some(p) = p_out {
                        w.set_pred(lane, p, in_range);
                    }
                });
            }

            // ---- per-lane ALU -------------------------------------------------
            _ => self.alu_decoded(wi, &di.uop, mask),
        }
        let w = &mut self.warps[wi];
        w.pc += 1;
        finish(w, self.cycle, lat);
        Ok(())
    }

    /// Per-lane execution of the ALU-class µops. `S2R` is the one
    /// ALU-class µop that reads scheduler state (cta coordinates, sm
    /// id, the cycle counter), so it is handled here; every other op
    /// runs in the warp-only [`Exec::exec_alu`], shared with the
    /// block-stepped straight-line fast loop.
    fn alu_decoded(&mut self, wi: usize, uop: &UOp, mask: LaneMask) {
        if let UOp::S2R { d, sr } = *uop {
            let ctx = self.special_ctx(&self.warps[wi]);
            let w = &mut self.warps[wi];
            for_lanes(mask, |lane| {
                let v = special_value(&ctx, lane, sr);
                w.set_reg(lane, d, v);
            });
            return;
        }
        Self::exec_alu(self.cbank, &mut self.warps[wi], uop, mask);
    }

    /// Warp-only execution of the ALU-class µops: the operation is
    /// matched and its operands resolved once per warp; only the lane
    /// loop runs per thread. Returns `false` — having done nothing —
    /// for µops that need more than the warp and the constant bank
    /// (memory, control, trap, `S2R`, warp-wide), so callers fall
    /// back to the general `step_decoded` path.
    fn exec_alu(cbank: &[u8], w: &mut Warp, uop: &UOp, mask: LaneMask) -> bool {
        match *uop {
            UOp::Mov { d, a } => {
                let a = rsrc_c(cbank, a);
                for_lanes(mask, |lane| {
                    let v = rval(w, lane, a);
                    w.set_reg(lane, d, v);
                });
            }
            UOp::IAdd { d, a, b, x, cc } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a) as u64;
                    let bv = rval(w, lane, b) as u64;
                    let cin = if x { w.cc[lane] as u64 } else { 0 };
                    let sum = av + bv + cin;
                    w.set_reg(lane, d, sum as u32);
                    if cc {
                        w.cc[lane] = sum >> 32 != 0;
                    }
                });
            }
            UOp::ISub { d, a, b } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let v = w.reg(lane, a).wrapping_sub(rval(w, lane, b));
                    w.set_reg(lane, d, v);
                });
            }
            UOp::IMul {
                d,
                a,
                b,
                signed,
                hi,
            } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a);
                    let bv = rval(w, lane, b);
                    let v = if signed {
                        let p = (av as i32 as i64) * (bv as i32 as i64);
                        if hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    } else {
                        let p = (av as u64) * (bv as u64);
                        if hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::IMad { d, a, b, c } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let v = w
                        .reg(lane, a)
                        .wrapping_mul(rval(w, lane, b))
                        .wrapping_add(w.reg(lane, c));
                    w.set_reg(lane, d, v);
                });
            }
            UOp::IScAdd { d, a, b, shift } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let v = (w.reg(lane, a) << shift).wrapping_add(rval(w, lane, b));
                    w.set_reg(lane, d, v);
                });
            }
            UOp::IMnMx {
                d,
                a,
                b,
                min,
                signed,
            } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a);
                    let bv = rval(w, lane, b);
                    let v = match (signed, min) {
                        (true, true) => (av as i32).min(bv as i32) as u32,
                        (true, false) => (av as i32).max(bv as i32) as u32,
                        (false, true) => av.min(bv),
                        (false, false) => av.max(bv),
                    };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Shl { d, a, b } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let s = rval(w, lane, b);
                    let v = if s >= 32 { 0 } else { w.reg(lane, a) << s };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Shr { d, a, b, signed } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let s = rval(w, lane, b);
                    let av = w.reg(lane, a);
                    let v = if signed {
                        if s >= 32 {
                            ((av as i32) >> 31) as u32
                        } else {
                            ((av as i32) >> s) as u32
                        }
                    } else if s >= 32 {
                        0
                    } else {
                        av >> s
                    };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Lop { d, op, a, b, inv_b } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a);
                    let mut bv = rval(w, lane, b);
                    if inv_b {
                        bv = !bv;
                    }
                    w.set_reg(lane, d, op.eval(av, bv));
                });
            }
            UOp::Popc { d, a } => {
                for_lanes(mask, |lane| {
                    let v = w.reg(lane, a).count_ones();
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Flo { d, a } => {
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a);
                    let v = if av == 0 {
                        u32::MAX
                    } else {
                        31 - av.leading_zeros()
                    };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Brev { d, a } => {
                for_lanes(mask, |lane| {
                    let v = w.reg(lane, a).reverse_bits();
                    w.set_reg(lane, d, v);
                });
            }
            UOp::Sel { d, a, b, p, neg_p } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let v = if w.pred(lane, p) != neg_p {
                        w.reg(lane, a)
                    } else {
                        rval(w, lane, b)
                    };
                    w.set_reg(lane, d, v);
                });
            }
            UOp::FAdd {
                d,
                a,
                b,
                neg_a,
                neg_b,
            } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let mut av = f32::from_bits(w.reg(lane, a));
                    let mut bv = f32::from_bits(rval(w, lane, b));
                    if neg_a {
                        av = -av;
                    }
                    if neg_b {
                        bv = -bv;
                    }
                    w.set_reg(lane, d, (av + bv).to_bits());
                });
            }
            UOp::FMul { d, a, b } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = f32::from_bits(w.reg(lane, a));
                    let bv = f32::from_bits(rval(w, lane, b));
                    w.set_reg(lane, d, (av * bv).to_bits());
                });
            }
            UOp::FFma {
                d,
                a,
                b,
                c,
                neg_b,
                neg_c,
            } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = f32::from_bits(w.reg(lane, a));
                    let mut bv = f32::from_bits(rval(w, lane, b));
                    let mut cv = f32::from_bits(w.reg(lane, c));
                    if neg_b {
                        bv = -bv;
                    }
                    if neg_c {
                        cv = -cv;
                    }
                    w.set_reg(lane, d, av.mul_add(bv, cv).to_bits());
                });
            }
            UOp::FMnMx { d, a, b, min } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = f32::from_bits(w.reg(lane, a));
                    let bv = f32::from_bits(rval(w, lane, b));
                    let v = if min { av.min(bv) } else { av.max(bv) };
                    w.set_reg(lane, d, v.to_bits());
                });
            }
            UOp::Mufu { d, func, a } => {
                for_lanes(mask, |lane| {
                    let av = f32::from_bits(w.reg(lane, a));
                    w.set_reg(lane, d, func.eval(av).to_bits());
                });
            }
            UOp::I2F { d, a } => {
                for_lanes(mask, |lane| {
                    let v = (w.reg(lane, a) as i32 as f32).to_bits();
                    w.set_reg(lane, d, v);
                });
            }
            UOp::F2I { d, a } => {
                for_lanes(mask, |lane| {
                    let v = f32::from_bits(w.reg(lane, a)) as i32 as u32;
                    w.set_reg(lane, d, v);
                });
            }
            UOp::ISetP {
                p,
                cmp,
                a,
                b,
                signed,
                combine,
            } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = w.reg(lane, a);
                    let bv = rval(w, lane, b);
                    let base = if signed {
                        cmp.eval_i64(av as i32 as i64, bv as i32 as i64)
                    } else {
                        cmp.eval_i64(av as i64, bv as i64)
                    };
                    let v = match combine {
                        None => base,
                        Some((cp, neg)) => base && (w.pred(lane, cp) != neg),
                    };
                    w.set_pred(lane, p, v);
                });
            }
            UOp::FSetP { p, cmp, a, b } => {
                let b = rsrc_c(cbank, b);
                for_lanes(mask, |lane| {
                    let av = f32::from_bits(w.reg(lane, a));
                    let bv = f32::from_bits(rval(w, lane, b));
                    w.set_pred(lane, p, cmp.eval_f32(av, bv));
                });
            }
            UOp::PSetP {
                p,
                op,
                a,
                b,
                neg_a,
                neg_b,
            } => {
                for_lanes(mask, |lane| {
                    let av = w.pred(lane, a) != neg_a;
                    let bv = w.pred(lane, b) != neg_b;
                    let v = match op {
                        LogicOp::And => av && bv,
                        LogicOp::Or => av || bv,
                        LogicOp::Xor => av != bv,
                        LogicOp::PassB => bv,
                    };
                    w.set_pred(lane, p, v);
                });
            }
            UOp::P2R { d } => {
                for_lanes(mask, |lane| {
                    let v = w.preds[lane] as u32 & 0x7f;
                    w.set_reg(lane, d, v);
                });
            }
            UOp::R2P { a } => {
                for_lanes(mask, |lane| {
                    w.preds[lane] = (w.reg(lane, a) & 0x7f) as u8;
                });
            }
            UOp::Nop | UOp::MemBar => {}
            // Control / memory / warp-wide / `S2R` µops take the
            // general `step_decoded` path.
            _ => return false,
        }
        true
    }

    /// Snapshots the warp-invariant inputs of special-register reads,
    /// so `S2R` hoists them out of the lane loop.
    fn special_ctx(&self, w: &Warp) -> SpecialCtx {
        let cta = &self.ctas[w.cta];
        SpecialCtx {
            warp_in_cta: w.warp_in_cta,
            active: w.active,
            ctaid: cta.ctaid,
            sm: self.sm_id,
            block: self.dims.block,
            grid: self.dims.grid,
            cycle: self.cycle,
        }
    }

    fn special(&self, w: &Warp, lane: usize, sr: SpecialReg) -> u32 {
        special_value(&self.special_ctx(w), lane, sr)
    }

    // ---- memory helpers ----------------------------------------------------

    /// Resolves a lane's effective address for `addr`; returns
    /// (space, resolved byte offset/address).
    fn lane_addr(
        &self,
        w: &Warp,
        lane: usize,
        addr: &MemAddr,
    ) -> Result<(AddrSpace, u64), FaultKind> {
        match addr.space {
            AddrSpace::Local => {
                let base = w.reg(lane, addr.base);
                let a = base.wrapping_add(addr.offset as u32) as u64;
                Ok((AddrSpace::Local, a))
            }
            AddrSpace::Shared => {
                let base = w.reg(lane, addr.base);
                Ok((
                    AddrSpace::Shared,
                    base.wrapping_add(addr.offset as u32) as u64,
                ))
            }
            AddrSpace::Global => {
                let a = w
                    .reg64(lane, addr.base)
                    .wrapping_add(addr.offset as i64 as u64);
                Ok((AddrSpace::Global, a))
            }
            AddrSpace::Generic => {
                let a = w
                    .reg64(lane, addr.base)
                    .wrapping_add(addr.offset as i64 as u64);
                match resolve_generic(a) {
                    Some((s, off)) => Ok((s, off)),
                    None => Err(FaultKind::MemViolation { addr: a }),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mem_load(
        &mut self,
        wi: usize,
        mask: LaneMask,
        d: Gpr,
        width: MemWidth,
        addr: &MemAddr,
        _texture: bool,
    ) -> Result<(), FaultKind> {
        let bytes = width.bytes();
        // The address space is a static property of the instruction
        // (only `Generic` resolves per lane), so dispatch on it once
        // and run a specialized per-lane loop — trampoline spills and
        // fills (`STL`/`LDL`) live entirely on the `Local` fast path.
        match addr.space {
            AddrSpace::Local => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mut buf = [0u8; 16];
                    {
                        let w = &self.warps[wi];
                        let a = w.reg(lane, addr.base).wrapping_add(addr.offset as u32) as u64;
                        let off = a as usize;
                        let slab = w.lane_local(lane);
                        if off + bytes as usize > slab.len() {
                            return Err(FaultKind::StackViolation { offset: a });
                        }
                        buf[..bytes as usize].copy_from_slice(&slab[off..off + bytes as usize]);
                    }
                    write_load_result(&mut self.warps[wi], lane, d, width, &buf);
                }
                let lat = self.mem_latency(&[], bytes, false, mask != 0, false);
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            AddrSpace::Shared => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mut buf = [0u8; 16];
                    {
                        let w = &self.warps[wi];
                        let a = w.reg(lane, addr.base).wrapping_add(addr.offset as u32) as u64;
                        let off = a as usize;
                        let shared = &self.ctas[w.cta].shared;
                        if off + bytes as usize > shared.len() {
                            return Err(FaultKind::SharedViolation { offset: a });
                        }
                        buf[..bytes as usize].copy_from_slice(&shared[off..off + bytes as usize]);
                    }
                    write_load_result(&mut self.warps[wi], lane, d, width, &buf);
                }
                let lat = self.mem_latency(&[], bytes, false, false, mask != 0);
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            AddrSpace::Global | AddrSpace::Generic => {}
        }
        // Lane addresses are collected in lane order into a fixed
        // array: the coalescer is order-sensitive and the hot loop
        // must not allocate.
        let mut global_addrs = [0u64; 32];
        let mut n_global = 0usize;
        let mut has_local = false;
        let mut has_shared = false;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let data: [u8; 16] = match space {
                AddrSpace::Local => {
                    has_local = true;
                    let w = &self.warps[wi];
                    let slab = w.lane_local(lane);
                    let off = a as usize;
                    if off + bytes as usize > slab.len() {
                        return Err(FaultKind::StackViolation { offset: a });
                    }
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(&slab[off..off + bytes as usize]);
                    buf
                }
                AddrSpace::Shared => {
                    has_shared = true;
                    let cta = &self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    if off + bytes as usize > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(&cta.shared[off..off + bytes as usize]);
                    buf
                }
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs[n_global] = a;
                    n_global += 1;
                    let got = self.mem.read_bytes(a, bytes).map_err(mem_fault)?;
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(got);
                    buf
                }
            };
            let w = &mut self.warps[wi];
            write_load_result(w, lane, d, width, &data);
        }
        let lat = self.mem_latency(
            &global_addrs[..n_global],
            bytes,
            false,
            has_local,
            has_shared,
        );
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    fn mem_store(
        &mut self,
        wi: usize,
        mask: LaneMask,
        v: Gpr,
        width: MemWidth,
        addr: &MemAddr,
    ) -> Result<(), FaultKind> {
        let bytes = width.bytes();
        // Static-space fast paths, as in `mem_load`: trampoline GPR
        // saves (`STL`) take the `Local` arm.
        match addr.space {
            AddrSpace::Local => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mut buf = [0u8; 16];
                    let w = &mut self.warps[wi];
                    store_source_bytes(w, lane, v, width, bytes, &mut buf);
                    let a = w.reg(lane, addr.base).wrapping_add(addr.offset as u32) as u64;
                    let off = a as usize;
                    let slab = w.lane_local_mut(lane);
                    if off + bytes as usize > slab.len() {
                        return Err(FaultKind::StackViolation { offset: a });
                    }
                    slab[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                let lat = self.mem_latency(&[], bytes, true, mask != 0, false);
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            AddrSpace::Shared => {
                let mut m = mask;
                while m != 0 {
                    let lane = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let mut buf = [0u8; 16];
                    let w = &self.warps[wi];
                    store_source_bytes(w, lane, v, width, bytes, &mut buf);
                    let a = w.reg(lane, addr.base).wrapping_add(addr.offset as u32) as u64;
                    let off = a as usize;
                    let shared = &mut self.ctas[w.cta].shared;
                    if off + bytes as usize > shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    shared[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                let lat = self.mem_latency(&[], bytes, true, false, mask != 0);
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            AddrSpace::Global | AddrSpace::Generic => {}
        }
        let mut global_addrs = [0u64; 32];
        let mut n_global = 0usize;
        let mut has_local = false;
        let mut has_shared = false;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let mut buf = [0u8; 16];
            store_source_bytes(&self.warps[wi], lane, v, width, bytes, &mut buf);
            match space {
                AddrSpace::Local => {
                    has_local = true;
                    let w = &mut self.warps[wi];
                    let off = a as usize;
                    let slab = w.lane_local_mut(lane);
                    if off + bytes as usize > slab.len() {
                        return Err(FaultKind::StackViolation { offset: a });
                    }
                    slab[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                AddrSpace::Shared => {
                    has_shared = true;
                    let cta = &mut self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    if off + bytes as usize > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    cta.shared[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs[n_global] = a;
                    n_global += 1;
                    self.mem
                        .write_bytes(a, &buf[..bytes as usize])
                        .map_err(mem_fault)?;
                }
            }
        }
        let lat = self.mem_latency(
            &global_addrs[..n_global],
            bytes,
            true,
            has_local,
            has_shared,
        );
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn mem_atomic(
        &mut self,
        wi: usize,
        mask: LaneMask,
        d: Option<Gpr>,
        op: AtomOp,
        addr: &MemAddr,
        v: Gpr,
        v2: Option<Gpr>,
        wide: bool,
    ) -> Result<(), FaultKind> {
        let mut global_addrs = [0u64; 32];
        let mut n_global = 0usize;
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let (operand, operand2) = {
                let w = &self.warps[wi];
                let x = if wide {
                    w.reg64(lane, v)
                } else {
                    w.reg(lane, v) as u64
                };
                let y = match v2 {
                    Some(r) => {
                        if wide {
                            w.reg64(lane, r)
                        } else {
                            w.reg(lane, r) as u64
                        }
                    }
                    None => 0,
                };
                (x, y)
            };
            let old = match space {
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs[n_global] = a;
                    n_global += 1;
                    // DeviceMemory applies the read-modify-write and,
                    // on forked shard views, records it in the journal
                    // so the master re-applies it at commit time.
                    self.mem
                        .atomic(op, a, operand, operand2, wide)
                        .map_err(mem_fault)?
                }
                AddrSpace::Shared => {
                    let cta = &mut self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    let size = if wide { 8 } else { 4 };
                    if off + size > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    let old = if wide {
                        u64::from_le_bytes(cta.shared[off..off + 8].try_into().unwrap())
                    } else {
                        u32::from_le_bytes(cta.shared[off..off + 4].try_into().unwrap()) as u64
                    };
                    let new = apply_atom(op, old, operand, operand2, wide);
                    if wide {
                        cta.shared[off..off + 8].copy_from_slice(&new.to_le_bytes());
                    } else {
                        cta.shared[off..off + 4].copy_from_slice(&(new as u32).to_le_bytes());
                    }
                    old
                }
                AddrSpace::Local => return Err(FaultKind::MemViolation { addr: a }),
            };
            if let Some(d) = d {
                let w = &mut self.warps[wi];
                if wide {
                    w.set_reg64(lane, d, old);
                } else {
                    w.set_reg(lane, d, old as u32);
                }
            }
        }
        let width = if wide { 8 } else { 4 };
        let mut lat =
            self.mem_latency(&global_addrs[..n_global], width, true, false, n_global == 0);
        lat += 16; // read-modify-write turnaround
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    fn mem_latency(
        &mut self,
        global_addrs: &[u64],
        width: u32,
        write: bool,
        has_local: bool,
        has_shared: bool,
    ) -> u64 {
        let mut lat = 2u64;
        if !global_addrs.is_empty() {
            let out = self
                .hier
                .access_global(0, self.cycle, global_addrs, width, write);
            lat = lat.max(out.ready_at.saturating_sub(self.cycle));
        }
        if has_local {
            lat = lat.max(self.hier.local_latency());
        }
        if has_shared {
            lat = lat.max(self.hier.shared_latency());
        }
        lat
    }
}

enum Pick {
    Warp(usize),
    Stalled(u64),
    Empty,
}

fn finish(w: &mut Warp, cycle: u64, lat: u64) {
    w.ready_at = cycle + lat.max(1);
}

/// Reads 4 bytes of a bank-0 constant image (out-of-image reads
/// return 0, matching hardware's zero-backed tail).
#[inline(always)]
fn c0_read_img(cbank: &[u8], offset: u16) -> u32 {
    let off = offset as usize;
    if off + 4 > cbank.len() {
        return 0;
    }
    u32::from_le_bytes(cbank[off..off + 4].try_into().unwrap())
}

/// Resolves a pre-decoded operand against a constant-bank image:
/// constants and immediates become values here, once; only registers
/// remain per-lane work.
#[inline(always)]
fn rsrc_c(cbank: &[u8], s: DSrc) -> RSrc {
    match s {
        DSrc::Reg(r) => RSrc::Reg(r),
        DSrc::Imm(v) => RSrc::Val(v),
        DSrc::C0(off) => RSrc::Val(c0_read_img(cbank, off)),
    }
}

/// Guard evaluation from the packed guard byte.
#[inline]
fn guard_mask(w: &Warp, g: u8) -> LaneMask {
    if g == GUARD_ALWAYS {
        return w.active;
    }
    let idx = g & 7;
    let p = if idx == 7 {
        PredReg::PT
    } else {
        PredReg::new(idx)
    };
    let neg = g & 0x80 != 0;
    let mut m = 0u32;
    for lane in w.active_lanes() {
        if w.pred(lane, p) != neg {
            m |= 1 << lane;
        }
    }
    m
}

/// A source operand resolved for one warp-step: immediates and
/// constant reads are already values, only registers stay per-lane.
#[derive(Clone, Copy)]
enum RSrc {
    Val(u32),
    Reg(Gpr),
}

#[inline(always)]
fn rval(w: &Warp, lane: usize, s: RSrc) -> u32 {
    match s {
        RSrc::Val(v) => v,
        RSrc::Reg(r) => w.reg(lane, r),
    }
}

/// Applies `f` to every lane in `mask`, ascending. The full-warp case
/// takes a straight-line loop (no per-lane mask tests) — the
/// uniform-warp fast path.
#[inline(always)]
fn for_lanes(mask: LaneMask, mut f: impl FnMut(usize)) {
    if mask == u32::MAX {
        for lane in 0..32 {
            f(lane);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            m &= m - 1;
            f(lane);
        }
    }
}

/// Warp-invariant inputs of a special-register read.
struct SpecialCtx {
    warp_in_cta: u32,
    active: u32,
    ctaid: (u32, u32, u32),
    sm: u32,
    block: (u32, u32, u32),
    grid: (u32, u32, u32),
    cycle: u64,
}

fn special_value(ctx: &SpecialCtx, lane: usize, sr: SpecialReg) -> u32 {
    let linear = ctx.warp_in_cta * 32 + lane as u32;
    let (bx, by, _) = ctx.block;
    match sr {
        SpecialReg::TidX => linear % bx,
        SpecialReg::TidY => (linear / bx) % by,
        SpecialReg::TidZ => linear / (bx * by),
        SpecialReg::CtaIdX => ctx.ctaid.0,
        SpecialReg::CtaIdY => ctx.ctaid.1,
        SpecialReg::CtaIdZ => ctx.ctaid.2,
        SpecialReg::NTidX => ctx.block.0,
        SpecialReg::NTidY => ctx.block.1,
        SpecialReg::NTidZ => ctx.block.2,
        SpecialReg::NCtaIdX => ctx.grid.0,
        SpecialReg::NCtaIdY => ctx.grid.1,
        SpecialReg::NCtaIdZ => ctx.grid.2,
        SpecialReg::LaneId => lane as u32,
        SpecialReg::WarpId => ctx.warp_in_cta,
        SpecialReg::SmId => ctx.sm,
        SpecialReg::ClockLo => ctx.cycle as u32,
        SpecialReg::ClockHi => (ctx.cycle >> 32) as u32,
        SpecialReg::LaneMaskLt => (1u32 << lane) - 1,
        SpecialReg::ActiveMask => ctx.active,
    }
}

fn mem_fault(e: MemError) -> FaultKind {
    match e {
        MemError::OutOfBounds { addr } => FaultKind::MemViolation { addr },
        MemError::Misaligned { addr, .. } => FaultKind::Misaligned { addr },
        MemError::OutOfMemory => FaultKind::MemViolation { addr: 0 },
    }
}

// `apply_atom` lives in `sassi_mem` (the journaled global path uses it
// there); the shared-memory path above imports it from that crate.

/// Gathers one lane's store source registers into `buf` (little-endian
/// register pairs/quads; sub-word stores truncate the low register).
#[inline(always)]
fn store_source_bytes(
    w: &Warp,
    lane: usize,
    v: Gpr,
    width: MemWidth,
    bytes: u32,
    buf: &mut [u8; 16],
) {
    for k in 0..width.regs() {
        let val = w.reg(lane, Gpr::new(v.index() + k));
        buf[4 * k as usize..4 * k as usize + 4].copy_from_slice(&val.to_le_bytes());
    }
    if bytes < 4 {
        let val = w.reg(lane, v);
        buf[..bytes as usize].copy_from_slice(&val.to_le_bytes()[..bytes as usize]);
    }
}

fn write_load_result(w: &mut Warp, lane: usize, d: Gpr, width: MemWidth, data: &[u8; 16]) {
    match width {
        MemWidth::U8 => w.set_reg(lane, d, data[0] as u32),
        MemWidth::S8 => w.set_reg(lane, d, data[0] as i8 as i32 as u32),
        MemWidth::U16 => w.set_reg(lane, d, u16::from_le_bytes([data[0], data[1]]) as u32),
        MemWidth::S16 => w.set_reg(
            lane,
            d,
            i16::from_le_bytes([data[0], data[1]]) as i32 as u32,
        ),
        MemWidth::B32 => w.set_reg(lane, d, u32::from_le_bytes(data[..4].try_into().unwrap())),
        MemWidth::B64 | MemWidth::B128 => {
            for k in 0..width.regs() {
                let off = 4 * k as usize;
                let v = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                w.set_reg(lane, Gpr::new(d.index() + k), v);
            }
        }
    }
}
