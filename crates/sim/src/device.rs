//! The device executor: multi-SM, cycle-approximate SIMT simulation.
//!
//! Functional semantics are exact (every lane's registers, predicates,
//! memories); timing is approximate but divergence-faithful: one warp
//! instruction issues per SM per cycle, memory operations stall warps
//! for latencies produced by the coalescer/cache/DRAM model, and
//! control divergence serializes paths exactly as the divergence stack
//! dictates.

use crate::config::{GpuConfig, LaunchDims};
use crate::module::{LinkedFunction, Module};
use crate::stats::{FaultInfo, FaultKind, KernelOutcome, LaunchResult, LaunchStats};
use crate::trap::{HandlerRuntime, TrapCtx};
use crate::warp::{Warp, WarpStatus};
use sassi_isa::{
    cbank0, resolve_generic, AddrSpace, AtomOp, CmpOp, Gpr, Instr, Label, LaneMask, LogicOp,
    MemAddr, MemWidth, Op, ShflMode, SpecialReg, Src, VoteMode,
};
use sassi_mem::{DeviceMemory, MemError, MemoryHierarchy};
use std::fmt;

/// Host-side launch misuse (distinct from device faults, which are
/// reported in [`LaunchResult`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// The kernel symbol is not in the module.
    UnknownKernel(String),
    /// The launch geometry cannot be scheduled on this device.
    BadGeometry(String),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            LaunchError::BadGeometry(m) => write!(f, "bad launch geometry: {m}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The simulated GPU: configuration, global memory and the cache
/// hierarchy. Memory contents persist across launches, so hosts can
/// allocate buffers once and run many kernels, CUDA-style.
pub struct Device {
    /// Machine configuration.
    pub cfg: GpuConfig,
    /// Global device memory.
    pub mem: DeviceMemory,
    hier: MemoryHierarchy,
}

impl Device {
    /// Creates a device with a global heap of `heap_bytes`.
    pub fn new(cfg: GpuConfig, heap_bytes: usize) -> Device {
        Device {
            cfg,
            mem: DeviceMemory::new(heap_bytes),
            hier: MemoryHierarchy::new(cfg.num_sms as usize, cfg.hierarchy),
        }
    }

    /// A default device with a 256 MiB heap.
    pub fn with_defaults() -> Device {
        Device::new(GpuConfig::default(), 256 << 20)
    }

    /// Launches `kernel` from `module` and runs it to completion (or
    /// fault / watchdog expiry). `params` are 8-byte argument slots.
    ///
    /// # Errors
    ///
    /// Host-side [`LaunchError`]s only; device faults and hangs are
    /// reported inside the returned [`LaunchResult`].
    #[allow(clippy::too_many_arguments)]
    pub fn launch(
        &mut self,
        module: &Module,
        kernel: &str,
        dims: LaunchDims,
        params: &[u64],
        runtime: &mut dyn HandlerRuntime,
        launch_index: u64,
        max_cycles: u64,
    ) -> Result<LaunchResult, LaunchError> {
        let kf = module
            .function(kernel)
            .ok_or_else(|| LaunchError::UnknownKernel(kernel.to_string()))?
            .clone();
        let wpb = dims.warps_per_block();
        if wpb == 0 || dims.total_blocks() == 0 {
            return Err(LaunchError::BadGeometry("empty grid or block".into()));
        }
        if wpb > self.cfg.max_warps_per_sm {
            return Err(LaunchError::BadGeometry(format!(
                "block needs {wpb} warps, SM holds {}",
                self.cfg.max_warps_per_sm
            )));
        }
        let shared_bytes = (kf.meta.shared_bytes + 7) & !7;
        if shared_bytes > self.cfg.shared_per_sm {
            return Err(LaunchError::BadGeometry(format!(
                "block needs {shared_bytes} B shared, SM has {}",
                self.cfg.shared_per_sm
            )));
        }

        self.hier.reset();
        let mut exec = Exec {
            cfg: &self.cfg,
            module,
            kernel: &kf,
            dims,
            cbank: build_cbank0(&self.cfg, &kf, dims, params),
            mem: &mut self.mem,
            hier: &mut self.hier,
            runtime,
            launch_index,
            ctas: Vec::new(),
            warps: Vec::new(),
            sm_warps: vec![Vec::new(); self.cfg.num_sms as usize],
            sm_rr: vec![0; self.cfg.num_sms as usize],
            sm_load: vec![0; self.cfg.num_sms as usize],
            next_block: 0,
            cycle: 0,
            stats: LaunchStats::default(),
        };
        let outcome = exec.run(max_cycles);
        let mut stats = exec.stats;
        stats.cycles = exec.cycle;
        Ok(LaunchResult {
            outcome,
            stats,
            mem: self.hier.stats(),
        })
    }
}

fn build_cbank0(cfg: &GpuConfig, kf: &LinkedFunction, dims: LaunchDims, params: &[u64]) -> Vec<u8> {
    let mut img = vec![0u8; cbank0::PARAM_BASE as usize + 8 * params.len().max(1)];
    let mut w32 = |off: u16, v: u32| {
        img[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    };
    w32(cbank0::NTID_X, dims.block.0);
    w32(cbank0::NTID_Y, dims.block.1);
    w32(cbank0::NTID_Z, dims.block.2);
    w32(cbank0::NCTAID_X, dims.grid.0);
    w32(cbank0::NCTAID_Y, dims.grid.1);
    w32(cbank0::NCTAID_Z, dims.grid.2);
    w32(cbank0::LOCAL_SIZE, cfg.local_bytes_per_thread);
    w32(cbank0::SHARED_SIZE, kf.meta.shared_bytes);
    w32(cbank0::LOCAL_WINDOW, sassi_isa::GENERIC_LOCAL_TAG as u32);
    w32(cbank0::SHARED_WINDOW, sassi_isa::GENERIC_SHARED_TAG as u32);
    for (i, p) in params.iter().enumerate() {
        let off = cbank0::PARAM_BASE as usize + 8 * i;
        img[off..off + 8].copy_from_slice(&p.to_le_bytes());
    }
    img
}

struct Cta {
    ctaid: (u32, u32, u32),
    shared: Vec<u8>,
    warps_total: u32,
    warps_done: u32,
    warps_at_barrier: u32,
    sm: usize,
}

struct Exec<'a> {
    cfg: &'a GpuConfig,
    module: &'a Module,
    kernel: &'a LinkedFunction,
    dims: LaunchDims,
    cbank: Vec<u8>,
    mem: &'a mut DeviceMemory,
    hier: &'a mut MemoryHierarchy,
    runtime: &'a mut dyn HandlerRuntime,
    launch_index: u64,
    ctas: Vec<Cta>,
    warps: Vec<Warp>,
    sm_warps: Vec<Vec<usize>>,
    sm_rr: Vec<usize>,
    sm_load: Vec<u32>, // resident CTAs per SM
    next_block: u32,
    cycle: u64,
    stats: LaunchStats,
}

impl Exec<'_> {
    fn ctas_per_sm(&self) -> u32 {
        let wpb = self.dims.warps_per_block();
        let by_warps = self.cfg.max_warps_per_sm / wpb;
        let shared = (self.kernel.meta.shared_bytes + 7) & !7;
        let by_shared = self
            .cfg
            .shared_per_sm
            .checked_div(shared)
            .unwrap_or(u32::MAX);
        self.cfg.max_ctas_per_sm.min(by_warps).min(by_shared).max(1)
    }

    fn block_coords(&self, linear: u32) -> (u32, u32, u32) {
        let (gx, gy, _) = self.dims.grid;
        (linear % gx, (linear / gx) % gy, linear / (gx * gy))
    }

    fn issue_block(&mut self, sm: usize) {
        if self.next_block >= self.dims.total_blocks() {
            return;
        }
        let linear = self.next_block;
        self.next_block += 1;
        self.stats.blocks += 1;
        let wpb = self.dims.warps_per_block();
        let tpb = self.dims.threads_per_block();
        let cta_idx = self.ctas.len();
        self.ctas.push(Cta {
            ctaid: self.block_coords(linear),
            shared: vec![0; ((self.kernel.meta.shared_bytes + 7) & !7) as usize],
            warps_total: wpb,
            warps_done: 0,
            warps_at_barrier: 0,
            sm,
        });
        for w in 0..wpb {
            let first = w * 32;
            let count = tpb.saturating_sub(first).min(32);
            let existing: LaneMask = if count == 32 {
                u32::MAX
            } else {
                (1u32 << count) - 1
            };
            let warp = Warp::new(
                cta_idx,
                w,
                self.kernel.entry,
                existing,
                self.cfg.regs_per_thread,
                self.cfg.local_bytes_per_thread,
            );
            let wi = self.warps.len();
            self.warps.push(warp);
            self.sm_warps[sm].push(wi);
        }
        self.sm_load[sm] += 1;
    }

    fn run(&mut self, max_cycles: u64) -> KernelOutcome {
        // Fill each SM to occupancy.
        let target = self.ctas_per_sm();
        for sm in 0..self.cfg.num_sms as usize {
            for _ in 0..target {
                self.issue_block(sm);
            }
        }

        loop {
            if self.cycle > max_cycles {
                return KernelOutcome::Hang;
            }
            let mut issued = false;
            let mut all_idle_until = u64::MAX;
            let mut any_alive = false;
            for sm in 0..self.cfg.num_sms as usize {
                match self.pick(sm) {
                    Pick::Warp(wi) => {
                        issued = true;
                        any_alive = true;
                        if let Err(kind) = self.step(wi, sm) {
                            return KernelOutcome::Fault(FaultInfo {
                                kind,
                                pc: self.warps[wi].pc,
                                sm: sm as u32,
                            });
                        }
                    }
                    Pick::Stalled(until) => {
                        any_alive = true;
                        all_idle_until = all_idle_until.min(until);
                    }
                    Pick::Empty => {}
                }
            }
            if !any_alive && self.next_block >= self.dims.total_blocks() {
                return KernelOutcome::Completed;
            }
            if issued {
                self.cycle += 1;
            } else if all_idle_until != u64::MAX {
                self.cycle = all_idle_until.max(self.cycle + 1);
            } else {
                // Warps alive but none ever becomes ready: barrier
                // deadlock. Treat as a hang.
                return KernelOutcome::Hang;
            }
        }
    }

    fn pick(&mut self, sm: usize) -> Pick {
        // Retire finished warps lazily and pick round-robin.
        let mut i = 0;
        while i < self.sm_warps[sm].len() {
            let wi = self.sm_warps[sm][i];
            if self.warps[wi].status == WarpStatus::Done {
                // Free the warp's storage and unlist it.
                self.warps[wi].regs = Vec::new();
                self.warps[wi].local = Vec::new();
                self.sm_warps[sm].swap_remove(i);
                let cta = self.warps[wi].cta;
                self.ctas[cta].warps_done += 1;
                self.maybe_release_barrier(cta);
                if self.ctas[cta].warps_done == self.ctas[cta].warps_total {
                    self.ctas[cta].shared = Vec::new();
                    self.sm_load[sm] -= 1;
                    self.issue_block(sm);
                }
                continue;
            }
            i += 1;
        }
        let list = &self.sm_warps[sm];
        if list.is_empty() {
            return Pick::Empty;
        }
        let n = list.len();
        let start = self.sm_rr[sm] % n;
        let mut min_ready = u64::MAX;
        for k in 0..n {
            let wi = list[(start + k) % n];
            let w = &self.warps[wi];
            if w.status == WarpStatus::Ready {
                if w.ready_at <= self.cycle {
                    self.sm_rr[sm] = (start + k + 1) % n;
                    return Pick::Warp(wi);
                }
                min_ready = min_ready.min(w.ready_at);
            }
        }
        if min_ready == u64::MAX {
            // Everyone is at a barrier or done — barrier release happens
            // on warp retirement/arrival; nothing to wait for timewise.
            Pick::Stalled(self.cycle + 1)
        } else {
            Pick::Stalled(min_ready)
        }
    }

    fn maybe_release_barrier(&mut self, cta_idx: usize) {
        let cta = &self.ctas[cta_idx];
        let waiting_target = cta.warps_total - cta.warps_done;
        if cta.warps_at_barrier > 0 && cta.warps_at_barrier >= waiting_target {
            self.ctas[cta_idx].warps_at_barrier = 0;
            for list in &self.sm_warps {
                for &wi in list {
                    let w = &mut self.warps[wi];
                    if w.cta == cta_idx && w.status == WarpStatus::AtBarrier {
                        w.status = WarpStatus::Ready;
                    }
                }
            }
        }
    }

    fn const_read(&self, bank: u8, offset: u16) -> u32 {
        if bank != 0 {
            return 0;
        }
        let off = offset as usize;
        if off + 4 > self.cbank.len() {
            return 0;
        }
        u32::from_le_bytes(self.cbank[off..off + 4].try_into().unwrap())
    }

    fn src_val(&self, w: &Warp, lane: usize, s: &Src) -> u32 {
        match s {
            Src::Reg(r) => w.reg(lane, *r),
            Src::Imm(v) => *v,
            Src::Const(c) => self.const_read(c.bank, c.offset),
        }
    }

    fn guard_mask(&self, w: &Warp, ins: &Instr) -> LaneMask {
        if ins.guard.is_always() {
            return w.active;
        }
        let mut m = 0u32;
        for lane in w.active_lanes() {
            let p = w.pred(lane, ins.guard.pred);
            if p != ins.guard.neg {
                m |= 1 << lane;
            }
        }
        m
    }

    /// Executes one instruction of warp `wi`. Returns a fault kind on
    /// abort.
    fn step(&mut self, wi: usize, sm: usize) -> Result<(), FaultKind> {
        let pc = self.warps[wi].pc;
        if pc as usize >= self.module.code.len() {
            return Err(FaultKind::InvalidPc { pc: pc as u64 });
        }
        let ins = self.module.code[pc as usize].clone();
        let mask = self.guard_mask(&self.warps[wi], &ins);
        self.stats.warp_instrs += 1;
        self.stats.thread_instrs += mask.count_ones() as u64;

        let mut lat: u64 = 2; // default ALU dependence latency
        match &ins.op {
            // ---- control flow ------------------------------------------------
            Op::Ssy { target } => {
                let t = target_pc(target)?;
                let w = &mut self.warps[wi];
                w.stack.push(crate::warp::StackEntry::Ssy {
                    reconv: t,
                    mask: w.active,
                });
                w.pc += 1;
                finish(&mut self.warps[wi], self.cycle, 1);
                return Ok(());
            }
            Op::Bra { target, .. } => {
                let t = target_pc(target)?;
                if (t as usize) > self.module.code.len() {
                    return Err(FaultKind::InvalidPc { pc: t as u64 });
                }
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    self.stats.cond_branches += 1;
                }
                if w.branch(t, mask) {
                    self.stats.divergent_branches += 1;
                }
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            Op::Sync => {
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    // A predicated SYNC is a conditional control
                    // transfer: lanes that pass the guard park, the
                    // rest fall through.
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.sync(mask);
                finish(&mut self.warps[wi], self.cycle, 2);
                return Ok(());
            }
            Op::Exit => {
                let w = &mut self.warps[wi];
                if ins.is_guarded() {
                    self.stats.cond_branches += 1;
                    if mask != 0 && mask != w.active {
                        self.stats.divergent_branches += 1;
                    }
                }
                w.exit_lanes(mask);
                finish(&mut self.warps[wi], self.cycle, 1);
                return Ok(());
            }
            Op::Jcal { target } => {
                match target {
                    Label::Pc(t) => {
                        let w = &mut self.warps[wi];
                        w.call_stack.push(w.pc + 1);
                        w.pc = *t;
                        lat = 4;
                    }
                    Label::Handler(id) => {
                        let id = *id;
                        self.stats.handler_calls += 1;
                        let cost = {
                            let warp = &mut self.warps[wi];
                            let cta = &mut self.ctas[warp.cta];
                            let mut ctx = TrapCtx {
                                warp,
                                shared: &mut cta.shared,
                                mem: self.mem,
                                ctaid: cta.ctaid,
                                block_dim: self.dims.block,
                                grid_dim: self.dims.grid,
                                sm_id: sm as u32,
                                cycle: self.cycle,
                                kernel: &self.kernel.name,
                                launch_index: self.launch_index,
                            };
                            self.runtime.handle(id, &mut ctx)
                        };
                        let cycles = cost.cycles();
                        self.stats.handler_cycles += cycles;
                        self.warps[wi].pc += 1;
                        lat = 4 + cycles;
                    }
                    Label::Func(_) => return Err(FaultKind::InvalidPc { pc: pc as u64 }),
                }
                finish(&mut self.warps[wi], self.cycle, lat);
                return Ok(());
            }
            Op::Ret => {
                let w = &mut self.warps[wi];
                match w.call_stack.pop() {
                    Some(r) => w.pc = r,
                    None => return Err(FaultKind::CallStackUnderflow),
                }
                finish(&mut self.warps[wi], self.cycle, 4);
                return Ok(());
            }
            Op::BarSync => {
                let cta_idx = self.warps[wi].cta;
                {
                    let w = &mut self.warps[wi];
                    w.pc += 1;
                    w.status = WarpStatus::AtBarrier;
                    w.ready_at = self.cycle + 1;
                }
                self.ctas[cta_idx].warps_at_barrier += 1;
                self.maybe_release_barrier(cta_idx);
                return Ok(());
            }

            // ---- memory -----------------------------------------------------
            Op::Ld { d, width, addr, .. } => {
                self.mem_load(wi, sm, mask, *d, *width, addr, false)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Tld { d, width, addr } => {
                self.mem_load(wi, sm, mask, *d, *width, addr, true)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::St { v, width, addr, .. } => {
                self.mem_store(wi, sm, mask, *v, *width, addr)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Atom {
                d,
                op,
                addr,
                v,
                v2,
                wide,
            } => {
                self.mem_atomic(wi, sm, mask, Some(*d), *op, addr, *v, *v2, *wide)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::Red { op, addr, v, wide } => {
                self.mem_atomic(wi, sm, mask, None, *op, addr, *v, None, *wide)?;
                self.warps[wi].pc += 1;
                return Ok(());
            }
            Op::MemBar => lat = 8,

            // ---- warp-wide ---------------------------------------------------
            Op::Vote {
                mode,
                d,
                p_out,
                src,
                neg_src,
            } => {
                let w = &mut self.warps[wi];
                let mut ballot: u32 = 0;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        let v = w.pred(lane, *src) != *neg_src;
                        if v {
                            ballot |= 1 << lane;
                        }
                    }
                }
                let all = ballot & mask == mask && mask != 0;
                let any = ballot != 0;
                for lane in 0..32 {
                    if mask & (1 << lane) != 0 {
                        match mode {
                            VoteMode::Ballot => w.set_reg(lane, *d, ballot),
                            VoteMode::All => w.set_reg(lane, *d, all as u32),
                            VoteMode::Any => w.set_reg(lane, *d, any as u32),
                        }
                        if let Some(p) = p_out {
                            let v = match mode {
                                VoteMode::All => all,
                                VoteMode::Any => any,
                                VoteMode::Ballot => ballot != 0,
                            };
                            w.set_pred(lane, *p, v);
                        }
                    }
                }
            }
            Op::Shfl {
                mode,
                d,
                a,
                b,
                c: _,
                p_out,
            } => {
                let w = &mut self.warps[wi];
                let snapshot: Vec<u32> = (0..32).map(|l| w.reg(l, *a)).collect();
                for lane in 0..32usize {
                    if mask & (1 << lane) == 0 {
                        continue;
                    }
                    let bv = self.src_val(&self.warps[wi], lane, b);
                    let src_lane = match mode {
                        ShflMode::Idx => (bv & 31) as usize,
                        ShflMode::Up => lane.wrapping_sub(bv as usize),
                        ShflMode::Down => lane + bv as usize,
                        ShflMode::Bfly => lane ^ (bv as usize & 31),
                    };
                    let in_range = src_lane < 32 && (mask & (1 << src_lane)) != 0;
                    let val = if in_range {
                        snapshot[src_lane]
                    } else {
                        snapshot[lane]
                    };
                    let w = &mut self.warps[wi];
                    w.set_reg(lane, *d, val);
                    if let Some(p) = p_out {
                        w.set_pred(lane, *p, in_range);
                    }
                }
            }

            // ---- per-lane ALU -------------------------------------------------
            _ => {
                self.alu(wi, &ins, mask);
                lat = alu_latency(&ins.op);
            }
        }
        let w = &mut self.warps[wi];
        w.pc += 1;
        finish(w, self.cycle, lat);
        Ok(())
    }

    /// Per-lane ALU execution for all remaining opcodes.
    fn alu(&mut self, wi: usize, ins: &Instr, mask: LaneMask) {
        for lane in 0..32usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            // Read phase (immutable).
            let w = &self.warps[wi];
            enum Out {
                R(Gpr, u32),
                P(sassi_isa::PredReg, bool),
                RCc(Gpr, u32, bool),
                Preds(u8),
                None,
            }
            let out = match &ins.op {
                Op::Mov { d, a } => Out::R(*d, self.src_val(w, lane, a)),
                Op::Mov32I { d, imm } => Out::R(*d, *imm),
                Op::S2R { d, sr } => Out::R(*d, self.special(w, lane, *sr)),
                Op::IAdd { d, a, b, x, cc } => {
                    let av = w.reg(lane, *a) as u64;
                    let bv = self.src_val(w, lane, b) as u64;
                    let cin = if *x { w.cc[lane] as u64 } else { 0 };
                    let sum = av + bv + cin;
                    if *cc {
                        Out::RCc(*d, sum as u32, sum >> 32 != 0)
                    } else {
                        Out::R(*d, sum as u32)
                    }
                }
                Op::ISub { d, a, b } => {
                    Out::R(*d, w.reg(lane, *a).wrapping_sub(self.src_val(w, lane, b)))
                }
                Op::IMul {
                    d,
                    a,
                    b,
                    signed,
                    hi,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let v = if *signed {
                        let p = (av as i32 as i64) * (bv as i32 as i64);
                        if *hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    } else {
                        let p = (av as u64) * (bv as u64);
                        if *hi {
                            (p >> 32) as u32
                        } else {
                            p as u32
                        }
                    };
                    Out::R(*d, v)
                }
                Op::IMad { d, a, b, c } => {
                    let v = w
                        .reg(lane, *a)
                        .wrapping_mul(self.src_val(w, lane, b))
                        .wrapping_add(w.reg(lane, *c));
                    Out::R(*d, v)
                }
                Op::IScAdd { d, a, b, shift } => {
                    let v = (w.reg(lane, *a) << shift).wrapping_add(self.src_val(w, lane, b));
                    Out::R(*d, v)
                }
                Op::IMnMx {
                    d,
                    a,
                    b,
                    min,
                    signed,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let v = match (signed, min) {
                        (true, true) => (av as i32).min(bv as i32) as u32,
                        (true, false) => (av as i32).max(bv as i32) as u32,
                        (false, true) => av.min(bv),
                        (false, false) => av.max(bv),
                    };
                    Out::R(*d, v)
                }
                Op::Shl { d, a, b } => {
                    let s = self.src_val(w, lane, b);
                    let v = if s >= 32 { 0 } else { w.reg(lane, *a) << s };
                    Out::R(*d, v)
                }
                Op::Shr { d, a, b, signed } => {
                    let s = self.src_val(w, lane, b);
                    let av = w.reg(lane, *a);
                    let v = if *signed {
                        if s >= 32 {
                            ((av as i32) >> 31) as u32
                        } else {
                            ((av as i32) >> s) as u32
                        }
                    } else if s >= 32 {
                        0
                    } else {
                        av >> s
                    };
                    Out::R(*d, v)
                }
                Op::Lop { d, op, a, b, inv_b } => {
                    let av = w.reg(lane, *a);
                    let mut bv = self.src_val(w, lane, b);
                    if *inv_b {
                        bv = !bv;
                    }
                    Out::R(*d, op.eval(av, bv))
                }
                Op::Popc { d, a } => Out::R(*d, w.reg(lane, *a).count_ones()),
                Op::Flo { d, a } => {
                    let av = w.reg(lane, *a);
                    Out::R(
                        *d,
                        if av == 0 {
                            u32::MAX
                        } else {
                            31 - av.leading_zeros()
                        },
                    )
                }
                Op::Brev { d, a } => Out::R(*d, w.reg(lane, *a).reverse_bits()),
                Op::Sel { d, a, b, p, neg_p } => {
                    let take_a = w.pred(lane, *p) != *neg_p;
                    let v = if take_a {
                        w.reg(lane, *a)
                    } else {
                        self.src_val(w, lane, b)
                    };
                    Out::R(*d, v)
                }
                Op::FAdd {
                    d,
                    a,
                    b,
                    neg_a,
                    neg_b,
                } => {
                    let mut av = f32::from_bits(w.reg(lane, *a));
                    let mut bv = f32::from_bits(self.src_val(w, lane, b));
                    if *neg_a {
                        av = -av;
                    }
                    if *neg_b {
                        bv = -bv;
                    }
                    Out::R(*d, (av + bv).to_bits())
                }
                Op::FMul { d, a, b } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    Out::R(*d, (av * bv).to_bits())
                }
                Op::FFma {
                    d,
                    a,
                    b,
                    c,
                    neg_b,
                    neg_c,
                } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let mut bv = f32::from_bits(self.src_val(w, lane, b));
                    let mut cv = f32::from_bits(w.reg(lane, *c));
                    if *neg_b {
                        bv = -bv;
                    }
                    if *neg_c {
                        cv = -cv;
                    }
                    Out::R(*d, av.mul_add(bv, cv).to_bits())
                }
                Op::FMnMx { d, a, b, min } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    let v = if *min { av.min(bv) } else { av.max(bv) };
                    Out::R(*d, v.to_bits())
                }
                Op::Mufu { d, func, a } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    Out::R(*d, func.eval(av).to_bits())
                }
                Op::I2F { d, a, .. } => Out::R(*d, (w.reg(lane, *a) as i32 as f32).to_bits()),
                Op::F2I { d, a, .. } => Out::R(*d, f32::from_bits(w.reg(lane, *a)) as i32 as u32),
                Op::ISetP {
                    p,
                    cmp,
                    a,
                    b,
                    signed,
                    combine,
                } => {
                    let av = w.reg(lane, *a);
                    let bv = self.src_val(w, lane, b);
                    let base = if *signed {
                        cmp.eval_i64(av as i32 as i64, bv as i32 as i64)
                    } else {
                        cmp.eval_i64(av as i64, bv as i64)
                    };
                    let v = match combine {
                        None => base,
                        Some((cp, neg)) => base && (w.pred(lane, *cp) != *neg),
                    };
                    Out::P(*p, v)
                }
                Op::FSetP { p, cmp, a, b } => {
                    let av = f32::from_bits(w.reg(lane, *a));
                    let bv = f32::from_bits(self.src_val(w, lane, b));
                    Out::P(*p, cmp.eval_f32(av, bv))
                }
                Op::PSetP {
                    p,
                    op,
                    a,
                    b,
                    neg_a,
                    neg_b,
                } => {
                    let av = w.pred(lane, *a) != *neg_a;
                    let bv = w.pred(lane, *b) != *neg_b;
                    let v = match op {
                        LogicOp::And => av && bv,
                        LogicOp::Or => av || bv,
                        LogicOp::Xor => av != bv,
                        LogicOp::PassB => bv,
                    };
                    Out::P(*p, v)
                }
                Op::P2R { d } => Out::R(*d, w.preds[lane] as u32 & 0x7f),
                Op::R2P { a } => Out::Preds((w.reg(lane, *a) & 0x7f) as u8),
                Op::Nop => Out::None,
                // Handled in `step`.
                _ => Out::None,
            };
            // Write phase.
            let w = &mut self.warps[wi];
            match out {
                Out::R(d, v) => w.set_reg(lane, d, v),
                Out::P(p, v) => w.set_pred(lane, p, v),
                Out::RCc(d, v, c) => {
                    w.set_reg(lane, d, v);
                    w.cc[lane] = c;
                }
                Out::Preds(bits) => w.preds[lane] = bits,
                Out::None => {}
            }
        }
    }

    fn special(&self, w: &Warp, lane: usize, sr: SpecialReg) -> u32 {
        let cta = &self.ctas[w.cta];
        let linear = w.warp_in_cta * 32 + lane as u32;
        let (bx, by, _) = self.dims.block;
        match sr {
            SpecialReg::TidX => linear % bx,
            SpecialReg::TidY => (linear / bx) % by,
            SpecialReg::TidZ => linear / (bx * by),
            SpecialReg::CtaIdX => cta.ctaid.0,
            SpecialReg::CtaIdY => cta.ctaid.1,
            SpecialReg::CtaIdZ => cta.ctaid.2,
            SpecialReg::NTidX => self.dims.block.0,
            SpecialReg::NTidY => self.dims.block.1,
            SpecialReg::NTidZ => self.dims.block.2,
            SpecialReg::NCtaIdX => self.dims.grid.0,
            SpecialReg::NCtaIdY => self.dims.grid.1,
            SpecialReg::NCtaIdZ => self.dims.grid.2,
            SpecialReg::LaneId => lane as u32,
            SpecialReg::WarpId => w.warp_in_cta,
            SpecialReg::SmId => cta.sm as u32,
            SpecialReg::ClockLo => self.cycle as u32,
            SpecialReg::ClockHi => (self.cycle >> 32) as u32,
            SpecialReg::LaneMaskLt => (1u32 << lane) - 1,
            SpecialReg::ActiveMask => w.active,
        }
    }

    // ---- memory helpers ----------------------------------------------------

    /// Resolves a lane's effective address for `addr`; returns
    /// (space, resolved byte offset/address).
    fn lane_addr(
        &self,
        w: &Warp,
        lane: usize,
        addr: &MemAddr,
    ) -> Result<(AddrSpace, u64), FaultKind> {
        match addr.space {
            AddrSpace::Local => {
                let base = w.reg(lane, addr.base);
                let a = base.wrapping_add(addr.offset as u32) as u64;
                Ok((AddrSpace::Local, a))
            }
            AddrSpace::Shared => {
                let base = w.reg(lane, addr.base);
                Ok((
                    AddrSpace::Shared,
                    base.wrapping_add(addr.offset as u32) as u64,
                ))
            }
            AddrSpace::Global => {
                let a = w
                    .reg64(lane, addr.base)
                    .wrapping_add(addr.offset as i64 as u64);
                Ok((AddrSpace::Global, a))
            }
            AddrSpace::Generic => {
                let a = w
                    .reg64(lane, addr.base)
                    .wrapping_add(addr.offset as i64 as u64);
                match resolve_generic(a) {
                    Some((s, off)) => Ok((s, off)),
                    None => Err(FaultKind::MemViolation { addr: a }),
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn mem_load(
        &mut self,
        wi: usize,
        sm: usize,
        mask: LaneMask,
        d: Gpr,
        width: MemWidth,
        addr: &MemAddr,
        _texture: bool,
    ) -> Result<(), FaultKind> {
        let bytes = width.bytes();
        let mut global_addrs: Vec<u64> = Vec::new();
        let mut has_local = false;
        let mut has_shared = false;
        for lane in 0..32usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let data: [u8; 16] = match space {
                AddrSpace::Local => {
                    has_local = true;
                    let w = &self.warps[wi];
                    let slab = w.lane_local(lane);
                    let off = a as usize;
                    if off + bytes as usize > slab.len() {
                        return Err(FaultKind::StackViolation { offset: a });
                    }
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(&slab[off..off + bytes as usize]);
                    buf
                }
                AddrSpace::Shared => {
                    has_shared = true;
                    let cta = &self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    if off + bytes as usize > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(&cta.shared[off..off + bytes as usize]);
                    buf
                }
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs.push(a);
                    let got = self.mem.read_bytes(a, bytes).map_err(mem_fault)?;
                    let mut buf = [0u8; 16];
                    buf[..bytes as usize].copy_from_slice(got);
                    buf
                }
            };
            let w = &mut self.warps[wi];
            write_load_result(w, lane, d, width, &data);
        }
        let lat = self.mem_latency(sm, &global_addrs, bytes, false, has_local, has_shared);
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    fn mem_store(
        &mut self,
        wi: usize,
        sm: usize,
        mask: LaneMask,
        v: Gpr,
        width: MemWidth,
        addr: &MemAddr,
    ) -> Result<(), FaultKind> {
        let bytes = width.bytes();
        let mut global_addrs: Vec<u64> = Vec::new();
        let mut has_local = false;
        let mut has_shared = false;
        for lane in 0..32usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let mut buf = [0u8; 16];
            {
                let w = &self.warps[wi];
                for k in 0..width.regs() {
                    let val = w.reg(lane, Gpr::new(v.index() + k));
                    buf[4 * k as usize..4 * k as usize + 4].copy_from_slice(&val.to_le_bytes());
                }
                // Sub-word stores truncate the low register.
                if bytes < 4 {
                    let val = w.reg(lane, v);
                    buf[..bytes as usize].copy_from_slice(&val.to_le_bytes()[..bytes as usize]);
                }
            }
            match space {
                AddrSpace::Local => {
                    has_local = true;
                    let w = &mut self.warps[wi];
                    let off = a as usize;
                    let slab = w.lane_local_mut(lane);
                    if off + bytes as usize > slab.len() {
                        return Err(FaultKind::StackViolation { offset: a });
                    }
                    slab[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                AddrSpace::Shared => {
                    has_shared = true;
                    let cta = &mut self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    if off + bytes as usize > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    cta.shared[off..off + bytes as usize].copy_from_slice(&buf[..bytes as usize]);
                }
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs.push(a);
                    self.mem
                        .write_bytes(a, &buf[..bytes as usize])
                        .map_err(mem_fault)?;
                }
            }
        }
        let lat = self.mem_latency(sm, &global_addrs, bytes, true, has_local, has_shared);
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn mem_atomic(
        &mut self,
        wi: usize,
        sm: usize,
        mask: LaneMask,
        d: Option<Gpr>,
        op: AtomOp,
        addr: &MemAddr,
        v: Gpr,
        v2: Option<Gpr>,
        wide: bool,
    ) -> Result<(), FaultKind> {
        let mut global_addrs: Vec<u64> = Vec::new();
        for lane in 0..32usize {
            if mask & (1 << lane) == 0 {
                continue;
            }
            let (space, a) = self.lane_addr(&self.warps[wi], lane, addr)?;
            let (operand, operand2) = {
                let w = &self.warps[wi];
                let x = if wide {
                    w.reg64(lane, v)
                } else {
                    w.reg(lane, v) as u64
                };
                let y = match v2 {
                    Some(r) => {
                        if wide {
                            w.reg64(lane, r)
                        } else {
                            w.reg(lane, r) as u64
                        }
                    }
                    None => 0,
                };
                (x, y)
            };
            let old = match space {
                AddrSpace::Global | AddrSpace::Generic => {
                    global_addrs.push(a);
                    let old = if wide {
                        self.mem.read_u64(a).map_err(mem_fault)?
                    } else {
                        self.mem.read_u32(a).map_err(mem_fault)? as u64
                    };
                    let new = apply_atom(op, old, operand, operand2, wide);
                    if wide {
                        self.mem.write_u64(a, new).map_err(mem_fault)?;
                    } else {
                        self.mem.write_u32(a, new as u32).map_err(mem_fault)?;
                    }
                    old
                }
                AddrSpace::Shared => {
                    let cta = &mut self.ctas[self.warps[wi].cta];
                    let off = a as usize;
                    let size = if wide { 8 } else { 4 };
                    if off + size > cta.shared.len() {
                        return Err(FaultKind::SharedViolation { offset: a });
                    }
                    let old = if wide {
                        u64::from_le_bytes(cta.shared[off..off + 8].try_into().unwrap())
                    } else {
                        u32::from_le_bytes(cta.shared[off..off + 4].try_into().unwrap()) as u64
                    };
                    let new = apply_atom(op, old, operand, operand2, wide);
                    if wide {
                        cta.shared[off..off + 8].copy_from_slice(&new.to_le_bytes());
                    } else {
                        cta.shared[off..off + 4].copy_from_slice(&(new as u32).to_le_bytes());
                    }
                    old
                }
                AddrSpace::Local => return Err(FaultKind::MemViolation { addr: a }),
            };
            if let Some(d) = d {
                let w = &mut self.warps[wi];
                if wide {
                    w.set_reg64(lane, d, old);
                } else {
                    w.set_reg(lane, d, old as u32);
                }
            }
        }
        let width = if wide { 8 } else { 4 };
        let mut lat = self.mem_latency(
            sm,
            &global_addrs,
            width,
            true,
            false,
            global_addrs.is_empty(),
        );
        lat += 16; // read-modify-write turnaround
        finish(&mut self.warps[wi], self.cycle, lat);
        Ok(())
    }

    fn mem_latency(
        &mut self,
        sm: usize,
        global_addrs: &[u64],
        width: u32,
        write: bool,
        has_local: bool,
        has_shared: bool,
    ) -> u64 {
        let mut lat = 2u64;
        if !global_addrs.is_empty() {
            let out = self
                .hier
                .access_global(sm, self.cycle, global_addrs, width, write);
            lat = lat.max(out.ready_at.saturating_sub(self.cycle));
        }
        if has_local {
            lat = lat.max(self.hier.local_latency());
        }
        if has_shared {
            lat = lat.max(self.hier.shared_latency());
        }
        lat
    }
}

enum Pick {
    Warp(usize),
    Stalled(u64),
    Empty,
}

fn finish(w: &mut Warp, cycle: u64, lat: u64) {
    w.ready_at = cycle + lat.max(1);
}

fn target_pc(l: &Label) -> Result<u32, FaultKind> {
    match l {
        Label::Pc(t) => Ok(*t),
        _ => Err(FaultKind::InvalidPc { pc: u64::MAX }),
    }
}

fn mem_fault(e: MemError) -> FaultKind {
    match e {
        MemError::OutOfBounds { addr } => FaultKind::MemViolation { addr },
        MemError::Misaligned { addr, .. } => FaultKind::Misaligned { addr },
        MemError::OutOfMemory => FaultKind::MemViolation { addr: 0 },
    }
}

fn write_load_result(w: &mut Warp, lane: usize, d: Gpr, width: MemWidth, data: &[u8; 16]) {
    match width {
        MemWidth::U8 => w.set_reg(lane, d, data[0] as u32),
        MemWidth::S8 => w.set_reg(lane, d, data[0] as i8 as i32 as u32),
        MemWidth::U16 => w.set_reg(lane, d, u16::from_le_bytes([data[0], data[1]]) as u32),
        MemWidth::S16 => w.set_reg(
            lane,
            d,
            i16::from_le_bytes([data[0], data[1]]) as i32 as u32,
        ),
        MemWidth::B32 => w.set_reg(lane, d, u32::from_le_bytes(data[..4].try_into().unwrap())),
        MemWidth::B64 | MemWidth::B128 => {
            for k in 0..width.regs() {
                let off = 4 * k as usize;
                let v = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
                w.set_reg(lane, Gpr::new(d.index() + k), v);
            }
        }
    }
}

fn apply_atom(op: AtomOp, old: u64, v: u64, v2: u64, wide: bool) -> u64 {
    let m = if wide { u64::MAX } else { u32::MAX as u64 };
    let r = match op {
        AtomOp::Add => old.wrapping_add(v),
        AtomOp::Min => old.min(v),
        AtomOp::Max => old.max(v),
        AtomOp::And => old & v,
        AtomOp::Or => old | v,
        AtomOp::Xor => old ^ v,
        AtomOp::Exch => v,
        AtomOp::Cas => {
            if old == v {
                v2
            } else {
                old
            }
        }
    };
    r & m
}

fn alu_latency(op: &Op) -> u64 {
    match op {
        Op::Mufu { .. } => 8,
        Op::IMul { .. } | Op::IMad { .. } => 4,
        Op::I2F { .. } | Op::F2I { .. } => 4,
        _ => 2,
    }
}

/// Evaluates a comparison used by tests.
#[doc(hidden)]
pub fn _cmp_eval(cmp: CmpOp, a: i64, b: i64) -> bool {
    cmp.eval_i64(a, b)
}
