//! Linked device modules — the `nvlink` analogue.
//!
//! A [`Module`] holds the flat code space of one or more compiled
//! functions (kernels, device functions, compiled-SASS instrumentation
//! handlers). Linking concatenates function bodies, relocates
//! in-function `Pc` labels, resolves symbolic `Func` call targets, and
//! merges reconvergence metadata. `Handler` call targets survive
//! linking — they trap into native handlers at execution time.

use crate::decode::DecodedModule;
use sassi_isa::{Function, FunctionMeta, Instr, Label};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::OnceLock;

/// A linking failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// Two functions share a name.
    DuplicateSymbol(String),
    /// A `Func` call target index is out of range.
    UnresolvedFunction(u32),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
            LinkError::UnresolvedFunction(i) => write!(f, "call to unknown function #{i}"),
        }
    }
}

impl std::error::Error for LinkError {}

/// Metadata of one linked function.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkedFunction {
    /// Symbol name.
    pub name: String,
    /// Entry pc in the module's flat code space.
    pub entry: u32,
    /// One past the last instruction.
    pub end: u32,
    /// The compile-time metadata carried over from the backend.
    pub meta: FunctionMeta,
}

/// A linked device module.
#[derive(Debug)]
pub struct Module {
    /// Flat code space.
    pub code: Vec<Instr>,
    /// Linked functions in link order.
    pub functions: Vec<LinkedFunction>,
    /// Reconvergence targets for every `SYNC`, keyed by flat pc.
    pub sync_reconv: BTreeMap<u32, u32>,
    /// Lazily-built pre-decoded form (see [`DecodedModule`]); built
    /// eagerly by [`Module::link`], rebuilt on demand after
    /// clone/deserialize.
    decoded: OnceLock<DecodedModule>,
}

// `code` is public and the decode cache must never go stale, so every
// path that could yield a module with different code starts from an
// empty cache: these impls are hand-written to (a) reset the cache on
// clone and (b) keep equality/serialization defined over the three
// public fields exactly as the derives on those fields would.
impl Clone for Module {
    fn clone(&self) -> Module {
        Module {
            code: self.code.clone(),
            functions: self.functions.clone(),
            sync_reconv: self.sync_reconv.clone(),
            decoded: OnceLock::new(),
        }
    }
}

impl PartialEq for Module {
    fn eq(&self, other: &Module) -> bool {
        self.code == other.code
            && self.functions == other.functions
            && self.sync_reconv == other.sync_reconv
    }
}

impl Serialize for Module {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (String::from("code"), Serialize::to_value(&self.code)),
            (
                String::from("functions"),
                Serialize::to_value(&self.functions),
            ),
            (
                String::from("sync_reconv"),
                Serialize::to_value(&self.sync_reconv),
            ),
        ])
    }
}

impl Deserialize for Module {
    fn from_value(v: &Value) -> Result<Module, DeError> {
        match v {
            Value::Map(m) => Ok(Module {
                code: Deserialize::from_value(serde::map_field(m, "code")?)?,
                functions: Deserialize::from_value(serde::map_field(m, "functions")?)?,
                sync_reconv: Deserialize::from_value(serde::map_field(m, "sync_reconv")?)?,
                decoded: OnceLock::new(),
            }),
            _ => Err(DeError::expected("map for Module", v)),
        }
    }
}

impl Module {
    /// Links `funcs` into a module. `Func(i)` call targets refer to the
    /// i-th function in the slice.
    ///
    /// # Errors
    ///
    /// [`LinkError::DuplicateSymbol`] for repeated names and
    /// [`LinkError::UnresolvedFunction`] for out-of-range call targets.
    pub fn link(funcs: &[Function]) -> Result<Module, LinkError> {
        let mut names = HashMap::new();
        let mut entries = Vec::with_capacity(funcs.len());
        let mut base = 0u32;
        for (i, f) in funcs.iter().enumerate() {
            if names.insert(f.name.clone(), i).is_some() {
                return Err(LinkError::DuplicateSymbol(f.name.clone()));
            }
            entries.push(base);
            base += f.instrs.len() as u32;
        }

        let mut code = Vec::with_capacity(base as usize);
        let mut functions = Vec::with_capacity(funcs.len());
        let mut sync_reconv = BTreeMap::new();
        for (i, f) in funcs.iter().enumerate() {
            let entry = entries[i];
            for ins in &f.instrs {
                let mut ins = ins.clone();
                if let Some(target) = ins.op.target_mut() {
                    *target = match *target {
                        Label::Pc(pc) => Label::Pc(pc + entry),
                        Label::Func(fi) => {
                            let fi = fi as usize;
                            if fi >= funcs.len() {
                                return Err(LinkError::UnresolvedFunction(fi as u32));
                            }
                            Label::Pc(entries[fi])
                        }
                        Label::Handler(h) => Label::Handler(h),
                    };
                }
                code.push(ins);
            }
            for (&sync_pc, &reconv) in &f.meta.sync_reconv {
                sync_reconv.insert(sync_pc + entry, reconv + entry);
            }
            functions.push(LinkedFunction {
                name: f.name.clone(),
                entry,
                end: entry + f.instrs.len() as u32,
                meta: f.meta.clone(),
            });
        }
        let module = Module::from_parts(code, functions, sync_reconv);
        // Pre-decode eagerly: linking is the cold path, execution the
        // hot one, and an eagerly-primed cache keeps first-launch
        // timing indistinguishable from steady state.
        module.decoded();
        Ok(module)
    }

    /// Assembles a module directly from its parts (no relocation).
    /// Intended for tests that need code the builder API rejects,
    /// e.g. invalid control-transfer targets.
    pub fn from_parts(
        code: Vec<Instr>,
        functions: Vec<LinkedFunction>,
        sync_reconv: BTreeMap<u32, u32>,
    ) -> Module {
        Module {
            code,
            functions,
            sync_reconv,
            decoded: OnceLock::new(),
        }
    }

    /// The pre-decoded µop form of the module, built on first use and
    /// cached.
    pub fn decoded(&self) -> &DecodedModule {
        self.decoded.get_or_init(|| DecodedModule::decode(self))
    }

    /// Finds a linked function by name.
    pub fn function(&self, name: &str) -> Option<&LinkedFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The function containing `pc`, if any.
    pub fn function_at(&self, pc: u32) -> Option<&LinkedFunction> {
        self.functions.iter().find(|f| pc >= f.entry && pc < f.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sassi_isa::{FunctionMeta, Gpr, Instr, Op, Src};

    fn f(name: &str, n: usize) -> Function {
        let mut instrs = vec![];
        for _ in 0..n.saturating_sub(1) {
            instrs.push(Instr::new(Op::Nop));
        }
        instrs.push(Instr::new(Op::Exit));
        Function::new(name, instrs, FunctionMeta::default())
    }

    #[test]
    fn concatenates_and_finds() {
        let m = Module::link(&[f("a", 3), f("b", 2)]).unwrap();
        assert_eq!(m.code.len(), 5);
        assert_eq!(m.function("b").unwrap().entry, 3);
        assert_eq!(m.function_at(4).unwrap().name, "b");
        assert!(m.function("c").is_none());
    }

    #[test]
    fn relocates_branches_and_calls() {
        let mut a = f("a", 2);
        a.instrs.insert(
            0,
            Instr::new(Op::Bra {
                target: Label::Pc(1),
                uniform: false,
            }),
        ); // now 3 instrs
        let mut b = f("b", 2);
        b.instrs.insert(
            0,
            Instr::new(Op::Jcal {
                target: Label::Func(0),
            }),
        );
        let m = Module::link(&[a, b]).unwrap();
        // b starts at 3; its first instruction calls a's entry (0).
        match m.code[3].op {
            Op::Jcal {
                target: Label::Pc(t),
            } => assert_eq!(t, 0),
            ref o => panic!("unexpected {o:?}"),
        }
        // a's branch now targets 1 (unchanged, base 0).
        match m.code[0].op {
            Op::Bra {
                target: Label::Pc(t),
                ..
            } => assert_eq!(t, 1),
            ref o => panic!("unexpected {o:?}"),
        }
    }

    #[test]
    fn handler_targets_survive() {
        let mut a = f("a", 2);
        a.instrs.insert(
            0,
            Instr::new(Op::Jcal {
                target: Label::Handler(7),
            }),
        );
        let m = Module::link(&[a]).unwrap();
        assert!(matches!(
            m.code[0].op,
            Op::Jcal {
                target: Label::Handler(7)
            }
        ));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        assert!(matches!(
            Module::link(&[f("x", 1), f("x", 1)]),
            Err(LinkError::DuplicateSymbol(_))
        ));
    }

    #[test]
    fn unresolved_function_rejected() {
        let mut a = f("a", 2);
        a.instrs.insert(
            0,
            Instr::new(Op::Jcal {
                target: Label::Func(5),
            }),
        );
        assert!(matches!(
            Module::link(&[a]),
            Err(LinkError::UnresolvedFunction(5))
        ));
    }

    #[test]
    fn sync_metadata_relocated() {
        let mut a = f("a", 2);
        let mut meta = FunctionMeta::default();
        meta.sync_reconv.insert(0, 1);
        a.meta = meta;
        let b = {
            let mut b = f("b", 3);
            let mut meta = FunctionMeta::default();
            meta.sync_reconv.insert(1, 2);
            b.meta = meta;
            b.instrs[0] = Instr::new(Op::Mov {
                d: Gpr::new(0),
                a: Src::Imm(0),
            });
            b
        };
        let m = Module::link(&[a, b]).unwrap();
        assert_eq!(m.sync_reconv.get(&0), Some(&1));
        assert_eq!(m.sync_reconv.get(&3), Some(&4));
    }
}
