//! Warp state: the SIMT divergence stack, per-lane register file slice,
//! call stack and scheduling status.
//!
//! The divergence model follows NVIDIA's stack-based reconvergence
//! (paper §5): `SSY` pushes a reconvergence token; a divergent branch
//! defers one path on the stack; `SYNC` parks the executing lanes and,
//! once the active set drains, pops deferred paths and finally the
//! reconvergence token, resuming all surviving lanes at the
//! reconvergence point.

use sassi_isa::{Gpr, LaneMask, PredReg};

/// One divergence-stack entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StackEntry {
    /// Reconvergence token pushed by `SSY`.
    Ssy {
        /// Reconvergence pc.
        reconv: u32,
        /// Lanes to resume there.
        mask: LaneMask,
    },
    /// A deferred branch path.
    Div {
        /// Where the deferred lanes resume.
        pc: u32,
        /// The deferred lanes.
        mask: LaneMask,
    },
}

/// Why a warp is not currently issuing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarpStatus {
    /// Issuable once `ready_at` passes.
    Ready,
    /// Waiting at a block barrier.
    AtBarrier,
    /// All lanes exited.
    Done,
}

/// The architectural and scheduling state of one warp.
#[derive(Clone, Debug)]
pub struct Warp {
    /// Index of the resident CTA this warp belongs to.
    pub cta: usize,
    /// Warp index within its CTA.
    pub warp_in_cta: u32,
    /// Current program counter (flat module code space).
    ///
    /// Invariant the block-stepped scheduler depends on: executing any
    /// µop that is not a block boundary (see
    /// [`crate::is_block_boundary`]) advances `pc` by exactly one —
    /// including instrumentation traps, whose handlers run to
    /// completion within the step and always resume at `pc + 1`. Only
    /// boundary µops (branches, `SSY`/`SYNC`, calls, returns, `EXIT`,
    /// `BAR.SYNC`) may move `pc` anywhere else, and the block table
    /// places each of those last in its block.
    pub pc: u32,
    /// Currently active lanes.
    pub active: LaneMask,
    /// Lanes that exist in this warp (partial last warp of a block).
    pub existing: LaneMask,
    /// Lanes that have executed `EXIT`.
    pub exited: LaneMask,
    /// Divergence stack.
    pub stack: Vec<StackEntry>,
    /// Warp-synchronous call stack of return pcs.
    pub call_stack: Vec<u32>,
    /// Earliest cycle at which the warp may issue.
    pub ready_at: u64,
    /// Scheduling status.
    pub status: WarpStatus,
    /// Per-lane 32-bit registers, `lane * regs_per_thread + r`.
    pub regs: Vec<u32>,
    /// Per-lane predicate files (bits 0..6 = P0..P6).
    pub preds: [u8; 32],
    /// Per-lane carry flags.
    pub cc: [bool; 32],
    /// Per-lane local-memory slabs, concatenated.
    pub local: Vec<u8>,
    regs_per_thread: u32,
    local_bytes: u32,
}

impl Warp {
    /// Creates a warp with `existing` lanes at `entry`.
    pub fn new(
        cta: usize,
        warp_in_cta: u32,
        entry: u32,
        existing: LaneMask,
        regs_per_thread: u32,
        local_bytes: u32,
    ) -> Warp {
        let mut w = Warp {
            cta,
            warp_in_cta,
            pc: entry,
            active: existing,
            existing,
            exited: 0,
            stack: Vec::new(),
            call_stack: Vec::new(),
            ready_at: 0,
            status: WarpStatus::Ready,
            regs: vec![0; 32 * regs_per_thread as usize],
            preds: [0; 32],
            cc: [false; 32],
            local: vec![0; 32 * local_bytes as usize],
            regs_per_thread,
            local_bytes,
        };
        // ABI: R1 is the stack pointer, initialized to the top of the
        // thread's local slab (stack grows down).
        for lane in 0..32 {
            w.set_reg(lane, Gpr::SP, local_bytes);
        }
        w
    }

    /// Reinitializes a retired warp in place for a new block, reusing
    /// the register-file and local-slab allocations (the capacities are
    /// kept; contents are zeroed as `new` would).
    pub fn reset(
        &mut self,
        cta: usize,
        warp_in_cta: u32,
        entry: u32,
        existing: LaneMask,
        regs_per_thread: u32,
        local_bytes: u32,
    ) {
        self.cta = cta;
        self.warp_in_cta = warp_in_cta;
        self.pc = entry;
        self.active = existing;
        self.existing = existing;
        self.exited = 0;
        self.stack.clear();
        self.call_stack.clear();
        self.ready_at = 0;
        self.status = WarpStatus::Ready;
        if self.regs_per_thread != regs_per_thread {
            self.regs_per_thread = regs_per_thread;
            self.regs.resize(32 * regs_per_thread as usize, 0);
        }
        if self.local_bytes != local_bytes {
            self.local_bytes = local_bytes;
            self.local.resize(32 * local_bytes as usize, 0);
        }
        self.regs.fill(0);
        self.local.fill(0);
        self.preds = [0; 32];
        self.cc = [false; 32];
        for lane in 0..32 {
            self.set_reg(lane, Gpr::SP, local_bytes);
        }
    }

    /// Registers provisioned per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Bytes of local slab per thread.
    pub fn local_bytes(&self) -> u32 {
        self.local_bytes
    }

    /// Reads lane `lane`'s register `r` (`RZ` reads zero).
    pub fn reg(&self, lane: usize, r: Gpr) -> u32 {
        if r.is_rz() {
            return 0;
        }
        debug_assert!(
            (r.index() as u32) < self.regs_per_thread,
            "R{} unprovisioned",
            r.index()
        );
        self.regs[lane * self.regs_per_thread as usize + r.index() as usize]
    }

    /// Writes lane `lane`'s register `r` (writes to `RZ` are dropped).
    pub fn set_reg(&mut self, lane: usize, r: Gpr, v: u32) {
        if r.is_rz() {
            return;
        }
        debug_assert!(
            (r.index() as u32) < self.regs_per_thread,
            "R{} unprovisioned",
            r.index()
        );
        self.regs[lane * self.regs_per_thread as usize + r.index() as usize] = v;
    }

    /// Reads a register pair as a 64-bit value.
    pub fn reg64(&self, lane: usize, r: Gpr) -> u64 {
        if r.is_rz() {
            return 0;
        }
        (self.reg(lane, r) as u64) | ((self.reg(lane, r.pair_hi()) as u64) << 32)
    }

    /// Writes a register pair from a 64-bit value.
    pub fn set_reg64(&mut self, lane: usize, r: Gpr, v: u64) {
        self.set_reg(lane, r, v as u32);
        self.set_reg(lane, r.pair_hi(), (v >> 32) as u32);
    }

    /// Reads lane `lane`'s predicate `p` (`PT` reads true).
    pub fn pred(&self, lane: usize, p: PredReg) -> bool {
        p.is_pt() || self.preds[lane] & (1 << p.index()) != 0
    }

    /// Writes lane `lane`'s predicate `p` (writes to `PT` are dropped).
    pub fn set_pred(&mut self, lane: usize, p: PredReg, v: bool) {
        if p.is_pt() {
            return;
        }
        if v {
            self.preds[lane] |= 1 << p.index();
        } else {
            self.preds[lane] &= !(1 << p.index());
        }
    }

    /// The local slab of one lane.
    pub fn lane_local(&self, lane: usize) -> &[u8] {
        let b = self.local_bytes as usize;
        &self.local[lane * b..(lane + 1) * b]
    }

    /// The local slab of one lane, mutably.
    pub fn lane_local_mut(&mut self, lane: usize) -> &mut [u8] {
        let b = self.local_bytes as usize;
        &mut self.local[lane * b..(lane + 1) * b]
    }

    /// Iterates the active lane indices (ascending, allocation-free).
    pub fn active_lanes(&self) -> sassi_isa::Lanes {
        sassi_isa::lanes(self.active)
    }

    /// Lowest active lane, if any — the "first active thread" handlers
    /// elect with `__ffs(__ballot(1))-1`.
    pub fn leader(&self) -> Option<usize> {
        if self.active == 0 {
            None
        } else {
            Some(self.active.trailing_zeros() as usize)
        }
    }

    // ---- divergence-stack transitions -----------------------------------

    /// Executes `SSY target`.
    pub fn push_ssy(&mut self, reconv: u32) {
        self.stack.push(StackEntry::Ssy {
            reconv,
            mask: self.active,
        });
        self.pc += 1;
    }

    /// Executes a branch: `taken` lanes (subset of active) go to
    /// `target`, the rest fall through. Returns whether the branch
    /// diverged (both sides non-empty).
    pub fn branch(&mut self, target: u32, taken: LaneMask) -> bool {
        let taken = taken & self.active;
        let not_taken = self.active & !taken;
        if taken == 0 {
            self.pc += 1;
            false
        } else if not_taken == 0 {
            self.pc = target;
            false
        } else {
            self.stack.push(StackEntry::Div {
                pc: self.pc + 1,
                mask: not_taken,
            });
            self.active = taken;
            self.pc = target;
            true
        }
    }

    /// Executes `SYNC` for `parkers` (subset of active): parks them at
    /// the pending reconvergence point. When the active set drains, pops
    /// deferred paths / reconverges.
    pub fn sync(&mut self, parkers: LaneMask) {
        self.active &= !parkers;
        if self.active == 0 {
            self.pop_until_runnable();
        } else {
            self.pc += 1;
        }
    }

    /// Executes `EXIT` for `exiters` (subset of active).
    pub fn exit_lanes(&mut self, exiters: LaneMask) {
        self.exited |= exiters;
        self.active &= !exiters;
        if self.active == 0 {
            self.pop_until_runnable();
        } else {
            self.pc += 1;
        }
    }

    /// Pops the divergence stack until some lane is runnable, or marks
    /// the warp done.
    fn pop_until_runnable(&mut self) {
        while self.active == 0 {
            match self.stack.pop() {
                Some(StackEntry::Div { pc, mask }) => {
                    self.active = mask & !self.exited;
                    self.pc = pc;
                }
                Some(StackEntry::Ssy { reconv, mask }) => {
                    self.active = mask & !self.exited;
                    self.pc = reconv;
                }
                None => {
                    self.status = WarpStatus::Done;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w() -> Warp {
        Warp::new(0, 0, 0, 0xffff_ffff, 32, 256)
    }

    #[test]
    fn sp_initialized_to_slab_top() {
        let w = w();
        assert_eq!(w.reg(0, Gpr::SP), 256);
        assert_eq!(w.reg(31, Gpr::SP), 256);
    }

    #[test]
    fn rz_reads_zero_ignores_writes() {
        let mut w = w();
        w.set_reg(3, Gpr::RZ, 77);
        assert_eq!(w.reg(3, Gpr::RZ), 0);
    }

    #[test]
    fn reg64_roundtrip() {
        let mut w = w();
        w.set_reg64(5, Gpr::new(8), 0xdead_beef_0123_4567);
        assert_eq!(w.reg64(5, Gpr::new(8)), 0xdead_beef_0123_4567);
        assert_eq!(w.reg(5, Gpr::new(8)), 0x0123_4567);
        assert_eq!(w.reg(5, Gpr::new(9)), 0xdead_beef);
    }

    #[test]
    fn pt_always_true() {
        let mut w = w();
        assert!(w.pred(0, PredReg::PT));
        w.set_pred(0, PredReg::PT, false);
        assert!(w.pred(0, PredReg::PT));
        w.set_pred(0, PredReg::new(2), true);
        assert!(w.pred(0, PredReg::new(2)));
        assert!(!w.pred(1, PredReg::new(2)));
    }

    #[test]
    fn if_else_reconverges() {
        // SSY end; branch lanes 0..16 taken; then sync; else sync; end.
        let mut w = w();
        w.push_ssy(100);
        assert_eq!(w.pc, 1);
        let diverged = w.branch(50, 0x0000_ffff);
        assert!(diverged);
        assert_eq!(w.pc, 50);
        assert_eq!(w.active, 0x0000_ffff);
        // Taken side syncs: deferred path resumes at fallthrough (2).
        w.sync(w.active);
        assert_eq!(w.pc, 2);
        assert_eq!(w.active, 0xffff_0000);
        // Else side syncs: reconverge at 100 with everyone.
        w.sync(w.active);
        assert_eq!(w.pc, 100);
        assert_eq!(w.active, 0xffff_ffff);
        assert!(w.stack.is_empty());
    }

    #[test]
    fn uniform_branch_no_push() {
        let mut w = w();
        assert!(!w.branch(10, 0xffff_ffff));
        assert_eq!(w.pc, 10);
        assert!(w.stack.is_empty());
        assert!(!w.branch(20, 0));
        assert_eq!(w.pc, 11);
    }

    #[test]
    fn loop_with_incremental_exits() {
        // SSY(end=40) once; lanes leave via guarded sync one by one.
        let mut w = Warp::new(0, 0, 0, 0b111, 32, 256);
        w.push_ssy(40);
        // Iteration: lane 0 leaves.
        w.sync(0b001);
        assert_eq!(w.active, 0b110);
        // Lane 2 leaves.
        w.sync(0b100);
        assert_eq!(w.active, 0b010);
        // Last lane leaves: reconverge at 40 with all three.
        w.sync(0b010);
        assert_eq!(w.pc, 40);
        assert_eq!(w.active, 0b111);
    }

    #[test]
    fn exited_lanes_do_not_reconverge() {
        let mut w = Warp::new(0, 0, 0, 0b1111, 32, 256);
        w.push_ssy(30);
        let _ = w.branch(10, 0b0011);
        // Taken lanes exit inside the region.
        w.exit_lanes(0b0011);
        // Deferred path resumes.
        assert_eq!(w.active, 0b1100);
        // It syncs; reconvergence excludes the exited lanes.
        w.sync(0b1100);
        assert_eq!(w.pc, 30);
        assert_eq!(w.active, 0b1100);
    }

    #[test]
    fn all_lanes_exit_marks_done() {
        let mut w = Warp::new(0, 0, 0, 0b11, 32, 256);
        w.exit_lanes(0b11);
        assert_eq!(w.status, WarpStatus::Done);
    }

    #[test]
    fn leader_is_lowest_active() {
        let mut w = w();
        w.active = 0b1010_0000;
        assert_eq!(w.leader(), Some(5));
        w.active = 0;
        assert_eq!(w.leader(), None);
    }

    #[test]
    fn reset_matches_fresh_warp() {
        let mut used = Warp::new(0, 0, 0, 0xffff_ffff, 32, 256);
        used.set_reg(3, Gpr::new(7), 0xdead);
        used.set_pred(3, PredReg::new(2), true);
        used.cc[5] = true;
        used.lane_local_mut(1)[10] = 0x55;
        used.push_ssy(40);
        used.call_stack.push(9);
        used.exit_lanes(0xffff_ffff);
        assert_eq!(used.status, WarpStatus::Done);

        used.reset(2, 1, 17, 0x0000_00ff, 32, 256);
        let fresh = Warp::new(2, 1, 17, 0x0000_00ff, 32, 256);
        assert_eq!(used.cta, fresh.cta);
        assert_eq!(used.warp_in_cta, fresh.warp_in_cta);
        assert_eq!(used.pc, fresh.pc);
        assert_eq!(used.active, fresh.active);
        assert_eq!(used.existing, fresh.existing);
        assert_eq!(used.exited, fresh.exited);
        assert_eq!(used.stack, fresh.stack);
        assert_eq!(used.call_stack, fresh.call_stack);
        assert_eq!(used.status, fresh.status);
        assert_eq!(used.regs, fresh.regs);
        assert_eq!(used.preds, fresh.preds);
        assert_eq!(used.cc, fresh.cc);
        assert_eq!(used.local, fresh.local);
    }

    #[test]
    fn reset_reprovisions_on_geometry_change() {
        let mut w = Warp::new(0, 0, 0, 1, 16, 64);
        w.reset(0, 0, 0, 1, 48, 512);
        assert_eq!(w.regs_per_thread(), 48);
        assert_eq!(w.local_bytes(), 512);
        assert_eq!(w.regs.len(), 32 * 48);
        assert_eq!(w.local.len(), 32 * 512);
        assert_eq!(w.reg(0, Gpr::SP), 512);
    }

    #[test]
    fn lane_local_slabs_disjoint() {
        let mut w = w();
        w.lane_local_mut(0)[0] = 0xaa;
        w.lane_local_mut(1)[0] = 0xbb;
        assert_eq!(w.lane_local(0)[0], 0xaa);
        assert_eq!(w.lane_local(1)[0], 0xbb);
    }
}
