//! Launch outcomes and statistics.

use sassi_mem::HierarchyStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of fault that aborted a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Global-memory access outside every allocation, or through the
    /// null/guard pages of the generic address space.
    MemViolation {
        /// Faulting address.
        addr: u64,
    },
    /// Misaligned access.
    Misaligned {
        /// Faulting address.
        addr: u64,
    },
    /// Local (stack) access outside the thread's slab.
    StackViolation {
        /// Faulting local offset.
        offset: u64,
    },
    /// Shared-memory access outside the block's segment.
    SharedViolation {
        /// Faulting shared offset.
        offset: u64,
    },
    /// Control transfer outside the module's code.
    InvalidPc {
        /// Faulting pc.
        pc: u64,
    },
    /// `RET` with an empty call stack.
    CallStackUnderflow,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::MemViolation { addr } => {
                write!(f, "illegal global memory access at {addr:#x}")
            }
            FaultKind::Misaligned { addr } => write!(f, "misaligned address {addr:#x}"),
            FaultKind::StackViolation { offset } => {
                write!(f, "local memory access out of stack at {offset:#x}")
            }
            FaultKind::SharedViolation { offset } => {
                write!(f, "shared memory access out of segment at {offset:#x}")
            }
            FaultKind::InvalidPc { pc } => write!(f, "control transfer to invalid pc {pc}"),
            FaultKind::CallStackUnderflow => write!(f, "return with empty call stack"),
        }
    }
}

/// Where a fault happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInfo {
    /// What happened.
    pub kind: FaultKind,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// SM executing the faulting warp.
    pub sm: u32,
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (pc {}, SM {})", self.kind, self.pc, self.sm)
    }
}

/// How a kernel launch ended.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum KernelOutcome {
    /// Ran to completion.
    Completed,
    /// Aborted on a fault (the CUDA "unspecified launch failure" /
    /// sticky-error analogue).
    Fault(FaultInfo),
    /// Exceeded the watchdog cycle budget.
    Hang,
}

impl KernelOutcome {
    /// Whether the kernel completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, KernelOutcome::Completed)
    }
}

/// Statistics of one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Total SM cycles from launch to last warp retirement.
    pub cycles: u64,
    /// Warp-level instructions issued.
    pub warp_instrs: u64,
    /// Thread-level instructions executed (sum of guard-passing active
    /// lanes over issued instructions).
    pub thread_instrs: u64,
    /// Conditional branches that split a warp.
    pub divergent_branches: u64,
    /// Conditional branches executed (warp-level).
    pub cond_branches: u64,
    /// Traps into native instrumentation handlers.
    pub handler_calls: u64,
    /// Cycles charged to native handler bodies.
    pub handler_cycles: u64,
    /// Blocks executed.
    pub blocks: u64,
}

/// The result of a launch: outcome, counters and the memory hierarchy's
/// view of the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchResult {
    /// How the launch ended.
    pub outcome: KernelOutcome,
    /// Core counters.
    pub stats: LaunchStats,
    /// Memory-system counters accumulated during this launch.
    pub mem: HierarchyStats,
}

impl LaunchResult {
    /// Whether the kernel completed normally.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_queries() {
        assert!(KernelOutcome::Completed.is_ok());
        assert!(!KernelOutcome::Hang.is_ok());
        let f = FaultInfo {
            kind: FaultKind::CallStackUnderflow,
            pc: 3,
            sm: 1,
        };
        assert!(!KernelOutcome::Fault(f).is_ok());
        assert!(f.to_string().contains("pc 3"));
    }

    #[test]
    fn fault_display() {
        let k = FaultKind::MemViolation { addr: 0x10 };
        assert!(k.to_string().contains("0x10"));
    }
}
