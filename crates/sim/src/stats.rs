//! Launch outcomes and statistics.

use sassi_isa::InstrClass;
use sassi_mem::HierarchyStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of fault that aborted a kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Global-memory access outside every allocation, or through the
    /// null/guard pages of the generic address space.
    MemViolation {
        /// Faulting address.
        addr: u64,
    },
    /// Misaligned access.
    Misaligned {
        /// Faulting address.
        addr: u64,
    },
    /// Local (stack) access outside the thread's slab.
    StackViolation {
        /// Faulting local offset.
        offset: u64,
    },
    /// Shared-memory access outside the block's segment.
    SharedViolation {
        /// Faulting shared offset.
        offset: u64,
    },
    /// Control transfer outside the module's code.
    InvalidPc {
        /// Faulting pc.
        pc: u64,
    },
    /// `RET` with an empty call stack.
    CallStackUnderflow,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::MemViolation { addr } => {
                write!(f, "illegal global memory access at {addr:#x}")
            }
            FaultKind::Misaligned { addr } => write!(f, "misaligned address {addr:#x}"),
            FaultKind::StackViolation { offset } => {
                write!(f, "local memory access out of stack at {offset:#x}")
            }
            FaultKind::SharedViolation { offset } => {
                write!(f, "shared memory access out of segment at {offset:#x}")
            }
            FaultKind::InvalidPc { pc } => write!(f, "control transfer to invalid pc {pc}"),
            FaultKind::CallStackUnderflow => write!(f, "return with empty call stack"),
        }
    }
}

/// Where a fault happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultInfo {
    /// What happened.
    pub kind: FaultKind,
    /// Program counter of the faulting instruction.
    pub pc: u32,
    /// SM executing the faulting warp.
    pub sm: u32,
}

impl fmt::Display for FaultInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (pc {}, SM {})", self.kind, self.pc, self.sm)
    }
}

/// How a kernel launch ended.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum KernelOutcome {
    /// Ran to completion.
    Completed,
    /// Aborted on a fault (the CUDA "unspecified launch failure" /
    /// sticky-error analogue).
    Fault(FaultInfo),
    /// Exceeded the watchdog cycle budget.
    Hang,
}

impl KernelOutcome {
    /// Whether the kernel completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, KernelOutcome::Completed)
    }
}

/// Coarse issue classification of an instruction, the profiling axes
/// of the per-class counters in [`IssueCounters`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssueClass {
    /// Loads, stores, atomics, reductions, texture fetches.
    Memory,
    /// Branches, calls, returns, `SYNC`, `EXIT`.
    Control,
    /// Integer / floating-point arithmetic.
    Numeric,
    /// Everything else (moves, predicates, barriers, votes, …).
    Misc,
}

impl IssueClass {
    /// Maps the ISA's static classification onto the four profiling
    /// buckets.
    pub fn of(class: &InstrClass) -> IssueClass {
        if class.is_mem() {
            IssueClass::Memory
        } else if class.is_control_xfer() {
            IssueClass::Control
        } else if class.is_numeric() {
            IssueClass::Numeric
        } else {
            IssueClass::Misc
        }
    }
}

/// Warp-level instruction issue counts by [`IssueClass`] — the
/// where-do-cycles-go profiling hook (always sums to
/// [`LaunchStats::warp_instrs`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IssueCounters {
    /// Memory-class instructions issued.
    pub memory: u64,
    /// Control-class instructions issued.
    pub control: u64,
    /// Numeric-class instructions issued.
    pub numeric: u64,
    /// Everything else.
    pub misc: u64,
}

impl IssueCounters {
    /// Counts one issued instruction of `class`.
    #[inline(always)]
    pub fn bump(&mut self, class: IssueClass) {
        match class {
            IssueClass::Memory => self.memory += 1,
            IssueClass::Control => self.control += 1,
            IssueClass::Numeric => self.numeric += 1,
            IssueClass::Misc => self.misc += 1,
        }
    }

    /// Total instructions counted.
    pub fn total(&self) -> u64 {
        self.memory + self.control + self.numeric + self.misc
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &IssueCounters) {
        self.memory += other.memory;
        self.control += other.control;
        self.numeric += other.numeric;
        self.misc += other.misc;
    }
}

/// Statistics of one kernel launch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Total SM cycles from launch to last warp retirement.
    pub cycles: u64,
    /// Warp-level instructions issued.
    pub warp_instrs: u64,
    /// Thread-level instructions executed (sum of guard-passing active
    /// lanes over issued instructions).
    pub thread_instrs: u64,
    /// Conditional branches that split a warp.
    pub divergent_branches: u64,
    /// Conditional branches executed (warp-level).
    pub cond_branches: u64,
    /// Traps into native instrumentation handlers.
    pub handler_calls: u64,
    /// Cycles charged to native handler bodies.
    pub handler_cycles: u64,
    /// Blocks executed.
    pub blocks: u64,
    /// Warp-level issues broken down by instruction class.
    pub issue: IssueCounters,
}

impl LaunchStats {
    /// Merges one SM shard's counters into the launch aggregate: work
    /// counters sum; `cycles` is the maximum over shards, because the
    /// shards model SMs running concurrently.
    pub fn merge_shard(&mut self, shard: &LaunchStats) {
        self.cycles = self.cycles.max(shard.cycles);
        self.warp_instrs += shard.warp_instrs;
        self.thread_instrs += shard.thread_instrs;
        self.divergent_branches += shard.divergent_branches;
        self.cond_branches += shard.cond_branches;
        self.handler_calls += shard.handler_calls;
        self.handler_cycles += shard.handler_cycles;
        self.blocks += shard.blocks;
        self.issue.merge(&shard.issue);
    }
}

/// The result of a launch: outcome, counters and the memory hierarchy's
/// view of the run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaunchResult {
    /// How the launch ended.
    pub outcome: KernelOutcome,
    /// Core counters.
    pub stats: LaunchStats,
    /// Memory-system counters accumulated during this launch.
    pub mem: HierarchyStats,
}

impl LaunchResult {
    /// Whether the kernel completed normally.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_queries() {
        assert!(KernelOutcome::Completed.is_ok());
        assert!(!KernelOutcome::Hang.is_ok());
        let f = FaultInfo {
            kind: FaultKind::CallStackUnderflow,
            pc: 3,
            sm: 1,
        };
        assert!(!KernelOutcome::Fault(f).is_ok());
        assert!(f.to_string().contains("pc 3"));
    }

    #[test]
    fn fault_display() {
        let k = FaultKind::MemViolation { addr: 0x10 };
        assert!(k.to_string().contains("0x10"));
    }

    #[test]
    fn issue_class_buckets() {
        use sassi_isa::{Gpr, Instr, MemAddr, MemWidth, Op, Src};
        let class = |op: Op| IssueClass::of(&Instr::new(op).class());
        assert_eq!(
            class(Op::Ld {
                d: Gpr::new(0),
                width: MemWidth::B32,
                addr: MemAddr::global(Gpr::new(4), 0),
                spill: false,
            }),
            IssueClass::Memory
        );
        assert_eq!(class(Op::Exit), IssueClass::Control);
        assert_eq!(
            class(Op::IAdd {
                d: Gpr::new(0),
                a: Gpr::new(1),
                b: Src::Imm(1),
                x: false,
                cc: false,
            }),
            IssueClass::Numeric
        );
        assert_eq!(
            class(Op::Mov {
                d: Gpr::new(0),
                a: Src::Imm(0),
            }),
            IssueClass::Misc
        );
        // SSY sets up reconvergence but transfers no control itself.
        assert_eq!(
            class(Op::Ssy {
                target: sassi_isa::Label::Pc(0),
            }),
            IssueClass::Misc
        );
        assert_eq!(class(Op::BarSync), IssueClass::Misc);
    }

    #[test]
    fn issue_counters_accumulate() {
        let mut c = IssueCounters::default();
        c.bump(IssueClass::Memory);
        c.bump(IssueClass::Control);
        c.bump(IssueClass::Control);
        c.bump(IssueClass::Numeric);
        c.bump(IssueClass::Misc);
        assert_eq!(c.memory, 1);
        assert_eq!(c.control, 2);
        assert_eq!(c.numeric, 1);
        assert_eq!(c.misc, 1);
        assert_eq!(c.total(), 5);
    }
}
